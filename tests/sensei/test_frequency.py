"""Tests for the analysis cadence (frequency) control."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.configurable import ConfigurableAnalysis
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.svtk.table import TableData


class CountingAnalysis(AnalysisAdaptor):
    def __init__(self):
        super().__init__("counting")
        self.steps_run: list[int] = []

    def acquire(self, data, deep):
        return data.time_step

    def process(self, payload, comm, device_id):
        self.steps_run.append(payload)


def adaptor_at(step):
    t = TableData("bodies")
    t.add_host_column("x", np.zeros(3))
    da = TableDataAdaptor({"bodies": t})
    da.set_step(step, 0.0)
    return da


class TestFrequency:
    def test_default_runs_every_step(self):
        a = CountingAnalysis()
        for s in range(4):
            a.execute(adaptor_at(s))
        a.finalize()
        assert a.steps_run == [0, 1, 2, 3]

    def test_every_third_step(self):
        a = CountingAnalysis()
        a.set_frequency(3)
        for s in range(7):
            a.execute(adaptor_at(s))
        a.finalize()
        assert a.steps_run == [0, 3, 6]

    def test_skipped_steps_record_no_timing(self):
        a = CountingAnalysis()
        a.set_frequency(2)
        for s in range(4):
            a.execute(adaptor_at(s))
        a.finalize()
        assert len(a.timings) == 2

    def test_skipped_steps_return_true(self):
        a = CountingAnalysis()
        a.set_frequency(5)
        assert a.execute(adaptor_at(1)) is True

    def test_invalid_frequency(self):
        with pytest.raises(ExecutionError):
            CountingAnalysis().set_frequency(0)

    def test_xml_frequency_attribute(self):
        ca = ConfigurableAnalysis(xml="""
            <sensei>
              <analysis type="histogram" mesh="bodies" array="x"
                        placement="host" frequency="4"/>
            </sensei>
        """)
        child = ca.children[0]
        assert child.frequency == 4
        for s in range(5):
            ca.execute(adaptor_at(s))
        ca.finalize()
        assert len(child.timings) == 2  # steps 0 and 4
