"""Tests for placement control and Eq. 1 automatic device selection."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import PlacementError
from repro.hamr.allocator import HOST_DEVICE_ID
from repro.hw.node import VirtualNode, set_node
from repro.hw.spec import NodeSpec
from repro.sensei.placement import (
    DevicePlacement,
    PlacementMode,
    reaim,
    select_device,
)


class TestSelectDevice:
    def test_defaults_round_robin(self):
        """With n_u = n_a, s = 1, d_0 = 0: d = r mod n_a."""
        assert [select_device(r, 4) for r in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_offset_shifts(self):
        """d_0 shifts the assignment (dedicated-device configurations)."""
        assert [select_device(r, 4, n_use=1, offset=3) for r in range(4)] == [3] * 4

    def test_stride_spreads(self):
        assert [select_device(r, 8, n_use=4, stride=2) for r in range(4)] == [
            0, 2, 4, 6,
        ]

    def test_wraps_modulo_available(self):
        # (r % 4) * 3 for r=3 -> 9, wraps to 9 % 4 = 1.
        assert select_device(3, 4, n_use=4, stride=3) == 1

    def test_n_use_limits_devices(self):
        devs = {select_device(r, 4, n_use=2) for r in range(100)}
        assert devs == {0, 1}

    def test_paper_formula_exactly(self):
        """Check Eq. 1 literally: d = (r mod n_u * s + d_0) mod n_a."""
        for r in range(16):
            for n_a in (1, 2, 4, 8):
                for n_u in (1, 2, n_a):
                    for s in (1, 2, 3):
                        for d0 in (0, 1, 3):
                            expected = (r % n_u * s + d0) % n_a
                            assert select_device(r, n_a, n_u, s, d0) == expected

    def test_queries_current_node_by_default(self):
        set_node(VirtualNode(NodeSpec().with_devices(2)))
        assert select_device(3) == 1  # 3 mod 2

    def test_invalid_inputs(self):
        with pytest.raises(PlacementError):
            select_device(-1, 4)
        with pytest.raises(PlacementError):
            select_device(0, 0)
        with pytest.raises(PlacementError):
            select_device(0, 4, n_use=0)

    @given(
        r=st.integers(0, 10_000),
        n_a=st.integers(1, 64),
        n_u=st.integers(1, 64),
        s=st.integers(1, 8),
        d0=st.integers(0, 64),
    )
    def test_result_is_always_a_valid_device(self, r, n_a, n_u, s, d0):
        d = select_device(r, n_a, n_u, s, d0)
        assert 0 <= d < n_a


class TestDevicePlacement:
    def test_host(self):
        p = DevicePlacement.host()
        assert p.resolve(rank=5) == HOST_DEVICE_ID

    def test_manual(self):
        p = DevicePlacement.manual(2)
        assert p.resolve(rank=0) == 2
        assert p.resolve(rank=7) == 2

    def test_manual_validates_against_node(self):
        p = DevicePlacement.manual(9)
        with pytest.raises(PlacementError):
            p.resolve(rank=0, n_available=4)

    def test_manual_negative_rejected(self):
        with pytest.raises(PlacementError):
            DevicePlacement.manual(-2)

    def test_auto_defaults(self):
        p = DevicePlacement.auto()
        assert p.resolve(rank=6, n_available=4) == 2

    def test_auto_with_params(self):
        p = DevicePlacement.auto(n_use=1, offset=3)
        assert p.resolve(rank=11, n_available=4) == 3

    def test_parse_mode(self):
        assert PlacementMode.parse("HOST") is PlacementMode.HOST
        assert PlacementMode.parse("auto") is PlacementMode.AUTO
        with pytest.raises(PlacementError):
            PlacementMode.parse("gpu")


class TestStrideOffsetValidation:
    """stride < 1 is a config error; negative offsets wrap (documented)."""

    def test_stride_zero_rejected(self):
        # stride=0 would silently collapse every rank onto offset.
        with pytest.raises(PlacementError):
            select_device(0, 4, stride=0)

    def test_negative_stride_rejected(self):
        with pytest.raises(PlacementError):
            select_device(0, 4, stride=-1)

    def test_auto_placement_validates_stride(self):
        with pytest.raises(PlacementError):
            DevicePlacement.auto(stride=0)
        with pytest.raises(PlacementError):
            DevicePlacement.auto(stride=-2)

    def test_negative_offset_wraps(self):
        # offset=-1 aims at the node's last device (Python % semantics).
        assert select_device(0, 4, offset=-1) == 3
        assert select_device(1, 4, offset=-1) == 0
        assert select_device(0, 4, offset=-5) == 3  # wraps past a full turn

    def test_negative_offset_through_placement(self):
        p = DevicePlacement.auto(offset=-1)
        assert p.resolve(0, n_available=4) == 3


EQ1 = dict(
    r=st.integers(0, 10_000),
    n_a=st.integers(1, 64),
    n_u=st.integers(1, 64),
    s=st.integers(1, 8),
    d0=st.integers(-64, 64),
)


class TestPlacementProperties:
    """Hypothesis invariants for Eq. 1 and DevicePlacement."""

    @given(**EQ1)
    def test_rank_assignment_is_periodic_in_n_use(self, r, n_a, n_u, s, d0):
        """Ranks r and r + n_use always land on the same device."""
        assert select_device(r, n_a, n_u, s, d0) == select_device(
            r + n_u, n_a, n_u, s, d0
        )

    @given(**EQ1)
    def test_offset_wrap_round_trips(self, r, n_a, n_u, s, d0):
        """Any offset is equivalent to its wrap into [0, n_a)."""
        assert select_device(r, n_a, n_u, s, d0) == select_device(
            r, n_a, n_u, s, d0 % n_a
        )

    @given(**EQ1)
    def test_auto_resolve_matches_select_device(self, r, n_a, n_u, s, d0):
        p = DevicePlacement.auto(n_use=n_u, stride=s, offset=d0)
        d = p.resolve(r, n_available=n_a)
        assert d == select_device(r, n_a, n_u, s, d0)
        assert 0 <= d < n_a


class TestReaimProperties:
    """The coordinated re-aim must stay inside Eq. 1's semantics."""

    @given(n_a=st.integers(1, 12), data=st.data())
    def test_image_within_targets(self, n_a, data):
        targets = data.draw(
            st.sets(st.integers(0, n_a - 1), min_size=1), label="targets"
        )
        p = reaim(targets, n_available=n_a)
        assert p.mode is PlacementMode.AUTO
        assert p.n_use >= 1 and p.stride >= 1
        image = {p.resolve(r, n_available=n_a) for r in range(p.n_use)}
        assert image <= targets
        # n_use distinct ranks map to n_use distinct devices.
        assert len(image) == p.n_use

    @given(n_a=st.integers(1, 12), data=st.data())
    def test_result_ignores_target_order(self, n_a, data):
        targets = data.draw(
            st.lists(
                st.integers(0, n_a - 1), min_size=1, max_size=n_a, unique=True
            ),
            label="targets",
        )
        assert reaim(targets, n_available=n_a) == reaim(
            list(reversed(targets)), n_available=n_a
        )

    @given(d=st.integers(0, 11), n_extra=st.integers(0, 4))
    def test_singleton_target_is_exact(self, d, n_extra):
        n_a = d + 1 + n_extra
        assert reaim({d}, n_available=n_a) == DevicePlacement.auto(
            n_use=1, stride=1, offset=d
        )

    @given(k=st.integers(1, 8), n_extra=st.integers(0, 4))
    def test_contiguous_targets_fully_covered(self, k, n_extra):
        n_a = k + n_extra
        p = reaim(range(k), n_available=n_a)
        assert p == DevicePlacement.auto(n_use=k, stride=1, offset=0)

    def test_rejects_out_of_range_targets(self):
        with pytest.raises(PlacementError):
            reaim({4}, n_available=4)
        with pytest.raises(PlacementError):
            reaim({-1}, n_available=4)
        with pytest.raises(PlacementError):
            reaim(set(), n_available=4)
