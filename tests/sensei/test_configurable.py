"""Tests for XML parsing and ConfigurableAnalysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.hamr.allocator import HOST_DEVICE_ID
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.backends.binning import BinningAnalysis
from repro.sensei.configurable import ConfigurableAnalysis, register_backend
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.execution import ExecutionMethod
from repro.sensei.placement import PlacementMode
from repro.sensei.xml_config import parse_xml
from repro.svtk.table import TableData


def make_adaptor(n=50, seed=0):
    rng = np.random.default_rng(seed)
    t = TableData("bodies")
    t.add_host_column("x", rng.uniform(-1, 1, n))
    t.add_host_column("y", rng.uniform(-1, 1, n))
    t.add_host_column("mass", rng.uniform(0.5, 1.5, n))
    return TableDataAdaptor({"bodies": t})


class TestParseXml:
    def test_basic_document(self):
        cfgs = parse_xml(
            """
            <sensei>
              <analysis type="histogram" mesh="bodies" array="mass" bins="16"/>
              <analysis type="posthoc_io" enabled="0" mesh="bodies" output_dir="o"/>
            </sensei>
            """
        )
        assert len(cfgs) == 2
        assert cfgs[0].type == "histogram"
        assert cfgs[0].enabled
        assert cfgs[0].get_int("bins") == 16
        assert not cfgs[1].enabled

    def test_malformed_xml(self):
        with pytest.raises(ConfigError, match="malformed"):
            parse_xml("<sensei><analysis></sensei>")

    def test_wrong_root(self):
        with pytest.raises(ConfigError, match="root"):
            parse_xml("<config/>")

    def test_unknown_element(self):
        with pytest.raises(ConfigError, match="unexpected"):
            parse_xml("<sensei><backend type='x'/></sensei>")

    def test_missing_type(self):
        with pytest.raises(ConfigError, match="type"):
            parse_xml("<sensei><analysis mesh='m'/></sensei>")

    def test_bad_enabled(self):
        with pytest.raises(ConfigError, match="enabled"):
            parse_xml("<sensei><analysis type='x' enabled='maybe'/></sensei>")

    def test_attr_accessors(self):
        cfg = parse_xml(
            "<sensei><analysis type='t' a='1' b='2.5' c='x, y ,z'/></sensei>"
        )[0]
        assert cfg.get_int("a") == 1
        assert cfg.get_float("b") == 2.5
        assert cfg.get_list("c") == ["x", "y", "z"]
        assert cfg.get("missing") is None
        assert cfg.get_int("missing", 9) == 9
        with pytest.raises(ConfigError):
            cfg.require("missing")
        with pytest.raises(ConfigError):
            cfg.get_int("c")


class TestConfigurableAnalysis:
    def test_builds_and_runs_binning(self):
        ca = ConfigurableAnalysis(xml="""
            <sensei>
              <analysis type="data_binning" mesh="bodies" axes="x,y"
                        bins="8,8" variables="mass:sum" placement="host"/>
            </sensei>
        """)
        assert len(ca.children) == 1
        ca.execute(make_adaptor())
        ca.finalize()
        child = ca.children[0]
        assert isinstance(child, BinningAnalysis)
        assert child.latest.cell_array_as_grid("mass_sum").sum() > 0

    def test_disabled_analyses_skipped(self):
        ca = ConfigurableAnalysis(xml="""
            <sensei>
              <analysis type="histogram" enabled="0" mesh="m" array="a"/>
            </sensei>
        """)
        assert ca.children == []

    def test_execution_and_placement_attributes_applied(self):
        ca = ConfigurableAnalysis(xml="""
            <sensei>
              <analysis type="histogram" mesh="bodies" array="mass"
                        execution="asynchronous" placement="auto"
                        n_use="1" offset="3"/>
            </sensei>
        """)
        child = ca.children[0]
        assert child.execution_method is ExecutionMethod.ASYNCHRONOUS
        assert child.placement.mode is PlacementMode.AUTO
        assert child.resolve_device() == 3

    def test_devices_per_node_alias(self):
        ca = ConfigurableAnalysis(xml="""
            <sensei>
              <analysis type="histogram" mesh="m" array="a"
                        placement="auto" devices_per_node="2"/>
            </sensei>
        """)
        assert ca.children[0].placement.n_use == 2

    def test_manual_placement(self):
        ca = ConfigurableAnalysis(xml="""
            <sensei>
              <analysis type="histogram" mesh="m" array="a"
                        placement="manual" device="2"/>
            </sensei>
        """)
        assert ca.children[0].resolve_device() == 2

    def test_manual_placement_requires_device(self):
        with pytest.raises(ConfigError, match="device"):
            ConfigurableAnalysis(xml="""
                <sensei>
                  <analysis type="histogram" mesh="m" array="a"
                            placement="manual"/>
                </sensei>
            """)

    def test_host_placement(self):
        ca = ConfigurableAnalysis(xml="""
            <sensei>
              <analysis type="histogram" mesh="m" array="a" placement="host"/>
            </sensei>
        """)
        assert ca.children[0].resolve_device() == HOST_DEVICE_ID

    def test_unknown_type(self):
        with pytest.raises(ConfigError, match="unknown analysis type"):
            ConfigurableAnalysis(xml="<sensei><analysis type='nope'/></sensei>")

    def test_binning_validation_errors(self):
        with pytest.raises(ConfigError, match="axes"):
            ConfigurableAnalysis(xml="""
                <sensei><analysis type="data_binning" mesh="m"/></sensei>
            """)
        with pytest.raises(ConfigError, match="bin counts"):
            ConfigurableAnalysis(xml="""
                <sensei><analysis type="data_binning" mesh="m"
                         axes="x,y" bins="1,2,3"/></sensei>
            """)
        with pytest.raises(ConfigError, match="name:op"):
            ConfigurableAnalysis(xml="""
                <sensei><analysis type="data_binning" mesh="m"
                         axes="x" bins="4" variables="mass"/></sensei>
            """)

    def test_binning_strategy_attribute(self):
        from repro.binning.strategies import BinningStrategy

        ca = ConfigurableAnalysis(xml="""
            <sensei>
              <analysis type="data_binning" mesh="m" axes="x" bins="8"
                        strategy="sorted"/>
            </sensei>
        """)
        assert ca.children[0].binner.device_strategy is BinningStrategy.SORTED

    def test_bad_strategy_rejected(self):
        from repro.errors import BinningError

        with pytest.raises(BinningError):
            ConfigurableAnalysis(xml="""
                <sensei>
                  <analysis type="data_binning" mesh="m" axes="x" bins="8"
                            strategy="quantum"/>
                </sensei>
            """)

    def test_single_bin_count_broadcast(self):
        ca = ConfigurableAnalysis(xml="""
            <sensei>
              <analysis type="data_binning" mesh="bodies" axes="x,y" bins="256"/>
            </sensei>
        """)
        binner = ca.children[0].binner
        assert [a.n_bins for a in binner.axes] == [256, 256]

    def test_xor_of_xml_and_path(self, tmp_path):
        with pytest.raises(ConfigError):
            ConfigurableAnalysis()
        p = tmp_path / "cfg.xml"
        p.write_text("<sensei/>")
        with pytest.raises(ConfigError):
            ConfigurableAnalysis(xml="<sensei/>", path=p)
        assert ConfigurableAnalysis(path=p).children == []

    def test_custom_backend_registration(self):
        built = {}

        class Custom(AnalysisAdaptor):
            def acquire(self, data, deep):
                return None

            def process(self, payload, comm, device_id):
                built["ran"] = True

        register_backend("custom_probe", lambda cfg: Custom("custom"))
        ca = ConfigurableAnalysis(
            xml="<sensei><analysis type='custom_probe'/></sensei>"
        )
        ca.execute(make_adaptor())
        ca.finalize()
        assert built["ran"]

    def test_paper_nine_coordinate_systems(self):
        """The evaluation's layout: 9 binning operator instances, each a
        separate <analysis> element orchestrated sequentially."""
        pairs = [("x", "y"), ("x", "z"), ("y", "z"),
                 ("x", "vx"), ("y", "vy"), ("z", "vz"),
                 ("vx", "vy"), ("vx", "vz"), ("vy", "vz")]
        xml = "<sensei>" + "".join(
            f'<analysis type="data_binning" mesh="bodies" '
            f'axes="{a},{b}" bins="16,16" placement="host"/>'
            for a, b in pairs
        ) + "</sensei>"
        ca = ConfigurableAnalysis(xml=xml)
        assert len(ca.children) == 9
