"""Tests for the analysis back-ends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.binning.axes import AxisSpec
from repro.binning.operator import BinRequest
from repro.binning.reduce import ReductionOp
from repro.errors import BinningError, ExecutionError
from repro.hamr.allocator import Allocator
from repro.mpi.comm import run_spmd
from repro.sensei.backends import (
    BinningAnalysis,
    CallbackAnalysis,
    HistogramAnalysis,
    PosthocIO,
)
from repro.sensei.bridge import Bridge
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.table import TableData


def make_adaptor(n=100, seed=0, step=0, comm=None, device_id=None):
    rng = np.random.default_rng(seed)
    t = TableData("bodies")
    for name, vals in (
        ("x", rng.uniform(-1, 1, n)),
        ("y", rng.uniform(-1, 1, n)),
        ("z", rng.uniform(-1, 1, n)),
        ("mass", rng.uniform(0.5, 1.5, n)),
    ):
        if device_id is None:
            t.add_host_column(name, vals)
        else:
            t.add_column(HAMRDataArray.zero_copy(
                name, vals, allocator=Allocator.CUDA, device_id=device_id))
    da = TableDataAdaptor({"bodies": t}, comm=comm)
    da.set_step(step, 0.01 * step)
    return da


class TestBinningAnalysis:
    def test_lockstep_host(self):
        a = BinningAnalysis(
            "bodies",
            [AxisSpec("x", 8, -1, 1), AxisSpec("y", 8, -1, 1)],
            [BinRequest(ReductionOp.SUM, "mass")],
        )
        a.set_device_id(-1)
        a.execute(make_adaptor())
        a.finalize()
        assert a.latest is not None
        assert a.latest.cell_array_as_grid("count").sum() == 100

    def test_async_device(self):
        a = BinningAnalysis("bodies", [AxisSpec("x", 4)], keep_results=True)
        a.set_asynchronous()
        a.set_device_id(1)
        for s in range(3):
            a.execute(make_adaptor(step=s, seed=s))
        a.finalize()
        assert len(a.results) == 3
        assert all(m.cell_array_as_grid("count").sum() == 100 for m in a.results)

    def test_async_deep_copies_protect_against_overwrite(self):
        """The simulation may overwrite its arrays right after execute."""
        a = BinningAnalysis(
            "bodies", [AxisSpec("x", 2, -1, 1)],
            [BinRequest(ReductionOp.SUM, "mass")],
        )
        a.set_asynchronous()
        a.set_device_id(-1)
        da = make_adaptor(n=50, seed=1)
        table = da.get_mesh("bodies")
        expected = float(np.sum(table["mass"].as_numpy_host()))
        a.execute(da)
        # Clobber the simulation's own arrays immediately.
        table["mass"].data[:] = 0.0
        table["x"].data[:] = 100.0
        a.finalize()
        assert a.latest.cell_array_as_grid("mass_sum").sum() == pytest.approx(expected)

    def test_result_callback_invoked(self):
        seen = []
        a = BinningAnalysis(
            "bodies", [AxisSpec("x", 4)],
            result_callback=lambda mesh, step: seen.append(step),
        )
        a.set_device_id(-1)
        a.execute(make_adaptor(step=9))
        a.finalize()
        assert seen == [9]

    def test_missing_columns_rejected(self):
        a = BinningAnalysis("bodies", [AxisSpec("vx", 4)])
        with pytest.raises(BinningError, match="vx"):
            a.execute(make_adaptor())

    def test_wrong_mesh_type_rejected(self):
        a = BinningAnalysis("bodies", [AxisSpec("x", 4)])
        da = TableDataAdaptor()
        da.set_table("bodies", object())  # type: ignore[arg-type]
        with pytest.raises(BinningError):
            a.execute(da)

    def test_device_resident_table_lockstep_same_device(self):
        """Paper's 'same device' placement: zero-copy in situ access."""
        a = BinningAnalysis(
            "bodies", [AxisSpec("x", 8)], [BinRequest(ReductionOp.SUM, "mass")]
        )
        a.set_device_id(2)
        a.execute(make_adaptor(device_id=2))
        a.finalize()
        assert a.latest.cell_array_as_grid("count").sum() == 100

    def test_mpi_merged_results(self):
        def fn(comm):
            a = BinningAnalysis("bodies", [AxisSpec("x", 4, -1, 1)])
            a.set_device_id(-1)
            a.initialize(comm)
            a.execute(make_adaptor(n=25, seed=comm.rank, comm=comm))
            a.finalize()
            return a.latest.cell_array_as_grid("count").sum()

        assert run_spmd(4, fn) == [100.0] * 4

    def test_async_mpi_uses_duplicated_comm(self):
        """Async analyses reduce over comm.dup(); sim traffic still works."""
        def fn(comm):
            a = BinningAnalysis("bodies", [AxisSpec("x", 4, -1, 1)])
            a.set_asynchronous()
            a.set_device_id(-1)
            a.initialize(comm)
            for s in range(2):
                a.execute(make_adaptor(n=10, seed=s + comm.rank, comm=comm, step=s))
                comm.allreduce(1)  # simulation-side collective in between
            a.finalize()
            return a.latest.cell_array_as_grid("count").sum()

        assert run_spmd(3, fn) == [30.0] * 3


class TestHistogramAnalysis:
    def test_counts_and_edges(self):
        h = HistogramAnalysis("bodies", "mass", bins=16, low=0.5, high=1.5)
        h.set_device_id(-1)
        h.execute(make_adaptor(n=500))
        h.finalize()
        counts = h.counts()
        assert counts.sum() == 500
        edges = h.edges()
        assert len(edges) == 17
        assert edges[0] == 0.5 and edges[-1] == 1.5

    def test_empty_before_first_step(self):
        h = HistogramAnalysis("bodies", "mass")
        assert h.counts().size == 0
        assert h.edges().size == 0

    def test_matches_numpy_histogram(self):
        da = make_adaptor(n=300, seed=5)
        vals = da.get_mesh("bodies")["mass"].as_numpy_host()
        h = HistogramAnalysis("bodies", "mass", bins=12, low=0.0, high=2.0)
        h.set_device_id(-1)
        h.execute(da)
        h.finalize()
        ref, _ = np.histogram(vals, bins=12, range=(0.0, 2.0))
        np.testing.assert_array_equal(h.counts(), ref)


class TestPosthocIO:
    def test_writes_vtk_at_frequency(self, tmp_path):
        w = PosthocIO("bodies", tmp_path, frequency=2)
        for s in range(4):
            w.execute(make_adaptor(step=s))
        w.finalize()
        names = sorted(p.name for p in w.files_written)
        assert names == ["bodies_000000_r0.vtk", "bodies_000002_r0.vtk"]
        assert "POINTS 100 double" in w.files_written[0].read_text()

    def test_writes_csv(self, tmp_path):
        w = PosthocIO("bodies", tmp_path, fmt="csv")
        w.execute(make_adaptor(n=5))
        w.finalize()
        text = w.files_written[0].read_text()
        assert text.splitlines()[0] == "x,y,z,mass"

    def test_invalid_config(self, tmp_path):
        with pytest.raises(ExecutionError):
            PosthocIO("bodies", tmp_path, frequency=0)
        with pytest.raises(ExecutionError):
            PosthocIO("bodies", tmp_path, fmt="hdf5")

    def test_per_rank_files(self, tmp_path):
        def fn(comm):
            w = PosthocIO("bodies", tmp_path, fmt="csv")
            w.initialize(comm)
            w.execute(make_adaptor(n=3, comm=comm))
            w.finalize()
            return [p.name for p in w.files_written]

        out = run_spmd(2, fn)
        assert out[0] == ["bodies_000000_r0.csv"]
        assert out[1] == ["bodies_000000_r1.csv"]


class TestCallbackAnalysis:
    def test_callable_invoked_with_context(self):
        seen = {}

        def probe(table, step, time, comm, device_id):
            seen["rows"] = table.n_rows
            seen["step"] = step
            seen["device"] = device_id

        a = CallbackAnalysis("bodies", probe)
        a.set_device_id(3)
        a.execute(make_adaptor(n=42, step=6))
        a.finalize()
        assert seen == {"rows": 42, "step": 6, "device": 3}

    def test_non_callable_rejected(self):
        with pytest.raises(ExecutionError):
            CallbackAnalysis("bodies", "not a function")  # type: ignore[arg-type]

    def test_async_callback_error_propagates(self):
        def bad(table, step, time, comm, device_id):
            raise RuntimeError("analysis blew up")

        a = CallbackAnalysis("bodies", bad)
        a.set_asynchronous()
        a.execute(make_adaptor())
        with pytest.raises(ExecutionError):
            a.finalize()


class TestBridgeIntegration:
    def test_multiple_backends_one_bridge(self, tmp_path):
        bin_a = BinningAnalysis("bodies", [AxisSpec("x", 8)], keep_results=True)
        bin_a.set_device_id(-1)
        hist = HistogramAnalysis("bodies", "mass", bins=8)
        hist.set_device_id(-1)
        io = PosthocIO("bodies", tmp_path, frequency=2, fmt="csv")
        b = Bridge()
        b.initialize(analyses=[bin_a, hist, io])
        for s in range(4):
            b.execute(make_adaptor(step=s, seed=s))
        b.finalize()
        assert len(bin_a.results) == 4
        assert hist.counts().sum() == 100
        assert len(io.files_written) == 2
        assert b.total_apparent_time > 0
