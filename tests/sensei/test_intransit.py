"""Tests for in transit (M-to-N) execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.binning.axes import AxisSpec
from repro.binning.operator import BinRequest
from repro.binning.reduce import ReductionOp
from repro.errors import ExecutionError
from repro.mpi.comm import run_spmd
from repro.newton.adaptor import NewtonDataAdaptor
from repro.newton.solver import NewtonSolver, SolverConfig
from repro.sensei.backends.binning import BinningAnalysis
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.intransit import (
    EndpointRunner,
    InTransitBridge,
    InTransitLayout,
    run_in_transit,
)
from repro.svtk.table import TableData


class TestLayout:
    def test_roles(self):
        lay = InTransitLayout(m=4, n=2)
        assert lay.world_size == 6
        assert [lay.is_producer(r) for r in range(6)] == [True] * 4 + [False] * 2
        assert [lay.is_endpoint(r) for r in range(6)] == [False] * 4 + [True] * 2

    def test_block_mapping(self):
        lay = InTransitLayout(m=4, n=2)
        assert [lay.endpoint_of(p) for p in range(4)] == [4, 4, 5, 5]
        assert lay.producers_of(4) == [0, 1]
        assert lay.producers_of(5) == [2, 3]

    def test_uneven_mapping_covers_all_producers(self):
        lay = InTransitLayout(m=5, n=2)
        served = sum((lay.producers_of(e) for e in (5, 6)), [])
        assert sorted(served) == list(range(5))

    def test_m_to_one(self):
        lay = InTransitLayout(m=3, n=1)
        assert lay.producers_of(3) == [0, 1, 2]

    def test_invalid_layouts(self):
        with pytest.raises(ExecutionError):
            InTransitLayout(m=0, n=1)
        with pytest.raises(ExecutionError):
            InTransitLayout(m=2, n=3)

    def test_role_validation(self):
        lay = InTransitLayout(m=2, n=1)
        with pytest.raises(ExecutionError):
            lay.endpoint_of(2)
        with pytest.raises(ExecutionError):
            lay.producers_of(0)


class TestLayoutEdgeCases:
    @pytest.mark.parametrize("m,n", [(5, 2), (7, 3), (9, 4), (10, 3)])
    def test_uneven_split_is_fair(self, m, n):
        """When N does not divide M, loads differ by at most one."""
        lay = InTransitLayout(m=m, n=n)
        counts = [len(lay.producers_of(e)) for e in range(m, m + n)]
        assert sum(counts) == m
        assert set(counts) <= {m // n, -(-m // n)}

    @pytest.mark.parametrize("partitioner", ["block", "cyclic", "weighted"])
    @pytest.mark.parametrize("m,n", [(4, 2), (5, 2), (8, 3)])
    def test_endpoint_of_producers_of_round_trip(self, partitioner, m, n):
        lay = InTransitLayout(m=m, n=n, partitioner=partitioner)
        for p in range(m):
            assert p in lay.producers_of(lay.endpoint_of(p))
        served = sum((lay.producers_of(e) for e in range(m, m + n)), [])
        assert sorted(served) == list(range(m))

    def test_weighted_layout_balances_heavy_producer(self):
        lay = InTransitLayout(
            m=4, n=2, partitioner="weighted", weights=(10.0, 1.0, 1.0, 1.0)
        )
        heavy_ep = lay.endpoint_of(0)
        assert all(lay.endpoint_of(p) != heavy_ep for p in (1, 2, 3))

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ExecutionError):
            InTransitLayout(m=4, n=2, partitioner="hilbert")

    def test_bad_weights_rejected(self):
        with pytest.raises(ExecutionError):
            InTransitLayout(m=4, n=2, partitioner="weighted", weights=(1.0,))

    def test_layouts_with_equal_fields_compare_equal(self):
        assert InTransitLayout(m=4, n=2) == InTransitLayout(m=4, n=2)


class TestServeDrain:
    def test_serve_drains_after_unequal_step_counts(self):
        """The fin handshake ends serve() cleanly; no shutdown tag."""
        layout = InTransitLayout(m=2, n=1)

        def producer_main(sim_comm, bridge):
            t = TableData("bodies")
            t.add_host_column("x", np.full(4, float(bridge._world.rank)))
            t.add_host_column("mass", np.full(4, 0.02))
            da = TableDataAdaptor({"bodies": t})
            for step in range(2):
                da.set_step(step, 0.0)
                bridge.execute(da)
            return bridge._world.rank

        producers, endpoints = run_in_transit(
            layout, producer_main, _binning_factory()
        )
        (runner,) = endpoints
        assert runner.steps_processed == 2
        # Every receiver saw the graceful fin, not a timeout.
        assert all(r.finished for r in runner.receivers.values())

    def test_zero_step_run_drains_cleanly(self):
        layout = InTransitLayout(m=2, n=1)

        def producer_main(sim_comm, bridge):
            return 0  # never calls execute: finalize sends a bare fin

        producers, endpoints = run_in_transit(
            layout, producer_main, _binning_factory()
        )
        (runner,) = endpoints
        assert runner.steps_processed == 0
        assert all(r.finished for r in runner.receivers.values())

    def test_finalize_idempotent_and_execute_after_finalize_rejected(self):
        layout = InTransitLayout(m=1, n=1)

        def producer_main(sim_comm, bridge):
            t = TableData("bodies")
            t.add_host_column("x", np.zeros(3))
            t.add_host_column("mass", np.full(3, 0.02))
            da = TableDataAdaptor({"bodies": t})
            da.set_step(0, 0.0)
            bridge.execute(da)
            bridge.finalize()
            bridge.finalize()  # idempotent
            try:
                bridge.execute(da)
            except ExecutionError:
                return "rejected"
            return "accepted"

        producers, _ = run_in_transit(layout, producer_main, _binning_factory())
        assert producers == ["rejected"]


class TestCommSplit:
    def test_split_partitions_by_color(self):
        def fn(comm):
            color = 0 if comm.rank < 3 else 1
            sub = comm.split(color)
            return (color, sub.rank, sub.size, sub.allreduce(1))

        out = run_spmd(5, fn)
        assert [o for o in out if o[0] == 0] == [(0, 0, 3, 3), (0, 1, 3, 3), (0, 2, 3, 3)]
        assert [o for o in out if o[0] == 1] == [(1, 0, 2, 2), (1, 1, 2, 2)]

    def test_split_key_reorders(self):
        def fn(comm):
            sub = comm.split(0, key=-comm.rank)  # reverse order
            return sub.rank

        assert run_spmd(3, fn) == [2, 1, 0]

    def test_singleton_group(self):
        def fn(comm):
            sub = comm.split(comm.rank)  # every rank its own group
            return (sub.size, sub.allreduce(5))

        assert run_spmd(3, fn) == [(1, 5)] * 3

    def test_traffic_in_one_group_invisible_to_other(self):
        def fn(comm):
            color = comm.rank % 2
            sub = comm.split(color)
            return sub.allreduce(comm.rank)

        out = run_spmd(4, fn)
        assert out == [2, 4, 2, 4]  # 0+2 and 1+3


def _newton_producer(n_bodies=120, steps=3):
    def producer_main(sim_comm, bridge):
        solver = NewtonSolver(
            SolverConfig(n_bodies=n_bodies, dt=1e-3, softening=0.05,
                         seed=4, mass_range=(0.01, 0.03)),
            sim_comm,
        )
        adaptor = NewtonDataAdaptor(solver)
        solver.run(steps, bridge=bridge, adaptor=adaptor)
        return solver.n_local

    return producer_main


def _binning_factory():
    def factory():
        a = BinningAnalysis(
            "bodies",
            [AxisSpec("x", 8, -1, 1)],
            [BinRequest(ReductionOp.SUM, "mass")],
            keep_results=True,
        )
        a.set_device_id(-1)
        return [a]

    return factory


class TestInTransitRun:
    @pytest.mark.parametrize("m,n", [(2, 1), (4, 2), (3, 1)])
    def test_full_pipeline(self, m, n):
        factory = _binning_factory()
        layout = InTransitLayout(m=m, n=n)
        producers, endpoints = run_in_transit(
            layout, _newton_producer(n_bodies=120, steps=3), factory
        )
        assert sum(producers) == 120  # all bodies produced
        # Every endpoint processed every step, and the binned totals,
        # reduced over the endpoint communicator, are global.
        for runner in endpoints:
            assert runner.steps_processed == 3
            analysis = runner.analyses[0]
            assert len(analysis.results) == 3
            for mesh in analysis.results:
                assert mesh.cell_array_as_grid("count").sum() == 120

    def test_endpoint_assembles_its_producers_rows(self):
        layout = InTransitLayout(m=4, n=2)
        producers, endpoints = run_in_transit(
            layout, _newton_producer(n_bodies=100, steps=1), _binning_factory()
        )
        # Each endpoint's local table holds only its producers' bodies;
        # locally they bin fewer than 100 rows, globally exactly 100
        # (already checked above).  Confirm work was split:
        assert len(endpoints) == 2
        assert all(r.producers for r in endpoints)

    def test_producer_ship_cost_recorded(self):
        layout = InTransitLayout(m=2, n=1)

        costs = []

        def producer_main(sim_comm, bridge):
            solver = NewtonSolver(
                SolverConfig(n_bodies=80, dt=1e-3, softening=0.05,
                             seed=1, mass_range=(0.01, 0.03)),
                sim_comm,
            )
            adaptor = NewtonDataAdaptor(solver)
            solver.run(2, bridge=bridge, adaptor=adaptor)
            costs.append(bridge.total_apparent_time)
            return 0

        run_in_transit(layout, producer_main, _binning_factory())
        assert all(c > 0 for c in costs)

    def test_inconsistent_columns_rejected(self):
        """Producers shipping different column sets is a hard error."""
        from repro.errors import MPIError
        from repro.sensei.data_adaptor import TableDataAdaptor
        from repro.svtk.table import TableData

        layout = InTransitLayout(m=2, n=1)

        def producer_main(sim_comm, bridge):
            t = TableData("bodies")
            t.add_host_column("x", np.zeros(3))
            if bridge._world.rank == 1:
                t.add_host_column("extra", np.zeros(3))
            da = TableDataAdaptor({"bodies": t})
            da.set_step(1, 0.0)
            bridge.execute(da)
            return 0

        with pytest.raises(MPIError):
            run_in_transit(layout, producer_main, _binning_factory())

    def test_bridge_misuse(self):
        layout = InTransitLayout(m=1, n=1)
        bridge = InTransitBridge(layout)
        with pytest.raises(ExecutionError):
            bridge.execute(object())  # not initialized
