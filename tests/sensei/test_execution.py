"""Tests for execution methods: lockstep/async semantics, deep copies."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.hamr.allocator import Allocator
from repro.hamr.runtime import current_clock
from repro.sensei.execution import AsyncRunner, ExecutionMethod, deep_copy_table
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.table import TableData


class TestExecutionMethod:
    def test_parse(self):
        assert ExecutionMethod.parse("lockstep") is ExecutionMethod.LOCKSTEP
        assert ExecutionMethod.parse("asynchronous") is ExecutionMethod.ASYNCHRONOUS
        assert ExecutionMethod.parse("ASYNC") is ExecutionMethod.ASYNCHRONOUS

    def test_parse_unknown(self):
        with pytest.raises(ExecutionError):
            ExecutionMethod.parse("eventually")


class TestDeepCopyTable:
    def test_host_columns_decoupled(self):
        t = TableData("bodies")
        t.add_host_column("x", np.array([1.0, 2.0]))
        copy = deep_copy_table(t)
        t["x"].data[0] = 99.0
        assert copy["x"].as_numpy_host()[0] == 1.0

    def test_device_columns_stay_on_device(self):
        t = TableData()
        col = HAMRDataArray.new("m", 8, allocator=Allocator.CUDA, device_id=1)
        col.fill(3.0)
        t.add_column(col)
        copy = deep_copy_table(t)
        assert copy["m"].device_id == 1
        col.get_data()[:] = 0.0
        np.testing.assert_array_equal(copy["m"].as_numpy_host(), [3.0] * 8)

    def test_copy_cost_charged_to_caller(self):
        """The deep copy is the 'apparent' async cost (paper Fig. 3)."""
        t = TableData()
        t.add_host_column("x", np.zeros(100_000))
        t0 = current_clock().now
        deep_copy_table(t)
        assert current_clock().now > t0

    def test_preserves_all_columns_and_names(self):
        t = TableData("tbl")
        for name in ("a", "b", "c"):
            t.add_host_column(name, np.zeros(4))
        copy = deep_copy_table(t)
        assert copy.column_names == ("a", "b", "c")
        assert copy.n_rows == 4


class TestAsyncRunner:
    def test_runs_task_and_accumulates_busy_time(self):
        r = AsyncRunner("t")
        r.launch(lambda: current_clock().advance(0.5), start_time=1.0)
        r.drain()
        assert r.tasks_run == 1
        assert r.busy_sim_time == pytest.approx(0.5)
        assert r.last_end_time == pytest.approx(1.5)

    def test_caller_does_not_wait_for_fast_task(self):
        clk = current_clock()
        clk.advance(10.0)
        r = AsyncRunner("t")
        r.launch(lambda: current_clock().advance(0.1), start_time=1.0)
        r.drain()
        # Task finished (sim time 1.1) before the caller's now (10): no stall.
        assert clk.now == pytest.approx(10.0)

    def test_caller_stalls_on_slow_task(self):
        clk = current_clock()
        r = AsyncRunner("t")
        r.launch(lambda: current_clock().advance(5.0), start_time=clk.now)
        r.drain()
        assert clk.now == pytest.approx(5.0)

    def test_single_lane_serializes_tasks(self):
        """A new launch drains the previous task first."""
        order = []
        r = AsyncRunner("t")
        r.launch(lambda: (time.sleep(0.02), order.append("first")))
        r.launch(lambda: order.append("second"))
        r.drain()
        assert order == ["first", "second"]

    def test_task_runs_on_worker_thread(self):
        seen = {}
        r = AsyncRunner("t")
        r.launch(lambda: seen.__setitem__("tid", threading.get_ident()))
        r.drain()
        assert seen["tid"] != threading.get_ident()

    def test_worker_gets_its_own_clock(self):
        main_clock = current_clock()
        main_clock.advance(3.0)
        seen = {}
        r = AsyncRunner("t")
        r.launch(lambda: seen.__setitem__("clk", current_clock()), start_time=3.0)
        r.drain()
        assert seen["clk"] is not main_clock
        assert seen["clk"].now >= 3.0

    def test_error_surfaces_on_drain(self):
        r = AsyncRunner("t")
        r.launch(lambda: 1 / 0)
        with pytest.raises(ExecutionError):
            r.drain()

    def test_error_surfaces_on_next_launch(self):
        r = AsyncRunner("t")
        r.launch(lambda: 1 / 0)
        time.sleep(0.05)
        with pytest.raises(ExecutionError):
            r.launch(lambda: None)

    def test_drain_idempotent(self):
        r = AsyncRunner("t")
        r.launch(lambda: None)
        r.drain()
        r.drain()

    def test_in_flight(self):
        r = AsyncRunner("t")
        ev = threading.Event()
        r.launch(ev.wait)
        assert r.in_flight
        ev.set()
        r.drain()
        assert not r.in_flight


class TestAsyncRunnerAccounting:
    """busy/tasks accounting and the drain clock rules (ISSUE 3)."""

    def test_back_to_back_launches_accumulate(self):
        r = AsyncRunner("t")
        r.launch(lambda: current_clock().advance(0.5), start_time=0.0)
        r.launch(lambda: current_clock().advance(0.25), start_time=1.0)
        r.launch(lambda: current_clock().advance(0.75), start_time=2.0)
        r.drain()
        assert r.tasks_run == 3
        assert r.busy_sim_time == pytest.approx(0.5 + 0.25 + 0.75)
        assert r.last_end_time == pytest.approx(2.75)

    def test_zero_cost_tasks_count_but_add_no_busy_time(self):
        r = AsyncRunner("t")
        for i in range(4):
            r.launch(lambda: None, start_time=float(i))
        r.drain()
        assert r.tasks_run == 4
        assert r.busy_sim_time == pytest.approx(0.0)

    def test_drain_advances_clock_only_when_task_is_late(self):
        clk = current_clock()
        clk.advance(2.0)
        r = AsyncRunner("t")
        # Ends at sim 1.5 < caller's 2.0: drain must not move the clock.
        r.launch(lambda: current_clock().advance(1.5), start_time=0.0)
        r.drain()
        assert clk.now == pytest.approx(2.0)
        # Ends at sim 4.5 > caller's 2.0: drain waits exactly until then.
        r.launch(lambda: current_clock().advance(2.5), start_time=2.0)
        r.drain()
        assert clk.now == pytest.approx(4.5)

    def test_error_on_drain_then_runner_recovers(self):
        """A failed task reports once; the lane stays usable after."""
        r = AsyncRunner("t")
        r.launch(lambda: current_clock().advance(0.5), start_time=0.0)
        r.launch(lambda: 1 / 0, start_time=1.0)
        with pytest.raises(ExecutionError) as exc_info:
            r.drain()
        assert isinstance(exc_info.value.__cause__, ZeroDivisionError)
        # The error was consumed: subsequent work runs clean and the
        # pre-failure accounting is preserved (failed task still counts
        # as run).
        r.drain()
        assert r.tasks_run == 2
        r.launch(lambda: current_clock().advance(0.5), start_time=2.0)
        r.drain()
        assert r.tasks_run == 3
        assert r.busy_sim_time == pytest.approx(1.0)

    def test_snapshot_is_consistent_triple(self):
        r = AsyncRunner("t")
        r.launch(lambda: current_clock().advance(0.5), start_time=1.0)
        r.drain()
        busy, tasks, end = r.snapshot()
        assert busy == pytest.approx(r.busy_sim_time)
        assert tasks == r.tasks_run
        assert end == pytest.approx(r.last_end_time)
