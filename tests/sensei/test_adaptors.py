"""Tests for data adaptors, the analysis-adaptor base, and the bridge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.hamr.allocator import HOST_DEVICE_ID
from repro.mpi.comm import run_spmd
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.bridge import Bridge
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.execution import ExecutionMethod
from repro.sensei.placement import DevicePlacement
from repro.svtk.table import TableData


class RecordingAnalysis(AnalysisAdaptor):
    """Minimal back-end that records how it was driven."""

    def __init__(self, name="rec"):
        super().__init__(name)
        self.acquired: list[tuple[int, bool]] = []
        self.processed: list[tuple[int, int]] = []  # (step, device)

    def acquire(self, data, deep):
        self.acquired.append((data.time_step, deep))
        return data.time_step

    def process(self, payload, comm, device_id):
        self.processed.append((payload, device_id))


def make_adaptor(step=0):
    t = TableData("bodies")
    t.add_host_column("x", np.zeros(4))
    da = TableDataAdaptor({"bodies": t})
    da.set_step(step, 0.1 * step)
    return da


class TestTableDataAdaptor:
    def test_mesh_lookup(self):
        da = make_adaptor()
        assert da.get_mesh_names() == ("bodies",)
        assert da.get_mesh("bodies").n_rows == 4

    def test_missing_mesh(self):
        da = make_adaptor()
        with pytest.raises(ExecutionError, match="bodies"):
            da.get_mesh("particles")

    def test_step_tracking(self):
        da = make_adaptor(step=7)
        assert da.time_step == 7
        assert da.time == pytest.approx(0.7)

    def test_release_data(self):
        da = make_adaptor()
        da.release_data()
        assert da.get_mesh_names() == ()


class TestAnalysisAdaptorExecution:
    def test_lockstep_acquires_shallow(self):
        a = RecordingAnalysis()
        a.set_device_id(HOST_DEVICE_ID)
        a.execute(make_adaptor(1))
        a.finalize()
        assert a.acquired == [(1, False)]
        assert a.processed == [(1, HOST_DEVICE_ID)]

    def test_async_acquires_deep_and_processes(self):
        a = RecordingAnalysis()
        a.set_asynchronous()
        a.set_device_id(2)
        a.execute(make_adaptor(4))
        a.finalize()
        assert a.acquired == [(4, True)]
        assert a.processed == [(4, 2)]

    def test_execute_after_finalize_rejected(self):
        a = RecordingAnalysis()
        a.execute(make_adaptor())
        a.finalize()
        with pytest.raises(ExecutionError):
            a.execute(make_adaptor())

    def test_timings_recorded_per_step(self):
        a = RecordingAnalysis()
        for s in range(3):
            a.execute(make_adaptor(s))
        a.finalize()
        assert [t.time_step for t in a.timings] == [0, 1, 2]
        assert all(t.method is ExecutionMethod.LOCKSTEP for t in a.timings)

    def test_async_actual_filled_after_finalize(self):
        a = RecordingAnalysis()
        a.set_asynchronous()
        a.execute(make_adaptor(0))
        assert np.isnan(a.timings[0].actual)
        a.finalize()
        assert not np.isnan(a.timings[0].actual)

    def test_control_api_switches(self):
        a = RecordingAnalysis()
        a.set_execution_method("asynchronous")
        assert a.execution_method is ExecutionMethod.ASYNCHRONOUS
        a.set_asynchronous(False)
        assert a.execution_method is ExecutionMethod.LOCKSTEP
        a.set_device_id(-1)
        assert a.resolve_device() == HOST_DEVICE_ID
        a.set_auto_placement(n_use=1, offset=2)
        assert a.resolve_device() == 2

    def test_placement_resolution_uses_rank(self):
        def fn(comm):
            a = RecordingAnalysis()
            a.initialize(comm)
            return a.resolve_device()

        assert run_spmd(4, fn) == [0, 1, 2, 3]

    def test_double_initialize_harmless(self):
        a = RecordingAnalysis()
        a.initialize()
        a.initialize()


class TestBridge:
    def test_executes_all_analyses_in_order(self):
        a1, a2 = RecordingAnalysis("a1"), RecordingAnalysis("a2")
        b = Bridge()
        b.initialize(analyses=[a1, a2])
        b.execute(make_adaptor(0))
        b.finalize()
        assert a1.processed and a2.processed

    def test_add_analysis_after_initialize(self):
        b = Bridge()
        b.initialize()
        late = RecordingAnalysis("late")
        b.add_analysis(late)
        b.execute(make_adaptor())
        b.finalize()
        assert late.processed

    def test_double_initialize_rejected(self):
        b = Bridge()
        b.initialize()
        with pytest.raises(ExecutionError):
            b.initialize()

    def test_execute_after_finalize_rejected(self):
        b = Bridge()
        b.initialize()
        b.finalize()
        with pytest.raises(ExecutionError):
            b.execute(make_adaptor())

    def test_step_costs_recorded(self):
        b = Bridge()
        b.initialize(analyses=[RecordingAnalysis()])
        for s in range(5):
            b.execute(make_adaptor(s))
        b.finalize()
        assert len(b.step_costs) == 5

    def test_finalize_idempotent(self):
        b = Bridge()
        b.initialize()
        b.finalize()
        b.finalize()

    def test_lazy_initialize_on_first_execute(self):
        b = Bridge()
        b.add_analysis(RecordingAnalysis())
        b.execute(make_adaptor())
        b.finalize()
