"""Tests for the descriptive-statistics back-end."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.mpi.comm import run_spmd
from repro.sensei.backends.stats import StatisticsAnalysis
from repro.sensei.configurable import ConfigurableAnalysis
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.svtk.table import TableData


def make_adaptor(values_by_col, step=0, comm=None):
    t = TableData("bodies")
    for name, vals in values_by_col.items():
        t.add_host_column(name, np.asarray(vals, dtype=float))
    da = TableDataAdaptor({"bodies": t}, comm=comm)
    da.set_step(step, 0.0)
    return da


class TestSerialStats:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        vals = rng.normal(3.0, 2.0, 500)
        a = StatisticsAnalysis("bodies")
        a.execute(make_adaptor({"v": vals}))
        a.finalize()
        s = a.latest["v"]
        assert s.n == 500
        assert s.minimum == pytest.approx(vals.min())
        assert s.maximum == pytest.approx(vals.max())
        assert s.mean == pytest.approx(vals.mean())
        assert s.std == pytest.approx(vals.std())

    def test_column_selection(self):
        a = StatisticsAnalysis("bodies", columns=["a"])
        a.execute(make_adaptor({"a": [1.0], "b": [2.0]}))
        a.finalize()
        assert list(a.latest) == ["a"]

    def test_missing_column(self):
        a = StatisticsAnalysis("bodies", columns=["ghost"])
        with pytest.raises(ExecutionError, match="ghost"):
            a.execute(make_adaptor({"a": [1.0]}))

    def test_history_per_step(self):
        a = StatisticsAnalysis("bodies")
        for step in range(3):
            a.execute(make_adaptor({"v": [float(step)]}, step=step))
        a.finalize()
        assert len(a.history) == 3
        assert [h["v"].mean for h in a.history] == [0.0, 1.0, 2.0]

    def test_empty_before_first_step(self):
        assert StatisticsAnalysis("bodies").latest is None


class TestDistributedStats:
    def test_exact_distributed_merge(self):
        """Merged moments equal a serial pass over the concatenation."""
        rng = np.random.default_rng(1)
        shards = [rng.normal(float(i), 1.0 + i, 50 + 10 * i) for i in range(3)]
        everything = np.concatenate(shards)

        def fn(comm):
            a = StatisticsAnalysis("bodies")
            a.initialize(comm)
            a.execute(make_adaptor({"v": shards[comm.rank]}, comm=comm))
            a.finalize()
            return a.latest["v"]

        for s in run_spmd(3, fn):
            assert s.n == everything.size
            assert s.mean == pytest.approx(everything.mean())
            assert s.std == pytest.approx(everything.std())
            assert s.minimum == pytest.approx(everything.min())
            assert s.maximum == pytest.approx(everything.max())

    def test_empty_rank_contributions(self):
        def fn(comm):
            vals = [] if comm.rank == 0 else [1.0, 3.0]
            a = StatisticsAnalysis("bodies")
            a.initialize(comm)
            a.execute(make_adaptor({"v": vals}, comm=comm))
            a.finalize()
            return a.latest["v"]

        for s in run_spmd(2, fn):
            assert s.n == 2
            assert s.mean == 2.0

    def test_all_empty_gives_nan(self):
        a = StatisticsAnalysis("bodies")
        a.execute(make_adaptor({"v": []}))
        a.finalize()
        s = a.latest["v"]
        assert s.n == 0
        assert np.isnan(s.mean)


class TestAsyncAndXml:
    def test_async_execution(self):
        a = StatisticsAnalysis("bodies")
        a.set_asynchronous()
        da = make_adaptor({"v": [1.0, 2.0, 3.0]})
        a.execute(da)
        # Clobber after launch: deep copy must protect the analysis.
        da.get_mesh("bodies")["v"].data[:] = 0.0
        a.finalize()
        assert a.latest["v"].mean == pytest.approx(2.0)

    def test_xml_configuration(self):
        ca = ConfigurableAnalysis(xml="""
            <sensei>
              <analysis type="statistics" mesh="bodies" columns="a,b"
                        placement="host"/>
            </sensei>
        """)
        ca.execute(make_adaptor({"a": [1.0, 2.0], "b": [5.0, 7.0], "c": [0.0, 0.0]}))
        ca.finalize()
        child = ca.children[0]
        assert sorted(child.latest) == ["a", "b"]
        assert child.latest["b"].mean == 6.0


@settings(max_examples=25, deadline=None)
@given(
    vals=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200),
)
def test_stats_properties(vals):
    """min <= mean <= max and std >= 0 for any finite data."""
    a = StatisticsAnalysis("bodies")
    a.execute(make_adaptor({"v": vals}))
    a.finalize()
    s = a.latest["v"]
    assert s.minimum <= s.mean + 1e-9
    assert s.mean <= s.maximum + 1e-9
    assert s.std >= 0.0
