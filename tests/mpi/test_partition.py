"""Tests for domain-decomposition helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import MPIError
from repro.mpi.partition import block_range, owner_of, slab_bounds


class TestBlockRange:
    def test_even_split(self):
        assert [block_range(8, 4, r) for r in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8)
        ]

    def test_remainder_to_low_ranks(self):
        assert [block_range(10, 4, r) for r in range(4)] == [
            (0, 3), (3, 6), (6, 8), (8, 10)
        ]

    def test_more_ranks_than_items(self):
        ranges = [block_range(2, 4, r) for r in range(4)]
        assert ranges == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_invalid_args(self):
        with pytest.raises(MPIError):
            block_range(10, 0, 0)
        with pytest.raises(MPIError):
            block_range(10, 4, 4)
        with pytest.raises(MPIError):
            block_range(-1, 4, 0)

    @given(n=st.integers(0, 10_000), size=st.integers(1, 64))
    def test_partition_properties(self, n, size):
        """Coverage, disjointness, and balance for any (n, size)."""
        ranges = [block_range(n, size, r) for r in range(size)]
        # Coverage and contiguity.
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0
        # Balance within 1.
        sizes = [b - a for a, b in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestSlabBounds:
    def test_partition_of_interval(self):
        slabs = [slab_bounds(0.0, 1.0, 4, r) for r in range(4)]
        assert slabs[0] == (0.0, 0.25)
        assert slabs[-1] == (0.75, 1.0)

    def test_last_slab_reaches_hi_exactly(self):
        lo, hi = slab_bounds(-1.0, 2.0, 3, 2)
        assert hi == 2.0

    def test_empty_interval_rejected(self):
        with pytest.raises(MPIError):
            slab_bounds(1.0, 1.0, 2, 0)

    @given(
        lo=st.floats(-1e6, 1e6),
        width=st.floats(1e-3, 1e6),
        size=st.integers(1, 32),
    )
    def test_slabs_tile_interval(self, lo, width, size):
        hi = lo + width
        slabs = [slab_bounds(lo, hi, size, r) for r in range(size)]
        assert slabs[0][0] == lo
        assert slabs[-1][1] == hi
        for (a0, a1), (b0, b1) in zip(slabs, slabs[1:]):
            assert a1 == pytest.approx(b0)


class TestOwnerOf:
    def test_ownership_matches_slabs(self):
        x = np.array([0.05, 0.3, 0.55, 0.95])
        owners = owner_of(x, 0.0, 1.0, 4)
        np.testing.assert_array_equal(owners, [0, 1, 2, 3])

    def test_out_of_domain_clamped(self):
        owners = owner_of(np.array([-5.0, 5.0]), 0.0, 1.0, 4)
        np.testing.assert_array_equal(owners, [0, 3])

    def test_invalid_size(self):
        with pytest.raises(MPIError):
            owner_of(np.zeros(1), 0.0, 1.0, 0)

    @given(
        xs=st.lists(st.floats(-10, 10), min_size=1, max_size=50),
        size=st.integers(1, 16),
    )
    def test_owner_always_in_range_and_consistent(self, xs, size):
        """Property: each point's owner's slab actually contains it."""
        x = np.array(xs)
        owners = owner_of(x, -10.0, 10.0, size)
        assert ((owners >= 0) & (owners < size)).all()
        for xi, r in zip(x, owners):
            lo, hi = slab_bounds(-10.0, 10.0, size, int(r))
            if r == size - 1:
                assert xi >= lo - 1e-9
            else:
                assert lo - 1e-9 <= xi < hi + 1e-9
