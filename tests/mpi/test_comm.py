"""Tests for the simulated MPI layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MPIError, RankMismatchError
from repro.hamr.runtime import current_clock
from repro.mpi.comm import (
    CommCostModel,
    SelfCommunicator,
    run_spmd,
)


class TestRunSpmd:
    def test_gathers_return_values(self):
        out = run_spmd(4, lambda comm: comm.rank * 10)
        assert out == [0, 10, 20, 30]

    def test_size_one_uses_self_comm(self):
        out = run_spmd(1, lambda comm: (comm.rank, comm.size))
        assert out == [(0, 1)]

    def test_invalid_size(self):
        with pytest.raises(MPIError):
            run_spmd(0, lambda comm: None)

    def test_exception_propagates_with_rank(self):
        def bad(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(MPIError, match="rank 2"):
            run_spmd(4, bad)

    def test_fresh_clock_per_rank(self):
        times = run_spmd(3, lambda comm: current_clock().now, start_time=5.0)
        assert all(t >= 5.0 for t in times)


class TestPointToPoint:
    def test_send_recv_object(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        out = run_spmd(2, fn)
        assert out[1] == {"a": 7, "b": 3.14}

    def test_send_recv_numpy_buffers(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10.0), dest=1)
                return None
            buf = np.empty(10)
            comm.Recv(buf, source=0)
            return buf

        out = run_spmd(2, fn)
        np.testing.assert_array_equal(out[1], np.arange(10.0))

    def test_tags_demultiplex(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("tag5", dest=1, tag=5)
                comm.send("tag7", dest=1, tag=7)
                return None
            second = comm.recv(source=0, tag=7)
            first = comm.recv(source=0, tag=5)
            return (first, second)

        out = run_spmd(2, fn)
        assert out[1] == ("tag5", "tag7")

    def test_isend_irecv(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2, 3], dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()

        out = run_spmd(2, fn)
        assert out[1] == [1, 2, 3]

    def test_sendrecv_ring(self):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        out = run_spmd(3, fn)
        assert out == [2, 0, 1]

    def test_self_message_rejected(self):
        def fn(comm):
            comm.send(1, dest=comm.rank)

        with pytest.raises(MPIError):
            run_spmd(2, fn)

    def test_recv_charges_simulated_time(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.zeros(1000), dest=1)
                return None
            comm.recv(source=0)
            return current_clock().now

        out = run_spmd(2, fn)
        assert out[1] > 0.0

    def test_message_cannot_arrive_before_it_was_sent(self):
        """Simulated-time causality: recv completion >= send time."""
        def fn(comm):
            if comm.rank == 0:
                current_clock().advance(5.0)  # sender is far in the future
                comm.send("late", dest=1)
                return None
            comm.recv(source=0)
            return current_clock().now

        out = run_spmd(2, fn)
        assert out[1] > 5.0  # receiver clock pulled past the send time

    def test_recv_timeout(self):
        def fn(comm):
            if comm.rank == 1:
                with pytest.raises(TimeoutError):
                    comm.recv(source=0, timeout=0.05)
            comm.barrier()

        run_spmd(2, fn)


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            data = {"key": [1, 2]} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        out = run_spmd(4, fn)
        assert all(o == {"key": [1, 2]} for o in out)

    def test_bcast_nonzero_root(self):
        out = run_spmd(3, lambda comm: comm.bcast(
            "payload" if comm.rank == 2 else None, root=2))
        assert out == ["payload"] * 3

    def test_gather(self):
        def fn(comm):
            return comm.gather((comm.rank + 1) ** 2, root=0)

        out = run_spmd(4, fn)
        assert out[0] == [1, 4, 9, 16]
        assert out[1] is None

    def test_allgather(self):
        out = run_spmd(3, lambda comm: comm.allgather(comm.rank))
        assert out == [[0, 1, 2]] * 3

    def test_scatter(self):
        def fn(comm):
            objs = [(i + 1) ** 2 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert run_spmd(4, fn) == [1, 4, 9, 16]

    def test_scatter_wrong_length(self):
        def fn(comm):
            objs = [0] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        with pytest.raises(MPIError):
            run_spmd(3, fn)

    def test_alltoall(self):
        def fn(comm):
            return comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])

        out = run_spmd(3, fn)
        assert out[1] == ["0->1", "1->1", "2->1"]

    def test_reduce_sum(self):
        out = run_spmd(4, lambda comm: comm.reduce(comm.rank + 1, op="sum", root=0))
        assert out[0] == 10
        assert out[1:] == [None] * 3

    def test_allreduce_ops(self):
        def fn(comm):
            v = comm.rank + 1
            return (
                comm.allreduce(v, "sum"),
                comm.allreduce(v, "min"),
                comm.allreduce(v, "max"),
                comm.allreduce(v, "prod"),
            )

        out = run_spmd(3, fn)
        assert out == [(6, 1, 3, 6)] * 3

    def test_allreduce_numpy(self):
        def fn(comm):
            return comm.Allreduce(np.full(4, float(comm.rank)), op="sum")

        out = run_spmd(4, fn)
        np.testing.assert_array_equal(out[0], [6.0] * 4)

    def test_allreduce_does_not_mutate_input(self):
        def fn(comm):
            mine = np.full(2, float(comm.rank))
            comm.Allreduce(mine, op="sum")
            return mine

        out = run_spmd(3, fn)
        np.testing.assert_array_equal(out[1], [1.0, 1.0])

    def test_unknown_reduction(self):
        with pytest.raises(MPIError):
            run_spmd(2, lambda comm: comm.allreduce(1, op="xor"))

    def test_invalid_root(self):
        with pytest.raises(MPIError):
            run_spmd(2, lambda comm: comm.bcast(1, root=5))

    def test_barrier_aligns_clocks(self):
        def fn(comm):
            current_clock().advance(0.1 * (comm.rank + 1))
            comm.barrier()
            return current_clock().now

        out = run_spmd(3, fn)
        assert max(out) - min(out) < 1e-12
        assert out[0] >= 0.3  # aligned to the slowest rank

    def test_collectives_cost_scales_with_size(self):
        cost = CommCostModel()
        assert cost.collective(1000, 16) > cost.collective(1000, 2)


class TestRecvFallback:
    def test_blocking_recv_fallback_raises_structured_mpierror(self, monkeypatch):
        """A blocking recv that never completes reports structured details."""
        import repro.mpi.comm as comm_mod

        monkeypatch.setattr(comm_mod, "DEFAULT_RECV_TIMEOUT", 0.05)

        def fn(comm):
            if comm.rank == 1:
                try:
                    comm.recv(source=0, tag=9)  # rank 0 never sends
                except MPIError as exc:
                    return exc.details
            return None

        details = run_spmd(2, fn)[1]
        assert details == {
            "rank": 1, "source": 0, "tag": 9, "timeout": 0.05,
        }

    def test_explicit_timeout_is_polling_contract(self):
        """Callers that pass timeout= get TimeoutError, not MPIError."""

        def fn(comm):
            if comm.rank == 1:
                with pytest.raises(TimeoutError):
                    comm.recv(source=0, tag=9, timeout=0.01)
            return None

        run_spmd(2, fn)

    def test_uncharged_recv_does_not_advance_clock(self):
        """charge=False marks control-plane traffic off the simulated clock."""

        def fn(comm):
            if comm.rank == 0:
                comm.send("ctl", dest=1, tag=3, charge=False)
                return None
            t0 = current_clock().now
            msg = comm.recv(source=0, tag=3, charge=False)
            return (msg, current_clock().now - t0)

        msg, elapsed = run_spmd(2, fn)[1]
        assert msg == "ctl"
        assert elapsed == 0.0

    def test_wire_nbytes_hook_sizes_payload(self):
        """Objects exposing wire_nbytes are charged their wire footprint."""
        from repro.mpi.comm import _payload_bytes

        class Framed:
            wire_nbytes = 4096

        assert _payload_bytes(Framed()) == 4096
        assert _payload_bytes(("chunk", Framed())) == 4096 + len("chunk")


class TestSelfCommunicator:
    def test_trivial_collectives(self):
        c = SelfCommunicator()
        assert c.bcast(42) == 42
        assert c.gather("x") == ["x"]
        assert c.allgather("x") == ["x"]
        assert c.scatter(["only"]) == "only"
        assert c.alltoall(["a"]) == ["a"]
        assert c.allreduce(5) == 5
        assert c.reduce(5) == 5
        c.barrier()

    def test_p2p_rejected(self):
        c = SelfCommunicator()
        with pytest.raises(MPIError):
            c.send(1, dest=0)
        with pytest.raises(MPIError):
            c.recv(source=0)

    def test_scatter_validates(self):
        with pytest.raises(RankMismatchError):
            SelfCommunicator().scatter([1, 2])


class TestCoordinatedAllreduce:
    """The epoch-checked allreduce the cluster governor rounds run on."""

    def test_elementwise_sum(self):
        def fn(comm):
            vec = np.arange(4, dtype=float) + comm.rank
            return comm.coordinated_allreduce(vec, op="sum")

        out = run_spmd(3, fn)
        expect = 3 * np.arange(4, dtype=float) + 3  # ranks contribute 0,1,2
        for got in out:
            np.testing.assert_allclose(got, expect)

    def test_epoch_advances_per_round(self):
        def fn(comm):
            assert comm.coordination_epoch == 0
            comm.coordinated_allreduce(np.ones(2))
            comm.coordinated_allreduce(np.ones(2))
            return comm.coordination_epoch

        assert run_spmd(2, fn) == [2, 2]

    def test_self_communicator_round_trips(self):
        c = SelfCommunicator()
        np.testing.assert_allclose(
            c.coordinated_allreduce(np.array([1.0, 2.0])), [1.0, 2.0]
        )
        assert c.coordination_epoch == 1

    def test_epoch_skew_raises_instead_of_hanging(self):
        def fn(comm):
            if comm.rank == 1:
                # Simulate a rank that missed a round (cadence mismatch).
                comm._coordination_epoch += 1
            with pytest.raises(MPIError, match="round skew") as excinfo:
                comm.coordinated_allreduce(np.ones(3))
            return sorted(excinfo.value.details["epochs"])

        assert run_spmd(2, fn) == [[1, 2], [1, 2]]
