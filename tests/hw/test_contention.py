"""Tests for the shared-resource contention model."""

from __future__ import annotations

import pytest

from repro.hw.contention import ContentionModel, SharedResource


@pytest.fixture
def model():
    return ContentionModel()


class TestDilation:
    def test_no_sharers_no_dilation(self, model):
        for r in SharedResource:
            assert model.dilation(r, other_parties=0) == 1.0

    def test_one_sharer_uses_base_factor(self, model):
        f = model.dilation(SharedResource.GPU_COMPUTE, 1)
        assert f == pytest.approx(model.factors[SharedResource.GPU_COMPUTE])

    def test_linear_in_sharers(self, model):
        f1 = model.dilation(SharedResource.HOST_CORES, 1)
        f2 = model.dilation(SharedResource.HOST_CORES, 2)
        assert (f2 - 1.0) == pytest.approx(2 * (f1 - 1.0))

    def test_all_factors_at_least_one(self, model):
        for r in SharedResource:
            assert model.dilation(r, 1) >= 1.0

    def test_negative_sharers_rejected(self, model):
        with pytest.raises(ValueError):
            model.dilation(SharedResource.GPU_COMPUTE, -1)

    def test_unknown_resource_defaults_to_one(self):
        m = ContentionModel(factors={})
        assert m.dilation(SharedResource.GPU_MEMORY, 3) == 1.0


class TestCombined:
    def test_combined_is_product(self, model):
        rs = [SharedResource.GPU_COMPUTE, SharedResource.GPU_MEMORY]
        assert model.combined(rs) == pytest.approx(
            model.dilation(rs[0]) * model.dilation(rs[1])
        )

    def test_combined_empty_is_identity(self, model):
        assert model.combined([]) == 1.0

    def test_custom_factors(self):
        m = ContentionModel(factors={SharedResource.HOST_LINK: 2.0})
        assert m.dilation(SharedResource.HOST_LINK, 1) == 2.0


class TestPaperShape:
    """The defaults must support the paper's qualitative findings."""

    def test_same_device_sharing_is_strongest(self, model):
        same_dev = model.combined(
            [SharedResource.GPU_COMPUTE, SharedResource.GPU_MEMORY]
        )
        host = model.combined(
            [SharedResource.HOST_CORES, SharedResource.HOST_LINK]
        )
        assert same_dev > host > 1.0

    def test_every_placement_slows_the_solver(self, model):
        """Async slows the solver in all placements (paper Section 4.4)."""
        placements = {
            "host": [SharedResource.HOST_CORES, SharedResource.HOST_LINK],
            "same_device": [SharedResource.GPU_COMPUTE, SharedResource.GPU_MEMORY],
            "dedicated": [SharedResource.HOST_LINK],
            "two_dedicated": [SharedResource.HOST_LINK],
        }
        for name, rs in placements.items():
            assert model.combined(rs) > 1.0, name
