"""Tests for node topology and process-global system queries."""

from __future__ import annotations

import pytest

from repro.errors import LocationError
from repro.hw.node import (
    VirtualNode,
    get_device,
    get_node,
    host_cpu,
    num_devices,
    reset_node,
    set_node,
    use_node,
)
from repro.hw.spec import NodeSpec, small_node_spec
from repro.units import MB


class TestVirtualNode:
    def test_default_is_perlmutter_like(self):
        node = VirtualNode()
        assert node.num_devices == 4
        assert node.host.spec.cores == 64

    def test_with_devices(self):
        node = VirtualNode(NodeSpec().with_devices(2))
        assert node.num_devices == 2

    def test_with_devices_rejects_negative(self):
        with pytest.raises(ValueError):
            NodeSpec().with_devices(-1)

    def test_device_lookup(self):
        node = VirtualNode()
        assert node.device(3).device_id == 3

    def test_device_lookup_out_of_range(self):
        node = VirtualNode()
        with pytest.raises(LocationError):
            node.device(4)

    def test_resource_negative_is_host(self):
        node = VirtualNode()
        assert node.resource(-1) is node.host
        assert node.resource(0) is node.devices[0]

    def test_iter_resources(self):
        node = VirtualNode()
        rs = list(node.iter_resources())
        assert rs[0] is node.host
        assert len(rs) == 5


class TestTransferTime:
    def test_same_space_is_free(self):
        node = VirtualNode()
        assert node.transfer_time(MB, 0, 0) == 0.0
        assert node.transfer_time(MB, -1, -1) == 0.0

    def test_h2d_and_d2h_symmetric_by_default(self):
        node = VirtualNode()
        assert node.transfer_time(MB, -1, 0) == pytest.approx(
            node.transfer_time(MB, 0, -1)
        )

    def test_d2d_faster_than_h2d(self):
        node = VirtualNode()
        big = 100 * MB
        assert node.transfer_time(big, 0, 1) < node.transfer_time(big, -1, 0)

    def test_pinned_speedup(self):
        node = VirtualNode()
        big = 100 * MB
        assert node.transfer_time(big, -1, 0, pinned=True) < node.transfer_time(
            big, -1, 0, pinned=False
        )

    def test_latency_floor(self):
        node = VirtualNode()
        assert node.transfer_time(1, -1, 0) >= node.spec.link.latency


class TestGlobalNode:
    def test_lazy_default(self):
        reset_node()
        assert num_devices() == 4

    def test_set_node(self):
        node = VirtualNode(small_node_spec(num_devices=2))
        set_node(node)
        assert get_node() is node
        assert num_devices() == 2

    def test_use_node_restores(self):
        outer = get_node()
        inner = VirtualNode(small_node_spec(num_devices=1))
        with use_node(inner):
            assert get_node() is inner
        assert get_node() is outer

    def test_query_helpers(self):
        assert get_device(0) is get_node().devices[0]
        assert host_cpu() is get_node().host
