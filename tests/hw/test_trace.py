"""Tests for the deeper-profiling tools (Section 5 future work)."""

from __future__ import annotations

import json

import pytest

from repro.hw.clock import EventCategory, Timeline
from repro.hw.trace import (
    chrome_trace,
    concurrency_profile,
    idle_gaps,
    utilization,
    write_chrome_trace,
)


def make_timeline():
    tl = Timeline("gpu0")
    tl.schedule(0.0, 1.0, name="k1", category=EventCategory.COMPUTE)
    tl.schedule(2.0, 0.5, name="c1", category=EventCategory.COPY)
    tl.schedule(4.0, 1.0, name="k2", category=EventCategory.COMPUTE)
    return tl


class TestUtilization:
    def test_busy_fraction(self):
        u = utilization(make_timeline())
        assert u.window == (0.0, 5.0)
        assert u.busy == pytest.approx(2.5)
        assert u.fraction == pytest.approx(0.5)

    def test_category_breakdown(self):
        u = utilization(make_timeline())
        assert u.by_category["compute"] == pytest.approx(2.0)
        assert u.by_category["copy"] == pytest.approx(0.5)

    def test_window_clipping(self):
        u = utilization(make_timeline(), t0=0.5, t1=2.25)
        # half of k1 (0.5) + half of c1 (0.25)
        assert u.busy == pytest.approx(0.75)

    def test_empty_timeline(self):
        u = utilization(Timeline("idle"))
        assert u.busy == 0.0
        assert u.fraction == 0.0

    def test_zero_duration_events_ignored(self):
        tl = Timeline("r")
        tl.schedule(1.0, 0.0, category=EventCategory.SYNC)
        u = utilization(tl, t0=0.0, t1=2.0)
        assert u.busy == 0.0


class TestIdleGaps:
    def test_gaps_between_events(self):
        gaps = idle_gaps(make_timeline())
        assert gaps == [(1.0, 2.0), (2.5, 4.0)]

    def test_trailing_gap_with_explicit_end(self):
        gaps = idle_gaps(make_timeline(), t1=6.0)
        assert gaps[-1] == (5.0, 6.0)

    def test_min_gap_filter(self):
        gaps = idle_gaps(make_timeline(), min_gap=1.2)
        assert gaps == [(2.5, 4.0)]

    def test_fully_idle_resource(self):
        gaps = idle_gaps(Timeline("idle"), t0=0.0, t1=3.0)
        assert gaps == [(0.0, 3.0)]

    def test_busy_resource_has_no_gaps(self):
        tl = Timeline("r")
        tl.schedule(0.0, 5.0)
        assert idle_gaps(tl) == []


class TestConcurrencyProfile:
    def test_two_overlapping_resources(self):
        a, b = Timeline("a"), Timeline("b")
        a.schedule(0.0, 2.0)
        b.schedule(1.0, 2.0)
        profile = concurrency_profile([a, b])
        assert profile == [(0.0, 1), (1.0, 2), (2.0, 1), (3.0, 0)]

    def test_empty(self):
        assert concurrency_profile([Timeline("a")]) == []


class TestChromeTrace:
    def test_events_and_thread_names(self):
        events = chrome_trace([make_timeline()])
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert meta[0]["args"]["name"] == "gpu0"
        assert len(spans) == 3
        assert spans[0]["name"] == "k1"
        assert spans[0]["ts"] == 0.0
        assert spans[0]["dur"] == pytest.approx(1e6)  # 1 s in trace us

    def test_write_loads_back_as_json(self, tmp_path):
        p = tmp_path / "trace.json"
        write_chrome_trace(p, [make_timeline()])
        data = json.loads(p.read_text())
        assert isinstance(data, list)
        assert any(e.get("cat") == "compute" for e in data)

    def test_full_run_is_traceable(self, tmp_path):
        """A real pipeline's timelines export to a valid trace."""
        from repro.harness.calibrate import SmallWorkload
        from repro.harness.runner import execute_small
        from repro.harness.spec import InSituPlacement, RunSpec
        from repro.hw.node import get_node
        from repro.sensei.execution import ExecutionMethod

        spec = RunSpec(InSituPlacement.SAME_DEVICE,
                       ExecutionMethod.LOCKSTEP, nodes=1)
        execute_small(spec, SmallWorkload(n_bodies=100, steps=2,
                                          n_coordinate_systems=1,
                                          n_variables=1))
        node = get_node()
        timelines = [r.timeline for r in node.iter_resources()]
        p = tmp_path / "run.json"
        write_chrome_trace(p, timelines)
        data = json.loads(p.read_text())
        assert any(e.get("ph") == "X" for e in data)
