"""Tests for virtual devices and the roofline cost model."""

from __future__ import annotations

import pytest

from repro.errors import DeviceOutOfMemoryError
from repro.hw.device import HostCPU, VirtualDevice
from repro.hw.spec import DeviceSpec, HostSpec
from repro.units import GiB, MiB


@pytest.fixture
def gpu():
    return VirtualDevice(0)


@pytest.fixture
def cpu():
    return HostCPU()


class TestMemoryAccounting:
    def test_initially_empty(self, gpu):
        assert gpu.mem_used == 0
        assert gpu.mem_available == gpu.mem_capacity

    def test_claim_and_release(self, gpu):
        gpu.claim_memory(MiB)
        assert gpu.mem_used == MiB
        gpu.release_memory(MiB)
        assert gpu.mem_used == 0

    def test_peak_tracking(self, gpu):
        gpu.claim_memory(2 * MiB)
        gpu.release_memory(MiB)
        gpu.claim_memory(MiB)
        assert gpu.peak_mem_used == 2 * MiB

    def test_oom_raises_with_details(self):
        small = VirtualDevice(0, DeviceSpec(mem_capacity=MiB))
        with pytest.raises(DeviceOutOfMemoryError) as ei:
            small.claim_memory(2 * MiB)
        assert ei.value.requested == 2 * MiB
        assert ei.value.available == MiB

    def test_oom_leaves_accounting_unchanged(self):
        small = VirtualDevice(0, DeviceSpec(mem_capacity=MiB))
        small.claim_memory(MiB // 2)
        with pytest.raises(DeviceOutOfMemoryError):
            small.claim_memory(MiB)
        assert small.mem_used == MiB // 2

    def test_negative_claim_rejected(self, gpu):
        with pytest.raises(ValueError):
            gpu.claim_memory(-1)

    def test_release_never_goes_negative(self, gpu):
        gpu.release_memory(GiB)
        assert gpu.mem_used == 0

    def test_reset(self, gpu):
        gpu.claim_memory(MiB)
        gpu.timeline.schedule(0.0, 1.0)
        gpu.reset()
        assert gpu.mem_used == 0
        assert gpu.timeline.available_at == 0.0


class TestGPUKernelTime:
    def test_launch_latency_floor(self, gpu):
        assert gpu.kernel_time() == pytest.approx(gpu.spec.launch_latency)

    def test_compute_bound_scales_with_flops(self, gpu):
        t1 = gpu.kernel_time(flops=1e12)
        t2 = gpu.kernel_time(flops=2e12)
        lat = gpu.spec.launch_latency
        assert (t2 - lat) == pytest.approx(2 * (t1 - lat))

    def test_memory_bound_scales_with_bytes(self, gpu):
        t1 = gpu.kernel_time(bytes_moved=1e9)
        t2 = gpu.kernel_time(bytes_moved=2e9)
        lat = gpu.spec.launch_latency
        assert (t2 - lat) == pytest.approx(2 * (t1 - lat))

    def test_roofline_takes_max(self, gpu):
        t_c = gpu.kernel_time(flops=1e13)
        t_m = gpu.kernel_time(bytes_moved=1e10)
        t_both = gpu.kernel_time(flops=1e13, bytes_moved=1e10)
        assert t_both == pytest.approx(max(t_c, t_m))

    def test_atomic_penalty_dilates_memory_term(self, gpu):
        streaming = gpu.kernel_time(bytes_moved=1e9, atomic_fraction=0.0)
        atomic = gpu.kernel_time(bytes_moved=1e9, atomic_fraction=1.0)
        assert atomic > streaming * 5  # substantial, spec default is 24x

    def test_atomic_fraction_validated(self, gpu):
        with pytest.raises(ValueError):
            gpu.kernel_time(bytes_moved=1.0, atomic_fraction=1.5)

    def test_alloc_async_cheaper_than_sync(self, gpu):
        sync = gpu.alloc_time(GiB, asynchronous=False)
        async_ = gpu.alloc_time(GiB, asynchronous=True)
        assert async_ < sync


class TestHostKernelTime:
    def test_more_cores_is_faster_when_compute_bound(self, cpu):
        t1 = cpu.kernel_time(flops=1e12, cores=1)
        t64 = cpu.kernel_time(flops=1e12, cores=64)
        assert t64 < t1 / 30  # near-linear scaling on compute-bound work

    def test_cores_clamped_to_spec(self, cpu):
        assert cpu.kernel_time(flops=1e9, cores=10_000) == pytest.approx(
            cpu.kernel_time(flops=1e9, cores=cpu.spec.cores)
        )

    def test_memory_bound_does_not_scale_with_cores(self, cpu):
        t1 = cpu.kernel_time(bytes_moved=1e10, cores=1)
        t64 = cpu.kernel_time(bytes_moved=1e10, cores=64)
        assert t64 == pytest.approx(t1)

    def test_no_atomic_penalty_on_host(self, cpu):
        plain = cpu.kernel_time(bytes_moved=1e9, atomic_fraction=0.0)
        atomic = cpu.kernel_time(bytes_moved=1e9, atomic_fraction=1.0)
        assert atomic == pytest.approx(plain)

    def test_aggregate_flops(self):
        spec = HostSpec(cores=8, fp64_flops_per_core=1e9)
        assert spec.fp64_flops == pytest.approx(8e9)


class TestRelativeSpeeds:
    def test_gpu_beats_host_on_streaming_compute(self, gpu, cpu):
        """A100 should be ~7-8x an EPYC socket on FP64 throughput."""
        flops = 1e13
        assert gpu.kernel_time(flops=flops) < cpu.kernel_time(flops=flops)

    def test_gpu_binning_advantage_erased_by_atomics(self, gpu, cpu):
        """The paper's observation: atomic-heavy binning does not win on GPU."""
        nbytes = 1e9
        gpu_t = gpu.kernel_time(bytes_moved=nbytes, atomic_fraction=0.5)
        cpu_t = cpu.kernel_time(bytes_moved=nbytes, atomic_fraction=0.5)
        assert gpu_t > 0.5 * cpu_t  # no large GPU win remains
