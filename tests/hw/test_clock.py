"""Tests for the discrete-event time substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.hw.clock import EventCategory, SimClock, Timeline, merge_events


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_advance_accumulates(self):
        c = SimClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == 2.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_wait_for_moves_forward(self):
        c = SimClock()
        assert c.wait_for(3.0) == 3.0
        assert c.now == 3.0

    def test_wait_for_never_moves_backward(self):
        c = SimClock(10.0)
        c.wait_for(3.0)
        assert c.now == 10.0

    def test_wait_event(self):
        tl = Timeline("r")
        ev = tl.schedule(0.0, 2.0)
        c = SimClock()
        c.wait_event(ev)
        assert c.now == 2.0

    def test_reset(self):
        c = SimClock(7.0)
        c.reset()
        assert c.now == 0.0


class TestTimeline:
    def test_schedule_from_idle(self):
        tl = Timeline("gpu0")
        ev = tl.schedule(1.0, 2.0, name="k")
        assert ev.start == 1.0
        assert ev.end == 3.0
        assert tl.available_at == 3.0

    def test_back_to_back_serialize(self):
        tl = Timeline("gpu0")
        a = tl.schedule(0.0, 1.0)
        b = tl.schedule(0.0, 1.0)  # issued at 0 but resource busy until 1
        assert b.start == a.end
        assert b.end == 2.0

    def test_idle_gap_preserved(self):
        tl = Timeline("gpu0")
        tl.schedule(0.0, 1.0)
        ev = tl.schedule(5.0, 1.0)
        assert ev.start == 5.0

    def test_zero_duration_allowed(self):
        tl = Timeline("r")
        ev = tl.schedule(1.0, 0.0)
        assert ev.start == ev.end == 1.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline("r").schedule(0.0, -0.1)

    def test_delay_until(self):
        tl = Timeline("r")
        tl.delay_until(4.0)
        ev = tl.schedule(0.0, 1.0)
        assert ev.start == 4.0

    def test_delay_until_never_rewinds(self):
        tl = Timeline("r")
        tl.schedule(0.0, 5.0)
        tl.delay_until(1.0)
        assert tl.available_at == 5.0

    def test_busy_time_by_category(self):
        tl = Timeline("r")
        tl.schedule(0.0, 1.0, category=EventCategory.COMPUTE)
        tl.schedule(0.0, 2.0, category=EventCategory.COPY)
        assert tl.busy_time() == pytest.approx(3.0)
        assert tl.busy_time(EventCategory.COMPUTE) == pytest.approx(1.0)
        assert tl.busy_time(EventCategory.COPY) == pytest.approx(2.0)

    def test_events_in_window(self):
        tl = Timeline("r")
        tl.schedule(0.0, 1.0, name="a")
        tl.schedule(2.0, 1.0, name="b")
        names = [e.name for e in tl.events_in(0.5, 2.5)]
        assert names == ["a", "b"]
        assert [e.name for e in tl.events_in(1.0, 2.0)] == []

    def test_reset(self):
        tl = Timeline("r")
        tl.schedule(0.0, 1.0)
        tl.reset()
        assert tl.available_at == 0.0
        assert tl.events == []

    def test_event_overlap_predicate(self):
        tl = Timeline("r")
        a = tl.schedule(0.0, 2.0)
        b = tl.schedule(0.0, 2.0)
        assert not a.overlaps(b)  # serialized on one resource
        tl2 = Timeline("r2")
        c = tl2.schedule(1.0, 2.0)
        assert a.overlaps(c)

    def test_merge_events_sorted(self):
        t1, t2 = Timeline("a"), Timeline("b")
        t1.schedule(0.0, 1.0, name="x")
        t2.schedule(0.5, 1.0, name="y")
        t1.schedule(3.0, 1.0, name="z")
        assert [e.name for e in merge_events([t1, t2])] == ["x", "y", "z"]


@given(durs=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30))
def test_timeline_never_overlaps_and_is_monotone(durs):
    """Property: events on one timeline are disjoint and ordered."""
    tl = Timeline("r")
    for d in durs:
        tl.schedule(0.0, d)
    evs = tl.events
    for prev, nxt in zip(evs, evs[1:]):
        assert prev.end <= nxt.start
    assert tl.available_at == evs[-1].end


@given(
    moves=st.lists(
        st.tuples(st.sampled_from(["advance", "wait"]), st.floats(0, 100)),
        max_size=50,
    )
)
def test_clock_is_monotone(moves):
    """Property: a clock never runs backward under any op sequence."""
    c = SimClock()
    prev = 0.0
    for kind, x in moves:
        if kind == "advance":
            c.advance(x)
        else:
            c.wait_for(x)
        assert c.now >= prev
        prev = c.now
