"""Analytic physics checks: the solver against closed-form orbits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.newton.bodies import Bodies
from repro.newton.forces import accelerations
from repro.newton.integrator import leapfrog_step


def circular_binary(m_central: float, r: float) -> Bodies:
    """A light test particle on a circular orbit around a heavy body.

    G = 1: circular speed v = sqrt(M / r), period T = 2 pi sqrt(r^3 / M).
    """
    v = np.sqrt(m_central / r)
    return Bodies(
        x=np.array([0.0, r]),
        y=np.zeros(2),
        z=np.zeros(2),
        vx=np.zeros(2),
        vy=np.array([0.0, v]),
        vz=np.zeros(2),
        mass=np.array([m_central, 1e-9]),
    )


def advance(bodies: Bodies, dt: float, steps: int, softening=1e-9) -> None:
    fn = lambda pos: accelerations(pos, pos, bodies.mass, softening=softening)
    acc = None
    for _ in range(steps):
        acc = leapfrog_step(bodies, dt, fn, acc=acc)


class TestCircularOrbit:
    def test_radius_is_preserved(self):
        b = circular_binary(1.0, 1.0)
        advance(b, 1e-3, 2000)
        r = np.hypot(b.x[1] - b.x[0], b.y[1] - b.y[0])
        assert r == pytest.approx(1.0, rel=1e-4)

    def test_period_matches_kepler(self):
        """After one analytic period the particle returns to its start."""
        m, r = 4.0, 0.5
        period = 2 * np.pi * np.sqrt(r**3 / m)
        steps = 4000
        b = circular_binary(m, r)
        advance(b, period / steps, steps)
        assert b.x[1] == pytest.approx(r, abs=2e-4)
        assert b.y[1] == pytest.approx(0.0, abs=2e-3)

    def test_half_period_is_opposite_point(self):
        m, r = 1.0, 1.0
        period = 2 * np.pi * np.sqrt(r**3 / m)
        steps = 2000
        b = circular_binary(m, r)
        advance(b, period / 2 / steps, steps)
        assert b.x[1] == pytest.approx(-r, abs=2e-3)

    def test_angular_momentum_conserved(self):
        b = circular_binary(1.0, 1.0)
        lz0 = b.mass[1] * (b.x[1] * b.vy[1] - b.y[1] * b.vx[1])
        advance(b, 1e-3, 1000)
        lz1 = b.mass[1] * (b.x[1] * b.vy[1] - b.y[1] * b.vx[1])
        assert lz1 == pytest.approx(lz0, rel=1e-10)


class TestEllipticalOrbit:
    def test_eccentric_orbit_conserves_energy_and_returns(self):
        """An e=0.5 orbit: energy conserved, apoapsis as predicted."""
        m, r_peri = 1.0, 0.5
        e = 0.5
        a = r_peri / (1 - e)
        v_peri = np.sqrt(m * (1 + e) / r_peri)
        b = Bodies(
            x=np.array([0.0, r_peri]), y=np.zeros(2), z=np.zeros(2),
            vx=np.zeros(2), vy=np.array([0.0, v_peri]), vz=np.zeros(2),
            mass=np.array([m, 1e-9]),
        )
        from repro.newton.forces import total_energy

        e0 = total_energy(b.positions, b.velocities, b.mass, softening=1e-9)
        period = 2 * np.pi * np.sqrt(a**3 / m)
        steps = 20000
        advance(b, period / steps, steps // 2)  # half period: at apoapsis
        r_apo = np.hypot(b.x[1], b.y[1])
        assert r_apo == pytest.approx(a * (1 + e), rel=1e-3)
        e1 = total_energy(b.positions, b.velocities, b.mass, softening=1e-9)
        assert e1 == pytest.approx(e0, rel=1e-6)
