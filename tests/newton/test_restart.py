"""Tests for solver checkpoint/restart."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.comm import run_spmd
from repro.newton.solver import NewtonSolver, SolverConfig

CFG = SolverConfig(
    n_bodies=60, dt=1e-3, softening=0.05, seed=5, mass_range=(0.01, 0.03)
)


class TestCheckpointRestart:
    def test_restart_reproduces_uninterrupted_run(self, tmp_path):
        """run(10) == run(5) -> checkpoint -> restore -> run(5)."""
        ref = NewtonSolver(CFG)
        ref.run(10)

        first = NewtonSolver(CFG)
        first.run(5)
        ck = tmp_path / "ck.npz"
        first.save_checkpoint(ck)

        resumed = NewtonSolver(CFG)
        resumed.load_checkpoint(ck)
        assert resumed.step_count == 5
        assert resumed.time == pytest.approx(5e-3)
        resumed.run(5)

        np.testing.assert_allclose(resumed.bodies.x, ref.bodies.x, atol=1e-12)
        np.testing.assert_allclose(resumed.bodies.vx, ref.bodies.vx, atol=1e-12)
        assert resumed.step_count == ref.step_count == 10

    def test_per_rank_checkpoints(self, tmp_path):
        def fn(comm):
            s = NewtonSolver(CFG, comm)
            s.run(3)
            path = tmp_path / f"ck_r{comm.rank}.npz"
            s.save_checkpoint(path)
            before = (s.bodies.x.copy(), s.step_count)

            s2 = NewtonSolver(CFG, comm)
            s2.load_checkpoint(path)
            return (
                bool(np.array_equal(s2.bodies.x, before[0])),
                s2.step_count == before[1],
                s2.n_local,
            )

        out = run_spmd(2, fn)
        assert all(pos_ok and step_ok for pos_ok, step_ok, _ in out)
        assert sum(n for _, _, n in out) == CFG.n_bodies

    def test_checkpoint_preserves_ids_and_mass(self, tmp_path):
        s = NewtonSolver(CFG)
        s.run(2)
        ck = tmp_path / "ck.npz"
        s.save_checkpoint(ck)
        s2 = NewtonSolver(CFG)
        s2.load_checkpoint(ck)
        np.testing.assert_array_equal(s2.bodies.ids, s.bodies.ids)
        assert s2.bodies.total_mass == pytest.approx(s.bodies.total_mass)
