"""Tests for the body container and initial conditions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.newton.bodies import Bodies
from repro.newton.ic import PlummerComponent, plummer_galaxy, uniform_random


class TestBodies:
    def test_construction_and_shapes(self):
        b = uniform_random(10)
        assert b.n == len(b) == 10
        assert b.positions.shape == (10, 3)
        assert b.velocities.shape == (10, 3)

    def test_length_mismatch_rejected(self):
        z = np.zeros(3)
        with pytest.raises(SolverError):
            Bodies(z, z, z, z, z, z, np.zeros(4))

    def test_ids_default_to_range(self):
        b = uniform_random(5)
        np.testing.assert_array_equal(b.ids, np.arange(5))

    def test_select_by_mask(self):
        b = uniform_random(10)
        sel = b.select(b.x > 0)
        assert (sel.x > 0).all()
        assert sel.n + b.select(b.x <= 0).n == 10

    def test_select_copies(self):
        b = uniform_random(4)
        sel = b.select(np.array([True] * 4))
        sel.x[0] = 1e9
        assert b.x[0] != 1e9

    def test_concatenate_preserves_everything(self):
        a, b = uniform_random(3, seed=1), uniform_random(4, seed=2)
        c = Bodies.concatenate([a, b])
        assert c.n == 7
        assert c.total_mass == pytest.approx(a.total_mass + b.total_mass)

    def test_concatenate_skips_empty_and_none(self):
        a = uniform_random(3)
        c = Bodies.concatenate([None, a, Bodies.empty(0)])
        assert c.n == 3

    def test_concatenate_nothing(self):
        assert Bodies.concatenate([]).n == 0

    def test_copy_is_deep(self):
        a = uniform_random(3)
        c = a.copy()
        c.mass[0] = 99.0
        assert a.mass[0] != 99.0

    def test_nbytes(self):
        b = uniform_random(10)
        assert b.nbytes == 7 * 80 + 80  # 7 float64 + 1 int64 column


class TestUniformRandom:
    def test_deterministic_by_seed(self):
        a, b = uniform_random(50, seed=7), uniform_random(50, seed=7)
        np.testing.assert_array_equal(a.x, b.x)
        assert not np.array_equal(a.x, uniform_random(50, seed=8).x)

    def test_positions_in_box(self):
        b = uniform_random(200, box=2.5)
        for arr in (b.x, b.y, b.z):
            assert (np.abs(arr) <= 2.5).all()

    def test_masses_in_range(self):
        b = uniform_random(200, mass_range=(1.0, 3.0))
        assert (b.mass >= 1.0).all() and (b.mass <= 3.0).all()

    def test_central_mass_placed_at_origin(self):
        """Figure 1's 'massive body at the origin'."""
        b = uniform_random(100, central_mass=1e4)
        assert b.x[0] == b.y[0] == b.z[0] == 0.0
        assert b.vx[0] == 0.0
        assert b.mass[0] == 1e4
        assert b.mass[1:].max() < 1e4

    def test_validation(self):
        with pytest.raises(SolverError):
            uniform_random(0)
        with pytest.raises(SolverError):
            uniform_random(10, box=-1)
        with pytest.raises(SolverError):
            uniform_random(10, mass_range=(2.0, 1.0))


class TestPlummerGalaxy:
    def test_basic_properties(self):
        g = plummer_galaxy(n=500, seed=1)
        assert g.n == 500
        assert g.total_mass == pytest.approx(1.0)

    def test_centrally_concentrated(self):
        """Half-mass radius of a Plummer sphere is ~1.3 a."""
        g = plummer_galaxy(n=4000, seed=2)
        r = np.sqrt(g.x**2 + g.y**2 + g.z**2)
        assert np.median(r) < 2.0  # a=1: median radius ~1.3

    def test_velocities_bound(self):
        """Sampled speeds never exceed the local escape speed."""
        g = plummer_galaxy(n=2000, seed=3)
        r2 = g.x**2 + g.y**2 + g.z**2
        v2 = g.vx**2 + g.vy**2 + g.vz**2
        v_esc2 = 2.0 * 1.0 / np.sqrt(r2 + 1.0)
        assert (v2 <= v_esc2 + 1e-12).all()

    def test_multi_component(self):
        comps = [
            PlummerComponent(n=100, total_mass=1.0, scale_radius=0.5),
            PlummerComponent(n=300, total_mass=5.0, scale_radius=2.0),
        ]
        g = plummer_galaxy(components=comps, seed=4)
        assert g.n == 400
        assert g.total_mass == pytest.approx(6.0)
        np.testing.assert_array_equal(g.ids, np.arange(400))

    def test_argument_validation(self):
        with pytest.raises(SolverError):
            plummer_galaxy()
        with pytest.raises(SolverError):
            plummer_galaxy(components=[PlummerComponent(n=1)], n=5)
        with pytest.raises(SolverError):
            PlummerComponent(n=0)

    def test_near_virial_equilibrium(self):
        """For an equilibrium Plummer model, 2K ~ -W (virial theorem)."""
        from repro.newton.forces import kinetic_energy, potential_energy

        g = plummer_galaxy(n=3000, seed=5)
        k = kinetic_energy(g.velocities, g.mass)
        w = potential_energy(g.positions, g.mass, softening=1e-4)
        assert 2 * k / abs(w) == pytest.approx(1.0, abs=0.2)

    def test_equilibrium_is_dynamically_stable(self):
        """Evolving the model keeps the virial ratio in band: the
        initializer produces a genuine equilibrium, not just moments."""
        from repro.newton.forces import (
            accelerations,
            kinetic_energy,
            potential_energy,
        )
        from repro.newton.integrator import leapfrog_step

        g = plummer_galaxy(n=600, seed=6)
        fn = lambda pos: accelerations(pos, pos, g.mass, softening=0.05)
        acc = None
        for _ in range(30):
            acc = leapfrog_step(g, 2e-3, fn, acc=acc)
        ratio = 2 * kinetic_energy(g.velocities, g.mass) / abs(
            potential_energy(g.positions, g.mass, softening=0.05)
        )
        assert ratio == pytest.approx(1.0, abs=0.3)
