"""Tests for gravity and the symplectic integrator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.newton.bodies import Bodies
from repro.newton.forces import (
    accelerations,
    kinetic_energy,
    pair_flops,
    potential_energy,
    total_energy,
)
from repro.newton.ic import uniform_random
from repro.newton.integrator import leapfrog_step


class TestAccelerations:
    def test_two_body_inverse_square(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        acc = accelerations(pos, pos, np.array([1.0, 1.0]), softening=1e-9)
        # Body 0 pulled toward +x with |a| ~ 1/r^2 = 1.
        assert acc[0, 0] == pytest.approx(1.0, rel=1e-6)
        assert acc[1, 0] == pytest.approx(-1.0, rel=1e-6)
        assert np.abs(acc[:, 1:]).max() < 1e-12

    def test_self_interaction_is_zero(self):
        pos = np.array([[0.5, 0.5, 0.5]])
        acc = accelerations(pos, pos, np.array([10.0]), softening=1e-3)
        np.testing.assert_allclose(acc, 0.0)

    def test_tiling_invariance(self):
        b = uniform_random(100, seed=1)
        pos = b.positions
        a_big = accelerations(pos, pos, b.mass, tile=1000)
        a_small = accelerations(pos, pos, b.mass, tile=7)
        np.testing.assert_allclose(a_small, a_big, rtol=1e-12)

    def test_momentum_conservation(self):
        """Sum of m*a vanishes for internal forces (Newton's third law)."""
        b = uniform_random(80, seed=3)
        acc = accelerations(b.positions, b.positions, b.mass)
        np.testing.assert_allclose(
            (b.mass[:, None] * acc).sum(axis=0), 0.0, atol=1e-10
        )

    def test_mass_linearity(self):
        b = uniform_random(30, seed=4)
        a1 = accelerations(b.positions, b.positions, b.mass)
        a2 = accelerations(b.positions, b.positions, 2.0 * b.mass)
        np.testing.assert_allclose(a2, 2.0 * a1, rtol=1e-12)

    def test_validation(self):
        pos = np.zeros((2, 3))
        with pytest.raises(SolverError):
            accelerations(pos, pos, np.ones(2), softening=0.0)
        with pytest.raises(SolverError):
            accelerations(pos, pos, np.ones(2), tile=0)
        with pytest.raises(SolverError):
            accelerations(np.zeros((2, 2)), pos, np.ones(2))
        with pytest.raises(SolverError):
            accelerations(pos, pos, np.ones(3))

    def test_pair_flops(self):
        assert pair_flops(10, 100) == 20.0 * 1000


class TestEnergies:
    def test_two_body_potential(self):
        pos = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        w = potential_energy(pos, np.array([3.0, 4.0]), softening=1e-9)
        assert w == pytest.approx(-3.0 * 4.0 / 2.0, rel=1e-6)

    def test_potential_tiling_invariance(self):
        b = uniform_random(64, seed=5)
        w1 = potential_energy(b.positions, b.mass, tile=1000)
        w2 = potential_energy(b.positions, b.mass, tile=5)
        assert w2 == pytest.approx(w1, rel=1e-12)

    def test_kinetic(self):
        vel = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
        assert kinetic_energy(vel, np.array([2.0, 1.0])) == pytest.approx(
            0.5 * (2 * 1 + 1 * 4)
        )

    def test_total(self):
        b = uniform_random(20, seed=6)
        assert total_energy(b.positions, b.velocities, b.mass) == pytest.approx(
            kinetic_energy(b.velocities, b.mass)
            + potential_energy(b.positions, b.mass)
        )


def _accel_closure(mass, softening=1e-2):
    return lambda pos: accelerations(pos, pos, mass, softening=softening)


class TestLeapfrog:
    def test_energy_conservation_over_many_steps(self):
        # Masses ~1/n keep close encounters resolvable at this dt.
        b = uniform_random(60, seed=7, vel_scale=0.2, mass_range=(0.01, 0.03))
        fn = _accel_closure(b.mass, softening=0.05)
        e0 = total_energy(b.positions, b.velocities, b.mass, 0.05)
        acc = None
        for _ in range(200):
            acc = leapfrog_step(b, 1e-3, fn, acc=acc)
        e1 = total_energy(b.positions, b.velocities, b.mass, 0.05)
        assert abs((e1 - e0) / e0) < 1e-3

    def test_time_reversibility(self):
        """Integrate forward then backward: return to start to round-off."""
        b = uniform_random(30, seed=8)
        x0, v0 = b.positions.copy(), b.velocities.copy()
        fn = _accel_closure(b.mass)
        acc = None
        for _ in range(50):
            acc = leapfrog_step(b, 1e-3, fn, acc=acc)
        acc = None
        for _ in range(50):
            acc = leapfrog_step(b, -1e-3, fn, acc=acc)
        np.testing.assert_allclose(b.positions, x0, atol=1e-9)
        np.testing.assert_allclose(b.velocities, v0, atol=1e-9)

    def test_second_order_convergence(self):
        """Halving dt must reduce the error ~4x (2nd-order scheme)."""
        def run(dt, steps):
            b = uniform_random(12, seed=9, vel_scale=0.3)
            fn = _accel_closure(b.mass, softening=0.1)
            acc = None
            for _ in range(steps):
                acc = leapfrog_step(b, dt, fn, acc=acc)
            return b.positions

        ref = run(1e-4, 800)   # high-resolution reference
        err_coarse = np.abs(run(8e-4, 100) - ref).max()
        err_fine = np.abs(run(4e-4, 200) - ref).max()
        assert err_coarse / err_fine > 3.0

    def test_momentum_conserved_exactly(self):
        b = uniform_random(40, seed=10)
        p0 = (b.mass[:, None] * b.velocities).sum(axis=0)
        fn = _accel_closure(b.mass)
        acc = None
        for _ in range(20):
            acc = leapfrog_step(b, 1e-3, fn, acc=acc)
        p1 = (b.mass[:, None] * b.velocities).sum(axis=0)
        np.testing.assert_allclose(p1, p0, atol=1e-10)

    def test_zero_dt_rejected(self):
        b = uniform_random(4)
        with pytest.raises(SolverError):
            leapfrog_step(b, 0.0, _accel_closure(b.mass))

    def test_bad_acc_shape_rejected(self):
        b = uniform_random(4)
        with pytest.raises(SolverError):
            leapfrog_step(b, 1e-3, _accel_closure(b.mass), acc=np.zeros((2, 3)))

    def test_returned_acc_matches_new_positions(self):
        b = uniform_random(10, seed=11)
        fn = _accel_closure(b.mass)
        acc = leapfrog_step(b, 1e-3, fn)
        np.testing.assert_allclose(acc, fn(b.positions), rtol=1e-12)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), n=st.integers(2, 40))
def test_leapfrog_reversibility_property(seed, n):
    """Property: KDK is time reversible for any small system."""
    b = uniform_random(n, seed=seed)
    x0 = b.positions.copy()
    fn = _accel_closure(b.mass, softening=0.05)
    acc = None
    for _ in range(10):
        acc = leapfrog_step(b, 1e-3, fn, acc=acc)
    acc = None
    for _ in range(10):
        acc = leapfrog_step(b, -1e-3, fn, acc=acc)
    np.testing.assert_allclose(b.positions, x0, atol=1e-8)
