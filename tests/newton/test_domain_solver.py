"""Tests for domain decomposition, repartitioning, solver, adaptor, io."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.hamr.allocator import Allocator
from repro.mpi.comm import run_spmd
from repro.newton.adaptor import NewtonDataAdaptor
from repro.newton.bodies import Bodies
from repro.newton.domain import SlabDomain
from repro.newton.ic import uniform_random
from repro.newton.io import read_checkpoint, write_checkpoint, write_snapshot
from repro.newton.solver import NewtonSolver, SolverConfig


class TestSlabDomain:
    def test_initial_selection_partitions_bodies(self):
        def fn(comm):
            dom = SlabDomain.create(-1.0, 1.0, comm)
            g = uniform_random(100, seed=0)
            local = dom.select_initial(g)
            return local.n

        out = run_spmd(4, fn)
        assert sum(out) == 100
        assert all(n > 0 for n in out)

    def test_repartition_conserves_bodies_and_mass(self):
        def fn(comm):
            dom = SlabDomain.create(-1.0, 1.0, comm)
            g = uniform_random(60, seed=1)
            local = dom.select_initial(g)
            # Scramble positions so bodies escape their slabs.
            rng = np.random.default_rng(comm.rank + 10)
            local.x[:] = rng.uniform(-1, 1, local.n)
            n_before = comm.allreduce(local.n)
            m_before = comm.allreduce(float(local.mass.sum()))
            local = dom.repartition(local, comm)
            lo, hi = dom.local_bounds
            inside = ((local.x >= lo) & (local.x < hi)) if comm.rank < comm.size - 1 \
                else (local.x >= lo)
            n_after = comm.allreduce(local.n)
            m_after = comm.allreduce(float(local.mass.sum()))
            return n_before, m_before, n_after, m_after, bool(inside.all())

        for n_before, m_before, n_after, m_after, all_inside in run_spmd(3, fn):
            assert n_before == n_after == 60
            assert m_before == pytest.approx(m_after)
            assert all_inside

    def test_repartition_size_one_is_identity(self):
        def fn(comm):
            dom = SlabDomain.create(-1.0, 1.0, comm)
            b = uniform_random(10)
            return dom.repartition(b, comm) is b

        assert run_spmd(1, fn) == [True]

    def test_repartition_preserves_ids(self):
        def fn(comm):
            dom = SlabDomain.create(-1.0, 1.0, comm)
            g = uniform_random(40, seed=2)
            local = dom.select_initial(g)
            local = dom.repartition(local, comm)
            return sorted(local.ids.tolist())

        out = run_spmd(2, fn)
        assert sorted(out[0] + out[1]) == list(range(40))

    def test_invalid_domain(self):
        with pytest.raises(SolverError):
            SlabDomain(1.0, 1.0, 0, 2)
        with pytest.raises(SolverError):
            SlabDomain(0.0, 1.0, 2, 2)


class TestSolverConfig:
    def test_defaults_valid(self):
        SolverConfig()

    def test_validation(self):
        with pytest.raises(SolverError):
            SolverConfig(n_bodies=0)
        with pytest.raises(SolverError):
            SolverConfig(dt=0)
        with pytest.raises(SolverError):
            SolverConfig(ic="magic")
        with pytest.raises(SolverError):
            SolverConfig(repartition_every=-1)


class TestNewtonSolver:
    def test_serial_energy_conservation(self):
        s = NewtonSolver(
            SolverConfig(n_bodies=80, dt=1e-3, seed=1,
                         mass_range=(0.01, 0.03), softening=0.05)
        )
        e0 = s.global_energy()
        s.run(50)
        e1 = s.global_energy()
        assert abs((e1 - e0) / e0) < 1e-3
        assert s.step_count == 50
        assert s.time == pytest.approx(0.05)

    def test_parallel_matches_serial(self):
        """Domain decomposition must not change the physics."""
        cfg = SolverConfig(n_bodies=64, dt=1e-3, seed=3,
                           mass_range=(0.01, 0.03), softening=0.05)
        serial = NewtonSolver(cfg)
        serial.run(10)
        ref = {int(i): (x, v) for i, x, v in
               zip(serial.bodies.ids, serial.bodies.x, serial.bodies.vx)}

        def fn(comm):
            s = NewtonSolver(cfg, comm)
            s.run(10)
            return {int(i): (x, v) for i, x, v in
                    zip(s.bodies.ids, s.bodies.x, s.bodies.vx)}

        merged = {}
        for part in run_spmd(4, fn):
            merged.update(part)
        assert set(merged) == set(ref)
        # Summation order differs between decompositions, and close
        # encounters amplify round-off; the trajectories must still
        # agree far beyond what any physical difference would allow.
        for i in ref:
            assert merged[i][0] == pytest.approx(ref[i][0], abs=1e-6)
            assert merged[i][1] == pytest.approx(ref[i][1], abs=1e-4)

    def test_parallel_energy_and_count(self):
        def fn(comm):
            s = NewtonSolver(
                SolverConfig(n_bodies=100, dt=1e-3, seed=4, repartition_every=3,
                             mass_range=(0.01, 0.03), softening=0.05),
                comm,
            )
            e0 = s.global_energy()
            s.run(12)
            return s.n_global(), abs((s.global_energy() - e0) / e0)

        for n, drift in run_spmd(4, fn):
            assert n == 100
            assert drift < 1e-3

    def test_device_assignment_round_robin(self):
        def fn(comm):
            s = NewtonSolver(SolverConfig(n_bodies=8), comm)
            return s.device_id

        assert run_spmd(4, fn) == [0, 1, 2, 3]

    def test_explicit_device(self):
        s = NewtonSolver(SolverConfig(n_bodies=8, device_id=2))
        assert s.device_id == 2

    def test_solver_time_charged_to_device(self):
        from repro.hw.node import get_node

        s = NewtonSolver(SolverConfig(n_bodies=50, device_id=1))
        s.run(3)
        assert len(s.step_times) == 3
        assert all(t > 0 for t in s.step_times)
        assert get_node().devices[1].timeline.available_at > 0

    def test_run_requires_bridge_and_adaptor_together(self):
        s = NewtonSolver(SolverConfig(n_bodies=8))
        with pytest.raises(SolverError):
            s.run(1, bridge=object())

    def test_plummer_ic(self):
        s = NewtonSolver(SolverConfig(n_bodies=100, ic="plummer", box=20.0))
        assert s.n_global() == 100


class TestNewtonDataAdaptor:
    def test_publishes_zero_copy_device_tagged_columns(self):
        s = NewtonSolver(SolverConfig(n_bodies=30, device_id=2))
        da = NewtonDataAdaptor(s)
        table = da.get_mesh("bodies")
        assert table.n_rows == 30
        col = table["x"]
        assert col.allocator is Allocator.OPENMP
        assert col.device_id == 2
        # Zero copy: mutating solver state is visible through the column.
        s.bodies.x[0] = 123.0
        assert col.get_data()[0] == 123.0

    def test_update_tracks_steps(self):
        s = NewtonSolver(SolverConfig(n_bodies=10))
        da = NewtonDataAdaptor(s)
        s.run(2)
        da.update(s)
        assert da.time_step == 2
        assert da.time == pytest.approx(2e-3)

    def test_unknown_mesh(self):
        da = NewtonDataAdaptor(NewtonSolver(SolverConfig(n_bodies=4)))
        with pytest.raises(KeyError):
            da.get_mesh("grid")

    def test_release_data_rebuilds(self):
        s = NewtonSolver(SolverConfig(n_bodies=4))
        da = NewtonDataAdaptor(s)
        t1 = da.get_mesh("bodies")
        da.release_data()
        t2 = da.get_mesh("bodies")
        assert t1 is not t2


class TestNewtonIO:
    def test_snapshot_vtk(self, tmp_path):
        b = uniform_random(10, seed=1)
        p = write_snapshot(b, tmp_path / "s.vtk")
        text = p.read_text()
        assert "POINTS 10 double" in text
        assert "SCALARS mass double 1" in text

    def test_checkpoint_round_trip(self, tmp_path):
        b = uniform_random(20, seed=2)
        p = write_checkpoint(b, tmp_path / "c.npz", step=5, time=0.5)
        loaded, step, time = read_checkpoint(p)
        assert step == 5 and time == 0.5
        np.testing.assert_array_equal(loaded.x, b.x)
        np.testing.assert_array_equal(loaded.ids, b.ids)

    def test_checkpoint_missing(self, tmp_path):
        with pytest.raises(SolverError):
            read_checkpoint(tmp_path / "nope.npz")
