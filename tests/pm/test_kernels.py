"""Tests for kernel launch on virtual devices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InteropError
from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.buffer import Buffer
from repro.hamr.runtime import current_clock
from repro.hamr.stream import Stream, StreamMode
from repro.hamr.view import accessible_view
from repro.hw.node import get_node
from repro.pm.kernels import KernelCost, launch
from repro.pm.registry import get_pm


def _dev_buffer(values, device_id=0, alloc=Allocator.CUDA):
    b = Buffer.allocate(len(values), np.float64, alloc, device_id=device_id)
    b.data[:] = values
    return b


class TestLaunch:
    def test_executes_real_numerics(self):
        a = _dev_buffer([1.0, 2.0, 3.0])
        out = Buffer.allocate(3, np.float64, Allocator.CUDA, device_id=0)
        launch(
            lambda x, y: np.multiply(x, 2.0, out=y),
            reads=[a], writes=[out], device_id=0,
        )
        np.testing.assert_array_equal(out.data, [2.0, 4.0, 6.0])

    def test_sync_launch_blocks_clock(self):
        a = _dev_buffer([0.0] * 100)
        t0 = current_clock().now
        launch(lambda x: None, reads=[a], device_id=0, flops=1e9,
               mode=StreamMode.SYNC)
        assert current_clock().now > t0

    def test_async_launch_returns_immediately(self):
        a = _dev_buffer([0.0] * 100)
        t0 = current_clock().now
        ev = launch(lambda x: None, reads=[a], device_id=0, flops=1e9,
                    mode=StreamMode.ASYNC)
        assert current_clock().now == t0
        assert ev.end > t0

    def test_writes_carry_pending_event(self):
        out = Buffer.allocate(4, np.float64, Allocator.CUDA, device_id=0)
        ev = launch(lambda y: None, writes=[out], device_id=0, flops=1e9,
                    mode=StreamMode.ASYNC)
        assert out.ready_at == ev.end

    def test_kernel_waits_for_operands(self):
        a = Buffer.allocate(
            1000, np.float64, Allocator.CUDA_ASYNC, device_id=0,
            stream_mode=StreamMode.ASYNC,
        )
        a.fill(1.0)
        ready = a.ready_at
        ev = launch(lambda x: None, reads=[a], device_id=0,
                    mode=StreamMode.ASYNC)
        assert ev.start >= ready

    def test_host_launch_uses_cores(self):
        a = Buffer.wrap(np.zeros(10), Allocator.MALLOC)
        e1 = launch(lambda x: None, reads=[a], device_id=HOST_DEVICE_ID,
                    flops=1e10, cores=1, mode=StreamMode.ASYNC,
                    stream=Stream(device_id=HOST_DEVICE_ID))
        e64 = launch(lambda x: None, reads=[a], device_id=HOST_DEVICE_ID,
                     flops=1e10, cores=64, mode=StreamMode.ASYNC,
                     stream=Stream(device_id=HOST_DEVICE_ID))
        assert e64.duration < e1.duration

    def test_device_timeline_reflects_kernels(self):
        node = get_node()
        a = _dev_buffer([0.0], device_id=2)
        launch(lambda x: None, reads=[a], device_id=2, flops=1e9)
        assert node.devices[2].timeline.available_at > 0


class TestPMLaunch:
    def test_pm_launch_checks_accessibility(self):
        """A CUDA kernel cannot read a buffer resident on another device."""
        a = _dev_buffer([1.0], device_id=0)
        with pytest.raises(InteropError):
            get_pm(PMKind.CUDA).launch(lambda x: None, reads=[a], device_id=1)

    def test_pm_launch_with_staged_view(self):
        """The paper's pattern: stage via the access API, then launch."""
        a = _dev_buffer([1.0, 2.0], device_id=0)
        v = accessible_view(a, PMKind.CUDA, 1)
        out = Buffer.allocate(2, np.float64, Allocator.CUDA, device_id=1)
        get_pm(PMKind.CUDA).launch(
            lambda x, y: np.add(x, x, out=y),
            reads=[v.buffer], writes=[out], device_id=1,
        )
        np.testing.assert_array_equal(out.data, [2.0, 4.0])

    def test_uva_buffer_launchable_anywhere(self):
        a = Buffer.allocate(2, np.float64, Allocator.CUDA_UVA, device_id=0)
        a.fill(1.0)
        get_pm(PMKind.HIP).launch(lambda x: None, reads=[a], device_id=3)


class TestKernelCost:
    def test_addition_combines_flops_and_bytes(self):
        a = KernelCost(flops=10, bytes_moved=100, atomic_fraction=0.0)
        b = KernelCost(flops=20, bytes_moved=300, atomic_fraction=1.0)
        c = a + b
        assert c.flops == 30
        assert c.bytes_moved == 400
        assert c.atomic_fraction == pytest.approx(300 / 400)

    def test_addition_of_empty_costs(self):
        z = KernelCost() + KernelCost()
        assert z.flops == 0
        assert z.atomic_fraction == 0.0
