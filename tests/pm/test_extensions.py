"""Tests for the Section 5 extension PMs: SYCL and Kokkos.

The paper's future work — "We will also add support for SYCL as well as
third party PMs such as Kokkos" — implemented against the same data
model, so these tests exercise the full interop path: allocate under
one extension PM, consume from any other PM anywhere on the node.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.runtime import set_active_device
from repro.hw.node import get_node
from repro.pm.registry import get_pm
from repro.svtk.hamr_array import HAMRDataArray


class TestSyclAllocators:
    def test_device_allocation(self):
        a = HAMRDataArray.new("x", 16, allocator=Allocator.SYCL, device_id=1)
        assert a.device_id == 1
        assert not a.on_host

    def test_shared_usm_accessible_everywhere(self):
        """malloc_shared memory migrates: zero-copy from host or device."""
        a = HAMRDataArray.new("x", 16, allocator=Allocator.SYCL_SHARED, device_id=0)
        assert not a.get_host_accessible().is_temporary
        assert not a.get_cuda_accessible(device_id=3).is_temporary

    def test_host_usm_device_visible(self):
        """malloc_host memory is host-resident and device-visible."""
        a = HAMRDataArray.new("x", 16, allocator=Allocator.SYCL_HOST)
        assert a.on_host
        assert not a.get_sycl_accessible(device_id=2).is_temporary

    def test_host_usm_accounted_on_host(self):
        node = get_node()
        a = HAMRDataArray.new("x", 1000, allocator=Allocator.SYCL_HOST)
        assert node.host.mem_used == a.buffer.nbytes
        assert all(d.mem_used == 0 for d in node.devices)


class TestKokkosAllocator:
    def test_device_allocation(self):
        a = HAMRDataArray.new("v", 8, allocator=Allocator.KOKKOS, device_id=2)
        assert a.device_id == 2
        assert a.allocator is Allocator.KOKKOS


class TestCrossPMInterop:
    def test_sycl_data_consumed_by_cuda(self):
        """Data allocated under SYCL, read by CUDA code elsewhere."""
        a = HAMRDataArray.new("x", 8, allocator=Allocator.SYCL, device_id=0)
        a.fill(4.0)
        v = a.get_cuda_accessible(device_id=1)
        assert v.is_temporary
        a.synchronize()
        np.testing.assert_array_equal(v.get(), [4.0] * 8)

    def test_kokkos_data_consumed_by_host(self):
        a = HAMRDataArray.new("x", 8, allocator=Allocator.KOKKOS, device_id=3)
        a.fill(7.0)
        v = a.get_host_accessible()
        assert v.is_temporary
        a.synchronize()
        np.testing.assert_array_equal(v.get(), [7.0] * 8)

    def test_openmp_data_consumed_by_sycl_same_device(self):
        """Same-device, cross-PM access is zero-copy (raw device pointers)."""
        a = HAMRDataArray.new("x", 8, allocator=Allocator.OPENMP, device_id=1)
        assert not a.get_sycl_accessible(device_id=1).is_temporary

    def test_kokkos_accessor_defaults_to_active_device(self):
        a = HAMRDataArray.new("x", 8, allocator=Allocator.MALLOC)
        set_active_device(3)
        v = a.get_kokkos_accessible()
        assert v.buffer.device_id == 3


class TestExtensionKernelLaunch:
    def test_sycl_kernel_on_device(self):
        a = HAMRDataArray.new("x", 4, allocator=Allocator.SYCL, device_id=0)
        a.get_data()[:] = 2.0
        out = HAMRDataArray.new("y", 4, allocator=Allocator.SYCL, device_id=0)
        get_pm(PMKind.SYCL).launch(
            lambda x, y: np.multiply(x, 3.0, out=y),
            reads=[a.buffer], writes=[out.buffer], device_id=0,
        )
        np.testing.assert_array_equal(out.get_data(), [6.0] * 4)

    def test_kokkos_kernel_on_host(self):
        """Kokkos host backend: the same kernel API on the CPU."""
        a = HAMRDataArray.new("x", 4, allocator=Allocator.MALLOC)
        a.get_data()[:] = 1.0
        get_pm(PMKind.KOKKOS).launch(
            lambda x: None, reads=[a.buffer], device_id=HOST_DEVICE_ID,
        )
