"""Tests for the PM registry and interoperability matrix."""

from __future__ import annotations

import pytest

from repro.hamr.allocator import Allocator, PMKind
from repro.pm.base import ProgrammingModel
from repro.pm.registry import (
    can_interoperate,
    get_pm,
    pm_for_allocator,
    registered_pms,
)


class TestRegistry:
    def test_all_kinds_registered(self):
        kinds = {pm.kind for pm in registered_pms()}
        assert kinds == set(PMKind)

    def test_get_pm_singleton(self):
        assert get_pm(PMKind.CUDA) is get_pm(PMKind.CUDA)

    def test_pm_for_allocator(self):
        assert pm_for_allocator(Allocator.CUDA_ASYNC).kind is PMKind.CUDA
        assert pm_for_allocator(Allocator.OPENMP).kind is PMKind.OPENMP
        assert pm_for_allocator(Allocator.MALLOC).kind is PMKind.HOST

    def test_every_pm_is_programming_model(self):
        for pm in registered_pms():
            assert isinstance(pm, ProgrammingModel)


class TestAllocatorOwnership:
    def test_allocator_sets_are_disjoint(self):
        seen = set()
        for pm in registered_pms():
            assert not (pm.allocators & seen)
            seen |= pm.allocators

    def test_allocator_sets_cover_enum(self):
        covered = set()
        for pm in registered_pms():
            covered |= pm.allocators
        assert covered == set(Allocator)

    def test_owns_allocator(self):
        assert get_pm(PMKind.HIP).owns_allocator(Allocator.HIP_UVA)
        assert not get_pm(PMKind.HIP).owns_allocator(Allocator.CUDA)


class TestInterop:
    @pytest.mark.parametrize("producer", list(PMKind))
    @pytest.mark.parametrize("consumer", list(PMKind))
    def test_all_pairs_interoperate(self, producer, consumer):
        """Paper S2: data can pass between any two codes in any PMs."""
        assert can_interoperate(producer, consumer)


class TestTargets:
    def test_host_pm_rejects_device_target(self):
        from repro.errors import LocationError

        with pytest.raises(LocationError):
            get_pm(PMKind.HOST).validate_target(0)

    def test_cuda_rejects_host_target(self):
        from repro.errors import LocationError

        with pytest.raises(LocationError):
            get_pm(PMKind.CUDA).validate_target(-1)

    def test_openmp_may_target_host(self):
        """OpenMP offload falls back to host execution."""
        get_pm(PMKind.OPENMP).validate_target(-1)

    def test_sycl_and_kokkos_may_target_host(self):
        """The Section 5 extensions both have host backends."""
        get_pm(PMKind.SYCL).validate_target(-1)
        get_pm(PMKind.KOKKOS).validate_target(-1)

    def test_sycl_and_kokkos_target_devices(self):
        get_pm(PMKind.SYCL).validate_target(0)
        get_pm(PMKind.KOKKOS).validate_target(3)

    def test_device_pm_validates_device_exists(self):
        from repro.errors import LocationError

        with pytest.raises(LocationError):
            get_pm(PMKind.CUDA).validate_target(99)
