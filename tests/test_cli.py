"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestTable1Command:
    def test_prints_matrix(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "lock step" in out
        assert "512" in out and "384" in out and "256" in out


class TestStudyCommand:
    def test_findings_hold_and_exit_zero(self, capsys):
        assert main(["study", "--steps", "50"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out and "Figure 3" in out
        assert "VIOLATED" not in out

    def test_overhead_knob(self, capsys):
        assert main(["study", "--steps", "20", "--overhead-ms", "10"]) == 0


class TestRunCommand:
    @pytest.mark.parametrize("placement", ["host", "same", "dedicated1", "dedicated2"])
    def test_each_placement(self, placement, capsys):
        assert main([
            "run", "--placement", placement, "--method", "asynchronous",
            "--bodies", "200", "--steps", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "total run time" in out

    def test_lockstep(self, capsys):
        assert main(["run", "--bodies", "150", "--steps", "1"]) == 0


class TestTraceCommand:
    def test_writes_trace_file(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main([
            "trace", "--bodies", "150", "--steps", "1", "--out", str(out_file),
        ]) == 0
        data = json.loads(out_file.read_text())
        assert any(e.get("ph") == "X" for e in data)


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_bad_placement_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--placement", "moon"])
