"""The canonical trace format: round trips, validation, canonical forms."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.control.governors import Decision
from repro.control.signals import StepObservation
from repro.errors import TraceError, TraceFormatError, TraceVersionError
from repro.svtk.table import TableData
from repro.trace.format import (
    TRACE_VERSION,
    Trace,
    TraceEvent,
    canonical_decision,
    canonical_float,
    canonical_observation,
    decode_array,
    decode_table,
    encode_array,
    encode_table,
)


def small_trace() -> Trace:
    header = {
        "kind": "header", "version": TRACE_VERSION, "name": "t",
        "meta": {}, "m": 1, "n": 1, "service": {}, "cost": None,
        "control": None,
    }
    events = [
        TraceEvent("publish", rank=0, seq=0,
                   body=(("entry", 0.5), ("step", 1))).to_dict(),
        TraceEvent("obs", rank=0, seq=1, body=(("step", 1),)).to_dict(),
    ]
    counters = [{"kind": "counters", "rank": 0, "pipeline": "t", "steps": 1}]
    return Trace(header=header, events=events, counters=counters)


class TestCanonicalForms:
    def test_canonical_float_nine_digits(self):
        assert canonical_float(0.123456789123) == 0.123456789
        assert canonical_float(1.0) == 1.0
        # Survives a JSON round trip bit-exactly.
        v = canonical_float(3.14159265358979)
        assert json.loads(json.dumps(v)) == v

    def test_canonical_decision_drops_time(self):
        d = Decision(
            governor="codec", step=3, time=12.5, action="codec=zlib",
            reason="why", args=(("ratio", 4.123456789123), ("n", 2)),
        )
        out = canonical_decision(d)
        assert "time" not in out
        assert out["governor"] == "codec"
        assert out["args"] == {"n": 2, "ratio": 4.12345679}
        # Accepts the dict form too, identically.
        assert canonical_decision(d.to_dict()) == out

    def test_canonical_flow_decision_drops_measured_signals(self):
        d = Decision(
            governor="flow", step=2, time=1.0, action="credits=8",
            reason="retry_rate 0.3", args=(
                ("credits", 8), ("retry_rate", 0.3),
                ("ack_latency", 1e-5), ("inflight_peak", 4),
            ),
        )
        out = canonical_decision(d)
        assert "reason" not in out
        assert out["args"] == {"credits": 8}

    def test_canonical_observation(self):
        obs = StepObservation(
            step=4, t=9.9, payload_bytes=100, wire_bytes=50, retries=2,
            compression_ratio=2.000000001234, extras=(("codec", "zlib"),),
        )
        out = canonical_observation(obs)
        assert out == {
            "step": 4, "payload_bytes": 100, "wire_bytes": 50,
            "retries": 2, "ratio": 2.0, "codec": "zlib",
        }


class TestArrayCodec:
    def test_round_trip_dtypes(self):
        for arr in (
            np.arange(7, dtype=np.int64),
            np.linspace(0.0, 1.0, 13),
            np.array([1, 2, 3], dtype=np.int32),
        ):
            out = decode_array(encode_array(arr))
            assert out.dtype == arr.dtype
            np.testing.assert_array_equal(out, arr)

    def test_decoded_array_is_writable(self):
        out = decode_array(encode_array(np.arange(3, dtype=np.float64)))
        out[0] = 99.0
        assert out[0] == 99.0

    def test_rejects_2d(self):
        with pytest.raises(TraceFormatError):
            encode_array(np.zeros((2, 2)))

    def test_rejects_bad_payloads(self):
        with pytest.raises(TraceFormatError):
            decode_array({"dtype": "float64", "data": "!!!not-base64!!!"})
        with pytest.raises(TraceFormatError):
            decode_array({"dtype": "float64", "data": "AAAA"})  # 3 bytes
        with pytest.raises(TraceFormatError):
            decode_array({"data": "AAAA"})

    def test_table_round_trip_preserves_column_order(self):
        table = TableData("m")
        table.add_host_column("zeta", np.arange(4, dtype=np.float64))
        table.add_host_column("alpha", np.arange(4, dtype=np.int64))
        out = decode_table("m", encode_table(table))
        assert out.column_names == ("zeta", "alpha")
        np.testing.assert_array_equal(
            out.column("zeta").as_numpy_host(),
            table.column("zeta").as_numpy_host(),
        )

    def test_table_rejects_missing_column(self):
        payload = encode_table(
            TableData("m")
        )
        payload["order"] = ["ghost"]
        with pytest.raises(TraceFormatError):
            decode_table("m", payload)


class TestTraceEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceEvent("bogus", rank=0, seq=0)

    def test_to_dict_merges_body(self):
        e = TraceEvent("fin", rank=1, seq=2, body=(("pipeline", "p"),))
        assert e.to_dict() == {
            "kind": "fin", "rank": 1, "seq": 2, "pipeline": "p",
        }


class TestTraceSerialization:
    def test_jsonl_round_trip(self):
        trace = small_trace()
        text = trace.to_jsonl()
        back = Trace.from_jsonl(text)
        assert back.header == trace.header
        assert back.events == trace.events
        assert back.counters == trace.counters
        assert back.to_jsonl() == text

    def test_jsonl_is_canonical(self):
        text = small_trace().to_jsonl()
        assert text.endswith("\n")
        for line in text.splitlines():
            record = json.loads(line)
            assert line == json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )

    def test_records_sorted_by_rank_seq(self):
        trace = small_trace()
        trace.events = list(reversed(trace.events))
        records = trace.records()
        assert [r["seq"] for r in records[1:3]] == [0, 1]

    def test_rank_events_filters(self):
        trace = small_trace()
        assert len(trace.rank_events(0, kinds=("publish",))) == 1
        assert trace.rank_events(5) == []
        assert trace.ranks == (0,)

    def test_nan_rejected(self):
        trace = small_trace()
        trace.events[0]["entry"] = float("nan")
        with pytest.raises(TraceFormatError):
            trace.to_jsonl()


class TestTraceValidation:
    def test_bad_json_line(self):
        with pytest.raises(TraceFormatError) as e:
            Trace.from_jsonl("not json\n")
        assert "line 1" in str(e.value)

    def test_missing_header(self):
        with pytest.raises(TraceFormatError):
            Trace.from_jsonl('{"kind":"footer","events":0,"counters":0}\n')
        with pytest.raises(TraceFormatError):
            Trace.from_jsonl("")

    def test_version_skew_is_structured(self):
        trace = small_trace()
        trace.header["version"] = TRACE_VERSION + 1
        with pytest.raises(TraceVersionError) as e:
            Trace.from_jsonl(trace.to_jsonl())
        assert e.value.details["found"] == TRACE_VERSION + 1
        assert e.value.details["supported"] == TRACE_VERSION
        assert isinstance(e.value, TraceError)

    def test_missing_footer(self):
        text = small_trace().to_jsonl()
        body = "".join(text.splitlines(keepends=True)[:-1])
        with pytest.raises(TraceFormatError):
            Trace.from_jsonl(body)

    def test_unknown_record_kind(self):
        trace = small_trace()
        text = trace.to_jsonl().replace('"kind":"obs"', '"kind":"wat"')
        with pytest.raises(TraceFormatError):
            Trace.from_jsonl(text)

    def test_event_needs_integer_rank_seq(self):
        text = small_trace().to_jsonl().replace(
            '"kind":"obs","rank":0', '"kind":"obs","rank":"zero"'
        )
        with pytest.raises(TraceFormatError):
            Trace.from_jsonl(text)

    def test_footer_count_mismatch(self):
        trace = small_trace()
        lines = trace.to_jsonl().splitlines(keepends=True)
        # Drop one event but keep the original footer counts.
        with pytest.raises(TraceFormatError):
            Trace.from_jsonl("".join(lines[:1] + lines[2:]))
