"""Record→replay→re-record fixpoints across the workload zoo.

The acceptance contract: a trace recorded from any seeded zoo workload
replays *bit-identically* — decision logs, retry counters, and
simulated time stamps equal between the recorded run and its replay,
and between independent re-recordings of the same seeded run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceFormatError, TraceVersionError
from repro.trace import (
    Trace,
    diff_traces,
    fresh_substrate,
    replay_trace,
)
from repro.workloads.zoo import GOLDEN_SCENARIOS, ZOO_WORKLOADS, record_zoo

ALL_SCENARIOS = tuple(ZOO_WORKLOADS) + tuple(GOLDEN_SCENARIOS)


def decisions_of(trace: Trace) -> list:
    return [e for e in trace.events if e["kind"] == "decision"]


def retries_of(trace: Trace) -> list:
    return [
        (c["rank"], c["pipeline"], c["retries"]) for c in trace.counters
    ]


def entries_of(trace: Trace) -> list:
    return [
        (e["rank"], e["seq"], e["entry"])
        for e in trace.events if e["kind"] in ("publish", "fin")
    ]


class TestZooReplayFixpoint:
    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_replay_is_byte_identical(self, name):
        trace, _producers, _endpoints = record_zoo(name, seed=3)
        recorded = trace.to_jsonl()
        fresh_substrate()
        replayed = replay_trace(recorded).trace
        assert replayed.to_jsonl() == recorded, "\n".join(
            diff_traces(trace, replayed)
        )
        # The contract, spelled out: decisions, retry counters, and
        # simulated publish stamps all survive the replay exactly.
        assert decisions_of(replayed) == decisions_of(trace)
        assert retries_of(replayed) == retries_of(trace)
        assert entries_of(replayed) == entries_of(trace)

    @pytest.mark.parametrize("name", ZOO_WORKLOADS)
    def test_re_recording_is_byte_identical(self, name):
        first, _p, _e = record_zoo(name, seed=5)
        second, _p, _e = record_zoo(name, seed=5)
        assert first.to_jsonl() == second.to_jsonl(), "\n".join(
            diff_traces(first, second)
        )

    def test_different_seeds_differ(self):
        a, _p, _e = record_zoo("stencil", seed=1)
        b, _p, _e = record_zoo("stencil", seed=2)
        assert a.to_jsonl() != b.to_jsonl()

    def test_zoo_covers_four_structural_shapes(self):
        assert set(ZOO_WORKLOADS) == {
            "newton", "stencil", "particle", "request-stream",
        }

    def test_unknown_scenario_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            record_zoo("no-such-workload")


class TestReplaySemantics:
    def test_replay_delivers_payloads_to_endpoints(self):
        trace, _p, recorded_endpoints = record_zoo("stencil", seed=3)
        fresh_substrate()
        result = replay_trace(trace.to_jsonl())
        assert [e.steps_processed for e in result.endpoints] == [
            e.steps_processed for e in recorded_endpoints
        ]

    def test_replayed_tables_are_bit_exact(self):
        from repro.trace.format import decode_table

        trace, _p, _e = record_zoo("particle", seed=3)
        publishes = trace.rank_events(0, kinds=("publish",))
        assert publishes
        table = decode_table(
            "particles", publishes[0]["meshes"]["particles"]
        )
        assert table.column_names == ("id", "x")
        assert table.column("x").as_numpy_host().dtype == np.float64

    def test_trace_instants_bridge(self):
        from repro.hw.trace import trace_instants

        trace, _p, _e = record_zoo("stencil", seed=3)
        instants = trace_instants(trace.records())
        assert len(instants) == len(trace.events)
        kinds = {i["cat"] for i in instants}
        assert "trace.publish" in kinds and "trace.decision" in kinds
        # Stamped on the rank's track at monotone simulated times.
        rank0 = [i for i in instants if i["tid"] == 0]
        ts = [i["ts"] for i in rank0]
        assert ts == sorted(ts)


class TestReplayErrors:
    def test_version_skew_raises_structured(self):
        trace, _p, _e = record_zoo("codec", seed=0)
        text = trace.to_jsonl().replace('"version":1', '"version":99')
        with pytest.raises(TraceVersionError) as err:
            replay_trace(text)
        assert err.value.details["found"] == 99

    def test_malformed_header_config_raises_structured(self):
        trace, _p, _e = record_zoo("codec", seed=0)
        trace.header["service"] = {"budget": "not-a-service"}
        with pytest.raises(TraceFormatError) as err:
            replay_trace(trace)
        assert err.value.details["section"] == "service"

    def test_truncated_trace_raises(self):
        trace, _p, _e = record_zoo("codec", seed=0)
        lines = trace.to_jsonl().splitlines(keepends=True)
        with pytest.raises(TraceFormatError):
            replay_trace("".join(lines[:-2]))


class TestDiffTraces:
    """The record-level differ behind the golden gate's error message."""

    def test_identical_traces_diff_empty(self):
        trace, _p, _e = record_zoo("codec", seed=4)
        assert diff_traces(trace, trace) == []

    def test_divergence_names_the_first_bad_record(self):
        a, _p, _e = record_zoo("codec", seed=4)
        b = Trace.from_jsonl(a.to_jsonl())
        b.events[1]["retries"] = 99
        lines = diff_traces(a, b)
        assert len(lines) == 1
        assert lines[0].startswith("record 2:")  # header is record 0

    def test_length_mismatch_reports_missing_records(self):
        a, _p, _e = record_zoo("codec", seed=4)
        b = Trace.from_jsonl(a.to_jsonl())
        del b.events[-1]
        assert any("<missing>" in line for line in diff_traces(a, b))

    def test_limit_truncates_long_diffs(self):
        a, _p, _e = record_zoo("codec", seed=4)
        b = Trace.from_jsonl(a.to_jsonl())
        for event in b.events:
            event["seq"] = event["seq"] + 1000
        lines = diff_traces(a, b, limit=3)
        assert len(lines) == 4
        assert lines[-1] == "... (diff truncated)"
