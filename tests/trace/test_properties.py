"""Property tests: fixpoints over arbitrary seeded runs, robust parsing.

Two families:

- **Fixpoint**: for *any* seeded scenario configuration, record →
  replay → re-record is the identity on trace bytes.
- **Robustness**: arbitrary corruption of a valid trace — field type
  skew, version skew, truncation, record deletion — raises a
  structured :class:`TraceError` subclass, never an unstructured
  crash and never a silently-wrong trace.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError, TraceFormatError
from repro.trace import Trace, replay_trace
from repro.trace.configs import (
    decode_control,
    decode_cost,
    decode_service,
    decode_transport,
    encode_control,
    encode_cost,
    encode_service,
    encode_transport,
)
from repro.trace.format import canonical_float
from repro.workloads.zoo import record_zoo

# Scenario cost is 0.01-0.05 s each; keep the example budget modest.
FIXPOINT_SETTINGS = dict(max_examples=8, deadline=None)


class TestFixpointProperties:
    @settings(**FIXPOINT_SETTINGS)
    @given(
        name=st.sampled_from(["codec", "stencil", "request-stream"]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_record_replay_rerecord_is_identity(self, name, seed):
        recorded = record_zoo(name, seed=seed)[0].to_jsonl()
        assert replay_trace(recorded).trace.to_jsonl() == recorded

    @settings(**FIXPOINT_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_parse_roundtrip_any_seed(self, seed):
        text = record_zoo("codec", seed=seed)[0].to_jsonl()
        assert Trace.from_jsonl(text).to_jsonl() == text

    @settings(max_examples=20, deadline=None)
    @given(
        value=st.floats(allow_nan=False, allow_infinity=False, width=64),
    )
    def test_canonical_float_is_idempotent_and_json_stable(self, value):
        c = canonical_float(value)
        assert canonical_float(c) == c
        assert json.loads(json.dumps(c)) == c


class TestConfigRoundTrips:
    def test_service_config_roundtrip(self):
        from repro.workloads.zoo import zoo_entry

        for name in ("newton", "request-stream", "flow"):
            entry = zoo_entry(name, seed=3)
            payload = encode_service(entry["config"])
            assert encode_service(decode_service(payload)) == payload
            control = encode_control(entry.get("control"))
            assert encode_control(decode_control(control)) == control
            cost = encode_cost(entry.get("cost"))
            assert encode_cost(decode_cost(cost)) == cost

    def test_transport_roundtrip_preserves_faults(self):
        from repro.transport.config import TransportConfig

        t = TransportConfig(compression="zlib", chunk_bytes=512).with_faults(
            drop=0.1, duplicate=0.05, seed=42,
            congestion_bytes=4096, congestion_drop=0.25,
        )
        payload = encode_transport(t)
        back = decode_transport(payload)
        assert encode_transport(back) == payload
        assert back.faults.drop == t.faults.drop
        assert back.faults.seed == t.faults.seed

    def test_bad_section_is_structured(self):
        with pytest.raises(TraceFormatError) as err:
            decode_transport({"compression": "zlib", "retry": "nope"})
        assert err.value.details["section"] == "transport"


def _valid_lines():
    trace = record_zoo("codec", seed=1)[0]
    return trace.to_jsonl().splitlines()


_LINES = _valid_lines()


class TestCorruptionProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        index=st.integers(min_value=0, max_value=len(_LINES) - 1),
        data=st.data(),
    )
    def test_field_skew_never_crashes_unstructured(self, index, data):
        record = json.loads(_LINES[index])
        key = data.draw(st.sampled_from(sorted(record)))
        record[key] = data.draw(
            st.one_of(st.none(), st.text(max_size=4), st.lists(st.integers(), max_size=2))
        )
        lines = list(_LINES)
        lines[index] = json.dumps(record, sort_keys=True, separators=(",", ":"))
        text = "\n".join(lines) + "\n"
        try:
            replay_trace(text)
        except TraceError:
            pass  # structured rejection is the contract
        # Acceptance is fine too: not every field is load-bearing
        # (e.g. meta values) — the property is "no unstructured crash".

    @settings(max_examples=20, deadline=None)
    @given(drop=st.integers(min_value=0, max_value=len(_LINES) - 1))
    def test_any_single_record_deletion_is_detected(self, drop):
        lines = [l for i, l in enumerate(_LINES) if i != drop]
        with pytest.raises(TraceError):
            Trace.from_jsonl("\n".join(lines) + "\n")

    @settings(max_examples=20, deadline=None)
    @given(version=st.integers(min_value=-3, max_value=200).filter(lambda v: v != 1))
    def test_any_version_skew_is_detected(self, version):
        header = json.loads(_LINES[0])
        header["version"] = version
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        lines += _LINES[1:]
        with pytest.raises(TraceError) as err:
            Trace.from_jsonl("\n".join(lines) + "\n")
        assert isinstance(err.value.details, dict)
