"""RepartitionGovernor and ArrayCoordinator: the load-balance loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.array import ArrayCoordinator, DistributedArray, HaloExchanger
from repro.control import RepartitionGovernor
from repro.control.plan import ControlConfig, ControlPlane
from repro.mpi import run_spmd

BLOCK_COSTS = [9.0, 1.0, 1.0, 1.0]   # block 0 is hot
OWNERS = (0, 0, 1, 1)                # block layout: rank 0 carries it
RANK_BUSY = [10.0, 2.0]
QUIET_HALO = [0.0, 0.0]


def rebalance(gov, **overrides):
    args = dict(
        step=4, owners=OWNERS, block_costs=BLOCK_COSTS,
        rank_busy=RANK_BUSY, halo_bytes=QUIET_HALO, t=4.0,
    )
    args.update(overrides)
    return gov.rebalance(**args)


class TestGovernor:
    def test_busy_skew_triggers_a_chain_recut(self):
        applied = []
        gov = RepartitionGovernor(actuator=applied.append, skew=1.25)
        decision, owners = rebalance(gov)
        assert owners == (0, 1, 1, 1)  # hot block isolated
        assert applied == [owners]
        assert decision.applied
        assert decision.governor == "repartition"
        assert decision.action == "repartition: move 1 of 4 blocks"
        assert decision.time == 4.0
        assert decision.args_dict["moved"] == 1
        assert decision.args_dict["busy_skew"] == pytest.approx(10 * 2 / 12)
        assert decision.args_dict["worst_before"] == 10.0
        assert decision.args_dict["worst_after"] == 9.0

    def test_halo_skew_alone_triggers(self):
        gov = RepartitionGovernor(actuator=lambda o: None, skew=1.25)
        decision, owners = rebalance(
            gov, rank_busy=[6.0, 6.0], halo_bytes=[3000.0, 100.0]
        )
        assert owners is not None
        assert (
            decision.args_dict["halo_skew"]
            > decision.args_dict["busy_skew"]
        )

    def test_quiet_signals_do_nothing(self):
        gov = RepartitionGovernor(actuator=lambda o: None, skew=1.25)
        assert rebalance(gov, rank_busy=[6.0, 6.1]) == (None, None)
        assert rebalance(gov, rank_busy=[0.0, 0.0]) == (None, None)

    def test_disabled_and_single_rank_skip(self):
        gov = RepartitionGovernor(enabled=False)
        assert rebalance(gov) == (None, None)
        gov = RepartitionGovernor()
        assert rebalance(
            gov, owners=(0, 0, 0, 0), rank_busy=[10.0],
            halo_bytes=[0.0],
        ) == (None, None)

    def test_already_optimal_layout_is_left_alone(self):
        gov = RepartitionGovernor(actuator=lambda o: None)
        # The chain cut of these costs IS the current layout.
        decision, owners = rebalance(gov, owners=(0, 1, 1, 1))
        assert (decision, owners) == (None, None)

    def test_non_improving_relabel_is_refused(self):
        gov = RepartitionGovernor(actuator=lambda o: None)
        # Equal block costs: the re-cut would only swap labels.
        decision, owners = rebalance(
            gov, owners=(1, 0), block_costs=[2.0, 2.0],
            rank_busy=[4.0, 0.0],
        )
        assert (decision, owners) == (None, None)

    def test_cooldown_holds_after_an_applied_recut(self):
        gov = RepartitionGovernor(actuator=lambda o: None, cooldown=2)
        _, owners = rebalance(gov)
        assert owners is not None
        assert rebalance(gov, step=8) == (None, None)
        assert rebalance(gov, step=12) == (None, None)
        _, again = rebalance(gov, step=16)
        assert again is not None

    def test_frozen_logs_but_does_not_actuate(self):
        applied = []
        gov = RepartitionGovernor(actuator=applied.append, frozen=True)
        decision, owners = rebalance(gov)
        assert decision is not None and not decision.applied
        assert owners is None
        assert applied == []

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RepartitionGovernor(skew=1.0)
        with pytest.raises(ValueError):
            RepartitionGovernor(cooldown=-1)


def run_loop(size, *, control=None, steps=8, interval=4, warmup=1,
             hot_cost=8.0):
    """Drive a coordinator loop: block 0's charges dominate."""

    def main(comm):
        plane = ControlPlane(control, comm=comm) if control else None
        array = DistributedArray.create(
            comm, 64, block_rows=8, halo=1, device_id=0,
        )
        array[:] = np.arange(64, dtype=np.float64)
        exchanger = HaloExchanger(comm)
        coordinator = ArrayCoordinator(
            array, exchanger, plane=plane,
            interval=interval, warmup=warmup,
        )
        for step in range(1, steps + 1):
            busy = {
                b: hot_cost if b == 0 else 1.0
                for b in array.partition.blocks_of(comm.rank)
            }
            coordinator.observe(step, busy, t=float(step))
        contents = array[:]
        decisions = [d.to_dict() for d in plane.decisions] if plane else []
        exchanger.close()
        array.close()
        return coordinator, contents, decisions

    return run_spmd(size, main)


class TestCoordinator:
    def test_warmup_then_cadence(self):
        def main(comm):
            array = DistributedArray.create(comm, 64, block_rows=8)
            c = ArrayCoordinator(array, None, interval=4, warmup=2)
            due = [s for s in range(1, 13) if c.due(s)]
            array.close()
            return due

        assert run_spmd(1, main) == [[2, 4, 8, 12]]

    def test_skewed_charges_trigger_one_coordinated_recut(self):
        out = run_loop(2)
        owners = {tuple(c.array.partition.owners) for c, _co, _d in out}
        assert len(owners) == 1  # every rank switched to the same plan
        (new_owners,) = owners
        assert new_owners != (0, 0, 0, 0, 1, 1, 1, 1)
        for coordinator, contents, _decisions in out:
            assert coordinator.repartitions == 1
            assert coordinator.blocks_moved > 0
            # The handoff preserved every row.
            np.testing.assert_array_equal(
                contents, np.arange(64, dtype=np.float64)
            )
        # bytes_moved counts *shipped* payload: the losing rank paid it.
        assert sum(c.bytes_moved for c, _co, _d in out) > 0

    def test_single_rank_loop_is_idle(self):
        out = run_loop(1)
        coordinator = out[0][0]
        assert coordinator.rounds == 0
        assert coordinator.repartitions == 0

    def test_plane_config_disables_and_logs(self):
        off = ControlConfig.from_xml_attrs(
            {"execution": "off", "codec": "off", "placement": "off",
             "pool": "off", "repartition": "off"},
        )
        out = run_loop(2, control=off)
        assert all(c.repartitions == 0 for c, _co, _d in out)
        assert all(not d for _c, _co, d in out)

        frozen = ControlConfig.from_xml_attrs(
            {"execution": "off", "codec": "off", "placement": "off",
             "pool": "off", "repartition": "freeze", "interval": "4"},
        )
        out = run_loop(2, control=frozen)
        for coordinator, _contents, decisions in out:
            assert coordinator.repartitions == 0
            assert decisions and not any(d["applied"] for d in decisions)

    def test_plane_config_sets_skew_and_cooldown(self):
        cfg = ControlConfig.from_xml_attrs(
            {"execution": "off", "codec": "off", "placement": "off",
             "pool": "off", "repartition": "on", "interval": "2",
             "repartition_skew": "1.5", "repartition_cooldown": "5"},
        )

        def main(comm):
            array = DistributedArray.create(comm, 64, block_rows=8)
            plane = ControlPlane(cfg, comm=comm)
            c = ArrayCoordinator(array, None, plane=plane)
            array.close()
            return c.governor.skew, c.governor.cooldown, c.interval

        assert set(run_spmd(2, main)) == {(1.5, 5, 2)}

    def test_parameter_validation(self):
        def main(comm):
            array = DistributedArray.create(comm, 64, block_rows=8)
            for kwargs in ({"interval": 0}, {"warmup": 0}):
                with pytest.raises(ValueError):
                    ArrayCoordinator(array, None, **kwargs)
            array.close()
            return True

        assert run_spmd(1, main) == [True]
