"""ArrayPartition: block geometry, ownership, re-cutting."""

from __future__ import annotations

import pytest

from repro.array import ArrayPartition
from repro.errors import ArrayError


class TestGeometry:
    def test_block_spans_tile_the_index_space(self):
        p = ArrayPartition(100, 3, block_rows=16)
        assert p.nblocks == 7
        spans = [p.block_span(b) for b in range(p.nblocks)]
        assert spans[0][0] == 0
        assert spans[-1][1] == 100
        for (_, a1), (b0, _) in zip(spans, spans[1:]):
            assert a1 == b0

    def test_short_tail_block(self):
        p = ArrayPartition(100, 3, block_rows=16)
        assert p.block_span(6) == (96, 100)

    def test_default_block_rows_gives_about_four_per_rank(self):
        p = ArrayPartition(1000, 4)
        assert p.nblocks == 16

    def test_block_of_and_owner_of(self):
        p = ArrayPartition(64, 2, block_rows=16)
        assert p.owners == (0, 0, 1, 1)
        assert p.block_of(0) == 0
        assert p.block_of(31) == 1
        assert p.owner_of(31) == 0
        assert p.owner_of(32) == 1

    def test_blocks_of_and_rows_of(self):
        p = ArrayPartition(100, 3, block_rows=16, partitioner="cyclic")
        assert p.blocks_of(0) == (0, 3, 6)
        assert p.rows_of(0) == 16 + 16 + 4
        assert sum(p.rows_of(r) for r in range(3)) == 100


class TestValidation:
    def test_rejects_bad_lengths(self):
        with pytest.raises(ArrayError):
            ArrayPartition(0, 1)
        with pytest.raises(ArrayError):
            ArrayPartition(10, 0)
        with pytest.raises(ArrayError):
            ArrayPartition(10, 2, block_rows=0)

    def test_rejects_fewer_blocks_than_ranks(self):
        with pytest.raises(ArrayError):
            ArrayPartition(10, 4, block_rows=8)

    def test_rejects_wrong_owner_count(self):
        with pytest.raises(ArrayError):
            ArrayPartition(64, 2, block_rows=16, owners=(0, 1))

    def test_rejects_owner_outside_rank_range(self):
        with pytest.raises(ArrayError):
            ArrayPartition(64, 2, block_rows=16, owners=(0, 1, 2, 1))

    def test_rejects_out_of_range_queries(self):
        p = ArrayPartition(64, 2, block_rows=16)
        with pytest.raises(ArrayError):
            p.block_span(4)
        with pytest.raises(ArrayError):
            p.block_of(64)
        with pytest.raises(ArrayError):
            p.blocks_of(2)


class TestDerivation:
    def test_with_owners_keeps_geometry(self):
        p = ArrayPartition(64, 2, block_rows=16)
        q = p.with_owners((1, 0, 1, 0))
        assert q.owners == (1, 0, 1, 0)
        assert (q.length, q.ranks, q.block_rows) == (64, 2, 16)
        assert q != p

    def test_rebalanced_shifts_load_off_the_hot_rank(self):
        p = ArrayPartition(64, 2, block_rows=16)  # owners (0, 0, 1, 1)
        q = p.rebalanced([10.0, 1.0, 1.0, 1.0])
        loads = [0.0, 0.0]
        for b, r in enumerate(q.owners):
            loads[r] += [10.0, 1.0, 1.0, 1.0][b]
        assert max(loads) < 10.0 + 1.0  # hot block isolated
        assert q.owners == tuple(sorted(q.owners))  # chain = contiguous

    def test_rebalanced_needs_one_cost_per_block(self):
        p = ArrayPartition(64, 2, block_rows=16)
        with pytest.raises(ArrayError):
            p.rebalanced([1.0, 2.0])

    def test_equality_and_hash_are_value_based(self):
        a = ArrayPartition(64, 2, block_rows=16)
        b = ArrayPartition(64, 2, block_rows=16)
        assert a == b
        assert hash(a) == hash(b)
        assert a != ArrayPartition(64, 2, block_rows=16, partitioner="cyclic")
