"""Property tests: the distributed array vs a dense numpy reference.

Hypothesis drives arbitrary shapes (length, block granularity, rank
count, partitioner, halo width 0-3) and arbitrary programs of global
slice/scalar assignments.  Every rank applies the identical program
SPMD-style; the result must match the same program applied to one
dense numpy array — reads, reductions, and ghost neighborhoods alike.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.array import DistributedArray, HaloExchanger
from repro.mpi import run_spmd

PARTITIONERS = ("block", "cyclic", "weighted")


@st.composite
def geometries(draw):
    ranks = draw(st.integers(1, 4))
    length = draw(st.integers(8, 48))
    block_rows = draw(st.integers(1, 8))
    nblocks = -(-length // block_rows)
    if nblocks < ranks:
        # Floor division guarantees ceil(length / block_rows) >= ranks.
        block_rows = max(1, length // ranks)
        nblocks = -(-length // block_rows)
    partitioner = draw(st.sampled_from(PARTITIONERS))
    weights = None
    if partitioner == "weighted":
        weights = draw(
            st.lists(
                st.floats(0.1, 10.0), min_size=nblocks, max_size=nblocks
            )
        )
    halo = draw(st.integers(0, 3))
    return ranks, length, block_rows, partitioner, weights, halo


@st.composite
def programs(draw, length):
    """A list of (start, stop, fill) span assignments."""
    ops = []
    for _ in range(draw(st.integers(1, 5))):
        start = draw(st.integers(0, length - 1))
        stop = draw(st.integers(start, length))
        fill = draw(st.floats(-100.0, 100.0))
        ops.append((start, stop, fill))
    return ops


def build(comm, geometry):
    _ranks, length, block_rows, partitioner, weights, halo = geometry
    return DistributedArray.create(
        comm, length,
        partitioner=partitioner, block_rows=block_rows,
        weights=weights, halo=halo, device_id=0,
    )


common = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@common
@given(data=st.data(), geometry=geometries())
def test_assignments_round_trip_against_dense(data, geometry):
    ranks, length = geometry[0], geometry[1]
    ops = data.draw(programs(length))
    probe = data.draw(st.integers(0, length - 1))

    dense = np.arange(length, dtype=np.float64)
    for i, (start, stop, fill) in enumerate(ops):
        span = stop - start
        if i % 2 == 0:
            dense[start:stop] = fill
        else:
            dense[start:stop] = fill + np.arange(span, dtype=np.float64)

    def main(comm):
        array = build(comm, geometry)
        array[:] = np.arange(length, dtype=np.float64)
        for i, (start, stop, fill) in enumerate(ops):
            span = stop - start
            if i % 2 == 0:
                array[start:stop] = fill
            else:
                array[start:stop] = fill + np.arange(
                    span, dtype=np.float64
                )
        full = array[:]
        scalar = array[probe]
        total = array.reduce("sum")
        peak = array.reduce("max")
        array.close()
        return full, scalar, total, peak

    for full, scalar, total, peak in run_spmd(ranks, main):
        np.testing.assert_array_equal(full, dense)
        assert scalar == dense[probe]
        # Summation order differs (per-shard partials vs numpy's
        # pairwise fold), so sums agree only to rounding.
        assert total == pytest.approx(float(np.sum(dense)), rel=1e-12)
        assert peak == float(np.max(dense))


@common
@given(geometry=geometries())
def test_halo_exchange_matches_dense_neighborhood(geometry):
    ranks, length, _rows, _part, _weights, halo = geometry
    dense = np.linspace(-1.0, 1.0, length)

    def main(comm):
        array = build(comm, geometry)
        array[:] = dense
        exchanger = HaloExchanger(comm)
        exchanger.exchange(array, step=1)
        failures = []
        for b in sorted(array.shards):
            s = array.shards[b]
            for side, ghost, glo in (
                ("L", s.left_ghost, s.start - halo),
                ("R", s.right_ghost, s.stop),
            ):
                for i, got in enumerate(ghost):
                    g = glo + i
                    want = dense[g] if 0 <= g < length else 0.0
                    if got != want:
                        failures.append((b, side, g, got, want))
        exchanger.close()
        array.close()
        return failures

    for failures in run_spmd(ranks, main):
        assert not failures
