"""Halo exchange: the plan, the wire traffic, the fault tolerance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.array import ArrayPartition, DistributedArray, HaloExchanger
from repro.array.halo import halo_bytes_by_rank, halo_plan
from repro.errors import ArrayError
from repro.mpi import run_spmd
from repro.transport.config import TransportConfig
from repro.transport.retry import RetryPolicy


def ghosts_from_dense(array, dense):
    """Expected ghost contents for every owned shard, clipped at the
    global edges (edge ghosts keep their allocation fill of zero)."""
    out = {}
    for b in sorted(array.shards):
        s = array.shards[b]
        left = np.zeros(array.halo)
        lo = max(0, s.start - array.halo)
        if s.start > 0:
            left[array.halo - (s.start - lo):] = dense[lo:s.start]
        right = np.zeros(array.halo)
        hi = min(len(dense), s.stop + array.halo)
        if s.stop < len(dense):
            right[:hi - s.stop] = dense[s.stop:hi]
        out[b] = (left, right)
    return out


def exchange_and_check(comm, array, dense, transport=None, steps=1):
    array[:] = dense
    exchanger = HaloExchanger(comm, transport)
    for step in range(1, steps + 1):
        exchanger.exchange(array, step)
    expected = ghosts_from_dense(array, dense)
    failures = []
    for b in sorted(array.shards):
        s = array.shards[b]
        left, right = expected[b]
        if not np.array_equal(s.left_ghost, left):
            failures.append((b, "L", s.left_ghost.copy(), left))
        if not np.array_equal(s.right_ghost, right):
            failures.append((b, "R", s.right_ghost.copy(), right))
    exchanger.close()
    return failures, exchanger.halo_bytes_moved


class TestPlan:
    def test_zero_halo_means_no_plan(self):
        assert halo_plan(ArrayPartition(64, 2, block_rows=8), 0) == {}

    def test_block_layout_has_one_remote_edge_pair(self):
        p = ArrayPartition(64, 2, block_rows=8)  # ranks split at row 32
        plan = halo_plan(p, 2)
        remote = {k for k in plan if k[0] != k[1]}
        assert remote == {(0, 1), (1, 0)}
        # Rank 1's block 4 needs rows [30, 32) from rank 0.
        assert (4, "L", 30, 32) in plan[(0, 1)]

    def test_interior_edges_stay_on_the_diagonal(self):
        p = ArrayPartition(64, 2, block_rows=8)
        plan = halo_plan(p, 2)
        for (src, dst), entries in plan.items():
            for b, _side, lo, hi in entries:
                assert p.owners[b] == dst
                assert all(
                    p.owner_of(g) == src for g in range(lo, hi)
                )

    def test_wide_halo_splits_across_owners(self):
        # halo 3 > block_rows 2: one ghost region spans two owners.
        p = ArrayPartition(8, 4, block_rows=2)
        plan = halo_plan(p, 3)
        # Block 0 (rank 0) needs rows [2, 5): rank 1's [2,4) + rank 2's [4,5).
        assert (0, "R", 2, 4) in plan[(1, 0)]
        assert (0, "R", 4, 5) in plan[(2, 0)]

    def test_bytes_by_rank_counts_both_directions(self):
        p = ArrayPartition(64, 2, block_rows=8)
        nbytes = halo_bytes_by_rank(p, 2, 8)
        # One remote boundary: each side sends 2 rows and receives 2.
        assert nbytes == [32, 32]

    def test_bytes_scale_with_surface(self):
        block = ArrayPartition(64, 4, block_rows=4)
        cyclic = ArrayPartition(64, 4, block_rows=4, partitioner="cyclic")
        assert sum(halo_bytes_by_rank(cyclic, 1, 8)) > sum(
            halo_bytes_by_rank(block, 1, 8)
        )


class TestExchange:
    @pytest.mark.parametrize("partitioner", ["block", "cyclic"])
    @pytest.mark.parametrize("halo", [1, 2, 3])
    def test_ghosts_match_dense_neighborhood(self, partitioner, halo):
        dense = np.arange(40, dtype=np.float64) + 1.0

        def main(comm):
            array = DistributedArray.create(
                comm, 40, partitioner=partitioner, block_rows=5,
                halo=halo, device_id=0,
            )
            failures, _ = exchange_and_check(comm, array, dense)
            array.close()
            return failures

        for failures in run_spmd(4, main):
            assert not failures

    def test_repeated_exchanges_reuse_flows(self):
        dense = np.linspace(0.0, 1.0, 32)

        def main(comm):
            array = DistributedArray.create(
                comm, 32, block_rows=8, halo=1, device_id=0,
            )
            failures, nbytes = exchange_and_check(
                comm, array, dense, steps=3
            )
            array.close()
            return failures, nbytes

        for failures, _nbytes in run_spmd(2, main):
            assert not failures

    def test_exchange_survives_seeded_faults(self):
        dense = np.arange(48, dtype=np.float64)
        hostile = TransportConfig(
            chunk_bytes=64,
            retry=RetryPolicy(max_retries=40, ack_timeout=0.02),
        ).with_faults(drop=0.2, duplicate=0.05, reorder=0.1, seed=7)

        def main(comm):
            array = DistributedArray.create(
                comm, 48, block_rows=6, halo=2, device_id=0,
            )
            failures, _ = exchange_and_check(
                comm, array, dense, transport=hostile, steps=2
            )
            array.close()
            return failures

        for failures in run_spmd(4, main):
            assert not failures

    def test_single_rank_exchange_is_all_local(self):
        dense = np.arange(16, dtype=np.float64)

        def main(comm):
            array = DistributedArray.create(
                comm, 16, block_rows=4, halo=1, device_id=0,
            )
            failures, nbytes = exchange_and_check(comm, array, dense)
            array.close()
            return failures, nbytes

        [(failures, nbytes)] = run_spmd(1, main)
        assert not failures
        assert nbytes == 0  # every ghost fill was a local copy

    def test_closed_exchanger_rejects_use(self):
        def main(comm):
            array = DistributedArray.create(
                comm, 16, block_rows=4, halo=1, device_id=0,
            )
            exchanger = HaloExchanger(comm)
            exchanger.exchange(array, 1)
            exchanger.close()
            with pytest.raises(ArrayError):
                exchanger.exchange(array, 2)
            with pytest.raises(ArrayError):
                exchanger.handoff(array, [], 2)
            array.close()
            return True

        assert run_spmd(1, main) == [True]
