"""Stencil workload: numerics vs dense reference, cost accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.array import StencilConfig, StencilWorkload
from repro.errors import ArrayError
from repro.mpi import run_spmd

CONFIG = StencilConfig(length=96, steps=8, block_rows=8)


def dense_reference(config: StencilConfig) -> np.ndarray:
    """The same Jacobi sweep on one dense array (zero Dirichlet edges)."""
    x = np.arange(config.length, dtype=np.float64)
    u = np.sin(2.0 * np.pi * x / config.length)
    for _ in range(config.steps):
        p = np.zeros(config.length + 2)
        p[1:-1] = u
        u = p[1:-1] + config.alpha * (p[:-2] - 2.0 * p[1:-1] + p[2:])
    return u


def run_workload(size, config, adaptive=False):
    def main(comm):
        workload = StencilWorkload(comm, config, adaptive=adaptive)
        workload.run()
        field = workload.u[:]
        summary = workload.summary()
        workload.close()
        return field, summary

    return run_spmd(size, main)


class TestNumerics:
    @pytest.mark.parametrize("partitioner", ["block", "cyclic"])
    def test_matches_dense_reference_bit_for_bit(self, partitioner):
        config = StencilConfig(
            length=96, steps=8, block_rows=8, partitioner=partitioner
        )
        expected = dense_reference(config)
        for field, _summary in run_workload(3, config):
            np.testing.assert_array_equal(field, expected)

    def test_adaptive_physics_identical_under_injected_skew(self):
        config = StencilConfig(
            length=96, steps=8, block_rows=8,
            hotspot=(0.0, 0.25), hotspot_cost=8.0,
        )
        expected = dense_reference(config)
        for field, summary in run_workload(3, config, adaptive=True):
            np.testing.assert_array_equal(field, expected)
            assert summary["repartitions"] >= 1

    def test_single_rank_matches_dense(self):
        expected = dense_reference(CONFIG)
        [(field, summary)] = run_workload(1, CONFIG)
        np.testing.assert_array_equal(field, expected)
        assert summary["halo_bytes"] == 0  # all ghost fills were local


class TestAccounting:
    def test_uniform_cost_is_rows_over_rate(self):
        [(_, summary)] = run_workload(1, CONFIG)
        expected = CONFIG.length * CONFIG.steps / CONFIG.compute_rate
        assert summary["busy_time"] == pytest.approx(expected)

    def test_hotspot_charges_extra_from_its_first_step(self):
        config = StencilConfig(
            length=96, steps=4, block_rows=8,
            hotspot=(0.0, 0.5), hotspot_cost=2.0, hotspot_from=3,
        )
        [(_, summary)] = run_workload(1, config)
        base = config.length * config.steps / config.compute_rate
        hot_rows = 48
        extra = hot_rows * 2.0 * 2 / config.compute_rate  # steps 3 and 4
        assert summary["busy_time"] == pytest.approx(base + extra)

    def test_table_carries_owned_rows(self):
        def main(comm):
            workload = StencilWorkload(comm, CONFIG)
            workload.step(1)
            table = workload.table()
            rows = table.n_rows
            index = table.column("index").as_numpy_host()
            owned = sorted(
                g for _b, s, e, _v in workload.u.local_spans()
                for g in range(s, e)
            )
            workload.close()
            return rows, list(index), owned

        for rows, index, owned in run_spmd(3, main):
            assert rows == len(owned)
            assert index == owned


class TestValidation:
    def test_config_rejects_bad_values(self):
        with pytest.raises(ArrayError):
            StencilConfig(alpha=0.6)
        with pytest.raises(ArrayError):
            StencilConfig(steps=0)
        with pytest.raises(ArrayError):
            StencilConfig(compute_rate=0.0)
        with pytest.raises(ArrayError):
            StencilConfig(hotspot=(0.5, 0.2))
        with pytest.raises(ArrayError):
            StencilConfig(hotspot_cost=-1.0)

    def test_closed_workload_rejects_stepping(self):
        def main(comm):
            workload = StencilWorkload(comm, CONFIG)
            workload.close()
            with pytest.raises(ArrayError):
                workload.step(1)
            return True

        assert run_spmd(1, main) == [True]
