"""DistributedArray: global indexing, reductions, shard handoff."""

from __future__ import annotations

import numpy as np
import pytest

from repro.array import ArrayPartition, DistributedArray, HaloExchanger
from repro.errors import ArrayError
from repro.hamr.allocator import Allocator
from repro.mpi import run_spmd
from repro.mpi.comm import SelfCommunicator


def spmd_array(size, body, *, length=64, block_rows=8, halo=0,
               partitioner="block", device_id=0):
    """Run ``body(comm, array)`` on every rank of a fresh array."""

    def main(comm):
        array = DistributedArray.create(
            comm, length, partitioner=partitioner,
            block_rows=block_rows, halo=halo, device_id=device_id,
        )
        try:
            return body(comm, array)
        finally:
            array.close()

    return run_spmd(size, main)


class TestConstruction:
    def test_shards_cover_owned_blocks(self):
        def body(comm, array):
            blocks = array.partition.blocks_of(comm.rank)
            assert tuple(sorted(array.shards)) == blocks
            assert array.owned_rows() == array.partition.rows_of(comm.rank)
            return True

        assert all(spmd_array(4, body))

    def test_device_placement_is_pooled(self):
        def body(comm, array):
            shard = next(iter(array.shards.values()))
            return shard.buffer.allocator

        assert set(spmd_array(2, body, device_id=0)) == {Allocator.CUDA_ASYNC}
        assert set(spmd_array(2, body, device_id=None)) == {Allocator.MALLOC}

    def test_rank_count_must_match(self):
        comm = SelfCommunicator()
        with pytest.raises(ArrayError):
            DistributedArray(comm, ArrayPartition(64, 2, block_rows=8))

    def test_negative_halo_rejected(self):
        comm = SelfCommunicator()
        with pytest.raises(ArrayError):
            DistributedArray(
                comm, ArrayPartition(64, 1, block_rows=8), halo=-1
            )


class TestIndexing:
    def test_assignment_then_gather_round_trips(self):
        reference = np.arange(64, dtype=np.float64)

        def body(comm, array):
            array[:] = reference
            return array[:]

        for got in spmd_array(3, body):
            np.testing.assert_array_equal(got, reference)

    def test_scalar_read_resolves_owner(self):
        def body(comm, array):
            array[:] = np.arange(64, dtype=np.float64)
            return array[17], array[-1]

        assert set(spmd_array(4, body)) == {(17.0, 63.0)}

    def test_partial_span_assignment_is_owner_local(self):
        def body(comm, array):
            array[:] = 0.0
            array[10:30] = np.full(20, 5.0)
            array[40] = 7.0
            return array[:]

        expected = np.zeros(64)
        expected[10:30] = 5.0
        expected[40] = 7.0
        for got in spmd_array(4, body):
            np.testing.assert_array_equal(got, expected)

    def test_scalar_broadcast_assignment(self):
        def body(comm, array):
            array[:] = 3.0
            return array[5:9]

        for got in spmd_array(2, body):
            np.testing.assert_array_equal(got, np.full(4, 3.0))

    def test_bad_keys_rejected(self):
        def body(comm, array):
            for key in (64, "x", slice(0, 10, 2)):
                with pytest.raises(ArrayError):
                    array._span(key)
            with pytest.raises(ArrayError):
                array[0:4] = np.zeros(3)
            return True

        assert all(spmd_array(1, body))


class TestReduce:
    def test_reductions_match_dense(self):
        reference = np.linspace(-1.0, 2.0, 64)

        def body(comm, array):
            array[:] = reference
            return (
                array.reduce("sum"), array.reduce("min"), array.reduce("max")
            )

        for total, lo, hi in spmd_array(4, body, partitioner="cyclic"):
            assert total == pytest.approx(float(np.sum(reference)))
            assert lo == float(np.min(reference))
            assert hi == float(np.max(reference))

    def test_unknown_reduction_rejected(self):
        def body(comm, array):
            with pytest.raises(ArrayError):
                array.reduce("mean")
            return True

        assert all(spmd_array(1, body))


class TestRepartition:
    def test_handoff_preserves_contents(self):
        reference = np.arange(64, dtype=np.float64)

        def body(comm, array):
            array[:] = reference
            exchanger = HaloExchanger(comm)
            # Invert the block layout: every block changes owner.
            new_owners = tuple(
                array.partition.ranks - 1 - o
                for o in array.partition.owners
            )
            shipped = array.repartition(new_owners, exchanger, event=1)
            after = array[:]
            exchanger.close()
            return shipped, array.partition.owners, after

        for shipped, owners, after in spmd_array(2, body):
            assert owners == (1, 1, 1, 1, 0, 0, 0, 0)
            np.testing.assert_array_equal(after, reference)
            assert shipped == 8 * 4 * np.float64().itemsize

    def test_noop_repartition_ships_nothing(self):
        def body(comm, array):
            exchanger = HaloExchanger(comm)
            shipped = array.repartition(
                array.partition.owners, exchanger, event=1
            )
            exchanger.close()
            return shipped

        assert spmd_array(2, body) == [0, 0]


class TestClose:
    def test_close_is_idempotent(self):
        comm = SelfCommunicator()
        array = DistributedArray(comm, ArrayPartition(16, 1, block_rows=4))
        array.close()
        array.close()
