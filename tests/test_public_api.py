"""Smoke tests for the top-level public API surface."""

from __future__ import annotations

import pytest


class TestTopLevelImports:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            if name == "__version__":
                continue
            assert getattr(repro, name) is not None, name

    def test_lazy_data_model_exports(self):
        import repro

        assert repro.HAMRDataArray is not None
        assert repro.TableData is not None
        assert repro.UniformCartesianMesh is not None

    def test_unknown_attribute(self):
        import repro

        with pytest.raises(AttributeError):
            _ = repro.does_not_exist

    def test_subpackage_all_exports_resolve(self):
        import repro.binning
        import repro.control
        import repro.harness
        import repro.hamr
        import repro.hw
        import repro.mpi
        import repro.newton
        import repro.pm
        import repro.sensei
        import repro.svtk

        for mod in (
            repro.binning, repro.control, repro.harness, repro.hamr,
            repro.hw, repro.mpi, repro.newton, repro.pm, repro.sensei,
            repro.svtk,
        ):
            for name in mod.__all__:
                assert getattr(mod, name) is not None, f"{mod.__name__}.{name}"

    def test_quickstart_docstring_snippet_runs(self):
        """The package docstring's quickstart must stay correct."""
        from repro import Allocator, HAMRDataArray

        arr = HAMRDataArray.new(
            "simData", 1000, allocator=Allocator.CUDA, device_id=0
        )
        arr.fill(-3.14)
        view = arr.get_host_accessible()
        arr.synchronize()
        assert view.get()[0] == -3.14
        view.release()
        arr.delete()
