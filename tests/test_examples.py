"""Every shipped example must run end to end.

Examples are executed in-process (``runpy``) with argv pointed at a
temporary output directory, so they stay fast and leave no droppings.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str, argv: list[str], monkeypatch) -> None:
    path = EXAMPLES_DIR / name
    monkeypatch.setattr(sys, "argv", [str(path), *argv])
    runpy.run_path(str(path), run_name="__main__")


def test_all_examples_are_covered():
    """Adding an example without a test here must fail loudly."""
    covered = {
        "quickstart.py",
        "pm_interop.py",
        "nbody_insitu.py",
        "placement_sweep.py",
        "galaxy_intransit.py",
        "profiling_deep_dive.py",
        "stencil.py",
        "transport_faults.py",
    }
    assert set(ALL_EXAMPLES) == covered


def test_quickstart(monkeypatch, capsys):
    run_example("quickstart.py", [], monkeypatch)
    out = capsys.readouterr().out
    assert "temporary=True" in out
    assert "simData storage released" in out


def test_pm_interop(monkeypatch, capsys):
    run_example("pm_interop.py", [], monkeypatch)
    assert "no library knew another's PM" in capsys.readouterr().out


def test_nbody_insitu(monkeypatch, capsys, tmp_path):
    run_example("nbody_insitu.py", [str(tmp_path)], monkeypatch)
    out = capsys.readouterr().out
    assert "total binned mass" in out
    assert (tmp_path / "bin-xy_step0005.vtk").exists()
    assert (tmp_path / "bin-xz_step0005.vtk").exists()


def test_placement_sweep(monkeypatch, capsys):
    run_example("placement_sweep.py", [], monkeypatch)
    out = capsys.readouterr().out
    assert "VIOLATED" not in out
    assert out.count("asynchronous") >= 4


def test_galaxy_intransit(monkeypatch, capsys, tmp_path):
    run_example("galaxy_intransit.py", [str(tmp_path)], monkeypatch)
    out = capsys.readouterr().out
    assert "endpoints analyzed" in out
    assert (tmp_path / "mass-xy.vtk").exists()


def test_profiling_deep_dive(monkeypatch, capsys, tmp_path):
    trace = tmp_path / "trace.json"
    run_example("profiling_deep_dive.py", [str(trace)], monkeypatch)
    assert trace.exists()
    assert "utilization" in capsys.readouterr().out


def test_stencil(monkeypatch, capsys, tmp_path):
    run_example("stencil.py", [str(tmp_path)], monkeypatch)
    out = capsys.readouterr().out
    assert "identical physics" in out
    assert "endpoints reassembled" in out
    assert (tmp_path / "stencil_trace.json").exists()


def test_transport_faults(monkeypatch, capsys, tmp_path):
    run_example("transport_faults.py", [str(tmp_path)], monkeypatch)
    out = capsys.readouterr().out
    assert "delivery was byte-identical" in out
    assert "x smaller" in out
    assert (tmp_path / "transport_trace.json").exists()
