"""Tests for the scaling-study extension."""

from __future__ import annotations

import pytest

from repro.harness.scaling import (
    ScalingPoint,
    parallel_efficiency,
    strong_scaling,
    weak_scaling,
)
from repro.harness.spec import InSituPlacement
from repro.sensei.execution import ExecutionMethod

NODES = [32, 64, 128, 256]
L = ExecutionMethod.LOCKSTEP


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def series(self):
        return strong_scaling(InSituPlacement.SAME_DEVICE, L, NODES)

    def test_iteration_time_shrinks_with_machine(self, series):
        times = [p.iter_time for p in series]
        assert times == sorted(times, reverse=True)

    def test_efficiency_decays_from_one(self, series):
        eff = parallel_efficiency(series)
        assert eff[0] == pytest.approx(1.0)
        assert all(e1 >= e2 for e1, e2 in zip(eff, eff[1:]))
        assert eff[-1] < 1.0

    def test_insitu_share_grows_as_solver_shrinks(self, series):
        shares = [
            p.result.insitu_apparent_per_iter / p.result.iter_time
            for p in series
        ]
        assert shares == sorted(shares)

    def test_total_ranks_follow_placement(self, series):
        assert [p.total_ranks for p in series] == [n * 4 for n in NODES]


class TestWeakScaling:
    def test_solver_work_grows_quadratically(self):
        """Direct n-body weak scaling: per-rank work grows with N."""
        series = weak_scaling(InSituPlacement.SAME_DEVICE, L, [32, 128])
        assert series[1].result.solver_per_iter > 3.0 * series[0].result.solver_per_iter

    def test_bodies_scale_with_ranks(self):
        series = weak_scaling(
            InSituPlacement.HOST, L, [32, 64], bodies_per_rank=1000
        )
        assert series[0].result.n_bodies == 32 * 4 * 1000
        assert series[1].result.n_bodies == 64 * 4 * 1000


class TestAsyncAdvantageAcrossScale:
    def test_async_still_wins_at_other_machine_sizes(self):
        """The paper's core finding is not specific to 128 nodes."""
        for nodes in (32, 256):
            lock = strong_scaling(InSituPlacement.HOST, L, [nodes])[0]
            asyn = strong_scaling(
                InSituPlacement.HOST, ExecutionMethod.ASYNCHRONOUS, [nodes]
            )[0]
            assert asyn.result.total_time < lock.result.total_time


class TestHelpers:
    def test_empty_series(self):
        assert parallel_efficiency([]) == []
