"""Tests for the Table 1 run matrix and its rank/GPU accounting."""

from __future__ import annotations

import pytest

from repro.errors import PlacementError
from repro.hamr.allocator import HOST_DEVICE_ID
from repro.harness.spec import InSituPlacement, RunSpec, table1_matrix
from repro.sensei.execution import ExecutionMethod


class TestTable1Matrix:
    def test_eight_cases(self):
        specs = table1_matrix()
        assert len(specs) == 8
        assert len({(s.placement, s.method) for s in specs}) == 8

    def test_lockstep_rows_first(self):
        specs = table1_matrix()
        assert all(s.method is ExecutionMethod.LOCKSTEP for s in specs[:4])
        assert all(s.method is ExecutionMethod.ASYNCHRONOUS for s in specs[4:])

    def test_paper_rank_accounting(self):
        """Table 1's columns: ranks/node 4,4,3,2 and totals 512,512,384,256."""
        specs = table1_matrix()
        assert [s.ranks_per_node for s in specs[:4]] == [4, 4, 3, 2]
        assert [s.total_ranks for s in specs[:4]] == [512, 512, 384, 256]
        assert all(s.nodes == 128 for s in specs)

    def test_gpu_accounting(self):
        by_placement = {s.placement: s for s in table1_matrix()[:4]}
        host = by_placement[InSituPlacement.HOST]
        assert host.sim_gpus_per_node == 4 and host.insitu_gpus_per_node == 0
        same = by_placement[InSituPlacement.SAME_DEVICE]
        assert same.sim_gpus_per_node == 4 and same.insitu_gpus_per_node == 0
        ded1 = by_placement[InSituPlacement.DEDICATED_1]
        assert ded1.sim_gpus_per_node == 3 and ded1.insitu_gpus_per_node == 1
        ded2 = by_placement[InSituPlacement.DEDICATED_2]
        assert ded2.sim_gpus_per_node == 2 and ded2.insitu_gpus_per_node == 2

    def test_one_sim_rank_per_gpu(self):
        """'there is always only 1 simulation rank per GPU'"""
        for s in table1_matrix():
            assert s.ranks_per_node == s.sim_gpus_per_node
            assert s.sim_gpus_per_node + s.insitu_gpus_per_node <= s.gpus_per_node


class TestInsituDevicePlacement:
    def _resolve_node_local(self, spec, n=4):
        p = spec.insitu_device_placement()
        return [p.resolve(r, n_available=spec.gpus_per_node)
                for r in range(spec.ranks_per_node)]

    def test_host_placement(self):
        spec = RunSpec(InSituPlacement.HOST, ExecutionMethod.LOCKSTEP)
        assert self._resolve_node_local(spec) == [HOST_DEVICE_ID] * 4

    def test_same_device_placement(self):
        """Analysis lands on the rank's own simulation GPU."""
        spec = RunSpec(InSituPlacement.SAME_DEVICE, ExecutionMethod.LOCKSTEP)
        devs = self._resolve_node_local(spec)
        assert devs == [spec.sim_device_of(r) for r in range(4)] == [0, 1, 2, 3]

    def test_dedicated_1_placement(self):
        """All three ranks' analyses land on the reserved GPU 3."""
        spec = RunSpec(InSituPlacement.DEDICATED_1, ExecutionMethod.LOCKSTEP)
        devs = self._resolve_node_local(spec)
        assert devs == [3, 3, 3]
        sim = [spec.sim_device_of(r) for r in range(3)]
        assert set(devs).isdisjoint(sim)

    def test_dedicated_2_placement(self):
        """Each rank pairs its sim GPU with a reserved analysis GPU."""
        spec = RunSpec(InSituPlacement.DEDICATED_2, ExecutionMethod.LOCKSTEP)
        devs = self._resolve_node_local(spec)
        assert devs == [2, 3]
        sim = [spec.sim_device_of(r) for r in range(2)]
        assert set(devs).isdisjoint(sim)

    def test_custom_gpu_count(self):
        spec = RunSpec(
            InSituPlacement.DEDICATED_2, ExecutionMethod.LOCKSTEP,
            nodes=2, gpus_per_node=8,
        )
        assert spec.ranks_per_node == 4
        assert self._resolve_node_local(spec) == [4, 5, 6, 7]

    def test_odd_gpu_count_rejected_for_dedicated2(self):
        with pytest.raises(PlacementError):
            RunSpec(
                InSituPlacement.DEDICATED_2, ExecutionMethod.LOCKSTEP,
                gpus_per_node=3,
            )

    def test_invalid_sizes(self):
        with pytest.raises(PlacementError):
            RunSpec(InSituPlacement.HOST, ExecutionMethod.LOCKSTEP, nodes=0)

    def test_labels(self):
        spec = RunSpec(InSituPlacement.HOST, ExecutionMethod.ASYNCHRONOUS)
        assert "host" in spec.label and "asynchronous" in spec.label
