"""Tests for the paper-scale model and the small-scale stack runner."""

from __future__ import annotations

import pytest

from repro.harness.calibrate import PaperWorkload, SmallWorkload
from repro.harness.report import (
    format_fig2,
    format_fig3,
    format_table1,
    verify_findings,
)
from repro.harness.runner import RunResult, execute_small, simulate
from repro.harness.spec import InSituPlacement, RunSpec, table1_matrix
from repro.sensei.execution import ExecutionMethod

L, A = ExecutionMethod.LOCKSTEP, ExecutionMethod.ASYNCHRONOUS


@pytest.fixture(scope="module")
def paper_results():
    return [simulate(s) for s in table1_matrix()]


class TestSimulate:
    def test_all_paper_findings_hold(self, paper_results):
        findings = verify_findings(paper_results)
        assert all(findings.values()), findings

    def test_async_total_lower_every_placement(self, paper_results):
        by = {(r.spec.placement, r.spec.method): r for r in paper_results}
        for p in InSituPlacement:
            assert by[(p, A)].total_time < by[(p, L)].total_time

    def test_async_solver_slower_every_placement(self, paper_results):
        by = {(r.spec.placement, r.spec.method): r for r in paper_results}
        for p in InSituPlacement:
            assert by[(p, A)].solver_per_iter > by[(p, L)].solver_per_iter

    def test_async_apparent_insitu_tiny(self, paper_results):
        """Paper: '<10 ms across all time steps and all placements'."""
        for r in paper_results:
            if r.spec.method is A:
                assert r.insitu_apparent_per_iter < 0.010

    def test_lockstep_insitu_is_substantial(self, paper_results):
        for r in paper_results:
            if r.spec.method is L:
                assert r.insitu_apparent_per_iter > 0.050

    def test_reduced_concurrency_ordering(self, paper_results):
        """512-rank placements beat 384, which beats 256 (Section 4.4)."""
        by = {(r.spec.placement, r.spec.method): r for r in paper_results}
        for m in (L, A):
            assert (
                by[(InSituPlacement.SAME_DEVICE, m)].total_time
                < by[(InSituPlacement.DEDICATED_1, m)].total_time
                < by[(InSituPlacement.DEDICATED_2, m)].total_time
            )

    def test_host_vs_same_device_negligible(self, paper_results):
        by = {(r.spec.placement, r.spec.method): r for r in paper_results}
        h = by[(InSituPlacement.HOST, L)].total_time
        s = by[(InSituPlacement.SAME_DEVICE, L)].total_time
        assert abs(h - s) / max(h, s) < 0.05

    def test_total_scales_with_steps(self):
        spec = RunSpec(InSituPlacement.HOST, L)
        t100 = simulate(spec, PaperWorkload(steps=100)).total_time
        t200 = simulate(spec, PaperWorkload(steps=200)).total_time
        w = PaperWorkload()
        assert t200 - t100 == pytest.approx(t100 - w.init_time - w.finalize_time)

    def test_movement_by_placement(self, paper_results):
        by = {(r.spec.placement, r.spec.method): r for r in paper_results}
        assert by[(InSituPlacement.SAME_DEVICE, L)].data_movement_per_iter == 0.0
        assert by[(InSituPlacement.HOST, L)].data_movement_per_iter > 0.0
        # NVLink D2D beats PCIe D2H for the same bytes.
        assert (
            by[(InSituPlacement.DEDICATED_1, L)].data_movement_per_iter
            < by[(InSituPlacement.HOST, L)].data_movement_per_iter
        )

    def test_async_drain_tail_included(self):
        spec_l = RunSpec(InSituPlacement.HOST, L)
        spec_a = RunSpec(InSituPlacement.HOST, A)
        w = PaperWorkload(steps=0)
        # With zero steps, async still pays nothing extra (tail is the
        # last step's drain; no steps -> only fixed costs differ by 0).
        t_l = simulate(spec_l, w).total_time
        t_a = simulate(spec_a, w).total_time
        assert t_a >= t_l  # never cheaper without iterations

    def test_optimized_binning_strategy_projection(self):
        """What-if: with the Section 5 optimized kernel, the same-device
        placement's in situ cost drops below the host placement's."""
        w_atomic = PaperWorkload(binning_strategy="atomic")
        w_sorted = PaperWorkload(binning_strategy="sorted")
        same = RunSpec(InSituPlacement.SAME_DEVICE, L)
        host = RunSpec(InSituPlacement.HOST, L)
        atomic_same = simulate(same, w_atomic)
        sorted_same = simulate(same, w_sorted)
        assert sorted_same.insitu_apparent_per_iter < atomic_same.insitu_apparent_per_iter
        # The host placement uses the CPU kernel: unchanged by strategy.
        assert simulate(host, w_sorted).insitu_apparent_per_iter == pytest.approx(
            simulate(host, w_atomic).insitu_apparent_per_iter
        )
        # The findings still hold under the optimized kernel.
        results = [
            simulate(s, w_sorted) for s in table1_matrix()
        ]
        assert all(verify_findings(results).values())

    def test_model_generalizes_to_other_node_shapes(self):
        """The model is parametric in GPUs/node, not hardwired to 4."""
        spec8 = RunSpec(
            InSituPlacement.DEDICATED_2, L, nodes=64, gpus_per_node=8
        )
        assert spec8.ranks_per_node == 4
        assert spec8.total_ranks == 256
        r = simulate(spec8)
        assert r.total_time > 0
        # Same-node-count, 8-GPU machine beats the 4-GPU one (more
        # simulation GPUs per node -> fewer bodies per rank).
        spec4 = RunSpec(
            InSituPlacement.DEDICATED_2, L, nodes=64, gpus_per_node=4
        )
        assert r.total_time < simulate(spec4).total_time

    def test_result_metadata(self, paper_results):
        r = paper_results[0]
        assert r.mode == "model"
        assert r.n_bodies == 24_000_000
        assert r.iter_time == pytest.approx(
            r.solver_per_iter + r.insitu_apparent_per_iter
        )


class TestExecuteSmall:
    @pytest.fixture(scope="class")
    def small(self):
        return SmallWorkload(n_bodies=120, steps=2,
                             n_coordinate_systems=2, n_variables=2)

    @pytest.mark.parametrize("placement", list(InSituPlacement))
    @pytest.mark.parametrize("method", [L, A])
    def test_every_case_runs_the_real_stack(self, placement, method, small):
        spec = RunSpec(placement, method, nodes=1)
        r = execute_small(spec, small)
        assert r.mode == "stack"
        assert r.total_time > 0
        assert r.solver_per_iter > 0
        assert r.insitu_actual_per_iter > 0

    def test_async_actual_exceeds_lockstep_actual(self, small):
        """The hidden work still lands on the books.

        Asynchronous execution takes the analysis off the step's
        critical path, but the worker's busy time must cover at least
        the lockstep analysis cost it overlaps — plus the staged deep
        copies zero-copy lockstep never pays.  (At this smoke-test
        scale dispatch overhead legitimately exceeds the analysis busy
        time, so ``apparent < actual`` is not an invariant here: the
        copy lanes start D2H staging immediately instead of queueing
        it behind unrelated work on the shared host stream.)
        """
        lock = execute_small(RunSpec(InSituPlacement.HOST, L, nodes=1), small)
        asyn = execute_small(RunSpec(InSituPlacement.HOST, A, nodes=1), small)
        assert asyn.insitu_actual_per_iter > lock.insitu_actual_per_iter

    def test_lockstep_apparent_equals_actual(self, small):
        spec = RunSpec(InSituPlacement.SAME_DEVICE, L, nodes=1)
        r = execute_small(spec, small)
        assert r.insitu_apparent_per_iter == pytest.approx(
            r.insitu_actual_per_iter
        )


class TestReport:
    def test_table1_contains_paper_rows(self):
        text = format_table1(table1_matrix())
        assert "lock step" in text and "asynchr." in text
        assert "512" in text and "384" in text and "256" in text
        assert "2 dedicated devices" in text

    def test_fig2_lists_all_cases(self, paper_results):
        text = format_fig2(paper_results)
        for p in InSituPlacement:
            assert p.value in text
        assert text.count("lockstep") == 4
        assert text.count("asynchr.") == 4

    def test_fig3_shows_stack_components(self, paper_results):
        text = format_fig3(paper_results)
        assert "solver=" in text and "insitu=" in text

    def test_verify_findings_detects_violations(self, paper_results):
        # Forge a result set where async is slower: findings must fail.
        forged = []
        for r in paper_results:
            if r.spec.method is A:
                forged.append(
                    RunResult(
                        spec=r.spec, steps=r.steps, n_bodies=r.n_bodies,
                        total_time=r.total_time * 10,
                        solver_per_iter=r.solver_per_iter,
                        insitu_apparent_per_iter=r.insitu_apparent_per_iter,
                        insitu_actual_per_iter=r.insitu_actual_per_iter,
                        data_movement_per_iter=r.data_movement_per_iter,
                        mode=r.mode,
                    )
                )
            else:
                forged.append(r)
        findings = verify_findings(forged)
        assert not findings["async_reduces_total_time_in_all_placements"]
