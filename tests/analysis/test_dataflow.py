"""Unit tests for the interprocedural data-flow layer
(repro.analysis.dataflow): summaries, widening, depth bounds, decision
paths, and cross-file propagation through the lint pipeline."""

from __future__ import annotations

from repro.analysis.dataflow import (
    MAX_CALL_DEPTH,
    PoolAnalysis,
    ProjectContext,
    StreamAnalysis,
)
from repro.analysis.engine import parse_file
from repro.analysis.lint import lint_paths


def _proj(tmp_path, source, name="mod.py"):
    p = tmp_path / name
    p.write_text(source)
    return ProjectContext.build([parse_file(p)])


class TestStreamSummaries:
    def test_sync_and_async_params(self, tmp_path):
        proj = _proj(tmp_path, (
            "def finish(strm, clock):\n"
            "    strm.synchronize(clock)\n"
            "\n"
            "def fire(copy, buf, strm):\n"
            "    copy(buf, stream=strm, mode=StreamMode.ASYNC)\n"
            "\n"
            "def mint():\n"
            "    s = Stream(device_id=0)\n"
            "    return s\n"
        ))
        finish = proj.streams.summary(proj.index.functions["mod.finish"])
        assert finish.syncs == frozenset({"strm"})
        assert not finish.async_unsynced
        fire = proj.streams.summary(proj.index.functions["mod.fire"])
        assert fire.async_unsynced == frozenset({"strm"})
        mint = proj.streams.summary(proj.index.functions["mod.mint"])
        assert mint.returns_fresh

    def test_recursion_terminates_and_widens_safe(self, tmp_path):
        assert StreamAnalysis.widened.syncs_all
        proj = _proj(tmp_path, (
            "def ping(strm):\n"
            "    pong(strm)\n"
            "\n"
            "def pong(strm):\n"
            "    ping(strm)\n"
        ))
        s = proj.streams.summary(proj.index.functions["mod.ping"])
        # The cycle widens to "assume discharged": never a hazard.
        assert not s.async_unsynced

    def test_depth_bound_silences_instead_of_guessing(self, tmp_path):
        depth = MAX_CALL_DEPTH + 1
        chain = "".join(
            f"def h{i}(copy, buf, strm):\n"
            f"    h{i + 1}(copy, buf, strm)\n\n"
            for i in range(depth)
        )
        chain += (
            f"def h{depth}(copy, buf, strm):\n"
            "    copy(buf, stream=strm, mode=StreamMode.ASYNC)\n"
            "\n"
            "def caller(copy, buf):\n"
            "    strm = Stream(device_id=0)\n"
            "    h0(copy, buf, strm)\n"
        )
        p = tmp_path / "deep.py"
        p.write_text(chain)
        # The async use is beyond the depth bound: widened means
        # "assume safe", so no finding — never a false positive.
        assert lint_paths([p], select=["HL003"]) == []

    def test_shallow_chain_is_still_flagged(self, tmp_path):
        p = tmp_path / "shallow.py"
        p.write_text(
            "def inner(copy, buf, strm):\n"
            "    copy(buf, stream=strm, mode=StreamMode.ASYNC)\n"
            "\n"
            "def outer(copy, buf, strm):\n"
            "    inner(copy, buf, strm)\n"
            "\n"
            "def caller(copy, buf):\n"
            "    strm = Stream(device_id=0)\n"
            "    outer(copy, buf, strm)\n"
        )
        findings = lint_paths([p], select=["HL003"])
        assert [(f.rule, f.line) for f in findings] == [("HL003", 8)]


class TestChargeSummaries:
    def test_charging_params_and_resolves(self, tmp_path):
        proj = _proj(tmp_path, (
            "def launch(payload, device_id):\n"
            "    run(payload, device_id=device_id)\n"
            "\n"
            "def picks(self, payload):\n"
            "    dev = self.resolve_device()\n"
            "    return dev\n"
        ))
        launch = proj.charges.summary(proj.index.functions["mod.launch"])
        assert launch.charging == frozenset({"device_id"})
        assert not launch.resolves
        picks = proj.charges.summary(proj.index.functions["mod.picks"])
        assert picks.resolves


class TestPoolSummaries:
    def test_returns_unreleased_and_releasing_param(self, tmp_path):
        proj = _proj(tmp_path, (
            "def make_pool(pm, payload):\n"
            "    pool = pool_for(pm, 0)\n"
            "    pool.acquire(payload.nbytes)\n"
            "    return pool\n"
            "\n"
            "def balanced(pm, payload):\n"
            "    pool = pool_for(pm, 0)\n"
            "    pool.acquire(payload.nbytes)\n"
            "    pool.release(payload.nbytes)\n"
            "    return pool\n"
            "\n"
            "def finish(pool, payload):\n"
            "    pool.release(payload.nbytes)\n"
        ))
        make = proj.pools.summary(proj.index.functions["mod.make_pool"])
        assert make.returns_unreleased
        balanced = proj.pools.summary(proj.index.functions["mod.balanced"])
        assert not balanced.returns_unreleased
        finish = proj.pools.summary(proj.index.functions["mod.finish"])
        assert finish.releases == frozenset({"pool"})

    def test_unresolvable_callee_gets_benefit_of_the_doubt(self, tmp_path):
        proj = _proj(tmp_path, "x = 1\n")
        assert proj.pools.param_released_by(None, None)
        assert PoolAnalysis.widened.releases_all


class TestDecisionPaths:
    SOURCE = (
        "from repro.control.governors import Decision\n"
        "\n"
        "def make(step):\n"
        "    d1(step)\n"
        "    return Decision(step=step, kind='k', value=1, reason='r')\n"
        "\n"
        "def caller(step):\n"
        "    return make(step)\n"
        "\n"
        "def d1(x):\n"
        "    return d2(x)\n"
        "\n"
        "def d2(x):\n"
        "    return d3(x)\n"
        "\n"
        "def d3(x):\n"
        "    return d4(x)\n"
        "\n"
        "def d4(x):\n"
        "    return x\n"
        "\n"
        "def unrelated(x):\n"
        "    return x\n"
    )

    def test_membership_and_depth_bound(self, tmp_path):
        proj = _proj(tmp_path, self.SOURCE)
        fns = proj.index.functions
        anchor = proj.decisions.anchor
        assert anchor(fns["mod.make"]) == "mod.make"
        assert anchor(fns["mod.caller"]) == "mod.caller"
        # Callees of the maker inherit its anchor, three hops deep.
        assert anchor(fns["mod.d1"]) == "mod.make"
        assert anchor(fns["mod.d3"]) == "mod.make"
        assert anchor(fns["mod.d4"]) is None
        assert anchor(fns["mod.unrelated"]) is None


class TestCrossFileFlow:
    FILES = {
        "flowpkg/__init__.py": "",
        "flowpkg/work.py": (
            "from repro.hamr.stream import StreamMode\n"
            "\n"
            "def run_async(copy, buf, strm):\n"
            "    copy(buf, stream=strm, mode=StreamMode.ASYNC)\n"
            "\n"
            "def settle(strm, clock):\n"
            "    strm.synchronize(clock)\n"
        ),
        "flowpkg/driver.py": (
            "from repro.hamr.stream import Stream\n"
            "\n"
            "from flowpkg.work import run_async, settle\n"
            "\n"
            "def leaks(copy, buf):\n"
            "    strm = Stream(device_id=0)\n"
            "    run_async(copy, buf, strm)\n"
            "\n"
            "def clean(copy, buf, clock):\n"
            "    strm = Stream(device_id=0)\n"
            "    run_async(copy, buf, strm)\n"
            "    settle(strm, clock)\n"
        ),
    }

    def test_async_use_in_sibling_module_is_tracked(self, tmp_path):
        for rel, src in self.FILES.items():
            p = tmp_path / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(src)
        findings = lint_paths([tmp_path / "flowpkg"], select=["HL003"])
        assert [(f.rule, f.line) for f in findings] == [("HL003", 6)]
        assert findings[0].path.endswith("driver.py")
