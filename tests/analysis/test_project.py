"""Unit tests for the project index and call graph (repro.analysis.project)."""

from __future__ import annotations

import ast

from repro.analysis.engine import parse_file
from repro.analysis.project import ProjectIndex, dotted_name, module_name_for

PKG_FILES = {
    "pkg/__init__.py": "",
    "pkg/util.py": (
        "def helper(x, scale=1):\n"
        "    return x * scale\n"
        "\n"
        "class Base:\n"
        "    def close(self):\n"
        "        return None\n"
    ),
    "pkg/app.py": (
        "from pkg.util import helper\n"
        "from .util import Base\n"
        "\n"
        "class Worker(Base):\n"
        "    def run(self, x):\n"
        "        self.close()\n"
        "        return helper(x, scale=2)\n"
        "\n"
        "def main():\n"
        "    w = Worker()\n"
        "    return w.run(1)\n"
    ),
}


def _write_tree(tmp_path, files):
    for rel, src in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(src)
    return [tmp_path / rel for rel in files]


def _index(tmp_path, files=PKG_FILES) -> ProjectIndex:
    paths = _write_tree(tmp_path, files)
    return ProjectIndex.build([parse_file(p) for p in paths])


class TestModuleNaming:
    def test_init_chain_gives_dotted_name(self, tmp_path):
        _write_tree(tmp_path, PKG_FILES)
        assert module_name_for(tmp_path / "pkg/util.py") == "pkg.util"
        assert module_name_for(tmp_path / "pkg/__init__.py") == "pkg"

    def test_bare_file_uses_stem(self, tmp_path):
        p = tmp_path / "script.py"
        p.write_text("x = 1\n")
        assert module_name_for(p) == "script"

    def test_dotted_name(self):
        node = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(node) == "a.b.c"
        call = ast.parse("f()[0]", mode="eval").body
        assert dotted_name(call) is None


class TestIndexAndResolution:
    def test_functions_and_methods_indexed(self, tmp_path):
        idx = _index(tmp_path)
        assert "pkg.util.helper" in idx.functions
        assert "pkg.app.Worker.run" in idx.functions
        assert idx.functions["pkg.util.helper"].params == ("x", "scale")
        assert idx.classes["pkg.app.Worker"].bases == ("Base",)

    def test_canonical_name_resolves_aliases(self, tmp_path):
        idx = _index(tmp_path)
        app = idx.modules["pkg.app"]
        name = ast.parse("helper", mode="eval").body
        assert idx.canonical_name(app, name) == "pkg.util.helper"
        rel = ast.parse("Base", mode="eval").body
        assert idx.canonical_name(app, rel) == "pkg.util.Base"

    def test_canonical_name_passes_through_unknown_imports(self, tmp_path):
        idx = _index(tmp_path, {"m.py": "import time\nx = time.time()\n"})
        mod = idx.modules["m"]
        node = ast.parse("time.time", mode="eval").body
        assert idx.canonical_name(mod, node) == "time.time"

    def test_call_edges_cross_module_and_base_class(self, tmp_path):
        idx = _index(tmp_path)
        edges = idx.call_edges()
        # helper() via import, self.close() via the in-project base.
        assert set(edges["pkg.app.Worker.run"]) == {
            "pkg.util.helper",
            "pkg.util.Base.close",
        }
        # w = Worker(); w.run(1) resolves through local type inference.
        assert "pkg.app.Worker.run" in edges["pkg.app.main"]

    def test_callers_of(self, tmp_path):
        idx = _index(tmp_path)
        assert idx.callers_of("pkg.app.Worker.run") == ("pkg.app.main",)
        assert idx.callers_of("pkg.app.main") == ()

    def test_map_args_skips_bound_self_and_maps_keywords(self, tmp_path):
        idx = _index(tmp_path)
        main = idx.functions["pkg.app.main"]
        mod = idx.modules["pkg.app"]
        local = idx.local_class_types(main)
        call = next(
            n for n in ast.walk(main.node)
            if isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
        )
        resolved = idx.resolve_call(mod, call, local)
        assert resolved is not None and resolved.bound
        mapped = idx.map_args(call, resolved)
        assert [p for p, _ in mapped] == ["x"]

        run = idx.functions["pkg.app.Worker.run"]
        owner = mod.classes["Worker"]
        helper_call = next(
            n for n in ast.walk(run.node)
            if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
        )
        resolved = idx.resolve_call(mod, helper_call, {}, owner)
        mapped = dict(idx.map_args(helper_call, resolved))
        assert set(mapped) == {"x", "scale"}

    def test_starred_args_stop_positional_mapping(self, tmp_path):
        idx = _index(tmp_path)
        mod = idx.modules["pkg.app"]
        call = ast.parse("helper(*parts)", mode="eval").body
        resolved = idx.resolve_call(mod, call)
        assert resolved is not None
        assert idx.map_args(call, resolved) == []

    def test_unresolvable_call_returns_none(self, tmp_path):
        idx = _index(tmp_path)
        mod = idx.modules["pkg.app"]
        call = ast.parse("os.remove(p)", mode="eval").body
        assert idx.resolve_call(mod, call) is None


class TestDeterminism:
    def test_index_is_deterministic_across_builds(self, tmp_path):
        a = _index(tmp_path)
        b = ProjectIndex.build(
            [parse_file(tmp_path / rel) for rel in reversed(list(PKG_FILES))]
        )
        assert sorted(a.functions) == sorted(b.functions)
        assert a.call_edges() == b.call_edges()
