"""Runtime sanitizer tests: races, use-after-free, cross-location reads.

The headline case provokes a genuine write-while-analyzing race through
:class:`AsyncRunner`: an asynchronous analysis task reads a buffer and
parks on an event; the simulation thread then mutates the buffer before
the task drains.  The sanitizer must flag the mutation.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.sanitizer import Sanitizer, Violation, note_write
from repro.errors import AllocationError, SanitizerError
from repro.hamr.allocator import Allocator
from repro.hamr.buffer import Buffer
from repro.sensei.execution import AsyncRunner


def _host_buffer(name="field"):
    return Buffer.allocate(64, allocator=Allocator.MALLOC, name=name)


def _race(buf, mutate):
    """Run ``mutate(buf)`` while an async task that read ``buf`` is parked."""
    runner = AsyncRunner(name="race")
    read_done = threading.Event()
    release = threading.Event()

    def analysis():
        _ = buf.data
        read_done.set()
        assert release.wait(timeout=5)

    runner.launch(analysis)
    try:
        assert read_done.wait(timeout=5)
        mutate(buf)
    finally:
        release.set()
        runner.drain()


class TestWriteWhileAnalyzing:
    def test_race_raises(self):
        buf = _host_buffer()
        with Sanitizer(mode="raise"):
            with pytest.raises(SanitizerError) as exc_info:
                _race(buf, lambda b: b.fill(0.0))
        details = exc_info.value.details
        assert details["kind"] == "write-while-analyzing"
        assert details["buffer"] == "field"
        assert details["device_id"] == buf.device_id
        assert details["stream_mode"] == "sync"

    def test_race_recorded(self):
        buf = _host_buffer()
        with Sanitizer(mode="record") as san:
            _race(buf, lambda b: b.fill(0.0))
        kinds = [v.kind for v in san.violations]
        assert kinds == ["write-while-analyzing"]
        assert san.violations[0].details_dict["buffer"] == "field"

    def test_free_during_analysis_is_use_after_free(self):
        buf = _host_buffer()
        with Sanitizer(mode="record") as san:
            _race(buf, lambda b: b.free())
        assert [v.kind for v in san.violations] == ["use-after-free"]

    def test_note_write_reports_view_mutations(self):
        buf = _host_buffer()

        def mutate(b):
            b.data[:] = 3.0  # the property only sees the read
            note_write(b)

        with Sanitizer(mode="record") as san:
            _race(buf, mutate)
        assert "write-while-analyzing" in [v.kind for v in san.violations]

    def test_write_after_drain_is_clean(self):
        buf = _host_buffer()
        runner = AsyncRunner(name="clean")
        with Sanitizer(mode="raise") as san:
            runner.launch(lambda: buf.data.sum())
            runner.drain()
            buf.fill(0.0)  # analysis drained: no race
        assert san.violations == []


class TestUseAfterFree:
    def test_read_after_free_raises(self):
        buf = _host_buffer("wrapped")
        with Sanitizer(mode="raise"):
            buf.free()
            with pytest.raises(SanitizerError) as exc_info:
                _ = buf.data
        assert exc_info.value.details["kind"] == "use-after-free"

    def test_record_mode_preserves_original_error(self):
        """Record mode logs the violation but the program still sees the
        substrate's own AllocationError, unchanged."""
        buf = _host_buffer("wrapped")
        with Sanitizer(mode="record") as san:
            buf.free()
            with pytest.raises(AllocationError):
                _ = buf.data
        assert [v.kind for v in san.violations] == ["use-after-free"]


class TestCrossLocationRead:
    def test_device_buffer_read_from_wrong_device(self):
        # CUDA memory on device 1; the reading thread is active on
        # device 0 and the allocator is not UVA: neither side can see it.
        buf = Buffer.allocate(
            16, allocator=Allocator.CUDA, device_id=1, name="devbuf"
        )
        with Sanitizer(mode="record") as san:
            _ = buf.data
        assert [v.kind for v in san.violations] == ["cross-location-read"]
        d = san.violations[0].details_dict
        assert d["device_id"] == 1
        assert d["active_device"] == 0

    def test_host_read_is_clean(self):
        buf = _host_buffer()
        with Sanitizer(mode="record") as san:
            _ = buf.data
        assert san.violations == []
        assert any(a.op == "read" for a in san.accesses)


class TestLifecycle:
    def test_instrumentation_restored_on_exit(self):
        orig_data = Buffer.data  # lint: disable=HL001
        orig_fill = Buffer.fill
        orig_launch = AsyncRunner.launch
        with Sanitizer(mode="record"):
            assert Buffer.fill is not orig_fill
        assert Buffer.data is orig_data  # lint: disable=HL001
        assert Buffer.fill is orig_fill
        assert AsyncRunner.launch is orig_launch

    def test_only_one_active(self):
        with Sanitizer(mode="record"):
            with pytest.raises(SanitizerError):
                Sanitizer(mode="record").start()

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            Sanitizer(mode="explode")

    def test_report_shape(self):
        buf = _host_buffer()
        with Sanitizer(mode="record") as san:
            _race(buf, lambda b: b.fill(1.0))
        rep = san.report()
        assert rep["violations"][0]["kind"] == "write-while-analyzing"
        assert set(rep["violations"][0]["details"]) >= {
            "buffer", "device_id", "stream_mode",
        }
        assert rep["accesses"] >= 1
        text = san.format_report()
        assert "write-while-analyzing" in text and "violation(s)" in text

    def test_violation_str(self):
        v = Violation(
            kind="x", message="m", sim_time=1.5, details=(("buffer", "b"),)
        )
        assert "[x]" in str(v) and "m" in str(v)
        assert v.to_dict()["details"] == {"buffer": "b"}
