"""Fixture: HL003 — asynchronous stream never synchronized."""

from repro.hamr.stream import Stream, StreamMode


def leaky(copy_fn, buf):
    strm = Stream(device_id=1)  # expect: HL003
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)


def synchronized(copy_fn, buf, clock):
    strm = Stream(device_id=1)
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)
    strm.synchronize(clock)


def buffer_synchronized(copy_fn, buf):
    # Synchronizing the buffers ordered on the stream also discharges it.
    strm = Stream(device_id=1)
    copy_fn(buf, stream=strm, stream_mode=StreamMode.ASYNC)
    buf.synchronize()


def escapes_to_caller(copy_fn, buf):
    strm = Stream(device_id=1)
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)
    return strm


def sync_mode_is_fine(copy_fn, buf):
    strm = Stream(device_id=1)
    copy_fn(buf, stream=strm, mode=StreamMode.SYNC)


def suppressed(copy_fn, buf):
    strm = Stream(device_id=1)  # lint: disable=HL003
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)
