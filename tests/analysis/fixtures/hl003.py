"""Fixture: HL003 — asynchronous stream never synchronized."""

from repro.hamr.stream import Stream, StreamMode


def leaky(copy_fn, buf):
    strm = Stream(device_id=1)  # expect: HL003
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)


def synchronized(copy_fn, buf, clock):
    strm = Stream(device_id=1)
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)
    strm.synchronize(clock)


def buffer_synchronized(copy_fn, buf):
    # Synchronizing the buffers ordered on the stream also discharges it.
    strm = Stream(device_id=1)
    copy_fn(buf, stream=strm, stream_mode=StreamMode.ASYNC)
    buf.synchronize()


def escapes_to_caller(copy_fn, buf):
    strm = Stream(device_id=1)
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)
    return strm


def sync_mode_is_fine(copy_fn, buf):
    strm = Stream(device_id=1)
    copy_fn(buf, stream=strm, mode=StreamMode.SYNC)


def suppressed(copy_fn, buf):
    strm = Stream(device_id=1)  # lint: disable=HL003
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)


# -- cross-function cases (resolved through the project index) ---------------

def leaks_via_helper(copy_fn, buf):
    strm = Stream(device_id=1)  # expect: HL003
    run_async(copy_fn, buf, strm)


def leaks_minted_stream(copy_fn, buf):
    strm = make_stream()  # expect: HL003
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)


def hands_off_to_syncer(copy_fn, buf, clock):
    # Near miss: the helper synchronizes on this function's behalf.
    strm = Stream(device_id=1)
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)
    finish(strm, clock)


def helper_pair_is_clean(copy_fn, buf, clock):
    # Near miss: async use and sync both delegated.
    strm = make_stream()
    run_async(copy_fn, buf, strm)
    finish(strm, clock)


def run_async(copy_fn, buf, strm):
    copy_fn(buf, stream=strm, mode=StreamMode.ASYNC)


def make_stream():
    strm = Stream(device_id=1)
    return strm


def finish(strm, clock):
    strm.synchronize(clock)
