"""Fixture: HL008 — device charge bypasses the resolved placement.

Never executed; parsed by the linter in tests/analysis/test_rules.py.
Lines carrying a violation are marked with a trailing `# expect: HLxxx`
comment the test harness reads back.
"""

from repro.hamr.allocator import HOST_DEVICE_ID
from repro.sensei.placement import select_device


def double_charges(self, payload, comm, rank):
    device = self.placement.resolve(rank)
    run_kernel(payload, device_id=0)  # expect: HL008
    return device


def double_charges_via_select(payload, rank, n):
    dev = select_device(rank, n_available=n)
    charge_work(payload, device_id=1)  # expect: HL008
    return dev


def double_charges_via_resolver(self, payload):
    device_id = self.resolve_device()
    stage(payload, device_id=2)  # expect: HL008
    return device_id


def charges_resolved_device(self, payload, comm, rank):
    device = self.placement.resolve(rank)
    run_kernel(payload, device_id=device)  # ok: charges what Eq. 1 said
    return device


def host_staging_is_exempt(self, payload, rank):
    device = self.placement.resolve(rank)
    stage(payload, device_id=HOST_DEVICE_ID)  # ok: host is not governed
    run_kernel(payload, device_id=-1)  # ok: host spelled as a literal
    return device


def no_resolution_no_opinion(payload):
    # Without a resolved placement in scope the ordinal may be the
    # whole program's explicit manual choice; not this rule's call.
    run_kernel(payload, device_id=3)


def deliberate_cross_device(self, payload, rank):
    device = self.placement.resolve(rank)
    # Peer staging ahead of a device-to-device gather is deliberate.
    stage(payload, device_id=1)  # lint: disable=HL008
    return device


# -- cross-function cases (resolved through the project index) ---------------

def charges_via_helper(self, payload, rank):
    device = self.placement.resolve(rank)
    launch(payload, 1)  # expect: HL008
    return device


def resolver_is_in_the_helper(self, payload):
    # The helper resolves the placement itself, so a literal pushed
    # into its charging parameter bypasses it just the same.
    charge_after_resolve(self, payload, 2)  # expect: HL008


def host_via_helper(self, payload, rank):
    device = self.placement.resolve(rank)
    launch(payload, -1)  # ok: host is not governed
    return device


def free_choice_via_helper(payload):
    # Near miss: nothing resolves a placement anywhere on this path.
    launch(payload, 3)


def forwards_resolved_device(self, payload, rank):
    # Near miss: the resolved ordinal itself rides through the helper.
    device = self.placement.resolve(rank)
    launch(payload, device)
    return device


def launch(payload, device_id):
    run_kernel(payload, device_id=device_id)


def charge_after_resolve(self, payload, device_id):
    dev = self.resolve_device()
    run_kernel(payload, device_id=device_id)
    return dev


def run_kernel(payload, device_id):
    return payload, device_id


def charge_work(payload, device_id):
    return payload, device_id


def stage(payload, device_id):
    return payload, device_id
