"""Fixture: HL009 — pool handle leaks across a function boundary.

Never executed; parsed by the linter in tests/analysis/test_rules.py.
Lines carrying a violation are marked with a trailing `# expect: HLxxx`
comment the test harness reads back.  The helpers at the bottom are
resolved interprocedurally — the whole point of this rule.
"""

from repro.hamr.buffer import pool_for


def drops_helper_handle(pm, payload):
    handle = make_pool(pm, payload)  # expect: HL009
    payload.scale(2.0)


def discards_helper_result(pm, payload):
    make_pool(pm, payload)  # expect: HL009
    payload.scale(2.0)


def splits_ownership(pm, payload):
    scratch = pool_for(pm, 0)
    scratch.acquire(payload.nbytes)
    stash = pool_for(pm, 1)
    stash.acquire(payload.nbytes)
    consume(stash)  # expect: HL009
    scratch.release(payload.nbytes)


def releases_helper_handle(pm, payload):
    handle = make_pool(pm, payload)
    payload.scale(2.0)
    handle.release(payload.nbytes)


def reescapes_helper_handle(pm, payload):
    # Handing the handle back up keeps the obligation visible.
    handle = make_pool(pm, payload)
    return handle


def stores_helper_handle(self, pm, payload):
    # Stored on self: the owner object's teardown is responsible.
    handle = make_pool(pm, payload)
    self._pool = handle


def passes_to_releaser(pm, payload):
    handle = make_pool(pm, payload)
    finish(handle, payload)


def pairs_in_one_scope(pm, payload):
    # HL007's home turf — acquire and release stay together.
    pool = pool_for(pm, 0)
    pool.acquire(payload.nbytes)
    payload.scale(2.0)
    pool.release(payload.nbytes)


def adopted_elsewhere(pm, payload, registry):
    # Unresolvable receiver: the linter gives it the benefit of the
    # doubt rather than inventing a leak it cannot prove.
    handle = make_pool(pm, payload)
    registry.adopt(handle)


def deliberate_transfer(pm, payload):
    handle = make_pool(pm, payload)  # lint: disable=HL009
    payload.scale(2.0)


def make_pool(pm, payload):
    pool = pool_for(pm, 0)
    pool.acquire(payload.nbytes)
    return pool


def finish(pool, payload):
    pool.release(payload.nbytes)


def consume(pool):
    return pool.available()
