"""Fixture: HL006 — bare except / silently swallowed StreamError."""

from repro.errors import StreamError, SynchronizationError


def bare(work):
    try:
        work()
    except:  # expect: HL006  # noqa: E722 (deliberate fixture)
        pass


def swallowed(work):
    try:
        work()
    except StreamError:  # expect: HL006
        pass


def swallowed_tuple(work):
    try:
        work()
    except (ValueError, SynchronizationError):  # expect: HL006
        pass


def handled(work, log):
    try:
        work()
    except StreamError as exc:
        log(exc)


def other_errors_may_pass(work):
    try:
        work()
    except ValueError:
        pass


def suppressed(work):
    try:
        work()
    except:  # lint: disable=HL006
        pass
