"""Fixture: HL001 — raw buffer storage access outside the view layer.

Never executed; parsed by the linter in tests/analysis/test_rules.py.
Lines carrying a violation are marked with a trailing `# expect: HLxxx`
comment the test harness reads back.
"""


class Holder:
    def __init__(self, data):
        self._data = data

    def own(self):
        return self._data  # self access is exempt (own storage)


def touch(buf):
    values = buf.data  # expect: HL001
    raw = buf._data  # expect: HL001
    return values, raw


def suppressed(buf):
    return buf.data  # lint: disable=HL001
