"""Fixture: HL010 — nondeterminism on a trace-recorder path.

Never executed; parsed by the linter in tests/analysis/test_rules.py.
``TraceEvent`` construction anchors the determinism lint the same way
``Decision`` does: ``emit`` builds one, so it, its caller
``on_publish``, and its callee ``payload_key`` are on the decision
path; ``render`` is not.  Every violation line carries a trailing
expectation marker the test harness reads back.
"""

import random
import time

from repro.trace.format import TraceEvent


def emit(self, kind, body):
    stamp = time.monotonic()  # expect: HL010
    fields = {k: v for k, v in body.items()}  # expect: HL010
    fields["key"] = payload_key(self, body)
    fields["stamp"] = stamp
    return TraceEvent(
        kind=kind, rank=self.rank, seq=self.seq,
        body=tuple(sorted(fields.items())),
    )


def on_publish(self, step, meshes):
    # Direct caller of the TraceEvent maker: also on the path.
    jitter = random.random()  # expect: HL010
    return emit(self, "publish", {"step": step + jitter, "meshes": meshes})


def payload_key(self, body):
    # Callee of the maker (bounded-depth BFS): still on the path.
    for name in set(body):  # expect: HL010
        self.touch(name)
    return "|".join(sorted(body))


def canonical(self, kind, body):
    # The sanctioned shapes: seeded RNG, sorted iteration.
    rng = random.Random(self.seed)
    ordered = tuple(sorted(body.items()))
    return TraceEvent(
        kind=kind, rank=self.rank, seq=rng.randrange(2), body=ordered,
    )


def suppressed_wall_guard(self, kind, body):
    deadline = time.monotonic() + 5.0  # lint: disable=HL010
    event = emit(self, kind, body)
    self.deadline = deadline
    return event


def render(events):
    # Not on any trace path: wall-clock and dict order are fine here.
    stamp = time.time()
    lines = [f"{k}={v}" for e in events for k, v in e.to_dict().items()]
    return stamp, lines
