"""Fixture: HL007 — pool acquire without release/trim in scope.

Never executed; parsed by the linter in tests/analysis/test_rules.py.
Lines carrying a violation are marked with a trailing `# expect: HLxxx`
comment the test harness reads back.
"""

from repro.hamr.pool import pool_for


def leaky(resource, nbytes):
    pool = pool_for(resource)
    pool.acquire(nbytes)  # expect: HL007
    return nbytes


def leaky_inline(resource, nbytes):
    pool_for(resource).acquire(nbytes)  # expect: HL007


def balanced(resource, nbytes):
    pool = pool_for(resource)
    hit = pool.acquire(nbytes)
    pool.release(nbytes)  # discharge: release in the same scope
    return hit


def trimmed(resource, nbytes):
    pool = pool_for(resource)
    pool.acquire(nbytes)
    return pool.trim()  # discharge: trim in the same scope


def handed_off(resource, nbytes):
    pool = pool_for(resource)
    pool.acquire(nbytes)
    return pool  # escape: releasing is the caller's responsibility


class Owner:
    def adopt(self, resource, nbytes):
        pool = pool_for(resource)
        pool.acquire(nbytes)
        self.pool = pool  # escape: stored, finalizer releases


def unrelated_lock(lock):
    lock.acquire()  # not a pool: no finding
    lock.release()


def suppressed(resource, nbytes):
    pool = pool_for(resource)
    pool.acquire(nbytes)  # lint: disable=HL007 -- freed by test teardown
