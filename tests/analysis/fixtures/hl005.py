"""Fixture: HL005 — direct threading.Thread use outside AsyncRunner."""

import threading
from threading import Thread


def raw_thread(fn):
    t = threading.Thread(target=fn)  # expect: HL005
    t.start()
    return t


def raw_thread_from_import(fn):
    return Thread(target=fn)  # expect: HL005


def sanctioned(runner, fn):
    runner.launch(fn)
    runner.drain()


def suppressed(fn):
    return threading.Thread(target=fn)  # lint: disable=HL005
