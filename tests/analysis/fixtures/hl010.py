"""Fixture: HL010 — nondeterminism on a governor decision path.

Never executed; parsed by the linter in tests/analysis/test_rules.py.
Lines carrying a violation are marked with a trailing `# expect: HLxxx`
comment the test harness reads back.  ``decide`` constructs a
``Decision``, so it, its caller ``step``, and its callees ``score``
and ``jitter`` are on the decision path; ``report`` is not.
"""

import random
import time
from datetime import datetime

from repro.control.governors import Decision
from repro.hamr.runtime import current_clock


def decide(self, step, metrics):
    stamp = time.time()  # expect: HL010
    for name, value in metrics.items():  # expect: HL010
        self.record(name, value)
    ranked = score(self, metrics)
    base = jitter(self, step, metrics)
    return Decision(
        step=step, kind="codec", value=ranked,
        reason=f"score={ranked} base={base} at {stamp}",
    )


def step(self, step_no, metrics):
    # Direct caller of the Decision maker: also on the path.
    wall = datetime.now()  # expect: HL010
    if wall.second % 2:
        return None
    return decide(self, step_no, metrics)


def score(self, loads):
    # Callee of the maker (bounded-depth BFS): still on the path.
    noise = random.random()  # expect: HL010
    rng = random.Random()  # expect: HL010
    return sum(v for v in sorted(loads.values())) + noise + rng.random()


def jitter(self, seed, loads):
    # The sanctioned sources: simulated clock, seeded RNG, sorted().
    now = current_clock().now
    rng = random.Random(seed)
    total = sum(loads[k] for k in sorted(loads.keys()))
    return total + rng.uniform(0.0, 1e-3) + now


def suppressed_display_only(self, step_no, metrics):
    started = time.monotonic()  # lint: disable=HL010
    d = decide(self, step_no, metrics)
    elapsed = time.monotonic() - started  # lint: disable=HL010
    self.log(f"decide took {elapsed:.3g}s")
    return d


def report(metrics):
    # Not on any decision path: wall-clock and dict order are fine here.
    stamp = time.time()
    lines = [f"{k}={v}" for k, v in metrics.items()]
    return stamp, lines
