"""Fixture: HL002 — allocator paired with an incompatible location/PM."""

from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.buffer import Buffer
from repro.hamr.copier import transfer


def host_allocator_on_device():
    return Buffer.allocate(16, allocator=Allocator.MALLOC, device_id=2)  # expect: HL002


def device_allocator_on_host():
    return Buffer.allocate(16, allocator=Allocator.CUDA, device_id=HOST_DEVICE_ID)  # expect: HL002


def device_allocator_negative_literal():
    return Buffer.allocate(16, allocator=Allocator.HIP, device_id=-1)  # expect: HL002


def device_allocator_with_host_pm(buf):
    return transfer(buf, -1, pm=PMKind.HOST, allocator=Allocator.CUDA)  # expect: HL002


def consistent():
    Buffer.allocate(16, allocator=Allocator.MALLOC, device_id=HOST_DEVICE_ID)
    Buffer.allocate(16, allocator=Allocator.CUDA, device_id=1)


def suppressed():
    return Buffer.allocate(16, allocator=Allocator.CUDA, device_id=-1)  # lint: disable=HL002
