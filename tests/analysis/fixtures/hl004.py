"""Fixture: HL004 — zero-copy wrap without a lifetime owner."""

from repro.hamr.allocator import Allocator
from repro.hamr.buffer import Buffer
from repro.svtk.hamr_array import HAMRDataArray, HAMRDoubleArray


def unowned_wrap(values):
    return Buffer.wrap(values, Allocator.MALLOC)  # expect: HL004


def unowned_zero_copy(values):
    return HAMRDataArray.zero_copy("x", values)  # expect: HL004


def unowned_typed_zero_copy(values):
    return HAMRDoubleArray.zero_copy("x", values, allocator=Allocator.OPENMP, device_id=1)  # expect: HL004


def with_owner(values):
    return Buffer.wrap(values, Allocator.MALLOC, owner=values)


def with_deleter(values, free_fn):
    return HAMRDataArray.zero_copy("x", values, deleter=free_fn)


def forwarding(values, **kwargs):
    # **kwargs may carry owner/deleter; statically unknowable, not flagged.
    return Buffer.wrap(values, Allocator.MALLOC, **kwargs)


def suppressed(values):
    return Buffer.wrap(values, Allocator.MALLOC)  # lint: disable=HL004
