"""Edge cases of the two-pass rule engine: parse errors, discovery
pruning, suppression parsing, and deterministic parallel parsing."""

from __future__ import annotations

from repro.analysis.engine import (
    Finding,
    Severity,
    iter_python_files,
    parse_file,
    parse_files,
    parse_suppressions,
    run_rules,
)
from repro.analysis.lint import lint_paths
from repro.analysis.rules import default_rules


class TestParseErrors:
    def test_non_utf8_file_reported_not_raised(self, tmp_path):
        p = tmp_path / "latin.py"
        p.write_bytes(b"x = '\xff\xfe'\n")
        result = parse_file(p)
        assert isinstance(result, Finding)
        assert result.rule == "HL000"
        assert result.severity is Severity.ERROR
        assert result.details_dict["error"] == "decode"

    def test_syntax_error_carries_location_and_kind(self, tmp_path):
        p = tmp_path / "broken.py"
        p.write_text("def f(:\n")
        result = parse_file(p)
        assert isinstance(result, Finding)
        assert result.details_dict["error"] == "syntax"
        assert result.line == 1

    def test_run_rules_surfaces_parse_errors_with_findings(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        (tmp_path / "dirty.py").write_text("def f(b):\n    return b._data\n")
        findings = run_rules([tmp_path], default_rules())
        assert {f.rule for f in findings} == {"HL000", "HL001"}


class TestDiscovery:
    def test_skip_dirs_and_egg_info_are_pruned(self, tmp_path):
        bad = "def f(b):\n    return b._data\n"
        (tmp_path / "good.py").write_text("x = 1\n")
        for skipped in ("__pycache__", ".venv", "node_modules",
                        "repro.egg-info"):
            d = tmp_path / skipped
            d.mkdir()
            (d / "bad.py").write_text(bad)
        files = list(iter_python_files([tmp_path]))
        assert [f.name for f in files] == ["good.py"]
        assert lint_paths([tmp_path]) == []

    def test_duplicate_paths_are_deduped(self, tmp_path):
        p = tmp_path / "one.py"
        p.write_text("x = 1\n")
        files = list(iter_python_files([p, p, tmp_path]))
        assert files == [p]


class TestSuppressionParsing:
    def test_disable_all_is_case_insensitive(self, tmp_path):
        for variant in ("all", "ALL", "All"):
            p = tmp_path / f"m_{variant}.py"
            p.write_text(
                f"def f(b):\n    return b.data  # lint: disable={variant}\n"
            )
            assert lint_paths([p]) == []

    def test_rule_ids_are_case_insensitive(self, tmp_path):
        p = tmp_path / "m.py"
        p.write_text("def f(b):\n    return b.data  # lint: disable=hl001\n")
        assert lint_paths([p]) == []

    def test_string_embedded_disable_text_is_not_a_suppression(self):
        source = (
            "def f(b):\n"
            "    return b.data, '# lint: disable=HL001'\n"
        )
        assert parse_suppressions(source) == {}

    def test_docstring_disable_text_is_not_a_suppression(self):
        source = (
            'HINT = """suppress with\n'
            "# lint: disable=HL001\n"
            'when deliberate"""\n'
        )
        assert parse_suppressions(source) == {}

    def test_real_comment_still_counts(self):
        source = "x = 1  # lint: disable=HL001,HL005\n"
        assert parse_suppressions(source) == {1: {"HL001", "HL005"}}


class TestParallelParsing:
    def test_parse_files_is_deterministic_across_job_counts(self, tmp_path):
        for i in range(12):
            (tmp_path / f"m{i:02d}.py").write_text(f"x = {i}\n")
        (tmp_path / "broken.py").write_text("def f(:\n")
        serial_ctx, serial_err = parse_files([tmp_path], jobs=1)
        parallel_ctx, parallel_err = parse_files([tmp_path], jobs=4)
        assert [c.posix for c in serial_ctx] == [c.posix for c in parallel_ctx]
        assert serial_err == parallel_err
