"""Rule-engine tests: one fixture file per rule HL001-HL006.

Each fixture marks violating lines with a trailing ``# expect: HLxxx``
comment and demonstrates a same-line ``# lint: disable=HLxxx``
suppression.  The harness asserts the linter reports exactly the
expected (rule, line) pairs — so rule ids, line numbers, and the
suppression machinery are all covered per rule.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.engine import Severity, lint_file, parse_suppressions
from repro.analysis.lint import lint_paths
from repro.analysis.rules import DEFAULT_RULES, default_rules

FIXTURES = Path(__file__).parent / "fixtures"
_EXPECT_RE = re.compile(r"#\s*expect:\s*(HL\d{3})")

ALL_RULE_IDS = [cls.id for cls in DEFAULT_RULES]


def expected_findings(path: Path) -> list[tuple[str, int]]:
    """(rule, line) pairs declared by ``# expect:`` markers."""
    out = []
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(text)
        if m:
            out.append((m.group(1), lineno))
    return out


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_fixture_matches_expectations(self, rule_id):
        """Each rule reports its fixture's marked lines, nothing more."""
        path = FIXTURES / f"{rule_id.lower()}.py"
        expected = [e for e in expected_findings(path) if e[0] == rule_id]
        assert expected, f"fixture {path.name} declares no expectations"
        findings = lint_paths([path], select=[rule_id])
        got = [(f.rule, f.line) for f in findings]
        assert got == expected

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_suppression_line_present_and_honored(self, rule_id):
        """Every fixture demonstrates # lint: disable=HLxxx working."""
        path = FIXTURES / f"{rule_id.lower()}.py"
        suppressions = parse_suppressions(path.read_text())
        assert any(rule_id in ids for ids in suppressions.values()), (
            f"fixture {path.name} has no # lint: disable={rule_id} line"
        )
        suppressed_lines = {
            line for line, ids in suppressions.items() if rule_id in ids
        }
        findings = lint_paths([path], select=[rule_id])
        assert not {f.line for f in findings} & suppressed_lines

    def test_whole_fixture_dir_is_rule_tagged(self):
        """Running all rules over all fixtures exits non-zero-style."""
        findings = lint_paths([FIXTURES])
        assert findings
        assert {f.rule for f in findings} == set(ALL_RULE_IDS)

    def test_hl010_covers_trace_recorder_paths(self):
        """``TraceEvent`` construction anchors HL010 like ``Decision``.

        The recorder fixture marks wall-clock reads, unseeded RNG, and
        unsorted iteration inside functions on a trace-event path; the
        canonical shapes (seeded RNG, ``sorted(...)``) and off-path
        rendering code must stay clean.
        """
        path = FIXTURES / "hl010_trace.py"
        expected = expected_findings(path)
        assert expected and all(rule == "HL010" for rule, _ in expected)
        findings = lint_paths([path], select=["HL010"])
        assert [(f.rule, f.line) for f in findings] == expected
        # The fixture stays single-rule so the whole-dir tag check
        # above keeps its exact rule-set equality.
        assert {f.rule for f in lint_paths([path])} == {"HL010"}


class TestFindingShape:
    def test_finding_fields(self):
        f = lint_paths([FIXTURES / "hl001.py"], select=["HL001"])[0]
        assert f.rule == "HL001"
        assert f.severity is Severity.ERROR
        assert f.line > 0 and f.col >= 0
        assert f.hint
        d = f.to_dict()
        assert d["severity"] == "error"
        assert isinstance(d["details"], dict)

    def test_severities(self):
        sev = {cls.id: cls.severity for cls in DEFAULT_RULES}
        assert sev["HL001"] is Severity.ERROR
        assert sev["HL003"] is Severity.WARNING
        assert sev["HL004"] is Severity.WARNING


class TestEngineMechanics:
    def test_disable_all(self, tmp_path):
        p = tmp_path / "m.py"
        p.write_text("def f(b):\n    return b.data  # lint: disable=all\n")
        assert lint_paths([p]) == []

    def test_multi_id_suppression(self, tmp_path):
        p = tmp_path / "m.py"
        p.write_text(
            "import threading\n"
            "def f(b):\n"
            "    t = threading.Thread(target=b)  # lint: disable=HL001,HL005\n"
        )
        assert lint_paths([p]) == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        p = tmp_path / "broken.py"
        p.write_text("def f(:\n")
        findings = lint_file(p, default_rules())
        assert len(findings) == 1
        assert findings[0].rule == "HL000"

    def test_results_are_stably_ordered(self):
        a = lint_paths([FIXTURES])
        b = lint_paths([FIXTURES])
        assert [(f.path, f.line, f.rule) for f in a] == [
            (f.path, f.line, f.rule) for f in b
        ]

    def test_select_filters_rules(self):
        findings = lint_paths([FIXTURES], select=["HL005"])
        assert findings and all(f.rule == "HL005" for f in findings)


class TestReporters:
    def test_text_report(self):
        from repro.analysis.report import format_text

        findings = lint_paths([FIXTURES / "hl001.py"], select=["HL001"])
        text = format_text(findings)
        assert "HL001" in text and "hint:" in text and "error" in text
        assert format_text([]) == "clean: no findings"

    def test_json_report(self):
        import json

        from repro.analysis.report import format_json

        findings = lint_paths([FIXTURES / "hl006.py"], select=["HL006"])
        payload = json.loads(format_json(findings))
        assert payload["summary"]["findings"] == len(findings)
        assert all(f["rule"] == "HL006" for f in payload["findings"])
