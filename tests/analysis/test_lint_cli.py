"""CLI-surface tests: derived rule span, the suppression audit, and
SARIF output."""

from __future__ import annotations

import json

from repro.analysis.lint import (
    UNKNOWN_SUPPRESSION,
    UNUSED_SUPPRESSION,
    audit_suppressions,
    describe,
    lint_paths,
    main,
)
from repro.analysis.report import format_sarif
from repro.analysis.rules import default_rules, rule_span


class TestDerivedHelp:
    def test_rule_span_is_derived_from_default_rules(self):
        ids = sorted(r.id for r in default_rules())
        assert rule_span() == f"{ids[0]}-{ids[-1]}"
        assert rule_span() == "HL001-HL010"

    def test_describe_mentions_the_span(self):
        assert rule_span() in describe()


AUDIT_SOURCE = (
    "def f(b):\n"
    "    return b.data  # lint: disable=HL001\n"
    "\n"
    "x = 1  # lint: disable=HL003\n"
    "y = 2  # lint: disable=HL999\n"
)


class TestSuppressionAudit:
    def _write(self, tmp_path):
        p = tmp_path / "m.py"
        p.write_text(AUDIT_SOURCE)
        return p

    def test_stale_and_unknown_suppressions_reported(self, tmp_path):
        p = self._write(tmp_path)
        findings = audit_suppressions([p])
        assert [(f.rule, f.line) for f in findings] == [
            (UNUSED_SUPPRESSION, 4),
            (UNKNOWN_SUPPRESSION, 5),
        ]
        # The live suppression on line 2 is not reported.
        assert all(f.line != 2 for f in findings)

    def test_lint_paths_merges_audit_when_asked(self, tmp_path):
        p = self._write(tmp_path)
        assert lint_paths([p]) == []
        merged = lint_paths([p], check_suppressions=True)
        assert {f.rule for f in merged} == {
            UNUSED_SUPPRESSION, UNKNOWN_SUPPRESSION,
        }

    def test_cli_flag_fails_the_run(self, tmp_path, capsys):
        p = self._write(tmp_path)
        assert main([str(p)]) == 0
        capsys.readouterr()
        assert main([str(p), "--check-suppressions"]) == 1
        out = capsys.readouterr().out
        assert UNUSED_SUPPRESSION in out and UNKNOWN_SUPPRESSION in out


class TestSarif:
    def test_sarif_document_shape(self, tmp_path, capsys):
        dirty = tmp_path / "bad.py"
        dirty.write_text("def f(b):\n    return b._data\n")
        assert main([str(dirty), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {r.id for r in default_rules()} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "HL001"
        assert result["level"] == "error"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2
        assert region["startColumn"] >= 1

    def test_empty_report_still_lists_rules(self):
        doc = json.loads(format_sarif([]))
        run = doc["runs"][0]
        assert run["results"] == []
        assert len(run["tool"]["driver"]["rules"]) == len(default_rules())

    def test_audit_findings_get_synthetic_descriptors(self, tmp_path):
        p = tmp_path / "m.py"
        p.write_text("x = 1  # lint: disable=HL003\n")
        findings = audit_suppressions([p])
        doc = json.loads(format_sarif(findings))
        run = doc["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert UNUSED_SUPPRESSION in rule_ids
        assert run["results"][0]["level"] == "warning"
