"""End-to-end tests for the multi-pipeline service runtime."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.plan import ControlConfig
from repro.errors import ExecutionError
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.service import (
    LoadBoard,
    PipelineSpec,
    ServiceConfig,
    run_service,
)
from repro.svtk.table import TableData


class Recorder(AnalysisAdaptor):
    """Collects (step, row_count) per executed step."""

    def __init__(self, name="recorder"):
        super().__init__(name)
        self.seen: list[tuple[int, int]] = []

    def acquire(self, data, deep):
        mesh_name = data.get_mesh_names()[0]
        return (data.time_step, data.get_mesh(mesh_name).n_rows)

    def process(self, payload, comm, device_id):
        self.seen.append(payload)


def _table(mesh, rows, value):
    t = TableData(mesh)
    t.add_host_column("x", np.full(rows, float(value)))
    return t


def _adaptor(meshes: dict, step: int):
    da = TableDataAdaptor(dict(meshes))
    da.set_step(step, 0.1 * step)
    return da


def _two_pipeline_config(**kw):
    return ServiceConfig(
        pipelines=(
            PipelineSpec(name="alpha", weight=1.0),
            PipelineSpec(name="beta", weight=1.0),
        ),
        **kw,
    )


def _registry():
    return {"alpha": lambda: [Recorder("ra")],
            "beta": lambda: [Recorder("rb")]}


class TestMultiPipeline:
    def test_two_tenants_shard_across_endpoints(self):
        config = _two_pipeline_config()

        def producer_main(sim_comm, bridge):
            for step in range(4):
                bridge.execute(_adaptor({
                    "alpha": _table("alpha", 4, sim_comm.rank),
                    "beta": _table("beta", 2, sim_comm.rank),
                }, step))
            return sim_comm.rank

        producers, endpoints = run_service(
            config, producer_main, _registry(), m=2, n=2,
        )
        assert producers == [0, 1]
        # LPT placement: alpha on endpoint 0, beta on endpoint 1.
        steps = {
            name: sum(ep.pipeline_steps[name] for ep in endpoints)
            for name in ("alpha", "beta")
        }
        assert steps == {"alpha": 4, "beta": 4}
        assert endpoints[0].pipeline_steps["alpha"] == 4
        assert endpoints[1].pipeline_steps["beta"] == 4
        # Both producers' rows concatenated per step, per pipeline.
        ra = endpoints[0].analyses["alpha"][0]
        assert ra.seen == [(s, 8) for s in range(4)]
        rb = endpoints[1].analyses["beta"][0]
        assert rb.seen == [(s, 4) for s in range(4)]

    def test_early_fin_does_not_stall_siblings(self):
        config = _two_pipeline_config()

        def producer_main(sim_comm, bridge):
            for step in range(4):
                meshes = {"alpha": _table("alpha", 4, 1.0)}
                if step < 1:
                    meshes["beta"] = _table("beta", 2, 2.0)
                bridge.execute(_adaptor(meshes, step))
                if step == 0:
                    bridge.finish_pipeline("beta")
                    bridge.finish_pipeline("beta")  # idempotent
            return True

        _, endpoints = run_service(
            config, producer_main, _registry(), m=2, n=2,
        )
        steps = {
            name: sum(ep.pipeline_steps[name] for ep in endpoints)
            for name in ("alpha", "beta")
        }
        assert steps == {"alpha": 4, "beta": 1}

    def test_late_joining_pipeline(self):
        config = _two_pipeline_config()

        def producer_main(sim_comm, bridge):
            for step in range(4):
                meshes = {"alpha": _table("alpha", 4, 1.0)}
                if step >= 2:  # beta only starts publishing at step 2
                    meshes["beta"] = _table("beta", 2, 2.0)
                bridge.execute(_adaptor(meshes, step))
            return True

        _, endpoints = run_service(
            config, producer_main, _registry(), m=2, n=2,
        )
        beta_steps = [
            s for ep in endpoints
            for (s, _rows) in (
                ep.analyses["beta"][0].seen if "beta" in ep.analyses else ()
            )
        ]
        assert sorted(beta_steps) == [2, 3]
        assert sum(ep.pipeline_steps["alpha"] for ep in endpoints) == 4

    def test_rank_subset_pipelines(self):
        config = ServiceConfig(pipelines=(
            PipelineSpec(name="alpha", ranks=(0,)),
            PipelineSpec(name="beta", ranks=(1, 2)),
        ))

        def producer_main(sim_comm, bridge):
            for step in range(3):
                meshes = {}
                if sim_comm.rank == 0:
                    meshes["alpha"] = _table("alpha", 4, 0.0)
                else:
                    meshes["beta"] = _table("beta", 2, 1.0)
                bridge.execute(_adaptor(meshes, step))
            return True

        _, endpoints = run_service(
            config, producer_main, _registry(), m=3, n=2,
        )
        assert sum(ep.pipeline_steps["alpha"] for ep in endpoints) == 3
        assert sum(ep.pipeline_steps["beta"] for ep in endpoints) == 3
        # beta's two producers were concatenated on its endpoint.
        rows = {
            rows for ep in endpoints
            for (_s, rows) in ep.analyses["beta"][0].seen
        }
        assert rows <= {4} and rows

    def test_zero_step_service_drains(self):
        config = _two_pipeline_config()
        _, endpoints = run_service(
            config, lambda sim, bridge: 0, _registry(), m=2, n=2,
        )
        assert all(ep.steps_processed == 0 for ep in endpoints)
        # Every initially-routed flow saw a graceful fin.
        for ep in endpoints:
            for (name, p), r in ep.receivers.items():
                if p in ep._initial_members[name]:
                    assert r.finished

    def test_lifecycle_errors(self):
        config = _two_pipeline_config()

        def producer_main(sim_comm, bridge):
            out = []
            try:
                bridge.finish_pipeline("ghost")
            except Exception as exc:
                out.append(type(exc).__name__)
            bridge.finalize()
            bridge.finalize()  # idempotent
            try:
                bridge.execute(_adaptor({}, 0))
            except ExecutionError:
                out.append("rejected")
            return out

        producers, _ = run_service(
            config, producer_main, _registry(), m=1, n=1,
        )
        assert producers == [["ConfigError", "rejected"]]

    def test_bad_mn_rejected(self):
        with pytest.raises(ExecutionError):
            run_service(_two_pipeline_config(), lambda s, b: 0, {}, m=0, n=1)


class TestAdmissionControl:
    def _config(self):
        # Three equal-weight tenants over two endpoints: a and c start
        # together on endpoint 0, b alone on endpoint 1.
        return ServiceConfig(
            pipelines=(
                PipelineSpec(name="a"),
                PipelineSpec(name="b"),
                PipelineSpec(name="c"),
            ),
            budget=16,
            skew=1.3,
            cooldown=1,
        )

    def _registry(self):
        return {n: (lambda n=n: [Recorder(f"r{n}")]) for n in "abc"}

    def test_skewed_tenant_migrates_and_quota_follows(self):
        control = ControlConfig.from_xml_attrs(
            {"quota": "on", "interval": "2"}
        )

        def producer_main(sim_comm, bridge):
            for step in range(8):
                bridge.execute(_adaptor({
                    "a": _table("a", 64, 1.0),
                    "b": _table("b", 8, 2.0),
                    "c": _table("c", 4096, 3.0),  # the heavy tenant
                }, step))
            plane = bridge.control_plane
            return [d.to_dict() for d in plane.decisions]

        logs, endpoints = run_service(
            self._config(), producer_main, self._registry(),
            m=2, n=2, control=control,
        )
        governors = {d["governor"] for log in logs for d in log}
        assert "quota" in governors and "shard" in governors
        migrations = [
            d for d in logs[0]
            if d["governor"] == "shard" and d["applied"]
        ]
        assert migrations and migrations[0]["args"]["pipeline"] == "c"
        # Both ranks walked identical decision logs (replicated state).
        strip = lambda log: [
            {k: v for k, v in d.items() if k != "time"} for d in log
        ]
        assert strip(logs[0]) == strip(logs[1])
        # The heavy tenant kept flowing across the migration: all 8
        # steps arrived, split between old and new endpoints.
        assert sum(ep.pipeline_steps["c"] for ep in endpoints) == 8
        assert all(
            ep.pipeline_steps["c"] > 0 for ep in endpoints
        ), "migration should spread c across both endpoints"
        # Quota grants shrank the light tenants' windows on the shared
        # endpoint relative to the heavy tenant's fair share.
        quota = [d for d in logs[0] if d["governor"] == "quota"]
        assert quota and all(d["applied"] for d in quota)

    def test_quota_off_means_no_rounds(self):
        def producer_main(sim_comm, bridge):
            for step in range(2):
                bridge.execute(_adaptor({
                    "a": _table("a", 8, 1.0),
                    "b": _table("b", 8, 2.0),
                    "c": _table("c", 8, 3.0),
                }, step))
            plane = bridge.control_plane
            return [d.governor for d in plane.decisions]

        control = ControlConfig.from_xml_attrs({})  # quota defaults off
        logs, _ = run_service(
            self._config(), producer_main, self._registry(),
            m=2, n=2, control=control,
        )
        for log in logs:
            assert "quota" not in log and "shard" not in log


class TestLoadBoardIntegration:
    def test_board_tracks_shared_endpoint(self):
        board = LoadBoard()
        config = _two_pipeline_config()

        def producer_main(sim_comm, bridge):
            for step in range(2):
                bridge.execute(_adaptor({
                    "alpha": _table("alpha", 64, 1.0),
                    "beta": _table("beta", 64, 2.0),
                }, step))
            return True

        run_service(
            config, producer_main, _registry(), m=2, n=2,
            load_board=board,
        )
        # Everything drained: the ledger returns to zero everywhere.
        assert all(v == 0 for v in board.snapshot().values())
