"""Tests for the shared offered-load board."""

from __future__ import annotations

import threading

from repro.service.load import LoadBoard


class TestLoadBoard:
    def test_add_and_read(self):
        board = LoadBoard()
        assert board.load(7) == 0
        board.add(7, 100)
        board.add(7, 50)
        board.add(8, 5)
        assert board.load(7) == 150
        assert board.load(8) == 5

    def test_clamped_at_zero(self):
        board = LoadBoard()
        board.add(1, 10)
        board.add(1, -99)
        assert board.load(1) == 0

    def test_snapshot_sorted_copy(self):
        board = LoadBoard()
        board.add(5, 1)
        board.add(2, 2)
        snap = board.snapshot()
        assert list(snap) == [2, 5]
        snap[2] = 999
        assert board.load(2) == 2

    def test_concurrent_accounting(self):
        board = LoadBoard()

        def worker():
            for _ in range(1000):
                board.add(0, 3)
                board.add(0, -3)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert board.load(0) == 0
