"""Tests for the service plan: specs, config, XML, shards, routing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sensei.xml_config import parse_document
from repro.service.plan import (
    PipelineRegistry,
    PipelineSpec,
    ServiceConfig,
    ShardMap,
    pipeline_tags,
    route_producers,
)
from repro.transport.config import TransportConfig


class TestPipelineSpec:
    def test_defaults(self):
        spec = PipelineSpec(name="hot")
        assert spec.mesh == "hot"
        assert spec.weight == 1.0
        assert spec.shard_size == 1
        assert not spec.collective
        assert isinstance(spec.transport, TransportConfig)

    def test_mesh_defaults_to_name_but_can_differ(self):
        assert PipelineSpec(name="hot", mesh="bodies").mesh == "bodies"

    def test_validation(self):
        with pytest.raises(ConfigError):
            PipelineSpec(name="")
        with pytest.raises(ConfigError):
            PipelineSpec(name="a:b")
        with pytest.raises(ConfigError):
            PipelineSpec(name="x", weight=0.0)
        with pytest.raises(ConfigError):
            PipelineSpec(name="x", shard_size=0)
        with pytest.raises(ConfigError):
            PipelineSpec(name="x", ranks=())
        with pytest.raises(ConfigError):
            PipelineSpec(name="x", ranks=(-1,))

    def test_ranks_sorted_and_deduped(self):
        spec = PipelineSpec(name="x", ranks=(3, 1, 3))
        assert spec.ranks == (1, 3)

    def test_producers_defaults_to_all(self):
        assert PipelineSpec(name="x").producers(3) == (0, 1, 2)
        assert PipelineSpec(name="x", ranks=(0, 2)).producers(3) == (0, 2)
        with pytest.raises(ConfigError):
            PipelineSpec(name="x", ranks=(5,)).producers(3)


class TestServiceConfig:
    def test_canonical_order_and_tags(self):
        cfg = ServiceConfig(pipelines=(
            PipelineSpec(name="zeta"), PipelineSpec(name="alpha"),
        ))
        assert cfg.names == ("alpha", "zeta")
        assert cfg.index("alpha") == 0
        # Index 0 lands on the legacy wire tags.
        assert cfg.tags("alpha") == (100, 101)
        assert cfg.tags("zeta") == (104, 105)
        assert pipeline_tags(2) == (108, 109)
        with pytest.raises(ConfigError):
            pipeline_tags(-1)

    def test_validation(self):
        one = PipelineSpec(name="a")
        with pytest.raises(ConfigError):
            ServiceConfig(pipelines=())
        with pytest.raises(ConfigError):
            ServiceConfig(pipelines=(one, PipelineSpec(name="a")))
        with pytest.raises(ConfigError):
            ServiceConfig(pipelines=(
                PipelineSpec(name="a", collective=True),
                PipelineSpec(name="b", collective=True),
            ))
        with pytest.raises(ConfigError):
            ServiceConfig(pipelines=(one,), budget=0)
        with pytest.raises(ConfigError):
            ServiceConfig(pipelines=(one,), min_credits=99)
        with pytest.raises(ConfigError):
            ServiceConfig(pipelines=(one,), skew=1.0)
        with pytest.raises(ConfigError):
            ServiceConfig(pipelines=(one,), cooldown=-1)
        with pytest.raises(ConfigError):
            ServiceConfig(pipelines=(one,), interval=0)

    def test_spec_lookup(self):
        cfg = ServiceConfig(pipelines=(PipelineSpec(name="a"),))
        assert cfg.spec("a").name == "a"
        with pytest.raises(ConfigError):
            cfg.spec("nope")
        with pytest.raises(ConfigError):
            cfg.index("nope")


class TestServiceXml:
    def test_full_document(self):
        doc = parse_document("""
        <sensei>
          <service budget="16" min_credits="2" skew="2.0"
                   cooldown="3" interval="2">
            <pipeline name="hot" mesh="bodies" weight="8" shard_size="2"
                      compression="zlib" chunk_kib="8"/>
            <pipeline name="bulk" partitioner="cyclic" collective="true"/>
          </service>
          <analysis type="histogram" mesh="bodies" array="m" bins="8"/>
        </sensei>
        """)
        svc = doc.service
        assert svc is not None
        assert svc.budget == 16 and svc.min_credits == 2
        assert svc.skew == 2.0 and svc.cooldown == 3 and svc.interval == 2
        hot = svc.spec("hot")
        assert hot.mesh == "bodies" and hot.weight == 8.0
        assert hot.shard_size == 2
        assert hot.transport.compression == "zlib"
        assert hot.transport.chunk_bytes == 8 * 1024
        bulk = svc.spec("bulk")
        assert bulk.collective and bulk.partitioner == "cyclic"
        assert len(doc.analyses) == 1

    def test_no_service_element_is_none(self):
        assert parse_document("<sensei/>").service is None

    def test_rejections(self):
        with pytest.raises(ConfigError):
            parse_document(
                "<sensei><service/><service/></sensei>"
            )
        with pytest.raises(ConfigError):
            parse_document(
                "<sensei><service><oops/></service></sensei>"
            )
        with pytest.raises(ConfigError):
            parse_document(
                "<sensei><service budget='lots'>"
                "<pipeline name='a'/></service></sensei>"
            )
        with pytest.raises(ConfigError):
            parse_document(
                "<sensei><service bogus='1'>"
                "<pipeline name='a'/></service></sensei>"
            )
        with pytest.raises(ConfigError):
            parse_document(
                "<sensei><service><pipeline/></service></sensei>"
            )
        with pytest.raises(ConfigError):
            parse_document(
                "<sensei><service><pipeline name='a' collective='maybe'/>"
                "</service></sensei>"
            )
        with pytest.raises(ConfigError):
            parse_document(
                "<sensei><service><pipeline name='a' ranks='x,y'/>"
                "</service></sensei>"
            )

    def test_ranks_attribute(self):
        doc = parse_document(
            "<sensei><service><pipeline name='a' ranks='2,0'/>"
            "</service></sensei>"
        )
        assert doc.service.spec("a").ranks == (0, 2)

    def test_unknown_pipeline_attr_rejected_by_transport(self):
        with pytest.raises(ConfigError):
            parse_document(
                "<sensei><service><pipeline name='a' warp='9'/>"
                "</service></sensei>"
            )


class TestShardMap:
    def _cfg(self, *specs, **kw):
        return ServiceConfig(pipelines=tuple(specs), **kw)

    def test_initial_least_loaded_placement(self):
        cfg = self._cfg(
            PipelineSpec(name="hot", weight=8.0),
            PipelineSpec(name="bulk", weight=1.0),
            PipelineSpec(name="aux", weight=1.0),
        )
        shards = ShardMap.initial(cfg, 2)
        # Heaviest first: hot takes endpoint 0 alone; the light pair
        # stacks on endpoint 1.
        assert shards.shard("hot") == (0,)
        assert shards.shard("bulk") == (1,)
        assert shards.shard("aux") == (1,)
        assert shards.tenants_of(1) == ("aux", "bulk")

    def test_collective_spans_all_endpoints(self):
        cfg = self._cfg(
            PipelineSpec(name="all", collective=True),
            PipelineSpec(name="one"),
        )
        shards = ShardMap.initial(cfg, 3)
        assert shards.shard("all") == (0, 1, 2)

    def test_shard_size_clamped_to_endpoints(self):
        cfg = self._cfg(PipelineSpec(name="wide", shard_size=8))
        assert ShardMap.initial(cfg, 2).shard("wide") == (0, 1)

    def test_set_shard(self):
        cfg = self._cfg(PipelineSpec(name="a"), PipelineSpec(name="b"))
        shards = ShardMap.initial(cfg, 2)
        shards.set_shard("a", (1,))
        assert shards.shard("a") == (1,)
        with pytest.raises(ConfigError):
            shards.set_shard("nope", (0,))
        with pytest.raises(ConfigError):
            shards.set_shard("a", ())
        with pytest.raises(ConfigError):
            shards.shard("nope")
        with pytest.raises(ConfigError):
            ShardMap.initial(cfg, 0)

    def test_as_dict_is_a_copy(self):
        cfg = self._cfg(PipelineSpec(name="a"))
        shards = ShardMap.initial(cfg, 1)
        d = shards.as_dict()
        d["a"] = (9,)
        assert shards.shard("a") == (0,)


class TestRouting:
    def test_block_routing_over_shard(self):
        spec = PipelineSpec(name="p", shard_size=2)
        routed = route_producers(spec, (0, 1), (0, 1, 2, 3))
        assert routed == {0: (0, 1), 1: (2, 3)}

    def test_routing_respects_shard_identity(self):
        spec = PipelineSpec(name="p")
        # A singleton shard on endpoint 3 sends everyone there.
        assert route_producers(spec, (3,), (0, 1, 2)) == {3: (0, 1, 2)}

    def test_weighted_routing(self):
        spec = PipelineSpec(
            name="p", shard_size=2, partitioner="weighted",
            producer_weights=(10.0, 1.0, 1.0, 1.0),
        )
        routed = route_producers(spec, (0, 1), (0, 1, 2, 3))
        heavy_ep = next(e for e, ps in routed.items() if 0 in ps)
        assert routed[heavy_ep] == (0,)


class TestRegistry:
    def test_register_and_build(self):
        reg = PipelineRegistry({"a": lambda: ["x"]})
        reg.register("b", lambda: ["y", "z"])
        assert reg.names == ("a", "b")
        assert reg.build("a") == ["x"]
        assert reg.build("b") == ["y", "z"]

    def test_missing_factory_yields_empty_analyses(self):
        assert PipelineRegistry().build("ghost") == []

    def test_non_callable_rejected(self):
        with pytest.raises(ConfigError):
            PipelineRegistry({"a": 42})
