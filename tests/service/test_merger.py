"""Tests for the endpoint-side step merger's elastic membership."""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.service.runtime import StepMerger


def _cols(tag):
    return {"x": tag}


class TestStepMerger:
    def test_merges_in_producer_order(self):
        merger = StepMerger(producers=(0, 1), members=(0, 1))
        merger.push(1, 0, 0.0, _cols("b"))
        assert merger.ready() is None  # producer 0 still in flight
        merger.push(0, 0, 0.0, _cols("a"))
        step, t, payloads = merger.ready()
        assert step == 0
        assert [p["x"] for p in payloads] == ["a", "b"]
        assert merger.ready() is None
        assert merger.pending == 0

    def test_steps_emerge_in_order(self):
        merger = StepMerger(producers=(0,), members=(0,))
        merger.push(0, 0, 0.0, _cols("s0"))
        merger.push(0, 1, 0.1, _cols("s1"))
        assert merger.ready()[0] == 0
        step, t, _ = merger.ready()
        assert step == 1 and t == pytest.approx(0.1)

    def test_finned_producer_stops_blocking(self):
        merger = StepMerger(producers=(0, 1), members=(0, 1))
        merger.push(0, 0, 0.0, _cols("a0"))
        merger.push(1, 0, 0.0, _cols("b0"))
        merger.ready()
        merger.push(0, 1, 0.1, _cols("a1"))
        assert merger.ready() is None  # still waiting on producer 1
        merger.mark_finned(1)
        step, _, payloads = merger.ready()
        assert step == 1
        assert [p["x"] for p in payloads] == ["a1"]

    def test_data_ahead_of_membership_parks(self):
        """A migrated-in producer's data waits for the control message."""
        merger = StepMerger(producers=(0, 1), members=(0,))
        merger.push(1, 4, 0.4, _cols("new"))
        assert merger.ready() is None  # rank 1 not a member yet
        merger.set_membership(4, (0, 1))
        merger.mark_finned(0)  # old member never ships step 4 here
        step, _, payloads = merger.ready()
        assert step == 4
        assert [p["x"] for p in payloads] == ["new"]

    def test_membership_is_step_indexed(self):
        merger = StepMerger(producers=(0, 1), members=(0, 1))
        merger.set_membership(2, (1,))
        assert merger.members_at(0) == {0, 1}
        assert merger.members_at(1) == {0, 1}
        assert merger.members_at(2) == {1}
        assert merger.members_at(99) == {1}

    def test_migrated_away_producer_not_waited_on(self):
        merger = StepMerger(producers=(0, 1), members=(0, 1))
        merger.set_membership(1, (0,))  # rank 1 migrated off after step 0
        merger.push(0, 0, 0.0, _cols("a0"))
        merger.push(1, 0, 0.0, _cols("b0"))
        assert merger.ready()[0] == 0
        merger.push(0, 1, 0.1, _cols("a1"))
        step, _, payloads = merger.ready()  # no waiting on rank 1
        assert step == 1
        assert [p["x"] for p in payloads] == ["a1"]

    def test_producer_that_skipped_a_step(self):
        merger = StepMerger(producers=(0, 1), members=(0, 1))
        merger.push(0, 0, 0.0, _cols("a0"))
        merger.push(1, 1, 0.1, _cols("b1"))  # rank 1 never shipped step 0
        step, _, payloads = merger.ready()
        assert step == 0
        assert [p["x"] for p in payloads] == ["a0"]

    def test_unknown_producer_rejected(self):
        merger = StepMerger(producers=(0,), members=(0,))
        with pytest.raises(TransportError):
            merger.push(5, 0, 0.0, _cols("?"))

    def test_empty_merger_not_ready(self):
        merger = StepMerger(producers=(0,), members=())
        assert merger.ready() is None
        assert merger.pending == 0
