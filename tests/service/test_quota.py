"""Tests for the service-plane admission governors (quota + shard)."""

from __future__ import annotations

import pytest

from repro.control.quota import QuotaGovernor, ShardGovernor


class TestQuotaGovernor:
    def _gov(self, grants, **kw):
        kw.setdefault("weights", {"hot": 3.0, "bulk": 1.0})
        kw.setdefault("budget", 32)
        return QuotaGovernor(
            actuator=lambda n, e, c: grants.append((n, e, c)), **kw
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            QuotaGovernor({"a": 1.0}, budget=0)
        with pytest.raises(ValueError):
            QuotaGovernor({"a": 1.0}, budget=8, min_credits=0)
        with pytest.raises(ValueError):
            QuotaGovernor({"a": 1.0}, budget=8, min_credits=9)
        with pytest.raises(ValueError):
            QuotaGovernor({"a": -1.0}, budget=8)

    def test_converges_to_weighted_fair_shares(self):
        grants = []
        gov = self._gov(grants)
        shards = {"hot": (0,), "bulk": (0,)}
        active = {"hot": True, "bulk": True}
        demand = {"hot": 1000, "bulk": 1000}
        for step in range(12):
            gov.rebalance(step, demand, active, shards)
        # 3:1 weights over a 32-credit budget -> 24 / 8.
        assert gov.credits_for("hot", 0) == 24
        assert gov.credits_for("bulk", 0) == 8

    def test_ramp_halves_the_gap(self):
        gov = self._gov([])
        shards = {"hot": (0,), "bulk": (0,)}
        active = {"hot": True, "bulk": True}
        gov.rebalance(0, {}, active, shards)
        first = gov.credits_for("hot", 0)
        gov.rebalance(1, {}, active, shards)
        second = gov.credits_for("hot", 0)
        assert first < second < 24  # additive-increase toward fair

    def test_idle_tenant_decays_and_budget_is_reclaimed(self):
        gov = self._gov([])
        shards = {"hot": (0,), "bulk": (0,)}
        both = {"hot": True, "bulk": True}
        for step in range(12):
            gov.rebalance(step, {}, both, shards)
        assert gov.credits_for("bulk", 0) == 8
        only_hot = {"hot": True, "bulk": False}
        for step in range(12, 24):
            gov.rebalance(step, {}, only_hot, shards)
        # The idle tenant multiplicatively decays to the floor and the
        # active one absorbs the reclaimed credits.
        assert gov.credits_for("bulk", 0) == gov.min_credits
        assert gov.credits_for("hot", 0) > 24

    def test_endpoints_budgeted_independently(self):
        gov = self._gov([])
        shards = {"hot": (0,), "bulk": (1,)}
        active = {"hot": True, "bulk": True}
        for step in range(12):
            gov.rebalance(step, {}, active, shards)
        # Alone on its endpoint, each tenant gets the whole budget.
        assert gov.credits_for("hot", 0) == 32
        assert gov.credits_for("bulk", 1) == 32

    def test_decisions_and_actuation(self):
        grants = []
        gov = self._gov(grants)
        decisions = gov.rebalance(
            4, {"hot": 77, "bulk": 0}, {"hot": True, "bulk": False},
            {"hot": (0,), "bulk": (0,)},
        )
        assert len(decisions) == 2  # one per tenant on the endpoint
        assert all(d.governor == "quota" for d in decisions)
        assert all(d.applied for d in decisions)
        by_name = {d.args_dict["pipeline"]: d for d in decisions}
        assert by_name["hot"].args_dict["demand_bytes"] == 77
        assert by_name["bulk"].args_dict["active"] is False
        assert len(grants) == 2

    def test_frozen_logs_without_actuating(self):
        grants = []
        gov = self._gov(grants, frozen=True)
        decisions = gov.rebalance(
            0, {}, {"hot": True, "bulk": True}, {"hot": (0,), "bulk": (0,)}
        )
        assert decisions and all(not d.applied for d in decisions)
        assert grants == []

    def test_disabled_is_silent(self):
        gov = self._gov([], enabled=False)
        assert gov.rebalance(0, {}, {"hot": True}, {"hot": (0,)}) == []

    def test_credits_unknown_before_first_round(self):
        assert self._gov([]).credits_for("hot", 0) is None


class TestShardGovernor:
    def _gov(self, moves, **kw):
        kw.setdefault("endpoints", 2)
        kw.setdefault("cooldown", 2)
        return ShardGovernor(
            actuator=lambda n, s: moves.append((n, s)), **kw
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardGovernor(endpoints=0)
        with pytest.raises(ValueError):
            ShardGovernor(endpoints=2, skew=1.0)
        with pytest.raises(ValueError):
            ShardGovernor(endpoints=2, cooldown=-1)

    def test_migrates_dominant_tenant_off_hot_endpoint(self):
        moves = []
        gov = self._gov(moves)
        shards = {"a": (0,), "c": (0,), "b": (1,)}
        demand = {"a": 100, "c": 1000, "b": 0}
        decision, migration = gov.rebalance(0, demand, shards)
        assert migration == ("c", 0, 1)
        assert moves == [("c", (1,))]
        assert decision.applied
        assert decision.args_dict["pipeline"] == "c"

    def test_cooldown_after_migration(self):
        moves = []
        gov = self._gov(moves, cooldown=2)
        shards = {"a": (0,), "c": (0,)}
        demand = {"a": 100, "c": 1000}
        _, migration = gov.rebalance(0, demand, shards)
        assert migration is not None
        shards = {"a": (0,), "c": (1,)}
        # Two cooldown rounds pass with no decision at all.
        assert gov.rebalance(1, demand, shards) == (None, None)
        assert gov.rebalance(2, demand, shards) == (None, None)

    def test_balanced_load_is_left_alone(self):
        gov = self._gov([])
        shards = {"a": (0,), "b": (1,)}
        assert gov.rebalance(0, {"a": 100, "b": 100}, shards) == (None, None)

    def test_sole_tenant_cannot_be_separated(self):
        gov = self._gov([])
        # Only one tenant on the hot endpoint: nothing to separate.
        shards = {"a": (0,)}
        assert gov.rebalance(0, {"a": 1000}, shards) == (None, None)

    def test_no_move_that_would_not_improve(self):
        gov = self._gov([])
        # The dominant tenant carries ~all the load; moving it just
        # swaps which endpoint is hot.
        shards = {"a": (0,), "c": (0,)}
        demand = {"a": 0, "c": 10000}
        decision, migration = gov.rebalance(0, demand, shards)
        assert migration is None and decision is None

    def test_zero_demand_is_a_no_op(self):
        gov = self._gov([])
        assert gov.rebalance(0, {}, {"a": (0,)}) == (None, None)

    def test_single_endpoint_never_migrates(self):
        gov = ShardGovernor(endpoints=1)
        assert gov.rebalance(0, {"a": 9}, {"a": (0,)}) == (None, None)

    def test_frozen_logs_but_does_not_move(self):
        moves = []
        gov = self._gov(moves, frozen=True)
        shards = {"a": (0,), "c": (0,)}
        decision, migration = gov.rebalance(
            0, {"a": 100, "c": 1000}, shards
        )
        assert decision is not None and not decision.applied
        assert migration is None
        assert moves == []

    def test_offered_loads_spread_over_shard(self):
        loads = ShardGovernor.offered_loads(
            {"a": 100, "b": 60}, {"a": (0, 1), "b": (1,)}, 2
        )
        assert loads == [50.0, 110.0]
