"""Tests for the unit helpers."""

from __future__ import annotations

import pytest

from repro.units import (
    GB,
    GiB,
    KiB,
    MiB,
    fmt_bytes,
    fmt_time,
    gbs,
    gflops,
    ms,
    tflops,
    us,
)


class TestConversions:
    def test_binary_sizes(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3

    def test_rate_helpers(self):
        assert gbs(25.0) == 25e9
        assert tflops(9.7) == 9.7e12
        assert gflops(20.0) == 20e9

    def test_time_helpers(self):
        assert us(5.0) == pytest.approx(5e-6)
        assert ms(3.0) == pytest.approx(3e-3)


class TestFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(3 * KiB) == "3.00 KiB"
        assert fmt_bytes(int(2.5 * MiB)) == "2.50 MiB"
        assert fmt_bytes(40 * GiB) == "40.00 GiB"

    def test_fmt_time_ranges(self):
        assert fmt_time(2.5) == "2.500 s"
        assert fmt_time(0.0035) == "3.500 ms"
        assert fmt_time(4.2e-6) == "4.200 us"
        assert fmt_time(0.0) == "0.000 us"

    def test_fmt_time_boundaries(self):
        assert fmt_time(1.0).endswith(" s")
        assert fmt_time(0.999).endswith(" ms")
        assert fmt_time(1e-3).endswith(" ms")
