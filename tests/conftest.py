"""Shared test fixtures.

The substrate keeps a little process-global state (the current virtual
node, default streams, each thread's clock and active device).  Every
test starts from a clean slate so simulated times are deterministic.
"""

from __future__ import annotations

import pytest

from repro.hamr.pool import reset_pools
from repro.hamr.runtime import set_active_device, set_current_clock
from repro.hamr.stream import reset_default_streams
from repro.hw.clock import SimClock
from repro.hw.node import VirtualNode, reset_node, set_node


@pytest.fixture(autouse=True)
def clean_substrate():
    """Fresh node, streams, pools, clock, and active device per test."""
    reset_node()
    reset_default_streams()
    reset_pools()
    set_current_clock(SimClock(name="test"))
    set_active_device(0)
    yield
    reset_node()
    reset_default_streams()
    reset_pools()


@pytest.fixture
def node4():
    """A 4-GPU node installed as the current node (Perlmutter-like)."""
    node = VirtualNode()
    set_node(node)
    return node
