"""Shared test fixtures.

The substrate keeps a little process-global state (the current virtual
node, default streams, each thread's clock and active device).  Every
test starts from a clean slate so simulated times are deterministic.

Multi-rank control-plane scenarios share the :func:`spmd_control`
fixture: it wraps :func:`repro.mpi.comm.run_spmd` (thread-backed
``ThreadCommunicator`` ranks, each on a fresh seeded ``SimClock``) and
hands every rank body its own :class:`repro.control.ControlPlane`
built from one config, so governor tests stop hand-rolling thread
plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.hamr.pool import reset_pools
from repro.hamr.runtime import set_active_device, set_current_clock
from repro.hamr.stream import reset_default_streams
from repro.hw.clock import SimClock
from repro.hw.node import VirtualNode, reset_node, set_node
from repro.hw.spec import NodeSpec
from repro.mpi.comm import run_spmd


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="re-record the golden trace fixtures under tests/golden/ "
             "instead of comparing against them (review the diff before "
             "committing — a golden refresh is a deliberate contract "
             "change, not a fix)",
    )


@pytest.fixture
def update_golden(request) -> bool:
    """True when the run was asked to refresh the golden fixtures."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture(autouse=True)
def clean_substrate():
    """Fresh node, streams, pools, clock, and active device per test."""
    reset_node()
    reset_default_streams()
    reset_pools()
    set_current_clock(SimClock(name="test"))
    set_active_device(0)
    yield
    reset_node()
    reset_default_streams()
    reset_pools()


@pytest.fixture
def node4():
    """A 4-GPU node installed as the current node (Perlmutter-like)."""
    node = VirtualNode()
    set_node(node)
    return node


@dataclass
class SpmdControlRun:
    """Result of one :func:`spmd_control` scenario.

    ``results[r]`` is what rank ``r``'s body returned; ``planes[r]`` is
    the control plane that rank ran with (None when the scenario ran
    without one).
    """

    results: list
    planes: list

    def decisions(self, rank: int) -> list:
        plane = self.planes[rank]
        return [] if plane is None else list(plane.decisions)

    def actions(self, rank: int) -> list[str]:
        return [d.action for d in self.decisions(rank)]


@pytest.fixture
def spmd_control():
    """Run an N-rank SPMD control-plane scenario deterministically.

    Returns a runner ``run(size, body, *, config=None, devices=None,
    cost=None, start_time=0.0)``.  ``body(comm, plane)`` executes once
    per rank on its own thread with a fresh seeded ``SimClock`` (so two
    identical invocations produce bit-identical decision logs); when
    ``config`` is given every rank gets its own ``ControlPlane`` built
    from it, with the rank's communicator attached so coordinated
    governors can rendezvous.
    """

    def run(size, body, *, config=None, devices=None, cost=None, start_time=0.0):
        from repro.control.plan import ControlPlane

        if devices is not None:
            set_node(VirtualNode(NodeSpec().with_devices(devices)))
        planes = [None] * size

        def rank_main(comm):
            plane = None
            if config is not None:
                plane = ControlPlane(config, comm=comm)
            planes[comm.rank] = plane
            return body(comm, plane)

        results = run_spmd(size, rank_main, cost=cost, start_time=start_time)
        return SpmdControlRun(results=results, planes=planes)

    return run
