"""The bursty multi-tenant request stream: schedule, membership, runs.

Covers the zoo's service-shaped entry: tenant/config validation, the
replicated Markov schedule (pure function of the config), elastic
membership windows (late join, early fin), the derived service
topology, and the standalone ``run`` path — every published step of
every tenant arrives, deterministically across reruns.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.trace.harness import rerun
from repro.workloads import RequestStreamConfig, TenantSpec


class TestTenantSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "t", "base_rows": 0},
            {"name": "t", "burst_rows": 0},
            {"name": "t", "p_burst": 1.5},
            {"name": "t", "p_calm": -0.1},
            {"name": "t", "join_step": -1},
            {"name": "t", "join_step": 3, "fin_step": 3},
        ],
    )
    def test_bad_tenant_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TenantSpec(**kwargs)

    def test_membership_window(self):
        tenant = TenantSpec("gamma", join_step=2, fin_step=6)
        assert [tenant.active(s) for s in range(8)] == [
            False, False, True, True, True, True, False, False,
        ]

    def test_lifetime_tenant_never_fins(self):
        tenant = TenantSpec("alpha")
        assert tenant.active(0) and tenant.active(10_000)


class TestRequestStreamConfig:
    def test_bad_steps_rejected(self):
        with pytest.raises(ConfigError):
            RequestStreamConfig(steps=0)

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ConfigError):
            RequestStreamConfig(
                tenants=(TenantSpec("a"), TenantSpec("a")),
            )

    def test_schedule_is_pure(self):
        cfg = RequestStreamConfig(seed=5)
        assert cfg.schedule() == cfg.schedule()
        assert cfg.schedule() == RequestStreamConfig(seed=5).schedule()

    def test_schedule_honors_membership(self):
        cfg = RequestStreamConfig()  # gamma joins at 2, fins at 6
        rows = cfg.schedule()["gamma"]
        gamma = next(t for t in cfg.tenants if t.name == "gamma")
        for step, r in enumerate(rows):
            if gamma.active(step):
                assert r in (gamma.base_rows, gamma.burst_rows)
            else:
                assert r is None

    def test_schedule_rows_are_calm_or_burst(self):
        cfg = RequestStreamConfig(seed=9, steps=12)
        schedule = cfg.schedule()
        for tenant in cfg.tenants:
            sizes = {r for r in schedule[tenant.name] if r is not None}
            assert sizes <= {tenant.base_rows, tenant.burst_rows}
            assert sizes  # every tenant publishes at least once

    def test_seed_changes_the_traffic(self):
        a = RequestStreamConfig(seed=0, steps=16).schedule()
        b = RequestStreamConfig(seed=1, steps=16).schedule()
        assert a != b

    def test_bursts_actually_happen(self):
        """Over enough steps each default tenant visits both states."""
        cfg = RequestStreamConfig(seed=11, steps=64, tenants=(
            TenantSpec("alpha", p_burst=0.3, p_calm=0.5),
            TenantSpec("beta", base_rows=128, burst_rows=4096,
                       p_burst=0.35, p_calm=0.4),
        ))
        schedule = cfg.schedule()
        for tenant in cfg.tenants:
            sizes = {r for r in schedule[tenant.name] if r is not None}
            assert sizes == {tenant.base_rows, tenant.burst_rows}

    def test_service_config_shape(self):
        cfg = RequestStreamConfig()
        service = cfg.service_config()
        assert service.budget == cfg.budget
        assert service.interval == cfg.interval
        specs = {spec.name: spec for spec in service.pipelines}
        assert set(specs) == {t.name for t in cfg.tenants}
        for tenant in cfg.tenants:
            spec = specs[tenant.name]
            assert spec.mesh == tenant.name
            assert spec.weight == tenant.weight
            assert not spec.collective


class TestRequestStreamRun:
    CONFIG = RequestStreamConfig(steps=6, seed=11)

    def _run(self):
        producers, endpoints = self.CONFIG.run(m=2, n=2)
        steps = {}
        for tenant in self.CONFIG.tenants:
            steps[tenant.name] = sum(
                ep.pipeline_steps[tenant.name] for ep in endpoints
            )
        return producers, steps

    def test_every_published_step_arrives(self):
        schedule = self.CONFIG.schedule()
        expected = {
            name: sum(r is not None for r in rows)
            for name, rows in schedule.items()
        }
        producers, steps = self._run()
        assert steps == expected
        # Every producer rank walked the identical replicated schedule.
        assert all(p == expected for p in producers)

    def test_run_is_deterministic(self):
        first, second = rerun(
            lambda: self._run(), name="request-stream-determinism"
        )
        assert first == second
