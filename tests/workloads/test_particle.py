"""The irregular particle workload: migrating hotspot, adaptive grid.

Covers the zoo's "irregular" entry standalone (no service plane):
config validation, the migrating-hotspot cost model, ownership of the
published tables, per-rank device spreading, adaptive repartitioning
under a skewed load, and bit-identical reruns — the property the trace
recorder's golden gate builds on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.plan import ControlConfig, ControlPlane
from repro.errors import ArrayError
from repro.hw.node import num_devices
from repro.mpi import run_spmd
from repro.trace.harness import rerun
from repro.workloads import ParticleConfig, ParticleWorkload

RANKS = 2

#: Strong, fast hotspot over a coarse grid: the hot band crosses
#: several ownership blocks within a few steps.
MIGRATING = ParticleConfig(
    n_particles=512, length=64, steps=6, seed=3, block_rows=8,
    compute_rate=2.0e5, hotspot_strength=8.0, hotspot_width=0.2,
    hotspot_speed=0.15, hotspot_start=0.1,
)


def _run_standalone(config, adaptive=False, control=None):
    """All-rank run returning (summary, block costs per step, ids)."""

    def rank_main(comm):
        plane = None
        if control is not None:
            plane = ControlPlane(control, comm=comm)
        workload = ParticleWorkload(
            comm, config, plane=plane, adaptive=adaptive, interval=2,
        )
        costs = [workload.step(k) for k in range(1, config.steps + 1)]
        table = workload.table()
        summary = workload.summary()
        workload.close()
        ids = np.asarray(table.column("id").as_numpy_host())
        return summary, costs, ids

    return run_spmd(RANKS, rank_main)


class TestParticleConfig:
    def test_defaults_valid(self):
        cfg = ParticleConfig()
        assert cfg.n_particles == 2048

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_particles": 0},
            {"steps": 0},
            {"compute_rate": 0.0},
            {"hotspot_width": 1.5},
            {"hotspot_width": -0.1},
            {"hotspot_strength": -1.0},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ArrayError):
            ParticleConfig(**kwargs)

    def test_hotspot_center_migrates_and_wraps(self):
        cfg = ParticleConfig(hotspot_start=0.9, hotspot_speed=0.3)
        assert cfg.hotspot_center(0) == pytest.approx(0.9)
        assert cfg.hotspot_center(1) == pytest.approx(0.2)
        assert 0.0 <= cfg.hotspot_center(17) < 1.0


class TestParticleWorkload:
    def test_density_conserves_particles(self):
        results = _run_standalone(MIGRATING)
        for summary, _costs, _ids in results:
            assert summary["steps"] == MIGRATING.steps
            assert summary["density_sum"] == pytest.approx(
                MIGRATING.n_particles
            )

    def test_tables_partition_the_particles(self):
        """Each particle lands in exactly one rank's published table."""
        results = _run_standalone(MIGRATING)
        all_ids = np.sort(np.concatenate([ids for _s, _c, ids in results]))
        np.testing.assert_array_equal(
            all_ids, np.arange(MIGRATING.n_particles, dtype=np.int64)
        )

    def test_hotspot_migration_moves_the_cost_peak(self):
        """The most expensive ownership block follows the hotspot."""
        results = _run_standalone(MIGRATING)
        # Merge both ranks' charges: one global block->cost map per step.
        merged = []
        for step in range(MIGRATING.steps):
            step_costs: dict[int, float] = {}
            for _summary, costs, _ids in results:
                step_costs.update(costs[step])
            merged.append(step_costs)
        peaks = [max(c, key=c.get) for c in merged]
        assert len(set(peaks)) > 1, f"cost peak never moved: {peaks}"

    def test_per_rank_device_spreading(self):
        """Rank r's density shards land on device (base + r) mod n."""

        def rank_main(comm):
            workload = ParticleWorkload(comm, MIGRATING)
            device = workload.density.device_id
            workload.close()
            return device

        devices = run_spmd(RANKS, rank_main)
        n = max(1, num_devices())
        assert devices == [(0 + r) % n for r in range(RANKS)]

    def test_host_placement_opt_out(self):
        cfg = ParticleConfig(
            n_particles=64, length=16, steps=1, block_rows=4, device_id=None,
        )

        def rank_main(comm):
            workload = ParticleWorkload(comm, cfg)
            device = workload.density.device_id
            workload.close()
            return device

        assert run_spmd(RANKS, rank_main) == [None] * RANKS

    def test_step_after_close_rejected(self):
        def rank_main(comm):
            workload = ParticleWorkload(comm, MIGRATING)
            workload.close()
            workload.close()  # idempotent
            with pytest.raises(ArrayError):
                workload.step(1)
            return True

        assert all(run_spmd(RANKS, rank_main))


class TestParticleAdaptivity:
    CONTROL = ControlConfig.from_xml_attrs(
        {"execution": "off", "codec": "off", "placement": "off",
         "pool": "off", "repartition": "on", "interval": "2"},
    )

    def test_skewed_load_triggers_repartition(self):
        results = _run_standalone(
            MIGRATING, adaptive=True, control=self.CONTROL
        )
        owners = {s["owners"] for s, _c, _i in results}
        assert len(owners) == 1  # every rank agrees on the final layout
        assert all(s["repartitions"] >= 1 for s, _c, _i in results)

    def test_adaptive_run_is_deterministic(self):
        def scenario():
            results = _run_standalone(
                MIGRATING, adaptive=True, control=self.CONTROL
            )
            return [
                (summary, [sorted(c.items()) for c in costs], ids.tolist())
                for summary, costs, ids in results
            ]

        first, second = rerun(scenario, name="particle-determinism")
        assert first == second
