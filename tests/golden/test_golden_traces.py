"""The golden-trace regression gate.

Each fixture under ``tests/golden/`` is the canonical JSONL trace of
one small single-governor zoo scenario, recorded at a pinned seed.
The gate re-records every scenario from a fresh substrate and demands
the bytes match the committed fixture exactly — any drift in decision
logs, retry schedules, payload bytes, or simulated timestamps fails
CI with a record-level diff.

A legitimate contract change (new trace fields, a reworked governor)
refreshes the fixtures deliberately::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

then commit the regenerated ``.jsonl`` files after reviewing the diff.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.trace import Trace, diff_traces, replay_trace
from repro.workloads import GOLDEN_SCENARIOS, record_zoo

GOLDEN_DIR = Path(__file__).resolve().parent

#: Pinned recording parameters: changing either is a fixture refresh.
GOLDEN_SEED = 7


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.jsonl"


@pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
class TestGoldenTraces:
    def test_re_recording_matches_golden(self, name, update_golden):
        trace = record_zoo(name, seed=GOLDEN_SEED, quick=True)[0]
        text = trace.to_jsonl()
        path = golden_path(name)
        if update_golden:
            path.write_text(text)
            return
        if not path.exists():
            pytest.fail(
                f"missing golden fixture {path}; record it with "
                f"`pytest tests/golden --update-golden`"
            )
        golden = path.read_text()
        if text != golden:
            diff = diff_traces(Trace.from_jsonl(golden), trace)
            pytest.fail(
                f"golden trace {name!r} drifted from {path.name}:\n"
                + "\n".join(diff)
                + "\nIf this change is intentional, refresh with "
                "`pytest tests/golden --update-golden` and commit the "
                "reviewed diff."
            )

    def test_golden_replays_bit_identically(self, name):
        """The committed fixture is itself a replay fixpoint."""
        golden = golden_path(name).read_text()
        assert replay_trace(golden).trace.to_jsonl() == golden

    def test_golden_parses_and_carries_decisions(self, name):
        trace = Trace.from_jsonl(golden_path(name).read_text())
        assert trace.name == name
        assert trace.header["meta"]["seed"] == GOLDEN_SEED
        kinds = {event["kind"] for event in trace.events}
        assert "publish" in kinds
        assert "decision" in kinds
