"""Acceptance: a fault-injected 4-rank in transit run with every
governor active (codec, execution mode, per-rank placement upgraded to
cluster coordination, pool trim) produces bit-identical decision logs
across two seeded runs.

The layout is 2 producers + 2 endpoints — each endpoint serves
exactly one producer, so the endpoint's receive order is that
producer's program order.  Each producer drives both an
in situ bridge (heavy analysis — flips the execution-mode governor)
and the in transit bridge (compressible payload over a slow, lossy
link — drives the codec governor through retries and backoff), churns
a memory pool past the configured watermark (pool governor), and
feeds crowded synthetic device loads into the collective coordination
rounds (cluster governor).  Everything runs on simulated clocks with
seeded fault injection, so the *entire* decision log — steps, times,
actions, reasons, structured args — must reproduce exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.control.plan import ControlConfig
from repro.hamr.pool import pool_for
from repro.hamr.runtime import current_clock
from repro.hw.contention import ContentionModel, SharedResource
from repro.hw.node import get_node
from repro.mpi.comm import CommCostModel
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.bridge import Bridge
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.intransit import InTransitLayout, run_in_transit
from repro.sensei.placement import DevicePlacement
from repro.svtk.table import TableData
from repro.trace.harness import canonical_decisions, fresh_substrate
from repro.transport.config import TransportConfig
from repro.transport.retry import RetryPolicy
from repro.units import KiB, gbs, us

M, N = 2, 2  # 4 world ranks
STEPS = 6
BASE = 0.5
BG = {1: 1.25, 2: 1.25}

CONTROL = ControlConfig.from_xml_attrs(
    {
        "seed": "13",
        "coordination": "node",
        "pool_watermark_kib": "64",
        "mode_high": "0.15",
        "flow": "on",
    },
    flow_attrs={
        "min_credits": "2",
        "max_credits": "32",
        "min_chunk": "512",
        "max_chunk": "8192",
    },
)
TRANSPORT = TransportConfig(
    compression="adaptive",
    chunk_bytes=1024,
    retry=RetryPolicy(max_retries=40, ack_timeout=0.02),
).with_faults(drop=0.10, duplicate=0.05, reorder=0.10, seed=41)
SLOW_FABRIC = CommCostModel(latency=us(5.0), bandwidth=gbs(0.05))


class HeavyAnalysis(AnalysisAdaptor):
    def __init__(self, cost=BASE):
        super().__init__("heavy")
        self.cost = cost

    def acquire(self, data, deep):
        return data.time_step

    def process(self, payload, comm, device_id):
        current_clock().advance(self.cost)


def make_adaptor(step):
    t = TableData("bodies")
    t.add_host_column("x", np.zeros(4096))
    t.add_host_column("mass", np.full(4096, 0.25))
    da = TableDataAdaptor({"bodies": t})
    da.set_step(step, 0.1 * step)
    return da


def producer_main(sim_comm, bridge):
    plane = bridge.control_plane
    heavy = HeavyAnalysis()
    heavy.set_placement(DevicePlacement.auto(n_use=1))  # everyone aims at 0
    insitu = Bridge()
    insitu.initialize(analyses=[heavy])
    insitu.attach_control(plane)
    node = get_node()
    pool = pool_for(node.devices[sim_comm.rank % len(node.devices)])
    plane.wire_pool(pool)
    contention = ContentionModel()
    clk = current_clock()
    for step in range(STEPS):
        # A fixed solver cadence: snap to the next 100 ms tick before
        # each step, so sub-millisecond ack-arrival jitter from the
        # previous transport step cannot accumulate into this step's
        # measured solver gap.
        tick = 0.1
        clk.advance(math.ceil(clk.now / tick) * tick - clk.now)
        clk.advance(1.0)  # the solver
        da = make_adaptor(step)
        insitu.execute(da)  # wires mode + cluster governors
        pool.acquire(int(256 * KiB))
        pool.release(int(256 * KiB))  # inventory above the 64 KiB watermark
        current = heavy.placement.resolve(sim_comm.rank, n_available=4)
        assignment = sim_comm.allgather(current)
        counts = {d: assignment.count(d) for d in set(assignment)}
        loads = dict(BG)
        for d, c in counts.items():
            dil = contention.dilation(SharedResource.GPU_COMPUTE, c - 1)
            loads[d] = loads.get(d, 0.0) + c * BASE * dil
        self_dil = contention.dilation(
            SharedResource.GPU_COMPUTE, counts[current] - 1
        )
        plane.observe_device_loads(step, loads, self_load=BASE * self_dil)
        bridge.execute(da)  # the in transit send: codec governor
    insitu.finalize()
    return [d.to_dict() for d in plane.decisions]


def endpoint_factory():
    class Sink(AnalysisAdaptor):
        def __init__(self):
            super().__init__("sink")
            self.set_device_id(-1)

        def acquire(self, data, deep):
            return None

        def process(self, payload, comm, device_id):
            pass

    return [Sink()]


def run_once():
    # Two runs share the process: the shared harness scrubs the
    # substrate state the way the per-test fixture does, so the second
    # run starts cold.  Decision logs are compared in the trace plane's
    # canonical form (``canonical_decisions``): the clock stamp is
    # dropped, measured floats are normalized to 9 significant digits,
    # and flow decisions additionally shed their measured-signal
    # context (retry_rate, ack_latency, inflight_peak, and the reason
    # string quoting them) — ACK-timeout retransmissions fire on
    # *wall-clock* deadlines, so the AIMD trajectory (the window/chunk
    # actions and their ordering, asserted below) is what must
    # reproduce bit-identically.
    fresh_substrate("determinism")
    layout = InTransitLayout(m=M, n=N)
    producers, _endpoints = run_in_transit(
        layout,
        producer_main,
        endpoint_factory,
        transport=TRANSPORT,
        cost=SLOW_FABRIC,
        control=CONTROL,
    )
    return producers


class TestControlDeterminism:
    def test_all_governors_decide_at_least_once(self):
        logs = run_once()
        assert len(logs) == M
        governors = {d["governor"] for log in logs for d in log}
        assert {"execution", "codec", "pool", "cluster", "flow"} <= governors
        # The flow governor acted on the lossy link, and its windows
        # stayed node-consistent: both producers, having ingested the
        # same node-mean retry/latency signals from the coordination
        # rounds, walked the same window/chunk trajectory.
        flow_actions = [
            [d["action"] for d in log if d["governor"] == "flow"]
            for log in logs
        ]
        assert all(flow_actions)
        assert flow_actions[0] == flow_actions[1]
        # Faults were present, the cluster still re-aimed consistently.
        reaims = [
            [d for d in log if d["action"].startswith("placement=")]
            for log in logs
        ]
        assert all(r for r in reaims)
        assert reaims[0][0]["action"] == reaims[1][0]["action"]
        crowding = [d for d in logs[0] if d["action"] == "crowding"]
        assert crowding

    def test_decision_logs_identical_across_seeded_runs(self):
        """Same seeds, same decisions — on every rank, in the same order.

        The decision *content* (governor, step, action, reason, applied,
        structured args) must reproduce bit-identically.  Timestamps are
        compared within a tight tolerance instead: endpoint and producer
        threads rendezvous in real-thread arrival order, so ack
        round-trips land a few tens of simulated microseconds apart
        between reruns, which shifts when (not what) transport-coupled
        decisions get logged.  Measured floats inside
        ``args`` carry the same jitter at ~1e-16 relative and are
        canonicalized to 9 significant digits.
        """
        first = run_once()
        second = run_once()
        assert [canonical_decisions(log) for log in first] == [
            canonical_decisions(log) for log in second
        ]
        for la, lb in zip(first, second):
            for da, db in zip(la, lb):
                assert abs(da["time"] - db["time"]) < 1e-3
