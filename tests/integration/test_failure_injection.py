"""Failure injection: the stack must fail loudly and cleanly.

Resource-hungry simulations are the norm ("simulations are resource
hungry codes, often making full use of the available memory"), so OOM,
bad configurations, and analysis crashes are first-class paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.binning.axes import AxisSpec
from repro.binning.operator import BinRequest
from repro.binning.reduce import ReductionOp
from repro.errors import (
    BinningError,
    DeviceOutOfMemoryError,
    ExecutionError,
    MPIError,
)
from repro.hamr.allocator import Allocator
from repro.hw.node import VirtualNode, get_node, set_node
from repro.hw.spec import small_node_spec
from repro.mpi.comm import run_spmd
from repro.sensei.backends.binning import BinningAnalysis
from repro.sensei.backends.callback import CallbackAnalysis
from repro.sensei.bridge import Bridge
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.table import TableData
from repro.units import KiB, MiB


def small_device_node(capacity=64 * KiB):
    node = VirtualNode(small_node_spec(mem_capacity=capacity))
    set_node(node)
    return node


def make_adaptor(n=100, seed=0):
    rng = np.random.default_rng(seed)
    t = TableData("bodies")
    t.add_host_column("x", rng.uniform(-1, 1, n))
    t.add_host_column("mass", rng.uniform(0.5, 1.5, n))
    return TableDataAdaptor({"bodies": t})


class TestDeviceOOM:
    def test_staging_to_exhausted_device_raises(self):
        """An analysis placed on a full device surfaces OOM, not garbage."""
        node = small_device_node()
        # Fill device 1 almost completely.
        hog = HAMRDataArray.new(
            "hog", (node.devices[1].mem_available - 100) // 8,
            allocator=Allocator.CUDA, device_id=1,
        )
        analysis = BinningAnalysis("bodies", [AxisSpec("x", 4)])
        analysis.set_device_id(1)
        with pytest.raises(DeviceOutOfMemoryError):
            analysis.execute(make_adaptor(n=5000))
        hog.delete()

    def test_oom_in_async_surfaces_at_finalize(self):
        node = small_device_node()
        hog = HAMRDataArray.new(
            "hog", (node.devices[2].mem_available - 100) // 8,
            allocator=Allocator.CUDA, device_id=2,
        )
        analysis = BinningAnalysis("bodies", [AxisSpec("x", 4)])
        analysis.set_device_id(2)
        analysis.set_asynchronous()
        analysis.execute(make_adaptor(n=5000))  # launch succeeds
        with pytest.raises(ExecutionError):
            analysis.finalize()
        hog.delete()

    def test_memory_released_after_failed_run(self):
        """A failed lockstep analysis must not leak device temporaries."""
        node = small_device_node(capacity=MiB)
        analysis = BinningAnalysis(
            "bodies", [AxisSpec("x", 4)],
            [BinRequest(ReductionOp.SUM, "nope")],  # invalid variable
        )
        analysis.set_device_id(0)
        with pytest.raises(BinningError):
            analysis.execute(make_adaptor())
        assert node.devices[0].mem_used == 0


class TestAnalysisCrashes:
    def test_lockstep_crash_propagates_immediately(self):
        def bad(table, step, time, comm, device_id):
            raise RuntimeError("bad analysis")

        a = CallbackAnalysis("bodies", bad)
        with pytest.raises(RuntimeError):
            a.execute(make_adaptor())

    def test_async_crash_does_not_kill_simulation_step(self):
        """The launch returns; the error surfaces at the next interaction."""
        def bad(table, step, time, comm, device_id):
            raise RuntimeError("bad analysis")

        a = CallbackAnalysis("bodies", bad)
        a.set_asynchronous()
        a.execute(make_adaptor())  # no raise here
        with pytest.raises(ExecutionError, match="callback"):
            a.finalize()

    def test_crash_in_one_rank_aborts_world(self):
        def fn(comm):
            a = BinningAnalysis("bodies", [AxisSpec("x", 4)])
            a.set_device_id(-1)
            a.initialize(comm)
            if comm.rank == 1:
                raise RuntimeError("rank 1 died")
            a.execute(make_adaptor(seed=comm.rank))
            a.finalize()

        with pytest.raises(MPIError, match="rank 1"):
            run_spmd(3, fn)


class TestBadConfigurations:
    def test_missing_mesh(self):
        a = BinningAnalysis("no_such_mesh", [AxisSpec("x", 4)])
        with pytest.raises(ExecutionError):
            a.execute(make_adaptor())

    def test_empty_table_with_auto_bounds(self):
        t = TableData("bodies")
        t.add_host_column("x", np.array([]))
        a = BinningAnalysis("bodies", [AxisSpec("x", 4)])
        a.set_device_id(-1)
        with pytest.raises(BinningError, match="bounds"):
            a.execute(TableDataAdaptor({"bodies": t}))

    def test_empty_table_with_manual_bounds_is_fine(self):
        t = TableData("bodies")
        t.add_host_column("x", np.array([]))
        a = BinningAnalysis("bodies", [AxisSpec("x", 4, 0.0, 1.0)])
        a.set_device_id(-1)
        a.execute(TableDataAdaptor({"bodies": t}))
        a.finalize()
        assert a.latest.cell_array_as_grid("count").sum() == 0

    def test_placement_on_missing_device(self):
        from repro.errors import PlacementError

        a = BinningAnalysis("bodies", [AxisSpec("x", 4)])
        a.set_device_id(17)
        with pytest.raises(PlacementError):
            a.execute(make_adaptor())


class TestBridgeResilience:
    def test_failed_analysis_does_not_poison_bridge_state(self):
        good = BinningAnalysis("bodies", [AxisSpec("x", 4)], name="good")
        good.set_device_id(-1)
        bad = BinningAnalysis("bodies", [AxisSpec("vanished", 4)], name="bad")
        bad.set_device_id(-1)
        bridge = Bridge()
        bridge.initialize(analyses=[good, bad])
        with pytest.raises(BinningError):
            bridge.execute(make_adaptor())
        # The good analysis (which ran first) produced its result.
        assert good.latest is not None
