"""Acceptance: the adaptive stencil on a lossy link reproduces exactly.

A four-rank Jacobi stencil runs with the repartition governor armed
and seeded drop/duplicate/reorder faults injected into every halo and
handoff flow.  The governor's signals — per-block charged seconds and
plan-derived halo bytes — are pure functions of the partition and the
step, so the *entire* decision log (step, action, reason, structured
args, and the simulation-time stamp ``t = step * dt``) must reproduce
bit-identically: across ranks within one run, and across reruns.  The
physics must too, down to the last bit, because fault recovery and
shard migration may never perturb the numerics.
"""

from __future__ import annotations

import numpy as np

from repro.array import StencilConfig, StencilWorkload
from repro.control.plan import ControlConfig, ControlPlane
from repro.mpi import run_spmd
from repro.mpi.comm import CommCostModel
from repro.trace.harness import fresh_substrate
from repro.transport.config import TransportConfig
from repro.transport.retry import RetryPolicy
from repro.units import gbs, us

RANKS = 4

TRANSPORT = TransportConfig(
    chunk_bytes=256,
    retry=RetryPolicy(max_retries=40, ack_timeout=0.02),
).with_faults(drop=0.15, duplicate=0.05, reorder=0.10, seed=23)

#: Three of sixteen ownership blocks run hot from step 1 — enough busy
#: skew on rank 0 that the warmup round re-cuts the chain immediately.
CONFIG = StencilConfig(
    length=512, steps=12, block_rows=32,
    compute_rate=2.0e6, hotspot=(0.0, 0.1875), hotspot_cost=6.0,
)

CONTROL = ControlConfig.from_xml_attrs(
    {"execution": "off", "codec": "off", "placement": "off",
     "pool": "off", "repartition": "on", "interval": "4"},
)

SLOW_FABRIC = CommCostModel(latency=us(20.0), bandwidth=gbs(0.5))


def rank_main(comm):
    plane = ControlPlane(CONTROL, comm=comm)
    workload = StencilWorkload(
        comm, CONFIG, transport=TRANSPORT, plane=plane, adaptive=True,
    )
    summary = workload.run()
    field = workload.u[:]
    drops = workload.exchanger.drops_recovered
    workload.close()
    return [d.to_dict() for d in plane.decisions], summary, field, drops


def run_once(name):
    # Two runs share the process: the shared harness scrubs the
    # substrate state the way the per-test fixture does, so the second
    # run starts cold.
    fresh_substrate(name)
    return run_spmd(RANKS, rank_main, cost=SLOW_FABRIC)


class TestArrayDeterminism:
    def test_decision_logs_identical_across_ranks_and_reruns(self):
        """Same seeds, same decisions — including timestamps.

        Unlike the service plane (whose decisions stamp measured clock
        time), array decisions stamp simulation time ``step * dt``, so
        the logs must match exactly with no tolerance at all.
        """
        first = run_once("array-determinism-a")
        second = run_once("array-determinism-b")

        logs_a = [log for log, _s, _f, _d in first]
        logs_b = [log for log, _s, _f, _d in second]
        # Replicated control state: every rank walked the same log, and
        # the rerun replayed it verbatim.
        assert all(log == logs_a[0] for log in logs_a[1:])
        assert logs_a == logs_b

        # The governor genuinely steered (warmup round fired at least
        # once) and every rank switched to the same plan.
        assert any(d["applied"] for d in logs_a[0])
        owners = {s["owners"] for _l, s, _f, _d in first}
        assert len(owners) == 1
        assert all(s["repartitions"] >= 1 for _l, s, _f, _d in first)

    def test_physics_bit_identical_across_reruns(self):
        first = run_once("array-physics-a")
        second = run_once("array-physics-b")
        for (_la, sa, fa, _da), (_lb, sb, fb, _db) in zip(first, second):
            np.testing.assert_array_equal(fa, fb)
            assert sa["checksum"] == sb["checksum"]
        # The link was genuinely lossy: every rank recovered drops.
        assert all(d > 0 for _l, _s, _f, d in first)
