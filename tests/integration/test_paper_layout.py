"""Integration: the paper's exact in situ layout, end to end.

Section 4.3: "the data binning operator was applied to 10 variables
over 9 coordinate systems for a total of 90 binning operations.
Binning of each coordinate system was done sequentially in a separate
data binning operator instance and orchestrated by SENSEI using its XML
configuration feature."
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.runner import COORD_SYSTEMS, VARIABLES
from repro.mpi.comm import run_spmd
from repro.newton.adaptor import NewtonDataAdaptor
from repro.newton.solver import NewtonSolver, SolverConfig
from repro.sensei.bridge import Bridge
from repro.sensei.configurable import ConfigurableAnalysis

N_BODIES = 200
STEPS = 2
BINS = 8


def paper_layout_xml(execution: str = "lockstep") -> str:
    """Nine <analysis> elements, ten variable reductions each."""
    variables = ",".join(f"{var}:{op.value}" for var, op in VARIABLES)
    body = "".join(
        f'<analysis type="data_binning" mesh="bodies" '
        f'axes="{a},{b}" bins="{BINS},{BINS}" variables="{variables}" '
        f'execution="{execution}" placement="host" name="bin-{a}-{b}"/>'
        for a, b in COORD_SYSTEMS
    )
    return f"<sensei>{body}</sensei>"


@pytest.mark.parametrize("execution", ["lockstep", "asynchronous"])
def test_ninety_binning_operations_per_step(execution):
    xml = paper_layout_xml(execution)

    def fn(comm):
        solver = NewtonSolver(
            SolverConfig(n_bodies=N_BODIES, dt=1e-3, softening=0.05,
                         seed=8, mass_range=(0.01, 0.03)),
            comm,
        )
        ca = ConfigurableAnalysis(xml=xml)
        bridge = Bridge()
        bridge.initialize(comm, analyses=[ca])
        adaptor = NewtonDataAdaptor(solver)
        solver.run(STEPS, bridge=bridge, adaptor=adaptor)
        bridge.finalize()

        # 9 operator instances, each binning 10 variables (+ count).
        assert len(ca.children) == 9
        ops = sum(len(c.binner.requests) - 1 for c in ca.children)
        totals = {}
        for child in ca.children:
            mesh = child.latest
            totals[child.name] = float(mesh.cell_array_as_grid("count").sum())
            # Every variable produced its result grid.
            for var, op in VARIABLES:
                assert op.result_name(var) in mesh.cell_array_names
        return ops, totals

    for ops, totals in run_spmd(4, fn):
        assert ops == 90  # the paper's number
        assert all(v == N_BODIES for v in totals.values())
        assert len(totals) == 9


def test_paper_layout_mass_conservation_across_systems():
    """Every coordinate system's mass_sum grid carries the same total."""
    def fn(comm):
        solver = NewtonSolver(
            SolverConfig(n_bodies=N_BODIES, dt=1e-3, softening=0.05,
                         seed=9, mass_range=(0.01, 0.03)),
            comm,
        )
        ca = ConfigurableAnalysis(xml=paper_layout_xml())
        bridge = Bridge()
        bridge.initialize(comm, analyses=[ca])
        adaptor = NewtonDataAdaptor(solver)
        solver.run(1, bridge=bridge, adaptor=adaptor)
        bridge.finalize()
        total_mass = comm.allreduce(float(solver.bodies.mass.sum()))
        sums = [
            float(c.latest.cell_array_as_grid("mass_sum").sum())
            for c in ca.children
        ]
        return total_mass, sums

    for total_mass, sums in run_spmd(2, fn):
        np.testing.assert_allclose(sums, total_mass, rtol=1e-12)
