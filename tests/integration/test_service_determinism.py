"""Acceptance: a fault-injected multi-pipeline service run with
admission control on (quota + shard governors) produces bit-identical
decision logs across two seeded runs.

The service carries three tenants over two shared endpoints on a slow,
lossy link (seeded drop/duplicate/reorder faults): ``alpha`` publishes
every step, ``beta`` joins late, and ``gamma`` — the heavy tenant — is
finned early, after its demand has already skewed one endpoint hard
enough to trigger a shard migration.  Elastic membership must not
stall the siblings, and the *entire* decision log — quota grants,
migrations, steps, actions, reasons, structured args — must reproduce
exactly, on every producer rank, across reruns.
"""

from __future__ import annotations

import numpy as np

from repro.control.plan import ControlConfig
from repro.mpi.comm import CommCostModel
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.service import PipelineSpec, ServiceConfig, run_service
from repro.svtk.table import TableData
from repro.trace.harness import canonical_decisions, fresh_substrate
from repro.transport.config import TransportConfig
from repro.transport.retry import RetryPolicy
from repro.units import gbs, us

M, N = 2, 2  # 4 world ranks
STEPS = 6
JOIN_STEP = 2  # beta publishes from here on
FIN_STEP = 3   # gamma has finned before this step

TRANSPORT = TransportConfig(
    compression="none",
    chunk_bytes=1024,
    retry=RetryPolicy(max_retries=40, ack_timeout=0.02),
).with_faults(drop=0.10, duplicate=0.05, reorder=0.10, seed=41)

CONFIG = ServiceConfig(
    pipelines=(
        PipelineSpec(name="alpha", weight=2.0, transport=TRANSPORT),
        PipelineSpec(name="beta", transport=TRANSPORT),
        PipelineSpec(name="gamma", transport=TRANSPORT),
    ),
    budget=16,
    skew=1.3,
    cooldown=1,
    interval=2,
)
# Only the admission-control governor: the codec governor's choices
# depend on how well each rank's column *contents* compress, which is
# legitimately rank-divergent and would defeat the replicated-log check.
CONTROL = ControlConfig.from_xml_attrs(
    {"execution": "off", "codec": "off", "placement": "off",
     "pool": "off", "flow": "off", "quota": "on", "interval": "2"},
)
SLOW_FABRIC = CommCostModel(latency=us(5.0), bandwidth=gbs(0.5))

#: gamma is the heavy tenant whose demand skews its endpoint; beta —
#: its endpoint-mate — is heavy enough that migrating gamma off their
#: shared endpoint is a genuine improvement (the shard governor's
#: guard refuses moves that merely swap which endpoint is hot).
ROWS = {"alpha": 64, "beta": 2048, "gamma": 4096}


class Sink(AnalysisAdaptor):
    def __init__(self, mesh: str):
        super().__init__(f"sink-{mesh}")
        self.set_device_id(-1)

    def acquire(self, data, deep):
        return None

    def process(self, payload, comm, device_id):
        pass


def _registry():
    return {name: (lambda mesh=name: [Sink(mesh)]) for name in ROWS}


def _table(mesh: str, rank: int) -> TableData:
    t = TableData(mesh)
    t.add_host_column("x", np.full(ROWS[mesh], float(rank)))
    return t


def producer_main(sim_comm, bridge):
    for step in range(STEPS):
        meshes = {"alpha": _table("alpha", sim_comm.rank)}
        if step >= JOIN_STEP:
            meshes["beta"] = _table("beta", sim_comm.rank)
        if step < FIN_STEP:
            meshes["gamma"] = _table("gamma", sim_comm.rank)
        adaptor = TableDataAdaptor(meshes)
        adaptor.set_step(step, 0.1 * step)
        bridge.execute(adaptor)
        if step == FIN_STEP - 1:
            bridge.finish_pipeline("gamma")
    plane = bridge.control_plane
    drops = sum(
        bridge.pipeline_metrics(name)["drops_recovered"] for name in ROWS
    )
    return [d.to_dict() for d in plane.decisions], drops


def run_once():
    # Two runs share the process: the shared harness scrubs the
    # substrate state the way the per-test fixture does, so the second
    # run starts cold.  Decision logs are compared in the trace plane's
    # canonical form (clock stamp dropped, measured floats normalized
    # to 9 significant digits) via ``canonical_decisions``.
    fresh_substrate("service-determinism")
    producers, endpoints = run_service(
        CONFIG, producer_main, _registry(), m=M, n=N,
        cost=SLOW_FABRIC, control=CONTROL,
    )
    steps = {
        name: sum(ep.pipeline_steps[name] for ep in endpoints)
        for name in ROWS
    }
    return producers, steps


class TestServiceDeterminism:
    def test_elastic_tenants_do_not_stall_siblings(self):
        producers, steps = run_once()
        # Early fin and late join both merged cleanly on the shared
        # endpoints: every published step of every tenant arrived.
        assert steps == {
            "alpha": STEPS,
            "beta": STEPS - JOIN_STEP,
            "gamma": FIN_STEP,
        }
        # The link was genuinely lossy: recovered drops on every rank.
        assert all(drops > 0 for _log, drops in producers)
        # Admission control steered: quota rounds ran, and gamma's
        # demand spike pushed a shard migration before its fin.
        logs = [log for log, _drops in producers]
        governors = {d["governor"] for log in logs for d in log}
        assert {"quota", "shard"} <= governors
        migrations = [
            d for d in logs[0]
            if d["governor"] == "shard" and d["applied"]
        ]
        assert migrations and migrations[0]["args"]["pipeline"] == "gamma"

    def test_decision_logs_identical_across_seeded_runs(self):
        """Same seeds, same decisions — on every rank, in order.

        Decision content must reproduce bit-identically; timestamps are
        compared within a tolerance because producer/endpoint threads
        rendezvous in real-thread arrival order (ack round-trips land
        a few simulated microseconds apart between reruns).
        """
        first, first_steps = run_once()
        second, second_steps = run_once()
        assert first_steps == second_steps
        logs_a = [log for log, _ in first]
        logs_b = [log for log, _ in second]
        # Replicated admission state: every rank walked the same log.
        canon_a = [canonical_decisions(log) for log in logs_a]
        assert canon_a[0] == canon_a[1]
        assert canon_a == [canonical_decisions(log) for log in logs_b]
        for la, lb in zip(logs_a, logs_b):
            for da, db in zip(la, lb):
                assert abs(da["time"] - db["time"]) < 1e-3
