"""Integration: the complete paper pipeline, end to end.

Newton++ (MPI + virtual-device offload) -> SENSEI bridge -> XML
configured analyses -> data binning on assigned devices -> merged
results -> writers, across placements and execution methods.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.binning.axes import AxisSpec
from repro.binning.operator import BinRequest
from repro.binning.reduce import ReductionOp
from repro.harness.spec import InSituPlacement, RunSpec, table1_matrix
from repro.mpi.comm import run_spmd
from repro.newton.adaptor import NewtonDataAdaptor
from repro.newton.solver import NewtonSolver, SolverConfig
from repro.sensei.backends.binning import BinningAnalysis
from repro.sensei.bridge import Bridge
from repro.sensei.configurable import ConfigurableAnalysis
from repro.sensei.execution import ExecutionMethod

CFG = SolverConfig(
    n_bodies=160, dt=1e-3, softening=0.05, seed=2, mass_range=(0.01, 0.03)
)


class TestXmlDrivenPipeline:
    XML = """
    <sensei>
      <analysis type="data_binning" mesh="bodies" axes="x,y" bins="8,8"
                variables="mass:sum" placement="host" name="xy"/>
      <analysis type="data_binning" mesh="bodies" axes="x,vx" bins="8,8"
                variables="mass:average" placement="auto" name="xvx"/>
      <analysis type="histogram" mesh="bodies" array="mass" bins="16"
                placement="host" name="hist"/>
    </sensei>
    """

    def test_multi_analysis_xml_run_over_mpi(self):
        def fn(comm):
            solver = NewtonSolver(CFG, comm)
            ca = ConfigurableAnalysis(xml=self.XML)
            bridge = Bridge()
            bridge.initialize(comm, analyses=[ca])
            adaptor = NewtonDataAdaptor(solver)
            solver.run(3, bridge=bridge, adaptor=adaptor)
            bridge.finalize()
            return {
                child.name: float(child.latest.cell_array_as_grid("count").sum())
                for child in ca.children
            }

        for counts in run_spmd(4, fn):
            assert counts == {"xy": 160.0, "xvx": 160.0, "hist": 160.0}

    def test_xml_asynchronous_with_placement(self):
        xml = """
        <sensei>
          <analysis type="data_binning" mesh="bodies" axes="y,z" bins="4,4"
                    execution="asynchronous" placement="auto"
                    n_use="1" offset="3"/>
        </sensei>
        """

        def fn(comm):
            solver = NewtonSolver(CFG, comm)
            ca = ConfigurableAnalysis(xml=xml)
            bridge = Bridge()
            bridge.initialize(comm, analyses=[ca])
            adaptor = NewtonDataAdaptor(solver)
            solver.run(2, bridge=bridge, adaptor=adaptor)
            bridge.finalize()
            child = ca.children[0]
            return (
                child.resolve_device(),
                float(child.latest.cell_array_as_grid("count").sum()),
            )

        for dev, count in run_spmd(3, fn):
            assert dev == 3  # everyone's analysis on the dedicated GPU
            assert count == 160.0


class TestPlacementMatrixIntegration:
    @pytest.mark.parametrize("spec", table1_matrix(nodes=1),
                             ids=lambda s: s.label)
    def test_every_table1_case_full_pipeline(self, spec: RunSpec):
        """All 8 evaluation cases drive the real stack correctly."""
        placement = spec.insitu_device_placement()

        def fn(comm):
            solver = NewtonSolver(CFG, comm)
            analysis = BinningAnalysis(
                "bodies",
                [AxisSpec("x", 8), AxisSpec("y", 8)],
                [BinRequest(ReductionOp.SUM, "mass")],
            )
            analysis.set_placement(placement)
            analysis.set_execution_method(spec.method)
            bridge = Bridge()
            bridge.initialize(comm, analyses=[analysis])
            adaptor = NewtonDataAdaptor(solver)
            solver.run(2, bridge=bridge, adaptor=adaptor)
            bridge.finalize()
            mass = float(
                analysis.latest.cell_array_as_grid("mass_sum").sum()
            )
            total = comm.allreduce(float(solver.bodies.mass.sum()))
            return mass, total

        for mass, total in run_spmd(spec.ranks_per_node, fn):
            assert mass == pytest.approx(total)


class TestDataIntegrity:
    def test_async_results_match_lockstep(self):
        """Same physics + same analysis => identical grids, either method."""

        def run(method):
            def fn(comm):
                solver = NewtonSolver(CFG, comm)
                analysis = BinningAnalysis(
                    "bodies",
                    [AxisSpec("x", 8, -1, 1), AxisSpec("y", 8, -1, 1)],
                    [BinRequest(ReductionOp.SUM, "mass")],
                )
                analysis.set_device_id(-1)
                analysis.set_execution_method(method)
                bridge = Bridge()
                bridge.initialize(comm, analyses=[analysis])
                adaptor = NewtonDataAdaptor(solver)
                solver.run(3, bridge=bridge, adaptor=adaptor)
                bridge.finalize()
                return analysis.latest.cell_array_as_grid("mass_sum")

            return run_spmd(2, fn)[0]

        lockstep = run(ExecutionMethod.LOCKSTEP)
        asynchronous = run(ExecutionMethod.ASYNCHRONOUS)
        np.testing.assert_allclose(asynchronous, lockstep, rtol=1e-12)

    def test_zero_copy_lockstep_sees_current_state(self):
        """Lockstep binning consumes the solver's live arrays zero-copy:
        the grid must reflect the positions of the step it ran at."""
        solver = NewtonSolver(CFG)
        analysis = BinningAnalysis(
            "bodies", [AxisSpec("x", 4, -1, 1)], keep_results=True
        )
        analysis.set_device_id(-1)
        bridge = Bridge()
        bridge.initialize(analyses=[analysis])
        adaptor = NewtonDataAdaptor(solver)
        solver.run(2, bridge=bridge, adaptor=adaptor)
        bridge.finalize()
        # Recompute the final-step histogram from the solver state.
        expected, _ = np.histogram(
            np.clip(solver.bodies.x, -1, 1 - 1e-12), bins=4, range=(-1, 1)
        )
        np.testing.assert_array_equal(
            analysis.results[-1].cell_array_as_grid("count"), expected
        )

    def test_insitu_every_iteration(self):
        """'In situ processing via SENSEI was performed at every
        iteration.' (Section 4.3)"""
        solver = NewtonSolver(CFG)
        analysis = BinningAnalysis("bodies", [AxisSpec("x", 4)], keep_results=True)
        analysis.set_device_id(-1)
        bridge = Bridge()
        bridge.initialize(analyses=[analysis])
        adaptor = NewtonDataAdaptor(solver)
        solver.run(5, bridge=bridge, adaptor=adaptor)
        bridge.finalize()
        assert len(analysis.results) == 5
        assert [t.time_step for t in analysis.timings] == [1, 2, 3, 4, 5]
