"""CI wiring: the tree must stay lint-clean.

Runs the repro.analysis linter over ``src/``, ``examples/`` and
``benchmarks/`` as part of the tier-1 suite, so a new HL violation
fails pytest the same way a unit-test regression would.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.analysis.lint import lint_paths, main
from repro.analysis.report import format_text

SRC = Path(repro.__file__).resolve().parent          # src/repro
REPO_ROOT = SRC.parents[1]                           # repo root


def _tree_paths():
    paths = [SRC]
    for extra in ("examples", "benchmarks"):
        p = REPO_ROOT / extra
        if p.is_dir():
            paths.append(p)
    return paths


def test_tree_is_lint_clean():
    findings = lint_paths(_tree_paths())
    assert findings == [], "\n" + format_text(findings)


def test_tree_suppressions_are_all_live():
    """--check-suppressions finds no stale or unknown suppressions."""
    from repro.analysis.lint import audit_suppressions

    findings = audit_suppressions(_tree_paths())
    assert findings == [], "\n" + format_text(findings)


def test_tree_lint_is_byte_identical_across_runs_and_jobs():
    from repro.analysis.report import format_json

    runs = [
        format_json(lint_paths(_tree_paths(), jobs=jobs))
        for jobs in (1, 4, None)
    ]
    assert runs[0] == runs[1] == runs[2]


def test_tree_lint_stays_within_runtime_budget():
    """Interprocedural analysis must not blow up whole-tree lint time.

    Budget: 2x the pre-interprocedural baseline (~1.3s on the dev
    container for the full call-graph build plus all rules), padded
    for slow CI runners.  A superlinear regression — e.g. summaries
    recomputed per call site instead of memoized — lands far above
    this; normal runs land far below it.
    """
    import time

    start = time.perf_counter()
    lint_paths(_tree_paths())
    elapsed = time.perf_counter() - start
    assert elapsed < 8.0, f"whole-tree lint took {elapsed:.2f}s (budget 8s)"


def test_cli_exit_codes(tmp_path, capsys):
    clean = tmp_path / "ok.py"
    clean.write_text("x = 1\n")
    assert main([str(clean)]) == 0
    assert "clean" in capsys.readouterr().out

    dirty = tmp_path / "bad.py"
    dirty.write_text("def f(b):\n    return b._data\n")
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "HL001" in out


def test_cli_json_format(tmp_path, capsys):
    import json

    dirty = tmp_path / "bad.py"
    dirty.write_text("import threading\nt = threading.Thread()\n")
    assert main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] >= 1
    assert payload["findings"][0]["rule"] == "HL005"


def test_cli_rejects_unknown_rule_id(tmp_path, capsys):
    p = tmp_path / "ok.py"
    p.write_text("x = 1\n")
    assert main([str(p), "--select", "HL999"]) == 2
    assert "unknown rule id" in capsys.readouterr().out


def test_cli_rejects_missing_path(capsys):
    assert main(["/no/such/path"]) == 2
    assert "no such path" in capsys.readouterr().out


@pytest.mark.parametrize("module", ["lint", "sanitize"])
def test_repro_main_exposes_subcommands(module):
    from repro.__main__ import _build_parser

    parser = _build_parser()
    # Will raise SystemExit(2) if the subcommand is unknown.
    args = parser.parse_args([module] if module == "lint" else [module, "x"])
    assert args.command == module
