"""Tests for svtkHAMRDataArray — the paper's data-model extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeMismatchError, UninitializedArrayError
from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.runtime import current_clock, set_active_device
from repro.hamr.stream import Stream, StreamMode, default_stream
from repro.hw.node import get_node
from repro.svtk.hamr_array import (
    HAMRDataArray,
    HAMRDoubleArray,
    HAMRFloatArray,
    HAMRInt64Array,
)


class TestConstruction:
    def test_new_host_array(self):
        a = HAMRDataArray.new("x", 100, allocator=Allocator.MALLOC)
        assert a.n_tuples == 100
        assert a.on_host
        assert a.initialized

    def test_new_device_array_on_active_device(self):
        set_active_device(3)
        a = HAMRDataArray.new("x", 10, allocator=Allocator.CUDA)
        assert a.device_id == 3

    def test_new_multicomponent(self):
        a = HAMRDataArray.new("v", 10, n_components=3, allocator=Allocator.MALLOC)
        assert a.n_tuples == 10
        assert a.n_values == 30

    def test_default_constructed_then_initialize(self):
        """Paper S2: APIs exist to initialize a default constructed instance."""
        a = HAMRDataArray("deferred")
        assert not a.initialized
        a.initialize(5, allocator=Allocator.HIP, device_id=1)
        assert a.n_tuples == 5
        assert a.device_id == 1

    def test_double_initialize_rejected(self):
        a = HAMRDataArray.new("x", 5)
        with pytest.raises(UninitializedArrayError):
            a.initialize(5)

    def test_use_before_initialize_raises(self):
        a = HAMRDataArray("empty")
        with pytest.raises(UninitializedArrayError):
            _ = a.n_tuples
        with pytest.raises(UninitializedArrayError):
            a.get_host_accessible()

    def test_typed_subclasses_pin_dtype(self):
        assert HAMRDoubleArray.new("d", 4).dtype == np.float64
        assert HAMRFloatArray.new("f", 4).dtype == np.float32
        assert HAMRInt64Array.new("i", 4).dtype == np.int64

    def test_typed_subclass_rejects_wrong_dtype(self):
        with pytest.raises(ShapeMismatchError):
            HAMRDoubleArray.new("d", 4, dtype=np.float32)
        with pytest.raises(ShapeMismatchError):
            HAMRDoubleArray.zero_copy("d", np.zeros(4, dtype=np.float32))


class TestZeroCopy:
    def test_listing1_pattern(self):
        """The paper's Listing 1: device data packaged for zero-copy."""
        dev_id = 1
        set_active_device(dev_id)
        n = 64
        # "allocate device memory" + "initialize the array on the device"
        dev_ptr = np.full(n, -3.14)
        # "zero-copy construct with coordinated life cycle management"
        freed = []
        sim_data = HAMRDoubleArray.zero_copy(
            "simData", dev_ptr, 1,
            allocator=Allocator.OPENMP,
            stream=default_stream(dev_id),
            stream_mode=StreamMode.ASYNC,
            device_id=dev_id,
            deleter=lambda: freed.append(True),
        )
        assert sim_data.device_id == dev_id
        assert sim_data.allocator is Allocator.OPENMP
        # Zero copy: the HDA sees writes through the simulation's pointer.
        dev_ptr[0] = 1.0
        assert sim_data.get_data()[0] == 1.0
        # "free up the container" — deleter coordinates the life cycle.
        sim_data.delete()
        assert freed == [True]

    def test_zero_copy_component_divisibility(self):
        with pytest.raises(ShapeMismatchError):
            HAMRDataArray.zero_copy("v", np.zeros(7), n_components=3)

    def test_zero_copy_no_simulated_cost(self):
        t0 = current_clock().now
        HAMRDataArray.zero_copy("x", np.zeros(1_000_000), allocator=Allocator.MALLOC)
        assert current_clock().now == t0


class TestAgnosticAccess:
    def test_host_to_host_in_place(self):
        a = HAMRDataArray.new("x", 8, allocator=Allocator.MALLOC)
        v = a.get_host_accessible()
        assert not v.is_temporary

    def test_device_to_host_moves(self):
        a = HAMRDataArray.new("x", 8, allocator=Allocator.CUDA, device_id=0)
        a.fill(2.5)
        v = a.get_host_accessible()
        assert v.is_temporary
        a.synchronize()
        np.testing.assert_array_equal(v.get(), [2.5] * 8)

    def test_cuda_accessible_cross_device(self):
        """Listing 3: data from devices 0/1 consumed by CUDA on device 2."""
        a1 = HAMRDataArray.new("a1", 4, allocator=Allocator.MALLOC)
        a1.get_data()[:] = 1.0
        a2 = HAMRDataArray.new("a2", 4, allocator=Allocator.OPENMP, device_id=1)
        a2.get_data()[:] = 2.0
        set_active_device(2)
        v1 = a1.get_cuda_accessible()
        v2 = a2.get_cuda_accessible()
        assert v1.is_temporary and v2.is_temporary
        assert v1.buffer.device_id == 2
        assert v2.buffer.device_id == 2
        a1.synchronize()
        a2.synchronize()
        out = v1.get() + v2.get()
        np.testing.assert_array_equal(out, [3.0] * 4)

    def test_openmp_and_hip_accessors(self):
        a = HAMRDataArray.new("x", 4, allocator=Allocator.CUDA, device_id=0)
        assert not a.get_openmp_accessible(device_id=0).is_temporary
        assert a.get_hip_accessible(device_id=1).is_temporary

    def test_same_pm_same_device_direct(self):
        a = HAMRDataArray.new("x", 4, allocator=Allocator.CUDA, device_id=2)
        v = a.get_cuda_accessible(device_id=2)
        assert not v.is_temporary
        assert v.get() is a.get_data()

    def test_temporary_cleanup_releases_device_memory(self):
        node = get_node()
        a = HAMRDataArray.new("x", 1000, allocator=Allocator.MALLOC)
        v = a.get_cuda_accessible(device_id=1)
        assert node.devices[1].mem_used > 0
        v.release()
        assert node.devices[1].mem_used == 0

    def test_accessor_defaults_to_active_device(self):
        a = HAMRDataArray.new("x", 4, allocator=Allocator.MALLOC)
        set_active_device(2)
        v = a.get_cuda_accessible()
        assert v.buffer.device_id == 2


class TestOperations:
    def test_fill_and_get_data(self):
        a = HAMRDataArray.new("x", 4, allocator=Allocator.CUDA, device_id=0)
        a.fill(-3.14)
        np.testing.assert_array_equal(a.get_data(), [-3.14] * 4)

    def test_synchronize_joins_async_work(self):
        s = Stream(device_id=0)
        a = HAMRDataArray.new(
            "x", 1000, allocator=Allocator.CUDA_ASYNC,
            stream=s, stream_mode=StreamMode.ASYNC, device_id=0,
        )
        a.fill(1.0)
        assert current_clock().now < a.buffer.ready_at
        a.synchronize()
        assert current_clock().now >= a.buffer.ready_at

    def test_delete_frees_owned_memory(self):
        node = get_node()
        a = HAMRDataArray.new("x", 1000, allocator=Allocator.CUDA, device_id=0)
        a.delete()
        assert node.devices[0].mem_used == 0
        assert not a.initialized

    def test_delete_idempotent(self):
        a = HAMRDataArray.new("x", 10)
        a.delete()
        a.delete()

    def test_as_numpy_host_shape(self):
        a = HAMRDataArray.new("v", 5, n_components=3, allocator=Allocator.MALLOC)
        a.fill(1.0)
        m = a.as_numpy_host()
        assert m.shape == (5, 3)
