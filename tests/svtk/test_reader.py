"""Round-trip tests: writers -> readers preserve data exactly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.svtk.data_array import HostDataArray
from repro.svtk.mesh import UniformCartesianMesh
from repro.svtk.reader import (
    VtkParseError,
    read_csv_table,
    read_vtk_image,
    read_vtk_particles,
)
from repro.svtk.table import TableData
from repro.svtk.writer import write_csv_table, write_vtk_image, write_vtk_particles


class TestImageRoundTrip:
    def test_2d_mesh_with_arrays(self, tmp_path):
        m = UniformCartesianMesh((4, 6), origin=(-1, 0), spacing=(0.5, 0.25),
                                 name="grid")
        rng = np.random.default_rng(1)
        m.add_host_cell_array("count", rng.integers(0, 9, 24).astype(float))
        m.add_host_cell_array("mass_sum", rng.normal(size=24))
        p = tmp_path / "g.vtk"
        write_vtk_image(m, p)
        back = read_vtk_image(p)
        assert back.dims == m.dims
        assert back.origin == m.origin
        assert back.spacing == m.spacing
        assert back.cell_array_names == m.cell_array_names
        for name in m.cell_array_names:
            np.testing.assert_allclose(
                back.cell_array_as_grid(name), m.cell_array_as_grid(name),
                rtol=1e-9,
            )

    def test_1d_and_3d_round_trip(self, tmp_path):
        for dims in ((5,), (2, 3, 4)):
            m = UniformCartesianMesh(dims)
            m.add_host_cell_array("v", np.arange(float(m.n_cells)))
            p = tmp_path / f"d{len(dims)}.vtk"
            write_vtk_image(m, p)
            back = read_vtk_image(p)
            assert back.dims == dims
            np.testing.assert_allclose(
                back.cell_array_as_grid("v"), m.cell_array_as_grid("v")
            )

    def test_not_vtk_rejected(self, tmp_path):
        p = tmp_path / "x.vtk"
        p.write_text("hello")
        with pytest.raises(VtkParseError):
            read_vtk_image(p)

    def test_wrong_dataset_rejected(self, tmp_path):
        x = HostDataArray("x", np.zeros(2))
        p = tmp_path / "p.vtk"
        write_vtk_particles([x], p)
        with pytest.raises(VtkParseError):
            read_vtk_image(p)


class TestParticlesRoundTrip:
    def test_positions_and_attributes(self, tmp_path):
        rng = np.random.default_rng(2)
        cols = {n: rng.normal(size=7) for n in ("x", "y", "z", "mass", "vx")}
        p = tmp_path / "pts.vtk"
        write_vtk_particles(
            [HostDataArray(n, cols[n]) for n in ("x", "y", "z")],
            p,
            attributes=[HostDataArray(n, cols[n]) for n in ("mass", "vx")],
        )
        back = read_vtk_particles(p)
        assert back.column_names == ("x", "y", "z", "mass", "vx")
        for n, vals in cols.items():
            np.testing.assert_allclose(
                back[n].as_numpy_host(), vals, rtol=1e-9
            )

    def test_positions_only(self, tmp_path):
        p = tmp_path / "pts.vtk"
        write_vtk_particles([HostDataArray("x", np.array([1.0, 2.0]))], p)
        back = read_vtk_particles(p)
        assert back.n_rows == 2
        np.testing.assert_array_equal(back["y"].as_numpy_host(), [0.0, 0.0])

    def test_newton_snapshot_round_trip(self, tmp_path):
        from repro.newton.ic import uniform_random
        from repro.newton.io import write_snapshot

        b = uniform_random(20, seed=3)
        p = write_snapshot(b, tmp_path / "snap.vtk")
        back = read_vtk_particles(p)
        np.testing.assert_allclose(back["x"].as_numpy_host(), b.x, rtol=1e-9)
        np.testing.assert_allclose(back["mass"].as_numpy_host(), b.mass, rtol=1e-9)


class TestCsvRoundTrip:
    def test_basic(self, tmp_path):
        t = TableData()
        t.add_host_column("a", np.array([1.5, -2.0, 3.25]))
        t.add_host_column("b", np.array([0.0, 10.0, -0.5]))
        p = tmp_path / "t.csv"
        write_csv_table(t, p)
        back = read_csv_table(p)
        assert back.column_names == ("a", "b")
        np.testing.assert_allclose(back["a"].as_numpy_host(), [1.5, -2.0, 3.25])

    def test_empty_table(self, tmp_path):
        p = tmp_path / "e.csv"
        write_csv_table(TableData(), p)
        assert read_csv_table(p).n_columns == 0

    def test_ragged_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("a,b\n1,2\n3\n")
        with pytest.raises(VtkParseError):
            read_csv_table(p)


def test_trailing_singleton_axis_preserved(tmp_path):
    """A (3, 1) mesh round-trips with its rank intact: padded axes are
    written as single-*point* planes, distinct from single-cell axes."""
    m = UniformCartesianMesh((3, 1))
    m.add_host_cell_array("v", np.arange(3.0))
    p = tmp_path / "m.vtk"
    write_vtk_image(m, p)
    back = read_vtk_image(p)
    assert back.dims == (3, 1)
    np.testing.assert_array_equal(
        back.cell_array_as_grid("v"), np.arange(3.0).reshape(3, 1)
    )


def test_point_data_round_trip(tmp_path):
    m = UniformCartesianMesh((2, 3))
    rng = np.random.default_rng(7)
    m.add_host_cell_array("c", rng.normal(size=6))
    m.add_host_point_array("p", rng.normal(size=12))  # (2+1)*(3+1)
    path = tmp_path / "pd.vtk"
    write_vtk_image(m, path)
    back = read_vtk_image(path)
    assert back.point_array_names == ("p",)
    np.testing.assert_allclose(
        back.point_array("p").as_numpy_host(),
        m.point_array("p").as_numpy_host(),
        rtol=1e-9,
    )
    np.testing.assert_allclose(
        back.cell_array_as_grid("c"), m.cell_array_as_grid("c"), rtol=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(
    dims=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    seed=st.integers(0, 2**31 - 1),
)
def test_image_round_trip_property(dims, seed, tmp_path_factory):
    """Property: any 2-D mesh with finite data survives a round trip."""
    rng = np.random.default_rng(seed)
    m = UniformCartesianMesh(dims, origin=tuple(rng.uniform(-5, 5, 2)),
                             spacing=tuple(rng.uniform(0.1, 2.0, 2)))
    m.add_host_cell_array("v", rng.normal(size=m.n_cells))
    p = tmp_path_factory.mktemp("rt") / "m.vtk"
    write_vtk_image(m, p)
    back = read_vtk_image(p)
    assert back.dims == m.dims
    np.testing.assert_allclose(back.origin, m.origin, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(
        back.cell_array_as_grid("v"), m.cell_array_as_grid("v"),
        rtol=1e-9, atol=1e-12,
    )
