"""Tests for mesh metadata."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hamr.allocator import HOST_DEVICE_ID, Allocator
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.mesh import UniformCartesianMesh
from repro.svtk.metadata import ArrayMetadata, MeshMetadata, metadata_for
from repro.svtk.multiblock import MultiBlockData
from repro.svtk.table import TableData


def make_table():
    t = TableData("bodies")
    t.add_host_column("x", np.zeros(10))
    dev = HAMRDataArray.new("mass", 10, allocator=Allocator.CUDA, device_id=2)
    t.add_column(dev)
    return t


class TestTableMetadata:
    def test_structure(self):
        md = metadata_for(make_table())
        assert md.mesh_type == "table"
        assert md.name == "bodies"
        assert md.n_elements == 10
        assert md.array_names == ("x", "mass")

    def test_residency_recorded(self):
        """The heterogeneous point: metadata says where arrays live."""
        md = metadata_for(make_table())
        assert md.array("x").on_host
        assert md.array("mass").device_id == 2
        assert md.array("mass").allocator == "cuda"

    def test_dtype_and_shape(self):
        md = metadata_for(make_table())
        assert md.array("x").dtype == "float64"
        assert md.array("x").n_tuples == 10
        assert md.array("x").n_components == 1

    def test_missing_array(self):
        md = metadata_for(make_table())
        assert not md.has_array("vy")
        with pytest.raises(KeyError):
            md.array("vy")


class TestMeshMetadata:
    def test_uniform_mesh(self):
        m = UniformCartesianMesh((4, 8), origin=(0, -1), spacing=(0.5, 0.25))
        m.add_host_cell_array("count", np.zeros(32))
        md = metadata_for(m)
        assert md.mesh_type == "uniform_mesh"
        assert md.n_elements == 32
        assert md.dims == (4, 8)
        assert md.bounds == ((0.0, 2.0), (-1.0, 1.0))
        assert md.array("count").centering == "cell"

    def test_multiblock(self):
        mb = MultiBlockData(4, name="blocks")
        mb.set_block(1, make_table())
        md = metadata_for(mb)
        assert md.mesh_type == "multiblock"
        assert md.n_blocks == 4
        assert md.local_blocks == (1,)
        assert md.n_elements == 10

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            metadata_for(object())

    def test_name_override(self):
        md = metadata_for(make_table(), name="renamed")
        assert md.name == "renamed"


class TestAdaptorMetadata:
    def test_data_adaptor_exposes_metadata(self):
        from repro.sensei.data_adaptor import TableDataAdaptor

        da = TableDataAdaptor({"bodies": make_table()})
        md = da.get_mesh_metadata("bodies")
        assert isinstance(md, MeshMetadata)
        assert md.array("mass").device_id == 2

    def test_newton_adaptor_metadata(self):
        from repro.newton.adaptor import NewtonDataAdaptor
        from repro.newton.solver import NewtonSolver, SolverConfig

        solver = NewtonSolver(SolverConfig(n_bodies=16, device_id=1))
        md = NewtonDataAdaptor(solver).get_mesh_metadata("bodies")
        assert md.n_elements == 16
        # All published columns are device-resident OpenMP allocations.
        assert all(a.device_id == 1 for a in md.arrays)
        assert all(a.allocator == "openmp" for a in md.arrays)
