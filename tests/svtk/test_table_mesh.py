"""Tests for tabular and mesh datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeMismatchError
from repro.hamr.allocator import Allocator
from repro.svtk.data_array import HostDataArray
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.mesh import UniformCartesianMesh
from repro.svtk.multiblock import MultiBlockData
from repro.svtk.table import TableData


class TestTableData:
    def test_add_and_lookup(self):
        t = TableData("bodies")
        t.add_host_column("x", np.arange(5.0))
        t.add_host_column("m", np.ones(5))
        assert t.n_rows == 5
        assert t.n_columns == 2
        assert t.column_names == ("x", "m")
        np.testing.assert_array_equal(t["x"].as_numpy_host(), np.arange(5.0))

    def test_row_count_enforced(self):
        t = TableData()
        t.add_host_column("x", np.zeros(5))
        with pytest.raises(ShapeMismatchError):
            t.add_host_column("y", np.zeros(6))

    def test_duplicate_name_rejected(self):
        t = TableData()
        t.add_host_column("x", np.zeros(5))
        with pytest.raises(ShapeMismatchError):
            t.add_host_column("x", np.zeros(5))

    def test_vector_column_rejected(self):
        t = TableData()
        col = HAMRDataArray.new("v", 5, n_components=3, allocator=Allocator.MALLOC)
        with pytest.raises(ShapeMismatchError):
            t.add_column(col)

    def test_missing_column_error_lists_available(self):
        t = TableData("t")
        t.add_host_column("x", np.zeros(2))
        with pytest.raises(KeyError, match="x"):
            t.column("nope")

    def test_device_columns_supported(self):
        """The HDA extension lets tables reference device-resident columns."""
        t = TableData()
        col = HAMRDataArray.new("m", 8, allocator=Allocator.CUDA, device_id=0)
        col.fill(2.0)
        t.add_column(col)
        np.testing.assert_array_equal(t["m"].as_numpy_host(), [2.0] * 8)

    def test_remove_column(self):
        t = TableData()
        t.add_host_column("x", np.zeros(3))
        t.remove_column("x")
        assert t.n_columns == 0
        with pytest.raises(KeyError):
            t.remove_column("x")

    def test_contains_and_iter(self):
        t = TableData()
        t.add_host_column("a", np.zeros(1))
        t.add_host_column("b", np.zeros(1))
        assert "a" in t
        assert list(t) == ["a", "b"]

    def test_empty_table(self):
        t = TableData()
        assert t.n_rows == 0
        assert t.n_columns == 0


class TestUniformCartesianMesh:
    def test_basic_geometry(self):
        m = UniformCartesianMesh((4, 2), origin=(0.0, -1.0), spacing=(0.5, 1.0))
        assert m.ndim == 2
        assert m.n_cells == 8
        assert m.bounds == ((0.0, 2.0), (-1.0, 1.0))

    def test_cell_centers_and_edges(self):
        m = UniformCartesianMesh((4,), origin=(0.0,), spacing=(1.0,))
        np.testing.assert_array_equal(m.cell_centers(0), [0.5, 1.5, 2.5, 3.5])
        np.testing.assert_array_equal(m.cell_edges(0), [0, 1, 2, 3, 4])

    def test_default_origin_spacing(self):
        m = UniformCartesianMesh((2, 2, 2))
        assert m.origin == (0.0, 0.0, 0.0)
        assert m.spacing == (1.0, 1.0, 1.0)

    def test_invalid_dims(self):
        with pytest.raises(ShapeMismatchError):
            UniformCartesianMesh((0, 4))
        with pytest.raises(ShapeMismatchError):
            UniformCartesianMesh(())

    def test_invalid_spacing(self):
        with pytest.raises(ShapeMismatchError):
            UniformCartesianMesh((2,), spacing=(0.0,))

    def test_rank_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            UniformCartesianMesh((2, 2), origin=(0.0,))

    def test_cell_array_size_enforced(self):
        m = UniformCartesianMesh((4, 4))
        with pytest.raises(ShapeMismatchError):
            m.add_host_cell_array("bad", np.zeros(5))

    def test_cell_array_as_grid(self):
        m = UniformCartesianMesh((2, 3))
        m.add_host_cell_array("v", np.arange(6.0))
        g = m.cell_array_as_grid("v")
        assert g.shape == (2, 3)

    def test_point_arrays(self):
        m = UniformCartesianMesh((2, 2))
        assert m.n_points == 9
        m.add_host_point_array("temp", np.arange(9.0))
        assert m.point_array_names == ("temp",)
        np.testing.assert_array_equal(
            m.point_array("temp").as_numpy_host(), np.arange(9.0)
        )

    def test_point_array_size_enforced(self):
        m = UniformCartesianMesh((2, 2))
        with pytest.raises(ShapeMismatchError):
            m.add_host_point_array("bad", np.zeros(4))

    def test_missing_point_array(self):
        m = UniformCartesianMesh((2,))
        with pytest.raises(KeyError):
            m.point_array("nope")

    def test_device_cell_array(self):
        m = UniformCartesianMesh((2, 2))
        arr = HAMRDataArray.new("sum", 4, allocator=Allocator.CUDA, device_id=1)
        arr.fill(3.0)
        m.add_cell_array(arr)
        np.testing.assert_array_equal(m.cell_array_as_grid("sum"), np.full((2, 2), 3.0))


class TestMultiBlockData:
    def test_sparse_population(self):
        mb = MultiBlockData(4)
        t = TableData()
        mb.set_block(2, t)
        assert mb.has_block(2)
        assert not mb.has_block(0)
        assert mb.block(2) is t
        assert mb.local_block_ids == (2,)

    def test_out_of_range_block(self):
        mb = MultiBlockData(2)
        with pytest.raises(ShapeMismatchError):
            mb.set_block(2, TableData())

    def test_missing_block_lookup(self):
        mb = MultiBlockData(2)
        with pytest.raises(KeyError):
            mb.block(0)

    def test_local_blocks_iteration_order(self):
        mb = MultiBlockData(5)
        mb.set_block(3, "c")
        mb.set_block(1, "a")
        assert [bid for bid, _ in mb.local_blocks()] == [1, 3]
