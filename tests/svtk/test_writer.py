"""Tests for the host-only writers (paper Listing 4 pattern)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hamr.allocator import Allocator
from repro.svtk.data_array import HostDataArray
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.mesh import UniformCartesianMesh
from repro.svtk.table import TableData
from repro.svtk.writer import write_csv_table, write_vtk_image, write_vtk_particles


class TestVtkImage:
    def test_header_and_cell_data(self, tmp_path):
        m = UniformCartesianMesh((2, 2), origin=(0, 0), spacing=(0.5, 0.5))
        m.add_host_cell_array("mass_sum", np.array([1.0, 2.0, 3.0, 4.0]))
        p = tmp_path / "grid.vtk"
        write_vtk_image(m, p)
        text = p.read_text()
        assert "DATASET STRUCTURED_POINTS" in text
        # cells + 1 per real axis; padded axes are single-point planes.
        assert "DIMENSIONS 3 3 1" in text
        assert "CELL_DATA 4" in text
        assert "SCALARS mass_sum double 1" in text
        assert "1 2 3 4" in text

    def test_device_resident_array_written_via_host_view(self, tmp_path):
        """libB never knows the data was on a device (Listing 4)."""
        m = UniformCartesianMesh((2, 2))
        arr = HAMRDataArray.new("count", 4, allocator=Allocator.CUDA, device_id=1)
        arr.fill(7.0)
        m.add_cell_array(arr)
        p = tmp_path / "dev.vtk"
        write_vtk_image(m, p)
        assert "7 7 7 7" in p.read_text()

    def test_3d_mesh(self, tmp_path):
        m = UniformCartesianMesh((2, 3, 4))
        m.add_host_cell_array("v", np.zeros(24))
        write_vtk_image(m, tmp_path / "g.vtk")
        assert "DIMENSIONS 3 4 5" in (tmp_path / "g.vtk").read_text()


class TestVtkParticles:
    def test_points_and_attributes(self, tmp_path):
        x = HostDataArray("x", np.array([0.0, 1.0]))
        y = HostDataArray("y", np.array([2.0, 3.0]))
        z = HostDataArray("z", np.array([4.0, 5.0]))
        m = HostDataArray("mass", np.array([10.0, 20.0]))
        p = tmp_path / "pts.vtk"
        write_vtk_particles([x, y, z], p, attributes=[m])
        text = p.read_text()
        assert "POINTS 2 double" in text
        assert "0 2 4" in text
        assert "POINT_DATA 2" in text
        assert "SCALARS mass double 1" in text

    def test_missing_axes_zero_filled(self, tmp_path):
        x = HostDataArray("x", np.array([1.0]))
        p = tmp_path / "pts.vtk"
        write_vtk_particles([x], p)
        assert "1 0 0" in p.read_text()

    def test_length_mismatch_rejected(self, tmp_path):
        x = HostDataArray("x", np.zeros(2))
        y = HostDataArray("y", np.zeros(3))
        with pytest.raises(ValueError):
            write_vtk_particles([x, y], tmp_path / "bad.vtk")

    def test_attribute_length_mismatch_rejected(self, tmp_path):
        x = HostDataArray("x", np.zeros(2))
        a = HostDataArray("a", np.zeros(3))
        with pytest.raises(ValueError):
            write_vtk_particles([x], tmp_path / "bad.vtk", attributes=[a])

    def test_name_sanitization(self, tmp_path):
        x = HostDataArray("x", np.zeros(1))
        a = HostDataArray("my attr", np.zeros(1))
        write_vtk_particles([x], tmp_path / "p.vtk", attributes=[a])
        assert "SCALARS my_attr" in (tmp_path / "p.vtk").read_text()


class TestCsvTable:
    def test_round_trip(self, tmp_path):
        t = TableData()
        t.add_host_column("x", np.array([1.5, 2.5]))
        t.add_host_column("y", np.array([-1.0, -2.0]))
        p = tmp_path / "t.csv"
        write_csv_table(t, p)
        lines = p.read_text().strip().splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1.5,-1"
        assert len(lines) == 3

    def test_device_column(self, tmp_path):
        t = TableData()
        col = HAMRDataArray.new("m", 2, allocator=Allocator.HIP, device_id=0)
        col.fill(4.0)
        t.add_column(col)
        p = tmp_path / "t.csv"
        write_csv_table(t, p)
        assert p.read_text().strip().splitlines()[1] == "4"

    def test_empty_table(self, tmp_path):
        p = tmp_path / "e.csv"
        write_csv_table(TableData(), p)
        assert p.read_text() == "\n"
