"""TransportConfig, XML parsing, and metrics tests."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.sensei.xml_config import parse_document, parse_xml
from repro.transport.channel import FaultSpec
from repro.transport.config import TransportConfig
from repro.transport.metrics import (
    TransportMetrics,
    new_transport_timeline,
    reset_transport_timelines,
    transport_timelines,
)
from repro.units import KiB


class TestTransportConfig:
    def test_defaults(self):
        cfg = TransportConfig()
        assert cfg.compression == "none"
        assert cfg.partitioner == "block"
        assert cfg.max_inflight == 8
        assert not cfg.faults.any

    def test_unknown_codec_rejected(self):
        with pytest.raises(ConfigError):
            TransportConfig(compression="snappy")

    def test_unknown_partitioner_rejected(self):
        with pytest.raises(ConfigError):
            TransportConfig(partitioner="hilbert")

    def test_bounds(self):
        with pytest.raises(ConfigError):
            TransportConfig(chunk_bytes=0)
        with pytest.raises(ConfigError):
            TransportConfig(max_inflight=0)
        with pytest.raises(ConfigError):
            TransportConfig(recv_timeout=0)

    def test_with_faults(self):
        cfg = TransportConfig().with_faults(drop=0.2, seed=7)
        assert cfg.faults == FaultSpec(drop=0.2, seed=7)
        assert cfg.compression == "none"


class TestFromXmlAttrs:
    def test_full_attribute_set(self):
        cfg = TransportConfig.from_xml_attrs(
            {
                "compression": "zlib",
                "chunk_kib": "16",
                "max_inflight": "4",
                "retries": "3",
                "ack_timeout": "0.1",
                "partitioner": "cyclic",
                "drop": "0.1",
                "duplicate": "0.05",
                "seed": "42",
                "recv_timeout": "30",
            }
        )
        assert cfg.compression == "zlib"
        assert cfg.chunk_bytes == 16 * KiB
        assert cfg.max_inflight == 4
        assert cfg.retry.max_retries == 3
        assert cfg.retry.ack_timeout == 0.1
        assert cfg.partitioner == "cyclic"
        assert cfg.faults == FaultSpec(drop=0.1, duplicate=0.05, seed=42)
        assert cfg.recv_timeout == 30.0

    def test_unknown_attr_rejected(self):
        with pytest.raises(ConfigError):
            TransportConfig.from_xml_attrs({"compresion": "zlib"})

    def test_bad_number_rejected(self):
        with pytest.raises(ConfigError):
            TransportConfig.from_xml_attrs({"max_inflight": "many"})


class TestXmlDocument:
    XML = """
    <sensei>
      <transport compression="zlib" partitioner="weighted" drop="0.2"/>
      <analysis type="histogram" mesh="bodies" array="mass" bins="64"/>
    </sensei>
    """

    def test_parse_document_returns_transport(self):
        doc = parse_document(self.XML)
        assert doc.transport is not None
        assert doc.transport.compression == "zlib"
        assert doc.transport.partitioner == "weighted"
        assert doc.transport.faults.drop == 0.2
        assert len(doc.analyses) == 1
        assert doc.analyses[0].type == "histogram"

    def test_parse_xml_stays_compatible(self):
        cfgs = parse_xml(self.XML)
        assert [c.type for c in cfgs] == ["histogram"]

    def test_no_transport_element_is_none(self):
        doc = parse_document("<sensei><analysis type='x'/></sensei>")
        assert doc.transport is None

    def test_two_transport_elements_rejected(self):
        with pytest.raises(ConfigError):
            parse_document(
                "<sensei><transport/><transport/></sensei>"
            )

    def test_other_elements_still_rejected(self):
        with pytest.raises(ConfigError):
            parse_document("<sensei><backend type='x'/></sensei>")

    def test_configurable_analysis_exposes_transport(self):
        from repro.sensei.configurable import ConfigurableAnalysis

        ca = ConfigurableAnalysis(xml=self.XML)
        assert ca.transport is not None
        assert ca.transport.compression == "zlib"
        assert len(ca.children) == 1

    def test_configurable_analysis_without_transport(self):
        from repro.sensei.configurable import ConfigurableAnalysis

        ca = ConfigurableAnalysis(
            xml="<sensei><analysis type='histogram' mesh='m' array='a'/></sensei>"
        )
        assert ca.transport is None


class TestMetrics:
    def test_compression_ratio(self):
        m = TransportMetrics(raw_bytes=1000, wire_bytes=250)
        assert m.compression_ratio == 4.0
        assert TransportMetrics().compression_ratio == 1.0

    def test_as_dict_roundtrip(self):
        m = TransportMetrics(role="sender", peer="rank0->rank1", retries=2)
        d = m.as_dict()
        assert d["role"] == "sender" and d["retries"] == 2
        assert "compression_ratio" in d

    def test_chrome_counter_events(self):
        m = TransportMetrics(
            role="sender", peer="rank0->rank1",
            raw_bytes=100, wire_bytes=50, bytes_out=60, retries=1,
        )
        (ev,) = m.chrome_counter_events(tid=3, ts=1.5)
        assert ev["ph"] == "C" and ev["tid"] == 3 and ev["ts"] == 1.5
        assert ev["args"]["retries"] == 1
        assert ev["args"]["compression_ratio"] == 2.0

    def test_timeline_registry(self):
        reset_transport_timelines()
        tl = new_transport_timeline("transport.test")
        assert tl in transport_timelines()
        reset_transport_timelines()
        assert transport_timelines() == []

    def test_counter_events_flow_into_chrome_trace(self):
        from repro.hw.trace import chrome_trace

        reset_transport_timelines()
        tl = new_transport_timeline("transport.t")
        tl.record(0.0, 1.0, name="send s0c0")
        m = TransportMetrics(role="sender", peer="a->b", retries=3)
        events = chrome_trace(
            transport_timelines(), extra_events=m.chrome_counter_events()
        )
        counters = [e for e in events if e.get("ph") == "C"]
        assert counters and counters[0]["args"]["retries"] == 3
        reset_transport_timelines()
