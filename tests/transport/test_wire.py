"""Wire-format tests: codecs, chunking, checksums, reassembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TransportError
from repro.hamr.runtime import current_clock
from repro.transport.wire import (
    DEFAULT_CHUNK_BYTES,
    SERIALIZE_BANDWIDTH,
    WIRE_VERSION,
    Chunk,
    Codec,
    StepAssembler,
    available_codecs,
    decode_step,
    encode_step,
    get_codec,
    register_codec,
)
from repro.svtk.table import TableData


def make_table(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    t = TableData("bodies")
    t.add_host_column("x", rng.standard_normal(n))
    t.add_host_column("mass", rng.uniform(0.01, 0.03, n))
    return t


class TestCodecs:
    def test_registry(self):
        assert "none" in available_codecs()
        assert "zlib" in available_codecs()

    def test_unknown_codec_is_structured_error(self):
        with pytest.raises(TransportError) as ei:
            get_codec("snappy")
        assert ei.value.details["codec"] == "snappy"

    def test_none_codec_roundtrip(self):
        c = get_codec("none")
        assert c.decompress(c.compress(b"abc")) == b"abc"

    def test_zlib_roundtrip_and_shrinks(self):
        c = get_codec("zlib")
        data = b"\x00" * 4096
        packed = c.compress(data)
        assert len(packed) < len(data)
        assert c.decompress(packed) == data

    def test_zlib_costs_more_cpu_than_memcpy(self):
        z = get_codec("zlib")
        assert z.compress_time(1 << 20) > (1 << 20) / SERIALIZE_BANDWIDTH
        assert z.decompress_time(1 << 20) < z.compress_time(1 << 20)

    def test_register_codec(self):
        class Rot13(Codec):
            name = "rot13-test"

        try:
            register_codec(Rot13)
            assert isinstance(get_codec("rot13-test"), Rot13)
        finally:
            from repro.transport import wire

            wire._CODECS.pop("rot13-test", None)


class TestEncodeDecode:
    def test_roundtrip_identity(self):
        t = make_table()
        chunks = encode_step(t, step=3, sim_time=1.5, codec="none")
        step, sim_time, cols = decode_step(chunks)
        assert step == 3 and sim_time == 1.5
        for name in t.column_names:
            np.testing.assert_array_equal(
                cols[name], t.column(name).as_numpy_host()
            )

    @pytest.mark.parametrize("codec", ["none", "zlib"])
    def test_roundtrip_all_codecs_byte_identical(self, codec):
        t = make_table(seed=7)
        chunks = encode_step(t, 0, 0.0, codec=codec, chunk_bytes=1024)
        _, _, cols = decode_step(chunks)
        for name in t.column_names:
            expect = t.column(name).as_numpy_host()
            assert cols[name].tobytes() == np.ascontiguousarray(expect).tobytes()

    def test_chunking_respects_chunk_bytes(self):
        t = make_table(n=4096)
        chunks = encode_step(t, 0, 0.0, chunk_bytes=1024)
        assert len(chunks) > 1
        assert all(len(c.payload) <= 1024 for c in chunks)
        assert {c.index for c in chunks} == set(range(chunks[0].total))
        assert all(c.version == WIRE_VERSION for c in chunks)

    def test_encode_charges_serialization_to_clock(self):
        t = make_table(n=2048)
        raw = sum(
            t.column(n).as_numpy_host().nbytes for n in t.column_names
        )
        clock = current_clock()
        t0 = clock.now
        encode_step(t, 0, 0.0, codec="none")
        assert clock.now - t0 == pytest.approx(raw / SERIALIZE_BANDWIDTH)

    def test_compression_charges_extra_cpu(self):
        t = make_table(n=2048)
        clock = current_clock()
        t0 = clock.now
        encode_step(t, 0, 0.0, codec="none")
        plain = clock.now - t0
        t1 = clock.now
        encode_step(t, 0, 0.0, codec="zlib")
        assert clock.now - t1 > plain

    def test_wire_nbytes_includes_header(self):
        t = make_table(n=16)
        (c,) = encode_step(t, 0, 0.0)
        assert c.wire_nbytes == len(c.payload) + 64

    def test_decode_incomplete_set_rejected(self):
        t = make_table(n=4096)
        chunks = encode_step(t, 0, 0.0, chunk_bytes=1024)
        with pytest.raises(TransportError):
            decode_step(chunks[:-1])

    def test_decode_version_mismatch_rejected(self):
        t = make_table(n=16)
        (c,) = encode_step(t, 0, 0.0)
        imposter = Chunk(
            99, c.step, c.sim_time, c.index, c.total, c.checksum,
            c.codec, c.raw_nbytes, c.meta, c.payload,
        )
        with pytest.raises(TransportError):
            decode_step([imposter])

    def test_decode_empty_rejected(self):
        with pytest.raises(TransportError):
            decode_step([])


class TestChecksum:
    def test_verify_and_corrupt(self):
        t = make_table(n=64)
        (c,) = encode_step(t, 0, 0.0)
        assert c.verify()
        bad = c.corrupted()
        assert not bad.verify()
        assert bad.seq == c.seq


class TestStepAssembler:
    def test_out_of_order_and_duplicates(self):
        t = make_table(n=4096)
        chunks = encode_step(t, 5, 0.5, chunk_bytes=1024)
        asm = StepAssembler()
        statuses = [asm.offer(c) for c in reversed(chunks)]
        assert statuses[-1] == "complete"
        assert all(s == "new" for s in statuses[:-1])
        # Duplicate before take: recognized via pending set.
        assert asm.offer(chunks[0]) == "duplicate"
        step, _, cols = asm.take(5)
        assert step == 5
        np.testing.assert_array_equal(
            cols["x"], t.column("x").as_numpy_host()
        )
        # Late duplicate after delivery: permanently recognized.
        assert asm.offer(chunks[1]) == "duplicate"
        assert asm.is_done(5)
