"""Partitioner tests: block, cyclic, weighted M-to-N maps."""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.transport.partition import (
    available_partitioners,
    get_partitioner,
)


class TestRegistry:
    def test_available(self):
        names = available_partitioners()
        assert {"block", "cyclic", "weighted", "chain"} <= set(names)

    def test_unknown(self):
        with pytest.raises(TransportError):
            get_partitioner("hilbert")


class TestBlock:
    def test_matches_historical_mapping(self):
        assign = get_partitioner("block").assign(4, 2)
        assert assign == [0, 0, 1, 1]

    def test_uneven_is_contiguous_and_fair(self):
        assign = get_partitioner("block").assign(5, 2)
        assert assign == sorted(assign)  # contiguous ranges
        counts = [assign.count(e) for e in range(2)]
        assert sorted(counts) == [2, 3]


class TestCyclic:
    def test_round_robin(self):
        assert get_partitioner("cyclic").assign(5, 2) == [0, 1, 0, 1, 0]

    def test_fairness(self):
        assign = get_partitioner("cyclic").assign(7, 3)
        counts = [assign.count(e) for e in range(3)]
        assert max(counts) - min(counts) <= 1


class TestWeighted:
    def test_uniform_weights_spread_evenly(self):
        assign = get_partitioner("weighted").assign(6, 3, (1,) * 6)
        counts = [assign.count(e) for e in range(3)]
        assert counts == [2, 2, 2]

    def test_heavy_producer_isolated(self):
        # One producer outweighs the rest combined: it gets an endpoint
        # nearly to itself.
        assign = get_partitioner("weighted").assign(4, 2, (10, 1, 1, 1))
        heavy_ep = assign[0]
        others = [e for p, e in enumerate(assign) if p != 0]
        assert all(e != heavy_ep for e in others)

    def test_default_weights_cover_all_endpoints(self):
        assign = get_partitioner("weighted").assign(6, 3, None)
        assert set(assign) == {0, 1, 2}

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(TransportError):
            get_partitioner("weighted").assign(4, 2, (1.0, 2.0))


class TestChain:
    def test_uniform_weights_match_block_layout(self):
        assert get_partitioner("chain").assign(8, 4) == \
            get_partitioner("block").assign(8, 4)

    def test_spans_are_contiguous(self):
        assign = get_partitioner("chain").assign(10, 3, (1, 5, 1, 1, 1, 5, 1, 1, 1, 1))
        assert assign == sorted(assign)

    def test_heavy_block_isolated(self):
        # One block outweighs the rest combined: the cut leaves it
        # alone on its endpoint instead of pairing it with neighbors.
        assign = get_partitioner("chain").assign(5, 2, (20, 1, 1, 1, 1))
        assert assign.count(assign[0]) == 1

    def test_balances_weighted_sums(self):
        weights = (4, 4, 1, 1, 1, 1, 1, 1, 1, 1)
        assign = get_partitioner("chain").assign(10, 4, weights)
        loads = [0.0] * 4
        for b, e in enumerate(assign):
            loads[e] += weights[b]
        assert max(loads) <= 2 * (sum(weights) / 4)

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(TransportError):
            get_partitioner("chain").assign(4, 2, (1.0, 2.0))


@pytest.mark.parametrize("name", ["block", "cyclic", "weighted", "chain"])
@pytest.mark.parametrize("m,n", [(1, 1), (4, 2), (5, 2), (7, 3), (8, 1)])
class TestInvariants:
    def test_every_producer_assigned_valid_endpoint(self, name, m, n):
        assign = get_partitioner(name).assign(m, n)
        assert len(assign) == m
        assert all(0 <= e < n for e in assign)

    def test_every_endpoint_used(self, name, m, n):
        assign = get_partitioner(name).assign(m, n)
        assert set(assign) == set(range(n))
