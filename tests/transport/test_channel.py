"""Reliable delivery tests over the simulated MPI substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TransportError
from repro.hamr.runtime import current_clock
from repro.mpi.comm import CommCostModel, run_spmd
from repro.svtk.table import TableData
from repro.transport.channel import (
    DATA_TAG,
    FaultSpec,
    FaultyChannel,
    ReliableReceiver,
    ReliableSender,
)
from repro.transport.config import TransportConfig
from repro.transport.retry import RetryPolicy
from repro.transport.wire import SERIALIZE_BANDWIDTH, encode_step


def make_table(n=512, seed=0):
    rng = np.random.default_rng(seed)
    t = TableData("bodies")
    t.add_host_column("x", rng.standard_normal(n))
    t.add_host_column("mass", rng.uniform(0.01, 0.03, n))
    return t


def sender_receiver_run(config, steps=3, n=512):
    """rank 0 sends ``steps`` tables to rank 1; returns both ends' results."""

    def fn(comm):
        if comm.rank == 0:
            sender = ReliableSender(comm, 1, config)
            for s in range(steps):
                sender.send_step(s, float(s), make_table(n, seed=s))
            sender.close()
            return ("sender", sender.metrics, current_clock().now)
        recv = ReliableReceiver(comm, 0, config)
        got = []
        while True:
            msg = recv.receive_step()
            if msg is None:
                break
            got.append(msg)
        return ("receiver", recv.metrics, got)

    out = run_spmd(2, fn)
    sender = next(o for o in out if o[0] == "sender")
    receiver = next(o for o in out if o[0] == "receiver")
    return sender, receiver


class TestCleanDelivery:
    def test_roundtrip_byte_identical(self):
        _, (_, _, got) = sender_receiver_run(TransportConfig(), steps=3)
        assert [s for s, _, _ in got] == [0, 1, 2]
        for s, _, cols in got:
            expect = make_table(512, seed=s)
            for name in expect.column_names:
                assert cols[name].tobytes() == np.ascontiguousarray(
                    expect.column(name).as_numpy_host()
                ).tobytes()

    def test_clean_run_has_no_retries_or_backoff(self):
        (_, m, _), (_, rm, _) = sender_receiver_run(TransportConfig())
        assert m.retries == 0
        assert m.backoff_time == 0.0
        assert m.drops_recovered == 0
        assert rm.duplicates_dropped == 0
        assert rm.checksum_failures == 0

    def test_clean_run_cost_is_serialization_plus_wire(self):
        """Acceptance: no simulated overhead beyond encode + transfer.

        ACKs are control plane (charge=False), so the producer's clock
        must show exactly the serialization charge plus one alpha-beta
        message per chunk.
        """
        config = TransportConfig(chunk_bytes=4096)
        table = make_table(512, seed=0)
        chunks = encode_step(table, 0, 0.0, "none", 4096)
        raw = sum(
            table.column(n).as_numpy_host().nbytes
            for n in table.column_names
        )
        cost = CommCostModel()
        # The communicator sizes the ("chunk", chunk) frame as the
        # chunk's wire footprint plus the 5-byte frame tag.
        expected = raw / SERIALIZE_BANDWIDTH + sum(
            cost.message(c.wire_nbytes + len("chunk")) for c in chunks
        )

        def fn(comm):
            if comm.rank == 0:
                sender = ReliableSender(comm, 1, config)
                t0 = current_clock().now
                sender.send_step(0, 0.0, make_table(512, seed=0))
                elapsed = current_clock().now - t0
                sender.close()
                return elapsed
            recv = ReliableReceiver(comm, 0, config)
            while recv.receive_step() is not None:
                pass
            return None

        elapsed = run_spmd(2, fn)[0]
        assert elapsed == pytest.approx(expected)

    def test_compression_reduces_wire_bytes(self):
        def constant_table(n=4096):
            t = TableData("bodies")
            t.add_host_column("x", np.zeros(n))
            return t

        def fn(comm):
            cfg = TransportConfig(compression="zlib")
            if comm.rank == 0:
                sender = ReliableSender(comm, 1, cfg)
                sender.send_step(0, 0.0, constant_table())
                sender.close()
                return sender.metrics
            recv = ReliableReceiver(comm, 0, cfg)
            got = []
            while True:
                msg = recv.receive_step()
                if msg is None:
                    break
                got.append(msg)
            np.testing.assert_array_equal(got[0][2]["x"], np.zeros(4096))
            return None

        metrics = run_spmd(2, fn)[0]
        assert metrics.wire_bytes < metrics.raw_bytes
        assert metrics.compression_ratio > 1.0

    def test_double_close_is_idempotent_and_send_after_close_rejected(self):
        def fn(comm):
            if comm.rank == 0:
                sender = ReliableSender(comm, 1)
                sender.send_step(0, 0.0, make_table(64))
                sender.close()
                sender.close()  # no-op
                try:
                    sender.send_step(1, 1.0, make_table(64))
                except TransportError:
                    return "rejected"
                return "accepted"
            recv = ReliableReceiver(comm, 0)
            while recv.receive_step() is not None:
                pass
            return None

        assert run_spmd(2, fn)[0] == "rejected"


class TestFaultyDelivery:
    @pytest.mark.parametrize(
        "faults",
        [
            FaultSpec(drop=0.2, seed=3),
            FaultSpec(duplicate=0.3, seed=5),
            FaultSpec(reorder=0.3, seed=7),
            FaultSpec(corrupt=0.2, seed=11),
            FaultSpec(drop=0.15, duplicate=0.1, reorder=0.1, corrupt=0.1, seed=13),
        ],
        ids=["drop", "duplicate", "reorder", "corrupt", "mixed"],
    )
    def test_delivery_survives_faults(self, faults):
        config = TransportConfig(
            chunk_bytes=2048,
            faults=faults,
            retry=RetryPolicy(max_retries=30, ack_timeout=0.03),
        )
        (_, m, _), (_, rm, got) = sender_receiver_run(config, steps=3, n=2048)
        assert [s for s, _, _ in got] == [0, 1, 2]
        for s, _, cols in got:
            expect = make_table(2048, seed=s)
            for name in expect.column_names:
                assert cols[name].tobytes() == np.ascontiguousarray(
                    expect.column(name).as_numpy_host()
                ).tobytes()
        if faults.drop or faults.corrupt:
            assert m.retries > 0
            assert m.backoff_time > 0.0

    def test_retry_budget_exhaustion_is_structured(self):
        """A peer that never ACKs exhausts the budget with details."""

        def fn(comm):
            if comm.rank == 0:
                cfg = TransportConfig(
                    retry=RetryPolicy(max_retries=1, ack_timeout=0.01)
                )
                sender = ReliableSender(comm, 1, cfg)
                try:
                    sender.send_step(0, 0.0, make_table(64))
                except TransportError as exc:
                    return exc.details
                return None
            # Endpoint never serves: drain the barrier only.
            return "mute"

        details = run_spmd(2, fn)[0]
        assert details["dest"] == 1
        assert details["retries"] == 1


class TestFaultyChannelUnit:
    class _StubComm:
        rank = 0
        cost = None

        def __init__(self):
            self.sent = []

        def send(self, frame, dest, tag, charge=True):
            self.sent.append((frame, dest, tag))

    def _chunks(self):
        return encode_step(make_table(2048), 0, 0.0, "none", 1024)

    def test_deterministic_across_instances(self):
        frames = [("chunk", c) for c in self._chunks()] * 10
        counts = []
        for _ in range(2):
            comm = self._StubComm()
            ch = FaultyChannel(comm, FaultSpec(drop=0.3, duplicate=0.2, seed=9))
            for f in frames:
                ch.send(f, 1, DATA_TAG)
            ch.flush(1, DATA_TAG)
            counts.append((dict(ch.injected), len(comm.sent)))
        assert counts[0] == counts[1]
        assert counts[0][0]["drop"] > 0

    def test_reorder_holds_then_releases(self):
        comm = self._StubComm()
        ch = FaultyChannel(comm, FaultSpec(reorder=1.0, seed=1))
        a, b = [("chunk", c) for c in self._chunks()[:2]]
        ch.send(a, 1, DATA_TAG)  # stashed
        assert comm.sent == []
        ch.send(b, 1, DATA_TAG)  # b goes out, then a releases
        assert [f for f, _, _ in comm.sent][0] is b
        ch.flush(1, DATA_TAG)
        assert len(comm.sent) == 2

    def test_corrupt_flips_payload_only_for_chunks(self):
        comm = self._StubComm()
        ch = FaultyChannel(comm, FaultSpec(corrupt=1.0, seed=1))
        (frame,) = [("chunk", self._chunks()[0])]
        ch.send(frame, 1, DATA_TAG)
        assert not comm.sent[0][0][1].verify()
        ch.send(("fin", 1), 1, DATA_TAG)  # control frames pass clean
        assert comm.sent[1][0] == ("fin", 1)

    def test_fault_probabilities_validated(self):
        with pytest.raises(TransportError):
            FaultSpec(drop=1.5)


class TestDeliveryVerdict:
    """The channel's send-time delivery verdict drives retransmission.

    Faults are injected sender-side from a seeded RNG, so the channel
    knows at :meth:`Channel.send` whether the frame will reach the
    peer's mailbox intact.  The reliable sender schedules retransmits
    from that verdict instead of a wall-clock deadline, which makes
    retry counts a pure function of the seeds.
    """

    _StubComm = TestFaultyChannelUnit._StubComm

    def _chunk_frame(self):
        return ("chunk", encode_step(make_table(64), 0, 0.0, "none", 1024)[0])

    def test_clean_channel_always_delivers(self):
        from repro.transport.channel import Channel

        comm = self._StubComm()
        assert Channel(comm).send(self._chunk_frame(), 1, DATA_TAG) is True

    def test_drop_verdict_is_lost(self):
        comm = self._StubComm()
        ch = FaultyChannel(comm, FaultSpec(drop=1.0, seed=1))
        assert ch.send(self._chunk_frame(), 1, DATA_TAG) is False
        assert comm.sent == []  # the frame never reached the mailbox

    def test_corrupt_verdict_is_lost_but_frame_travels(self):
        comm = self._StubComm()
        ch = FaultyChannel(comm, FaultSpec(corrupt=1.0, seed=1))
        assert ch.send(self._chunk_frame(), 1, DATA_TAG) is False
        # The corrupt frame still bills wire bytes at the receiver; it
        # is "lost" only in the sense that no ACK will ever come back.
        assert len(comm.sent) == 1
        assert not comm.sent[0][0][1].verify()

    def test_reorder_and_duplicate_verdicts_are_delivered(self):
        comm = self._StubComm()
        ch = FaultyChannel(comm, FaultSpec(reorder=1.0, seed=1))
        # Stashed for reordering, but it WILL arrive: still delivered.
        assert ch.send(self._chunk_frame(), 1, DATA_TAG) is True
        comm = self._StubComm()
        ch = FaultyChannel(comm, FaultSpec(duplicate=1.0, seed=1))
        assert ch.send(self._chunk_frame(), 1, DATA_TAG) is True
        assert len(comm.sent) == 2

    def test_retry_counts_are_a_pure_function_of_the_seeds(self):
        """Identical lossy transfers retry identically, rerun to rerun.

        Under the old wall-clock ``ack_timeout`` scheduling, retry
        counts depended on host scheduling jitter; verdict-driven
        scheduling must reproduce them exactly from the fault seed.
        """
        config = TransportConfig(
            chunk_bytes=1024,
            faults=FaultSpec(drop=0.25, corrupt=0.1, seed=17),
            retry=RetryPolicy(max_retries=40, ack_timeout=0.02),
        )
        runs = []
        for _ in range(2):
            (_, m, t_end), (_, rm, got) = sender_receiver_run(
                config, steps=2, n=1024
            )
            assert [s for s, _, _ in got] == [0, 1]
            runs.append(
                (
                    m.retries, m.drops_recovered, m.chunks_sent,
                    m.backoff_time, rm.checksum_failures,
                )
            )
        assert runs[0] == runs[1]
        assert runs[0][0] > 0  # the link was genuinely lossy
