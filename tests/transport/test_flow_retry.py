"""Credit-window flow control and retry-policy tests."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TransportError
from repro.transport.flow import CreditWindow
from repro.transport.retry import RetryPolicy
from repro.units import us


class TestCreditWindow:
    def test_bounded_acquire(self):
        w = CreditWindow(2)
        assert w.try_acquire() and w.try_acquire()
        assert not w.try_acquire()  # back-pressure
        assert w.in_flight == 2 and w.available == 0

    def test_release_restores_credit(self):
        w = CreditWindow(1)
        assert w.try_acquire()
        assert not w.try_acquire()
        w.release()
        assert w.try_acquire()

    def test_high_water_mark(self):
        w = CreditWindow(4)
        for _ in range(3):
            w.try_acquire()
        w.release(3)
        assert w.max_depth == 3

    def test_invalid_credits(self):
        with pytest.raises(TransportError):
            CreditWindow(0)

    def test_resize_grow_frees_capacity_immediately(self):
        w = CreditWindow(1)
        assert w.try_acquire()
        assert not w.try_acquire()
        w.resize(3)
        assert w.try_acquire() and w.try_acquire()
        assert not w.try_acquire()
        assert w.resizes == 1

    def test_resize_shrink_below_inflight_defers(self):
        """A shrink never strands in-flight credits: outstanding chunks
        drain through release(), and acquisition stays refused until
        the count falls under the new limit."""
        w = CreditWindow(4)
        for _ in range(4):
            assert w.try_acquire()
        w.resize(2)
        assert w.in_flight == 4  # nothing stranded or clawed back
        assert w.available == 0
        assert not w.try_acquire()
        w.release()  # 3 in flight, still over the new limit
        assert not w.try_acquire()
        w.release(2)  # 1 in flight: one credit free again
        assert w.try_acquire()
        assert w.in_flight == 2
        assert not w.try_acquire()
        w.release(2)  # draining all the way round-trips cleanly

    def test_resize_max_depth_monotonic(self):
        w = CreditWindow(4)
        for _ in range(4):
            w.try_acquire()
        w.resize(2)
        assert w.max_depth == 4  # shrink never erases the high-water
        w.release(4)
        w.try_acquire()
        assert w.max_depth == 4

    def test_resize_rejects_less_than_one_credit(self):
        w = CreditWindow(2)
        for bad in (0, -1):
            with pytest.raises(TransportError):
                w.resize(bad)
        assert w.credits == 2 and w.resizes == 0


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        p = RetryPolicy(backoff_base=us(50.0), backoff_factor=2.0, jitter=0.0)
        rng = random.Random(0)
        d1 = p.backoff(1, rng)
        d2 = p.backoff(2, rng)
        d3 = p.backoff(3, rng)
        assert d2 == pytest.approx(2 * d1)
        assert d3 == pytest.approx(4 * d1)

    def test_backoff_capped(self):
        p = RetryPolicy(
            backoff_base=us(50.0), backoff_factor=10.0,
            backoff_max=us(100.0), jitter=0.0,
        )
        assert p.backoff(8, random.Random(0)) == pytest.approx(us(100.0))

    def test_jitter_stays_in_band(self):
        p = RetryPolicy(backoff_base=us(100.0), jitter=0.25)
        rng = random.Random(42)
        for attempt in range(1, 5):
            base = min(
                us(100.0) * p.backoff_factor ** (attempt - 1), p.backoff_max
            )
            for _ in range(50):
                d = p.backoff(attempt, rng)
                assert 0.75 * base <= d <= 1.25 * base

    def test_validation(self):
        with pytest.raises(TransportError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(TransportError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(TransportError):
            RetryPolicy(ack_timeout=0.0)


class TestBackoffCapProperty:
    """The jittered delay must never exceed backoff_max.

    Regression test: jitter used to be applied after the
    ``min(..., backoff_max)`` clamp, so upward jitter let delays
    escape the cap exactly on the attempts where the cap matters
    (late, already-slow retries).
    """

    @given(
        attempt=st.integers(1, 32),
        seed=st.integers(0, 9999),
        jitter=st.floats(0.0, 0.99),
    )
    def test_jittered_delay_never_exceeds_cap(self, attempt, seed, jitter):
        p = RetryPolicy(
            backoff_base=us(50.0), backoff_factor=2.0,
            backoff_max=us(500.0), jitter=jitter,
        )
        d = p.backoff(attempt, random.Random(seed))
        assert 0.0 <= d <= p.backoff_max

    @given(attempt=st.integers(1, 32), seed=st.integers(0, 9999))
    def test_cap_binds_at_saturation(self, attempt, seed):
        """Once the curve saturates, downward jitter is still allowed."""
        p = RetryPolicy(
            backoff_base=us(400.0), backoff_factor=4.0,
            backoff_max=us(500.0), jitter=0.25,
        )
        d = p.backoff(attempt, random.Random(seed))
        assert d <= p.backoff_max
        if attempt >= 2:
            # Deep in saturation the floor is (1-jitter)*max when the
            # unclamped curve is far above the cap.
            assert d >= (1.0 - p.jitter) * p.backoff_max

    def test_unjittered_matches_clamped_curve(self):
        p = RetryPolicy(
            backoff_base=us(50.0), backoff_factor=10.0,
            backoff_max=us(100.0), jitter=0.0,
        )
        for attempt in range(1, 6):
            expected = min(
                p.backoff_base * p.backoff_factor ** (attempt - 1),
                p.backoff_max,
            )
            assert p.backoff(attempt) == pytest.approx(expected)
