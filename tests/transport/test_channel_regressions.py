"""Regression tests for reliable-channel correctness fixes.

Three historical bugs, each reproduced with a deterministic stub comm
(wall-clock schedules under our control, no SPMD timing races):

1. ``ReliableReceiver.receive_step`` computed its ``recv_timeout``
   deadline once per call, so a long multi-chunk step on a slow/faulty
   link timed out even while verified chunks were steadily arriving.
   Progress must reset the deadline.
2. ``ReliableSender.close()`` fin retransmissions bypassed the retry
   accounting of the data path: no ``metrics.retries``, no simulated
   backoff charge, no timeline event — drain-phase fault recovery was
   invisible.
3. The receiver dropped corrupt chunks before counting ``bytes_in``,
   so checksum-failed traffic vanished from wire accounting (the byte
   assertion lives in ``test_faults.py``; the unit-level check here).

Plus coverage for the new control-plane hooks the flow governor
actuates: ``set_window`` / ``set_chunk_bytes`` and the ACK round-trip
/ in-flight-peak sensors.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import TransportError
from repro.hamr.runtime import current_clock
from repro.hw.clock import EventCategory
from repro.transport.channel import ReliableReceiver, ReliableSender
from repro.transport.config import TransportConfig
from repro.transport.retry import RetryPolicy
from repro.transport.wire import encode_step

from .test_channel import make_table, sender_receiver_run


class _ScriptedComm:
    """A comm whose ``recv`` plays back a (delay, result) script.

    Each script entry is ``(sleep_seconds, frame-or-None)``; None
    raises TimeoutError after the sleep, a frame is delivered.  Sends
    are recorded.  The script wraps around, so trailing timeouts can
    repeat forever.
    """

    rank = 0
    cost = None

    def __init__(self, script):
        self.script = list(script)
        self.sent = []
        self._i = 0

    def send(self, frame, dest, tag, charge=True):
        self.sent.append((frame, dest, tag))

    def recv(self, source, tag, timeout=None, charge=True):
        delay, frame = self.script[min(self._i, len(self.script) - 1)]
        self._i += 1
        if delay:
            time.sleep(delay)
        if frame is None:
            raise TimeoutError
        return frame


class TestReceiverDeadlineReset:
    """Bug 1: progress must extend the receiver's patience window."""

    def _scripted_step(self, pause: float):
        """A few chunks, each preceded by a timeout poll and a pause."""
        chunks = encode_step(make_table(256), 0, 0.0, "none", 1024)
        assert len(chunks) >= 4
        script = []
        for c in chunks:
            script.append((pause, None))            # slow link: a poll times out
            script.append((pause, ("chunk", c)))    # ...then a chunk lands
        return chunks, script

    def test_steady_arrivals_slower_than_recv_timeout_deliver(self):
        """Inter-chunk gaps stay under recv_timeout but the whole step
        takes several times longer — the once-per-call deadline raised
        here; the per-chunk reset must not."""
        chunks, script = self._scripted_step(pause=0.06)
        comm = _ScriptedComm(script)
        recv = ReliableReceiver(
            comm, 0, TransportConfig(recv_timeout=0.25)
        )
        step, _t, cols = recv.receive_step()  # total wall time ~0.7s
        assert step == 0
        assert recv.metrics.chunks_received == len(chunks)

    def test_genuine_silence_still_times_out(self):
        """The fix must not remove the watchdog: a link that goes quiet
        after partial progress still raises."""
        chunks, script = self._scripted_step(pause=0.01)
        # Deliver only the first chunk, then silence forever.
        script = script[:2] + [(0.02, None)]
        comm = _ScriptedComm(script)
        recv = ReliableReceiver(
            comm, 0, TransportConfig(recv_timeout=0.15)
        )
        with pytest.raises(TransportError, match="no traffic"):
            recv.receive_step()
        assert recv.metrics.chunks_received == 1


class TestCloseRetryAccounting:
    """Bug 2: drain-phase retransmits use data-path retry accounting."""

    def _drain(self, fin_acks_after: int):
        policy = RetryPolicy(ack_timeout=0.02, jitter=0.0)
        config = TransportConfig(retry=policy)
        # Time out every poll until the Nth fin went out, then ack.
        comm = _ScriptedComm([(0.0, None)])
        sender = ReliableSender(comm, 1, config)

        real_recv = comm.recv

        def recv(source, tag, timeout=None, charge=True):
            fins = sum(1 for f, _, _ in comm.sent if f[0] == "fin")
            if fins >= fin_acks_after:
                return ("fin_ack",)
            return real_recv(source, tag, timeout=timeout, charge=charge)

        comm.recv = recv
        t0 = current_clock().now
        sender.close()
        return sender, current_clock().now - t0

    def test_fin_retransmissions_are_accounted(self):
        sender, elapsed = self._drain(fin_acks_after=3)
        fins = [f for f, _, _ in sender.comm.sent if f[0] == "fin"]
        assert len(fins) == 3
        # Two retransmissions: counted, charged, and on the timeline —
        # exactly like the data path's _retransmit_expired.
        assert sender.metrics.retries == 2
        assert sender.metrics.backoff_time > 0.0
        assert elapsed == pytest.approx(sender.metrics.backoff_time)
        backoffs = [
            e for e in sender.timeline.events
            if e.name == "backoff fin" and e.category is EventCategory.SYNC
        ]
        assert len(backoffs) == 2

    def test_clean_drain_charges_nothing(self):
        sender, elapsed = self._drain(fin_acks_after=1)
        assert sender.metrics.retries == 0
        assert sender.metrics.backoff_time == 0.0
        assert elapsed == 0.0


class TestReceiverByteAccounting:
    """Bug 3: corrupt arrivals count toward bytes_in, not wire_bytes."""

    def test_corrupt_chunk_counts_bytes_in_only(self):
        chunks = encode_step(make_table(256), 0, 0.0, "none", 4096)
        bad = chunks[0].corrupted()
        comm = _ScriptedComm(
            [(0.0, ("chunk", bad)), (0.0, ("chunk", chunks[0]))]
        )
        recv = ReliableReceiver(comm, 0, TransportConfig())
        step, _t, _cols = recv.receive_step()
        assert step == 0
        assert recv.metrics.checksum_failures == 1
        # The corrupt arrival hit the wire: bytes_in counts both
        # deliveries, wire_bytes only the unique verified chunk.
        assert recv.metrics.bytes_in == 2 * chunks[0].wire_nbytes
        assert recv.metrics.wire_bytes == chunks[0].wire_nbytes


class TestFlowControlHooks:
    """The governor's actuators and sensors on a live sender pair."""

    def test_set_chunk_bytes_rechunks_next_step(self):
        comm = _ScriptedComm([])
        sender = ReliableSender(comm, 1, TransportConfig(chunk_bytes=4096))
        assert sender.chunk_bytes == 4096
        sender.set_chunk_bytes(1024)
        assert sender.chunk_bytes == 1024
        with pytest.raises(TransportError):
            sender.set_chunk_bytes(0)

    def test_set_window_resizes_live_window(self):
        comm = _ScriptedComm([])
        sender = ReliableSender(comm, 1, TransportConfig(max_inflight=4))
        sender.set_window(9)
        assert sender.window.credits == 9
        with pytest.raises(TransportError):
            sender.set_window(0)

    def test_clean_run_measures_ack_rtt_and_peak(self):
        config = TransportConfig(chunk_bytes=1024, max_inflight=4)
        (_, m, _), _ = sender_receiver_run(config, steps=2, n=2048)
        assert m.ack_samples == m.acks_received > 0
        assert m.ack_latency >= 0.0
        assert 1 <= m.inflight_peak <= 4
