"""Acceptance: fault-injected in transit runs deliver byte-identical data.

The headline guarantee of the transport plane — a channel dropping 20%
of frames and duplicating 5% must still deliver every producer's table
byte-identically, via retries and receiver-side dedup.
"""

from __future__ import annotations

import numpy as np

from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.intransit import InTransitLayout, run_in_transit
from repro.svtk.table import TableData
from repro.transport.config import TransportConfig
from repro.transport.retry import RetryPolicy

N_ROWS = 50
N_STEPS = 3


def producer_table(rank: int, step: int) -> TableData:
    t = TableData("bodies")
    t.add_host_column(
        "x", np.arange(N_ROWS, dtype=np.float64) + 1000.0 * rank + step
    )
    t.add_host_column("mass", np.full(N_ROWS, 0.5 + rank, dtype=np.float64))
    return t


class CaptureAnalysis(AnalysisAdaptor):
    """Keeps a copy of every assembled table it sees."""

    def __init__(self):
        super().__init__("capture")
        self.set_device_id(-1)
        self.seen: list[tuple[int, dict[str, np.ndarray]]] = []

    def acquire(self, data, deep):
        t = data.get_mesh("bodies")
        return (
            data.time_step,
            {n: t.column(n).as_numpy_host().copy() for n in t.column_names},
        )

    def process(self, payload, comm, device_id):
        self.seen.append(payload)


def producer_main(sim_comm, bridge):
    rank = bridge._world.rank
    for step in range(N_STEPS):
        da = TableDataAdaptor({"bodies": producer_table(rank, step)})
        da.set_step(step, step * 0.1)
        bridge.execute(da)
    return rank


def expected_columns(runner, step):
    return {
        name: np.concatenate(
            [
                producer_table(p, step).column(name).as_numpy_host()
                for p in runner.producers
            ]
        )
        for name in ("x", "mass")
    }


class TestFaultInjectionAcceptance:
    def test_lossy_duplicating_channel_delivers_byte_identical(self):
        layout = InTransitLayout(m=8, n=2)
        transport = TransportConfig(
            chunk_bytes=256,
            retry=RetryPolicy(max_retries=40, ack_timeout=0.02),
        ).with_faults(drop=0.20, duplicate=0.05, seed=1234)

        producers, endpoints = run_in_transit(
            layout, producer_main, lambda: [CaptureAnalysis()],
            transport=transport,
        )

        assert sorted(producers) == list(range(8))
        assert len(endpoints) == 2
        for runner in endpoints:
            assert runner.steps_processed == N_STEPS
            capture = runner.analyses[0]
            assert len(capture.seen) == N_STEPS
            for step, cols in capture.seen:
                for name, arr in expected_columns(runner, step).items():
                    assert cols[name].tobytes() == arr.tobytes()

        # Faults actually happened and were recovered, not avoided.
        receiver_metrics = [
            r.metrics
            for runner in endpoints
            for r in runner.receivers.values()
        ]
        assert sum(m.duplicates_dropped for m in receiver_metrics) > 0
        assert sum(m.chunks_received for m in receiver_metrics) > 0

    def test_compressed_transport_under_faults(self):
        layout = InTransitLayout(m=4, n=2)
        transport = TransportConfig(
            compression="zlib",
            chunk_bytes=256,
            retry=RetryPolicy(max_retries=40, ack_timeout=0.02),
        ).with_faults(drop=0.1, corrupt=0.1, seed=77)

        _, endpoints = run_in_transit(
            layout, producer_main, lambda: [CaptureAnalysis()],
            transport=transport,
        )
        checksum_failures = 0
        bytes_in = wire_bytes = 0
        for runner in endpoints:
            assert runner.steps_processed == N_STEPS
            for step, cols in runner.analyses[0].seen:
                for name, arr in expected_columns(runner, step).items():
                    assert cols[name].tobytes() == arr.tobytes()
            for r in runner.receivers.values():
                checksum_failures += r.metrics.checksum_failures
                bytes_in += r.metrics.bytes_in
                wire_bytes += r.metrics.wire_bytes
        # Corrupt frames were detected (and recovered via withheld ACKs).
        assert checksum_failures > 0
        # Wire accounting: bytes_in counts every arriving chunk —
        # corrupt and duplicate ones included — while wire_bytes stays
        # unique-verified-only, so corrupted traffic never silently
        # vanishes from the byte-rate signal.
        assert bytes_in > wire_bytes

    def test_cyclic_partitioner_end_to_end(self):
        layout = InTransitLayout(m=5, n=2, partitioner="cyclic")
        assert [layout.endpoint_of(p) for p in range(5)] == [5, 6, 5, 6, 5]

        _, endpoints = run_in_transit(
            layout, producer_main, lambda: [CaptureAnalysis()]
        )
        for runner in endpoints:
            assert runner.steps_processed == N_STEPS
            for step, cols in runner.analyses[0].seen:
                for name, arr in expected_columns(runner, step).items():
                    assert cols[name].tobytes() == arr.tobytes()
