"""Tests for the binning reduction operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.binning.reduce import ReductionOp
from repro.errors import BinningError


class TestParse:
    def test_canonical_names(self):
        for op in ReductionOp:
            assert ReductionOp.parse(op.value) is op

    def test_case_and_aliases(self):
        assert ReductionOp.parse("SUM") is ReductionOp.SUM
        assert ReductionOp.parse("avg") is ReductionOp.AVERAGE
        assert ReductionOp.parse("mean") is ReductionOp.AVERAGE

    def test_unknown(self):
        with pytest.raises(BinningError):
            ReductionOp.parse("median")


class TestAccumulators:
    def test_identities(self):
        assert ReductionOp.SUM.identity == 0.0
        assert ReductionOp.COUNT.identity == 0.0
        assert ReductionOp.MIN.identity == np.inf
        assert ReductionOp.MAX.identity == -np.inf

    def test_shapes(self):
        assert ReductionOp.SUM.accumulator_shape(10) == (10,)
        assert ReductionOp.AVERAGE.accumulator_shape(10) == (2, 10)

    def test_make_accumulator(self):
        acc = ReductionOp.MIN.make_accumulator(3)
        assert np.all(np.isinf(acc))
        acc = ReductionOp.AVERAGE.make_accumulator(3)
        assert acc.shape == (2, 3)
        assert np.all(acc == 0)

    def test_needs_values(self):
        assert not ReductionOp.COUNT.needs_values
        for op in (ReductionOp.SUM, ReductionOp.MIN, ReductionOp.MAX,
                   ReductionOp.AVERAGE):
            assert op.needs_values


class TestCombine:
    def test_sum_combines_additively(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0, 4.0])
        np.testing.assert_array_equal(ReductionOp.SUM.combine(a, b), [4.0, 6.0])

    def test_min_max(self):
        a, b = np.array([1.0, 5.0]), np.array([3.0, 4.0])
        np.testing.assert_array_equal(ReductionOp.MIN.combine(a, b), [1.0, 4.0])
        np.testing.assert_array_equal(ReductionOp.MAX.combine(a, b), [3.0, 5.0])

    def test_average_componentwise(self):
        a = np.array([[1.0, 2.0], [1.0, 1.0]])  # sums, counts
        b = np.array([[3.0, 0.0], [2.0, 0.0]])
        out = ReductionOp.AVERAGE.combine(a, b)
        np.testing.assert_array_equal(out, [[4.0, 2.0], [3.0, 1.0]])

    def test_mpi_ops(self):
        assert ReductionOp.SUM.mpi_op == "sum"
        assert ReductionOp.COUNT.mpi_op == "sum"
        assert ReductionOp.AVERAGE.mpi_op == "sum"
        assert ReductionOp.MIN.mpi_op == "min"
        assert ReductionOp.MAX.mpi_op == "max"


class TestFinalize:
    def test_average_divides(self):
        acc = np.array([[6.0, 0.0], [3.0, 0.0]])
        out = ReductionOp.AVERAGE.finalize(acc)
        assert out[0] == 2.0
        assert np.isnan(out[1])  # empty bin

    def test_min_empty_bins_are_nan(self):
        acc = np.array([1.0, np.inf])
        out = ReductionOp.MIN.finalize(acc)
        assert out[0] == 1.0
        assert np.isnan(out[1])

    def test_max_empty_bins_are_nan(self):
        acc = np.array([-np.inf, 2.0])
        out = ReductionOp.MAX.finalize(acc)
        assert np.isnan(out[0])
        assert out[1] == 2.0

    def test_sum_count_pass_through(self):
        acc = np.array([0.0, 3.0])
        np.testing.assert_array_equal(ReductionOp.SUM.finalize(acc), acc)
        np.testing.assert_array_equal(ReductionOp.COUNT.finalize(acc), acc)

    def test_finalize_does_not_mutate(self):
        acc = np.array([np.inf])
        ReductionOp.MIN.finalize(acc)
        assert np.isinf(acc[0])


class TestResultNames:
    def test_count(self):
        assert ReductionOp.COUNT.result_name(None) == "count"

    def test_variable_suffix(self):
        assert ReductionOp.SUM.result_name("mass") == "mass_sum"
        assert ReductionOp.AVERAGE.result_name("vx") == "vx_average"

    def test_missing_variable(self):
        with pytest.raises(BinningError):
            ReductionOp.SUM.result_name(None)
