"""Tests for binning axes: bounds and index computation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.binning.axes import AxisSpec, bin_index, compute_bounds, flat_bin_index
from repro.errors import BinningError
from repro.mpi.comm import run_spmd


class TestAxisSpec:
    def test_manual_bounds(self):
        ax = AxisSpec("x", 10, low=0.0, high=1.0)
        assert ax.has_manual_bounds

    def test_auto_bounds(self):
        assert not AxisSpec("x", 10).has_manual_bounds
        assert not AxisSpec("x", 10, low=0.0).has_manual_bounds

    def test_invalid_bins(self):
        with pytest.raises(BinningError):
            AxisSpec("x", 0)

    def test_inverted_bounds(self):
        with pytest.raises(BinningError):
            AxisSpec("x", 4, low=1.0, high=0.0)


class TestComputeBounds:
    def test_manual_wins(self):
        ax = AxisSpec("x", 4, low=-2.0, high=2.0)
        assert compute_bounds(ax, np.array([100.0, 200.0])) == (-2.0, 2.0)

    def test_auto_from_data(self):
        ax = AxisSpec("x", 4)
        assert compute_bounds(ax, np.array([3.0, -1.0, 2.0])) == (-1.0, 3.0)

    def test_half_manual(self):
        ax = AxisSpec("x", 4, low=0.0)
        lo, hi = compute_bounds(ax, np.array([-5.0, 5.0]))
        assert (lo, hi) == (0.0, 5.0)

    def test_constant_data_widened(self):
        ax = AxisSpec("x", 4)
        lo, hi = compute_bounds(ax, np.full(10, 7.0))
        assert lo < 7.0 < hi

    def test_empty_data_without_comm_raises(self):
        with pytest.raises(BinningError):
            compute_bounds(AxisSpec("x", 4), np.array([]))

    def test_global_bounds_across_ranks(self):
        """On-the-fly bounds are global min/max over MPI (paper S4.2)."""
        def fn(comm):
            data = np.array([float(comm.rank)])
            return compute_bounds(AxisSpec("x", 4), data, comm)

        out = run_spmd(4, fn)
        assert all(b == (0.0, 3.0) for b in out)

    def test_empty_on_one_rank_ok_with_comm(self):
        def fn(comm):
            data = np.array([]) if comm.rank == 0 else np.array([1.0, 2.0])
            return compute_bounds(AxisSpec("x", 4), data, comm)

        out = run_spmd(2, fn)
        assert all(b == (1.0, 2.0) for b in out)


class TestBinIndex:
    def test_interior_values(self):
        idx = bin_index(np.array([0.1, 0.9, 2.5]), 0.0, 4.0, 4)
        np.testing.assert_array_equal(idx, [0, 0, 2])

    def test_out_of_range_clipped(self):
        idx = bin_index(np.array([-1.0, 5.0]), 0.0, 4.0, 4)
        np.testing.assert_array_equal(idx, [0, 3])

    def test_high_edge_in_last_bin(self):
        idx = bin_index(np.array([4.0]), 0.0, 4.0, 4)
        np.testing.assert_array_equal(idx, [3])

    @given(
        xs=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
        n=st.integers(1, 512),
    )
    def test_always_in_range(self, xs, n):
        idx = bin_index(np.array(xs), -10.0, 10.0, n)
        assert ((idx >= 0) & (idx < n)).all()


class TestFlatBinIndex:
    def test_row_major_composition(self):
        x = np.array([0.5, 1.5])
        y = np.array([0.5, 2.5])
        flat = flat_bin_index([x, y], [(0, 2), (0, 3)], [2, 3])
        # (0,0) -> 0; (1,2) -> 1*3+2 = 5
        np.testing.assert_array_equal(flat, [0, 5])

    def test_single_axis(self):
        flat = flat_bin_index([np.array([1.5])], [(0, 4)], [4])
        np.testing.assert_array_equal(flat, [1])

    def test_rank_mismatch(self):
        with pytest.raises(BinningError):
            flat_bin_index([np.zeros(2)], [(0, 1), (0, 1)], [2, 2])

    def test_length_mismatch(self):
        with pytest.raises(BinningError):
            flat_bin_index([np.zeros(2), np.zeros(3)], [(0, 1), (0, 1)], [2, 2])

    def test_no_axes(self):
        with pytest.raises(BinningError):
            flat_bin_index([], [], [])

    @given(
        n=st.integers(1, 50),
        dims=st.lists(st.integers(1, 8), min_size=1, max_size=3),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_flat_index_in_range(self, n, dims, seed):
        rng = np.random.default_rng(seed)
        coords = [rng.uniform(-1, 1, n) for _ in dims]
        bounds = [(-1.0, 1.0)] * len(dims)
        flat = flat_bin_index(coords, bounds, dims)
        assert ((flat >= 0) & (flat < np.prod(dims))).all()
