"""Tests for the optimized device-binning strategies (Section 5 work)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.binning.axes import AxisSpec
from repro.binning.operator import BinRequest, DataBinner
from repro.binning.reduce import ReductionOp
from repro.binning.strategies import (
    BinningStrategy,
    apply_sorted_update,
    effective_strategy,
    grid_fits_shared_memory,
    strategy_kernel_cost,
)
from repro.errors import BinningError
from repro.hw.device import VirtualDevice, HostCPU
from repro.svtk.table import TableData

ALL_OPS = [
    ReductionOp.COUNT,
    ReductionOp.SUM,
    ReductionOp.MIN,
    ReductionOp.MAX,
    ReductionOp.AVERAGE,
]


class TestStrategySelection:
    def test_parse(self):
        assert BinningStrategy.parse("sorted") is BinningStrategy.SORTED
        assert BinningStrategy.parse("ATOMIC") is BinningStrategy.ATOMIC
        with pytest.raises(BinningError):
            BinningStrategy.parse("quantum")

    def test_small_grids_fit_shared_memory(self):
        assert grid_fits_shared_memory(64 * 64, ReductionOp.SUM)

    def test_large_grids_do_not_fit(self):
        assert not grid_fits_shared_memory(256 * 256, ReductionOp.SUM)

    def test_average_needs_double_space(self):
        n = 8 * 1024  # fits for SUM (64 KiB) but not for AVERAGE (128 KiB)
        assert grid_fits_shared_memory(n, ReductionOp.SUM)
        assert not grid_fits_shared_memory(n, ReductionOp.AVERAGE)

    def test_privatized_falls_back_to_sorted(self):
        assert (
            effective_strategy(BinningStrategy.PRIVATIZED, 256 * 256, ReductionOp.SUM)
            is BinningStrategy.SORTED
        )
        assert (
            effective_strategy(BinningStrategy.PRIVATIZED, 32 * 32, ReductionOp.SUM)
            is BinningStrategy.PRIVATIZED
        )

    def test_other_strategies_unchanged(self):
        for s in (BinningStrategy.ATOMIC, BinningStrategy.SORTED):
            assert effective_strategy(s, 10**6, ReductionOp.SUM) is s


class TestStrategyCosts:
    def test_optimized_strategies_avoid_atomics(self):
        for s in (BinningStrategy.PRIVATIZED, BinningStrategy.SORTED):
            cost = strategy_kernel_cost(s, 100_000, 1024, ReductionOp.SUM)
            assert cost.atomic_fraction == 0.0
        atomic = strategy_kernel_cost(
            BinningStrategy.ATOMIC, 100_000, 1024, ReductionOp.SUM
        )
        assert atomic.atomic_fraction > 0.0

    def test_sorted_faster_on_gpu_for_large_rows(self):
        """The optimization goal: a GPU speedup over the atomic kernel."""
        gpu = VirtualDevice(0)
        n = 1_000_000
        times = {}
        for s in BinningStrategy:
            c = strategy_kernel_cost(s, n, 256 * 256, ReductionOp.SUM)
            times[s] = gpu.kernel_time(
                flops=c.flops, bytes_moved=c.bytes_moved,
                atomic_fraction=c.atomic_fraction,
            )
        assert times[BinningStrategy.SORTED] < times[BinningStrategy.ATOMIC] / 2

    def test_optimized_gpu_beats_cpu(self):
        """Section 5's goal: 'a speed up on the GPU relative to the CPU'."""
        gpu, cpu = VirtualDevice(0), HostCPU()
        n = 1_000_000
        c_sorted = strategy_kernel_cost(
            BinningStrategy.SORTED, n, 256 * 256, ReductionOp.SUM
        )
        c_atomic = strategy_kernel_cost(
            BinningStrategy.ATOMIC, n, 256 * 256, ReductionOp.SUM
        )
        t_gpu_sorted = gpu.kernel_time(
            flops=c_sorted.flops, bytes_moved=c_sorted.bytes_moved,
            atomic_fraction=c_sorted.atomic_fraction,
        )
        t_gpu_atomic = gpu.kernel_time(
            flops=c_atomic.flops, bytes_moved=c_atomic.bytes_moved,
            atomic_fraction=c_atomic.atomic_fraction,
        )
        t_cpu = cpu.kernel_time(
            flops=c_atomic.flops, bytes_moved=c_atomic.bytes_moved,
            atomic_fraction=c_atomic.atomic_fraction, cores=16,
        )
        # Baseline: no GPU win (the paper's observation)...
        assert t_gpu_atomic > t_cpu
        # ...optimized: the GPU now wins (the paper's goal), and the
        # optimized kernel is several times faster than the baseline.
        assert t_gpu_sorted < t_cpu
        assert t_gpu_sorted < t_gpu_atomic / 2


class TestSortedNumerics:
    @pytest.mark.parametrize("op", ALL_OPS)
    def test_matches_scatter_reference(self, op):
        from repro.binning.cpu import apply_binned_update

        rng = np.random.default_rng(3)
        n_cells = 50
        idx = rng.integers(0, n_cells, 500)
        vals = rng.normal(size=500) if op.needs_values else None
        ref = op.make_accumulator(n_cells)
        apply_binned_update(ref, idx, vals, op, n_cells)
        out = op.make_accumulator(n_cells)
        apply_sorted_update(out, idx, vals, op)
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)

    def test_empty_input_is_noop(self):
        acc = ReductionOp.SUM.make_accumulator(4)
        apply_sorted_update(acc, np.array([], dtype=np.int64), np.array([]), ReductionOp.SUM)
        np.testing.assert_array_equal(acc, np.zeros(4))

    def test_accumulates_into_existing_state(self):
        acc = ReductionOp.MIN.make_accumulator(3)
        apply_sorted_update(acc, np.array([0]), np.array([5.0]), ReductionOp.MIN)
        apply_sorted_update(acc, np.array([0]), np.array([2.0]), ReductionOp.MIN)
        assert acc[0] == 2.0

    def test_missing_values_rejected(self):
        acc = ReductionOp.SUM.make_accumulator(3)
        with pytest.raises(BinningError):
            apply_sorted_update(acc, np.array([0]), None, ReductionOp.SUM)


class TestEndToEndStrategies:
    @pytest.mark.parametrize("strategy", list(BinningStrategy))
    def test_datebinner_parity_across_strategies(self, strategy):
        rng = np.random.default_rng(11)
        t = TableData()
        t.add_host_column("x", rng.uniform(-1, 1, 400))
        t.add_host_column("y", rng.uniform(-1, 1, 400))
        t.add_host_column("m", rng.uniform(0.5, 1.5, 400))
        reqs = [
            BinRequest(ReductionOp.SUM, "m"),
            BinRequest(ReductionOp.MIN, "m"),
            BinRequest(ReductionOp.AVERAGE, "m"),
        ]
        axes = [AxisSpec("x", 16, -1, 1), AxisSpec("y", 16, -1, 1)]
        ref = DataBinner(axes, reqs).execute(t)  # CPU reference
        mesh = DataBinner(axes, reqs, device_strategy=strategy).execute(
            t, device_id=1
        )
        for name in ref.cell_array_names:
            np.testing.assert_allclose(
                mesh.cell_array_as_grid(name),
                ref.cell_array_as_grid(name),
                equal_nan=True,
                err_msg=f"{strategy}: {name}",
            )

    def test_strategy_string_accepted(self):
        b = DataBinner([AxisSpec("x", 4)], device_strategy="sorted")
        assert b.device_strategy is BinningStrategy.SORTED


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 300),
    n_cells=st.integers(1, 64),
    seed=st.integers(0, 2**31 - 1),
    op=st.sampled_from(ALL_OPS),
)
def test_sorted_equals_scatter_property(n, n_cells, seed, op):
    """Property: the sorted algorithm agrees with the scatter reference
    for any data, any op, any grid size."""
    from repro.binning.cpu import apply_binned_update

    rng = np.random.default_rng(seed)
    idx = rng.integers(0, n_cells, n)
    vals = rng.normal(size=n) if op.needs_values else None
    ref = op.make_accumulator(n_cells)
    apply_binned_update(ref, idx, vals, op, n_cells)
    out = op.make_accumulator(n_cells)
    apply_sorted_update(out, idx, vals, op)
    np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-12)
