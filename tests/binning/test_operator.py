"""Tests for the DataBinner operator: CPU/device parity, MPI merge,
and the paper's mass-conservation invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.binning.axes import AxisSpec
from repro.binning.operator import BinRequest, DataBinner
from repro.binning.reduce import ReductionOp
from repro.errors import BinningError
from repro.hamr.allocator import Allocator
from repro.mpi.comm import run_spmd
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.table import TableData


def make_table(n=100, seed=0, device_id=None):
    """A particle-like table; optionally device-resident columns."""
    rng = np.random.default_rng(seed)
    cols = {
        "x": rng.uniform(-1, 1, n),
        "y": rng.uniform(-1, 1, n),
        "z": rng.uniform(-1, 1, n),
        "mass": rng.uniform(0.5, 2.0, n),
    }
    t = TableData("bodies")
    for name, vals in cols.items():
        if device_id is None:
            t.add_host_column(name, vals)
        else:
            arr = HAMRDataArray.zero_copy(
                name, vals, allocator=Allocator.CUDA, device_id=device_id
            )
            t.add_column(arr)
    return t, cols


class TestBinRequest:
    def test_count_takes_no_variable(self):
        with pytest.raises(BinningError):
            BinRequest(ReductionOp.COUNT, "mass")

    def test_value_ops_need_variable(self):
        with pytest.raises(BinningError):
            BinRequest(ReductionOp.SUM)

    def test_result_names(self):
        assert BinRequest(ReductionOp.COUNT).result_name == "count"
        assert BinRequest(ReductionOp.MAX, "mass").result_name == "mass_max"


class TestDataBinnerConfig:
    def test_count_added_automatically(self):
        b = DataBinner([AxisSpec("x", 4)], [BinRequest(ReductionOp.SUM, "mass")])
        assert b.requests[0].op is ReductionOp.COUNT

    def test_no_axes_rejected(self):
        with pytest.raises(BinningError):
            DataBinner([])

    def test_duplicate_requests_rejected(self):
        with pytest.raises(BinningError):
            DataBinner(
                [AxisSpec("x", 4)],
                [BinRequest(ReductionOp.SUM, "m"), BinRequest(ReductionOp.SUM, "m")],
            )

    def test_missing_axis_column(self):
        t, _ = make_table()
        b = DataBinner([AxisSpec("nope", 4)])
        with pytest.raises(BinningError, match="nope"):
            b.execute(t)

    def test_missing_variable_column(self):
        t, _ = make_table()
        b = DataBinner([AxisSpec("x", 4)], [BinRequest(ReductionOp.SUM, "nope")])
        with pytest.raises(BinningError, match="nope"):
            b.execute(t)


class TestHostBinning:
    def test_count_matches_histogram2d(self):
        t, cols = make_table(500)
        b = DataBinner([AxisSpec("x", 8, -1, 1), AxisSpec("y", 8, -1, 1)])
        mesh = b.execute(t)
        grid = mesh.cell_array_as_grid("count")
        ref, _, _ = np.histogram2d(
            cols["x"], cols["y"], bins=8, range=[(-1, 1), (-1, 1)]
        )
        np.testing.assert_array_equal(grid, ref)

    def test_mass_sum_conserves_total_mass(self):
        """Figure 1 invariant: sum over bins == total binned mass."""
        t, cols = make_table(300)
        b = DataBinner(
            [AxisSpec("x", 16), AxisSpec("y", 16)],
            [BinRequest(ReductionOp.SUM, "mass")],
        )
        mesh = b.execute(t)
        assert mesh.cell_array_as_grid("mass_sum").sum() == pytest.approx(
            cols["mass"].sum()
        )

    def test_min_le_avg_le_max(self):
        t, _ = make_table(400)
        b = DataBinner(
            [AxisSpec("x", 4), AxisSpec("y", 4)],
            [
                BinRequest(ReductionOp.MIN, "mass"),
                BinRequest(ReductionOp.AVERAGE, "mass"),
                BinRequest(ReductionOp.MAX, "mass"),
            ],
        )
        mesh = b.execute(t)
        mn = mesh.cell_array_as_grid("mass_min")
        av = mesh.cell_array_as_grid("mass_average")
        mx = mesh.cell_array_as_grid("mass_max")
        occupied = ~np.isnan(av)
        assert (mn[occupied] <= av[occupied] + 1e-12).all()
        assert (av[occupied] <= mx[occupied] + 1e-12).all()

    def test_empty_bins_nan_for_min_max_avg(self):
        t = TableData()
        t.add_host_column("x", np.array([0.1]))
        t.add_host_column("m", np.array([5.0]))
        b = DataBinner(
            [AxisSpec("x", 4, 0.0, 4.0)],
            [BinRequest(ReductionOp.MIN, "m"), BinRequest(ReductionOp.AVERAGE, "m")],
        )
        mesh = b.execute(t)
        mn = mesh.cell_array_as_grid("m_min")
        assert mn[0] == 5.0
        assert np.isnan(mn[1:]).all()

    def test_mesh_geometry_reflects_bounds(self):
        t, _ = make_table()
        b = DataBinner([AxisSpec("x", 10, -2.0, 3.0)])
        mesh = b.execute(t)
        assert mesh.origin == (-2.0,)
        assert mesh.spacing == (0.5,)
        assert mesh.dims == (10,)

    def test_auto_bounds_cover_all_rows(self):
        t, _ = make_table(200)
        mesh = DataBinner([AxisSpec("x", 8), AxisSpec("y", 8)]).execute(t)
        assert mesh.cell_array_as_grid("count").sum() == 200

    def test_three_dimensional_binning(self):
        """Binning is rank-generic: a 3-D phase-space grid works too."""
        t, cols = make_table(500, seed=9)
        b = DataBinner(
            [AxisSpec("x", 4, -1, 1), AxisSpec("y", 5, -1, 1),
             AxisSpec("z", 6, -1, 1)],
            [BinRequest(ReductionOp.SUM, "mass")],
        )
        mesh = b.execute(t)
        assert mesh.dims == (4, 5, 6)
        grid = mesh.cell_array_as_grid("count")
        ref, _ = np.histogramdd(
            np.column_stack([cols["x"], cols["y"], cols["z"]]),
            bins=(4, 5, 6), range=[(-1, 1)] * 3,
        )
        np.testing.assert_array_equal(grid, ref)
        assert mesh.cell_array_as_grid("mass_sum").sum() == pytest.approx(
            cols["mass"].sum()
        )

    def test_one_dimensional_matches_histogram(self):
        t, cols = make_table(300, seed=4)
        mesh = DataBinner([AxisSpec("x", 12, -1, 1)]).execute(t)
        ref, _ = np.histogram(cols["x"], bins=12, range=(-1, 1))
        np.testing.assert_array_equal(mesh.cell_array_as_grid("count"), ref)


class TestDeviceBinning:
    def test_device_matches_host(self):
        """The CUDA implementation must agree with the CPU reference."""
        t_host, _ = make_table(300, seed=3)
        t_dev, _ = make_table(300, seed=3, device_id=1)
        reqs = [
            BinRequest(ReductionOp.SUM, "mass"),
            BinRequest(ReductionOp.MIN, "mass"),
            BinRequest(ReductionOp.MAX, "mass"),
            BinRequest(ReductionOp.AVERAGE, "mass"),
        ]
        axes = [AxisSpec("x", 8, -1, 1), AxisSpec("y", 8, -1, 1)]
        mesh_h = DataBinner(axes, reqs).execute(t_host)
        mesh_d = DataBinner(axes, reqs).execute(t_dev, device_id=1)
        for name in mesh_h.cell_array_names:
            np.testing.assert_allclose(
                mesh_d.cell_array_as_grid(name),
                mesh_h.cell_array_as_grid(name),
                equal_nan=True,
                err_msg=name,
            )

    def test_host_columns_staged_to_device(self):
        """Host-resident input is moved automatically (HDA access API)."""
        t, cols = make_table(100)
        mesh = DataBinner(
            [AxisSpec("x", 4)], [BinRequest(ReductionOp.SUM, "mass")]
        ).execute(t, device_id=2)
        assert mesh.cell_array_as_grid("mass_sum").sum() == pytest.approx(
            cols["mass"].sum()
        )

    def test_device_memory_released_after_execute(self):
        from repro.hw.node import get_node

        t, _ = make_table(100)
        DataBinner([AxisSpec("x", 4)]).execute(t, device_id=1)
        assert get_node().devices[1].mem_used == 0


class TestMPIBinning:
    def test_grids_merged_across_ranks(self):
        """Each rank holds part of the data; results are global."""
        def fn(comm):
            rng = np.random.default_rng(comm.rank)
            t = TableData()
            t.add_host_column("x", rng.uniform(-1, 1, 50))
            t.add_host_column("m", np.full(50, 1.0 + comm.rank))
            b = DataBinner(
                [AxisSpec("x", 8, -1, 1)], [BinRequest(ReductionOp.SUM, "m")]
            )
            mesh = b.execute(t, comm=comm)
            return (
                mesh.cell_array_as_grid("count").sum(),
                mesh.cell_array_as_grid("m_sum").sum(),
            )

        out = run_spmd(4, fn)
        # 4 ranks x 50 rows; masses 1+2+3+4 = 10 per 50 rows.
        for count_total, mass_total in out:
            assert count_total == 200
            assert mass_total == pytest.approx(50.0 * (1 + 2 + 3 + 4))

    def test_min_max_merge(self):
        def fn(comm):
            t = TableData()
            t.add_host_column("x", np.array([0.5]))
            t.add_host_column("m", np.array([float(comm.rank)]))
            b = DataBinner(
                [AxisSpec("x", 2, 0, 1)],
                [BinRequest(ReductionOp.MIN, "m"), BinRequest(ReductionOp.MAX, "m")],
            )
            mesh = b.execute(t, comm=comm)
            return (
                mesh.cell_array_as_grid("m_min")[1],
                mesh.cell_array_as_grid("m_max")[1],
            )

        out = run_spmd(3, fn)
        assert all(o == (0.0, 2.0) for o in out)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 200),
    bins=st.integers(1, 32),
    seed=st.integers(0, 2**31 - 1),
)
def test_binning_conservation_properties(n, bins, seed):
    """Properties that must hold for any data: total count equals rows,
    total binned sum equals the column sum, average within [min, max]."""
    rng = np.random.default_rng(seed)
    t = TableData()
    t.add_host_column("x", rng.normal(size=n))
    t.add_host_column("v", rng.normal(size=n))
    mesh = DataBinner(
        [AxisSpec("x", bins)],
        [BinRequest(ReductionOp.SUM, "v"), BinRequest(ReductionOp.AVERAGE, "v")],
    ).execute(t)
    count = mesh.cell_array_as_grid("count")
    total = mesh.cell_array_as_grid("v_sum")
    avg = mesh.cell_array_as_grid("v_average")
    assert count.sum() == n
    assert total.sum() == pytest.approx(
        float(np.sum(t["v"].as_numpy_host())), rel=1e-9, abs=1e-9
    )
    occ = count > 0
    assert np.isnan(avg[~occ]).all()
    assert np.allclose(avg[occ] * count[occ], total[occ], rtol=1e-9, atol=1e-9)
