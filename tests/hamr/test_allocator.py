"""Tests for the svtkAllocator enumeration and its capability queries."""

from __future__ import annotations

import pytest

from repro.errors import InvalidAllocatorError
from repro.hamr.allocator import (
    HOST_DEVICE_ID,
    Allocator,
    PMKind,
    default_allocator_for,
)

HOST_ALLOCS = [
    Allocator.MALLOC,
    Allocator.NEW,
    Allocator.CUDA_HOST,
    Allocator.HIP_HOST,
    Allocator.SYCL_HOST,
]
DEVICE_ALLOCS = [
    Allocator.CUDA,
    Allocator.CUDA_ASYNC,
    Allocator.CUDA_UVA,
    Allocator.HIP,
    Allocator.HIP_ASYNC,
    Allocator.HIP_UVA,
    Allocator.OPENMP,
    Allocator.SYCL,
    Allocator.SYCL_SHARED,
    Allocator.KOKKOS,
]


class TestResidency:
    @pytest.mark.parametrize("alloc", HOST_ALLOCS)
    def test_host_resident(self, alloc):
        assert alloc.is_host_resident
        assert not alloc.is_device_resident

    @pytest.mark.parametrize("alloc", DEVICE_ALLOCS)
    def test_device_resident(self, alloc):
        assert alloc.is_device_resident
        assert not alloc.is_host_resident

    def test_partition_is_total(self):
        assert set(HOST_ALLOCS) | set(DEVICE_ALLOCS) == set(Allocator)


class TestPMOwnership:
    def test_host_allocators(self):
        assert Allocator.MALLOC.pm_kind is PMKind.HOST
        assert Allocator.NEW.pm_kind is PMKind.HOST

    def test_cuda_family(self):
        for a in (Allocator.CUDA, Allocator.CUDA_ASYNC, Allocator.CUDA_UVA, Allocator.CUDA_HOST):
            assert a.pm_kind is PMKind.CUDA

    def test_hip_family(self):
        for a in (Allocator.HIP, Allocator.HIP_ASYNC, Allocator.HIP_UVA, Allocator.HIP_HOST):
            assert a.pm_kind is PMKind.HIP

    def test_openmp(self):
        assert Allocator.OPENMP.pm_kind is PMKind.OPENMP

    def test_sycl_family(self):
        for a in (Allocator.SYCL, Allocator.SYCL_SHARED, Allocator.SYCL_HOST):
            assert a.pm_kind is PMKind.SYCL

    def test_kokkos(self):
        assert Allocator.KOKKOS.pm_kind is PMKind.KOKKOS


class TestVariantFlags:
    def test_async_variants(self):
        assert Allocator.CUDA_ASYNC.is_async
        assert Allocator.HIP_ASYNC.is_async
        assert not Allocator.CUDA.is_async

    def test_uva_variants(self):
        assert Allocator.CUDA_UVA.is_uva
        assert Allocator.HIP_UVA.is_uva
        assert Allocator.SYCL_SHARED.is_uva
        assert not Allocator.OPENMP.is_uva

    def test_pinned_variants(self):
        assert Allocator.CUDA_HOST.is_pinned_host
        assert Allocator.HIP_HOST.is_pinned_host
        assert Allocator.SYCL_HOST.is_pinned_host
        assert not Allocator.MALLOC.is_pinned_host


class TestValidateDevice:
    def test_host_allocator_rejects_device(self):
        with pytest.raises(InvalidAllocatorError):
            Allocator.MALLOC.validate_device(0)

    def test_device_allocator_rejects_host(self):
        with pytest.raises(InvalidAllocatorError):
            Allocator.CUDA.validate_device(HOST_DEVICE_ID)

    def test_valid_combinations_pass(self):
        Allocator.MALLOC.validate_device(HOST_DEVICE_ID)
        Allocator.CUDA.validate_device(2)
        Allocator.OPENMP.validate_device(0)


class TestDefaultAllocatorFor:
    def test_host_destination(self):
        for pm in PMKind:
            assert default_allocator_for(pm, HOST_DEVICE_ID) is Allocator.MALLOC

    def test_device_destinations(self):
        assert default_allocator_for(PMKind.CUDA, 0) is Allocator.CUDA
        assert default_allocator_for(PMKind.HIP, 1) is Allocator.HIP
        assert default_allocator_for(PMKind.OPENMP, 2) is Allocator.OPENMP
        assert default_allocator_for(PMKind.SYCL, 0) is Allocator.SYCL
        assert default_allocator_for(PMKind.KOKKOS, 3) is Allocator.KOKKOS

    def test_host_pm_cannot_target_device(self):
        with pytest.raises(InvalidAllocatorError):
            default_allocator_for(PMKind.HOST, 0)
