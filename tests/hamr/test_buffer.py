"""Tests for managed buffers: allocation, zero-copy wrap, life cycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AllocationError, DeviceOutOfMemoryError
from repro.hamr.allocator import HOST_DEVICE_ID, Allocator
from repro.hamr.buffer import Buffer
from repro.hamr.runtime import current_clock, set_active_device
from repro.hamr.stream import Stream, StreamMode
from repro.hw.node import VirtualNode, get_node, set_node
from repro.hw.spec import small_node_spec
from repro.units import MiB


class TestAllocate:
    def test_host_allocation(self):
        b = Buffer.allocate(100, np.float64, Allocator.MALLOC)
        assert b.on_host
        assert b.device_id == HOST_DEVICE_ID
        assert b.size == 100
        assert b.nbytes == 800

    def test_device_allocation_uses_active_device(self):
        set_active_device(2)
        b = Buffer.allocate(10, np.float32, Allocator.CUDA)
        assert b.device_id == 2
        assert not b.on_host

    def test_explicit_device_overrides_active(self):
        set_active_device(0)
        b = Buffer.allocate(10, np.float64, Allocator.HIP, device_id=3)
        assert b.device_id == 3

    def test_device_allocation_claims_memory(self):
        node = get_node()
        before = node.devices[1].mem_used
        b = Buffer.allocate(1000, np.float64, Allocator.CUDA, device_id=1)
        assert node.devices[1].mem_used == before + b.nbytes

    def test_pinned_host_memory_accounted_on_host(self):
        node = get_node()
        b = Buffer.allocate(1000, np.float64, Allocator.CUDA_HOST)
        assert b.on_host
        assert node.host.mem_used == b.nbytes
        assert all(d.mem_used == 0 for d in node.devices)

    def test_oom_propagates(self):
        set_node(VirtualNode(small_node_spec(mem_capacity=MiB)))
        with pytest.raises(DeviceOutOfMemoryError):
            Buffer.allocate(MiB, np.float64, Allocator.CUDA, device_id=0)

    def test_negative_size_rejected(self):
        with pytest.raises(AllocationError):
            Buffer.allocate(-5, np.float64, Allocator.MALLOC)

    def test_zero_size_allowed(self):
        b = Buffer.allocate(0, np.float64, Allocator.MALLOC)
        assert b.size == 0

    def test_sync_allocation_advances_clock(self):
        t0 = current_clock().now
        Buffer.allocate(1000, np.float64, Allocator.CUDA, device_id=0,
                        stream_mode=StreamMode.SYNC)
        assert current_clock().now > t0

    def test_async_allocation_does_not_advance_clock(self):
        t0 = current_clock().now
        b = Buffer.allocate(
            1000, np.float64, Allocator.CUDA_ASYNC, device_id=0,
            stream_mode=StreamMode.ASYNC,
        )
        assert current_clock().now == t0
        assert b.ready_at > t0


class TestWrap:
    def test_zero_copy_aliases_storage(self):
        """Paper Listing 1: the HDA shares the simulation's pointer."""
        ext = np.full(64, -3.14)
        b = Buffer.wrap(ext, Allocator.OPENMP, device_id=1)
        assert b.data is not None
        ext[0] = 42.0
        assert b.data[0] == 42.0  # same memory, no deep copy

    def test_wrap_does_not_claim_memory(self):
        node = get_node()
        ext = np.zeros(1000)
        Buffer.wrap(ext, Allocator.CUDA, device_id=0)
        assert node.devices[0].mem_used == 0

    def test_deleter_called_on_free(self):
        """Raw-pointer hand-off: the user-provided deleter runs at free."""
        calls = []
        ext = np.zeros(8)
        b = Buffer.wrap(ext, Allocator.CUDA, device_id=0, deleter=lambda: calls.append(1))
        b.free()
        assert calls == [1]

    def test_owner_kept_alive(self):
        class Owner:
            pass

        o = Owner()
        b = Buffer.wrap(np.zeros(4), Allocator.MALLOC, owner=o)
        assert b._owner is o

    def test_wrap_flattens_multidimensional(self):
        b = Buffer.wrap(np.zeros((4, 4)), Allocator.MALLOC)
        assert b.size == 16


class TestAccessibility:
    def test_host_buffer_host_accessible(self):
        b = Buffer.allocate(8, np.float64, Allocator.MALLOC)
        assert b.host_accessible()
        assert b.device_accessible(HOST_DEVICE_ID)
        assert not b.device_accessible(0)

    def test_device_buffer_only_on_its_device(self):
        b = Buffer.allocate(8, np.float64, Allocator.CUDA, device_id=1)
        assert b.device_accessible(1)
        assert not b.device_accessible(0)
        assert not b.host_accessible()

    def test_uva_accessible_everywhere(self):
        b = Buffer.allocate(8, np.float64, Allocator.CUDA_UVA, device_id=0)
        assert b.host_accessible()
        assert b.device_accessible(0)
        assert b.device_accessible(3)

    def test_pinned_host_accessible_from_devices(self):
        b = Buffer.allocate(8, np.float64, Allocator.CUDA_HOST)
        assert b.host_accessible()
        assert b.device_accessible(2)


class TestLifeCycle:
    def test_free_releases_memory(self):
        node = get_node()
        b = Buffer.allocate(1000, np.float64, Allocator.CUDA, device_id=0)
        b.free()
        assert node.devices[0].mem_used == 0

    def test_free_is_idempotent(self):
        node = get_node()
        b = Buffer.allocate(1000, np.float64, Allocator.CUDA, device_id=0)
        b.free()
        b.free()
        assert node.devices[0].mem_used == 0

    def test_data_after_free_raises(self):
        b = Buffer.allocate(8, np.float64, Allocator.MALLOC)
        b.free()
        with pytest.raises(AllocationError):
            _ = b.data

    def test_fill_sets_values_and_marks_pending(self):
        b = Buffer.allocate(16, np.float64, Allocator.CUDA, device_id=0,
                            stream_mode=StreamMode.ASYNC)
        r0 = b.ready_at
        b.fill(7.5)
        assert np.all(b.data == 7.5)
        assert b.ready_at > r0

    def test_synchronize_advances_clock_to_ready(self):
        b = Buffer.allocate(
            1000, np.float64, Allocator.CUDA_ASYNC, device_id=0,
            stream_mode=StreamMode.ASYNC,
        )
        b.fill(1.0)
        t = b.synchronize()
        assert t >= b.ready_at
        assert current_clock().now == t
