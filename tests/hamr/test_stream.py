"""Tests for svtkStream / svtkStreamMode semantics."""

from __future__ import annotations

import pytest

from repro.hamr.allocator import HOST_DEVICE_ID, PMKind
from repro.hamr.stream import Stream, StreamMode, default_stream
from repro.hw.clock import EventCategory, SimClock


class TestEnqueue:
    def test_sync_mode_blocks_clock(self):
        clk = SimClock()
        s = Stream(device_id=0)
        ev = s.enqueue(clk, 1.0, mode=StreamMode.SYNC)
        assert clk.now == ev.end == 1.0

    def test_async_mode_returns_immediately(self):
        clk = SimClock()
        s = Stream(device_id=0)
        ev = s.enqueue(clk, 1.0, mode=StreamMode.ASYNC)
        assert clk.now == 0.0
        assert ev.end == 1.0

    def test_async_then_synchronize_joins(self):
        clk = SimClock()
        s = Stream(device_id=0)
        s.enqueue(clk, 1.0, mode=StreamMode.ASYNC)
        s.enqueue(clk, 2.0, mode=StreamMode.ASYNC)
        s.synchronize(clk)
        assert clk.now == 3.0

    def test_stream_serializes_operations(self):
        clk = SimClock()
        s = Stream(device_id=0)
        a = s.enqueue(clk, 1.0, mode=StreamMode.ASYNC)
        b = s.enqueue(clk, 1.0, mode=StreamMode.ASYNC)
        assert b.start == a.end

    def test_independent_streams_overlap(self):
        clk = SimClock()
        s1, s2 = Stream(device_id=0), Stream(device_id=0)
        a = s1.enqueue(clk, 5.0, mode=StreamMode.ASYNC)
        b = s2.enqueue(clk, 5.0, mode=StreamMode.ASYNC)
        assert a.overlaps(b)

    def test_after_dependency(self):
        clk = SimClock()
        s = Stream(device_id=0)
        ev = s.enqueue(clk, 1.0, mode=StreamMode.ASYNC, after=10.0)
        assert ev.start == 10.0

    def test_wait_event_orders_across_streams(self):
        """cudaStreamWaitEvent semantics: the stream waits, not the host."""
        clk = SimClock()
        producer, consumer = Stream(device_id=0), Stream(device_id=1)
        ev = producer.enqueue(clk, 2.0, mode=StreamMode.ASYNC)
        consumer.wait_event(ev)
        dependent = consumer.enqueue(clk, 1.0, mode=StreamMode.ASYNC)
        assert dependent.start >= ev.end
        assert clk.now == 0.0  # the host never blocked

    def test_overlap_enables_speedup(self):
        """The point of async mode: overlap two 1s ops in 1s total."""
        clk = SimClock()
        s1, s2 = Stream(device_id=0), Stream(device_id=1)
        s1.enqueue(clk, 1.0, mode=StreamMode.ASYNC)
        s2.enqueue(clk, 1.0, mode=StreamMode.ASYNC)
        s1.synchronize(clk)
        s2.synchronize(clk)
        assert clk.now == pytest.approx(1.0)


class TestNativeInterchange:
    def test_round_trip_preserves_identity(self):
        s = Stream(device_id=2, pm=PMKind.CUDA)
        h = s.to_native(PMKind.CUDA)
        assert Stream.from_native(PMKind.CUDA, h) is s

    def test_cross_pm_conversion(self):
        """svtkStream converts between PM-native stream types (paper S2)."""
        s = Stream(device_id=0, pm=PMKind.CUDA)
        h = s.to_native(PMKind.OPENMP)
        assert Stream.from_native(PMKind.OPENMP, h) is s

    def test_adopting_foreign_handle(self):
        s = Stream.from_native(PMKind.HIP, 987654, device_id=1)
        assert s.device_id == 1
        assert Stream.from_native(PMKind.HIP, 987654) is s

    def test_distinct_streams_distinct_handles(self):
        a, b = Stream(device_id=0), Stream(device_id=0)
        assert a.to_native() != b.to_native()


class TestDefaultStream:
    def test_per_device_singleton(self):
        assert default_stream(0) is default_stream(0)
        assert default_stream(0) is not default_stream(1)

    def test_host_default_stream(self):
        s = default_stream(HOST_DEVICE_ID)
        assert s.device_id == HOST_DEVICE_ID

    def test_synchronize_records_sync_event(self):
        clk = SimClock()
        s = Stream(device_id=0)
        s.enqueue(clk, 1.0, mode=StreamMode.ASYNC)
        s.synchronize(clk)
        cats = [e.category for e in s.timeline.events]
        assert EventCategory.SYNC in cats
