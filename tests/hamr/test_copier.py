"""Tests for the data-movement engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeMismatchError
from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.buffer import Buffer
from repro.hamr.copier import copy_into, transfer, transfer_duration
from repro.hamr.runtime import current_clock
from repro.hamr.stream import StreamMode
from repro.units import MB


def _host_buffer(values):
    b = Buffer.wrap(np.asarray(values, dtype=np.float64), Allocator.MALLOC)
    return b


class TestTransfer:
    def test_h2d_preserves_contents(self):
        src = _host_buffer([1.0, 2.0, 3.0])
        dst = transfer(src, 0, pm=PMKind.CUDA)
        assert dst.device_id == 0
        assert not dst.on_host
        np.testing.assert_array_equal(dst.data, [1.0, 2.0, 3.0])

    def test_d2h_preserves_contents(self):
        src = Buffer.allocate(4, np.float64, Allocator.CUDA, device_id=1)
        src.fill(9.0)
        dst = transfer(src, HOST_DEVICE_ID, pm=PMKind.HOST)
        assert dst.on_host
        np.testing.assert_array_equal(dst.data, [9.0] * 4)

    def test_d2d_preserves_contents(self):
        src = Buffer.allocate(4, np.float64, Allocator.HIP, device_id=0)
        src.fill(5.0)
        dst = transfer(src, 2, pm=PMKind.HIP)
        assert dst.device_id == 2
        np.testing.assert_array_equal(dst.data, [5.0] * 4)

    def test_transfer_is_deep_copy(self):
        src = _host_buffer([1.0, 2.0])
        dst = transfer(src, HOST_DEVICE_ID, pm=PMKind.HOST)
        src.data[0] = 99.0
        assert dst.data[0] == 1.0

    def test_allocator_defaults_to_pm_natural(self):
        src = _host_buffer([0.0])
        assert transfer(src, 0, pm=PMKind.CUDA).allocator is Allocator.CUDA
        assert transfer(src, 0, pm=PMKind.OPENMP).allocator is Allocator.OPENMP
        assert (
            transfer(src, HOST_DEVICE_ID, pm=PMKind.HOST).allocator
            is Allocator.MALLOC
        )

    def test_sync_transfer_advances_clock(self):
        src = _host_buffer(np.zeros(1000))
        t0 = current_clock().now
        transfer(src, 0, pm=PMKind.CUDA, mode=StreamMode.SYNC)
        assert current_clock().now > t0

    def test_async_transfer_pends_on_both_buffers(self):
        src = _host_buffer(np.zeros(1000))
        t0 = current_clock().now
        dst = transfer(src, 0, pm=PMKind.CUDA, mode=StreamMode.ASYNC)
        assert current_clock().now == t0
        assert dst.ready_at > t0
        assert src.ready_at >= dst.ready_at  # source synchronize sees the move

    def test_copy_ordered_after_source_ready(self):
        src = Buffer.allocate(
            1000, np.float64, Allocator.CUDA_ASYNC, device_id=0,
            stream_mode=StreamMode.ASYNC,
        )
        src.fill(3.0)
        ready = src.ready_at
        dst = transfer(src, HOST_DEVICE_ID, pm=PMKind.HOST, mode=StreamMode.ASYNC)
        assert dst.ready_at > ready


class TestCopyInto:
    def test_contents_copied(self):
        src = _host_buffer([1.0, 2.0, 3.0])
        dst = Buffer.allocate(3, np.float64, Allocator.CUDA, device_id=0)
        copy_into(src, dst)
        np.testing.assert_array_equal(dst.data, [1.0, 2.0, 3.0])

    def test_size_mismatch_rejected(self):
        src = _host_buffer([1.0, 2.0])
        dst = Buffer.allocate(3, np.float64, Allocator.MALLOC)
        with pytest.raises(ShapeMismatchError):
            copy_into(src, dst)

    def test_dtype_conversion(self):
        src = Buffer.wrap(np.array([1, 2, 3], dtype=np.int64), Allocator.MALLOC)
        dst = Buffer.allocate(3, np.float64, Allocator.MALLOC)
        copy_into(src, dst)
        assert dst.data.dtype == np.float64
        np.testing.assert_array_equal(dst.data, [1.0, 2.0, 3.0])


class TestDurations:
    def test_same_space_deep_copy_costs_bandwidth(self):
        d = transfer_duration(100 * MB, 0, 0)
        assert d > 0.0

    def test_d2d_cheaper_than_h2d(self):
        assert transfer_duration(100 * MB, 0, 1) < transfer_duration(100 * MB, -1, 1)

    def test_pinned_cheaper(self):
        assert transfer_duration(100 * MB, -1, 0, pinned=True) < transfer_duration(
            100 * MB, -1, 0, pinned=False
        )


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64),
        min_size=1,
        max_size=64,
    ),
    path=st.lists(st.integers(min_value=-1, max_value=3), min_size=1, max_size=5),
)
def test_round_trip_through_any_device_path(values, path):
    """Property: moving data along any chain of spaces preserves it."""
    # Note: global node has 4 devices; -1 is the host.
    buf = _host_buffer(values)
    for dev in path:
        pm = PMKind.HOST if dev == HOST_DEVICE_ID else PMKind.CUDA
        buf = transfer(buf, dev, pm=pm)
    back = transfer(buf, HOST_DEVICE_ID, pm=PMKind.HOST)
    back.synchronize()
    np.testing.assert_array_equal(back.data, np.asarray(values))
