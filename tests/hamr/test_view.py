"""Tests for shared views and the location/PM-agnostic access core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.buffer import Buffer
from repro.hamr.runtime import current_clock
from repro.hamr.stream import StreamMode
from repro.hamr.view import SharedView, accessible_view
from repro.hw.node import get_node


class TestInPlaceAccess:
    def test_host_buffer_from_host_is_zero_copy(self):
        b = Buffer.wrap(np.array([1.0, 2.0]), Allocator.MALLOC)
        v = accessible_view(b, PMKind.HOST, HOST_DEVICE_ID)
        assert not v.is_temporary
        assert v.get() is b.data  # no additional work is done

    def test_device_buffer_from_same_device_is_zero_copy(self):
        b = Buffer.allocate(4, np.float64, Allocator.CUDA, device_id=2)
        v = accessible_view(b, PMKind.CUDA, 2)
        assert not v.is_temporary

    def test_cross_pm_same_location_is_zero_copy(self):
        """OpenMP-managed data read by CUDA code on the same device."""
        b = Buffer.allocate(4, np.float64, Allocator.OPENMP, device_id=1)
        v = accessible_view(b, PMKind.CUDA, 1)
        assert not v.is_temporary

    def test_uva_zero_copy_from_anywhere(self):
        b = Buffer.allocate(4, np.float64, Allocator.CUDA_UVA, device_id=0)
        assert not accessible_view(b, PMKind.HOST, HOST_DEVICE_ID).is_temporary
        assert not accessible_view(b, PMKind.CUDA, 3).is_temporary

    def test_zero_copy_access_costs_no_simulated_time(self):
        b = Buffer.wrap(np.zeros(1_000_000), Allocator.MALLOC)
        t0 = current_clock().now
        accessible_view(b, PMKind.HOST, HOST_DEVICE_ID)
        assert current_clock().now == t0


class TestTemporaryAccess:
    def test_device_to_host_makes_temporary(self):
        b = Buffer.allocate(4, np.float64, Allocator.CUDA, device_id=0)
        b.fill(3.0)
        v = accessible_view(b, PMKind.HOST, HOST_DEVICE_ID)
        assert v.is_temporary
        v.synchronize()
        np.testing.assert_array_equal(v.get(), [3.0] * 4)

    def test_cross_device_makes_temporary(self):
        b = Buffer.allocate(4, np.float64, Allocator.CUDA, device_id=0)
        v = accessible_view(b, PMKind.CUDA, 1)
        assert v.is_temporary
        assert v.buffer.device_id == 1

    def test_temporary_freed_on_release(self):
        node = get_node()
        b = Buffer.allocate(1000, np.float64, Allocator.CUDA, device_id=0)
        v = accessible_view(b, PMKind.CUDA, 1)
        used = node.devices[1].mem_used
        assert used > 0
        v.release()
        assert node.devices[1].mem_used == 0

    def test_context_manager_releases(self):
        node = get_node()
        b = Buffer.allocate(1000, np.float64, Allocator.CUDA, device_id=0)
        with accessible_view(b, PMKind.HOST, HOST_DEVICE_ID) as v:
            assert v.get() is not None
        assert node.host.mem_used == 0

    def test_gc_releases_temporary(self):
        node = get_node()
        b = Buffer.allocate(1000, np.float64, Allocator.CUDA, device_id=0)
        v = accessible_view(b, PMKind.HOST, HOST_DEVICE_ID)
        del v
        assert node.host.mem_used == 0

    def test_source_synchronize_covers_the_move(self):
        """Paper Listing 3 synchronizes the *source* arrays after access."""
        b = Buffer.allocate(
            1000, np.float64, Allocator.CUDA_ASYNC, device_id=0,
            stream_mode=StreamMode.ASYNC,
        )
        b.fill(1.0)
        v = accessible_view(b, PMKind.CUDA, 1, mode=StreamMode.ASYNC)
        t = b.synchronize()
        assert t >= v.ready_at

    def test_temporary_does_not_alias_source(self):
        b = Buffer.allocate(4, np.float64, Allocator.CUDA, device_id=0)
        b.fill(1.0)
        v = accessible_view(b, PMKind.HOST, HOST_DEVICE_ID)
        b.data[0] = 42.0
        assert v.get()[0] == 1.0


class TestViewProtocol:
    def test_get_after_release_raises(self):
        b = Buffer.wrap(np.zeros(4), Allocator.MALLOC)
        v = accessible_view(b, PMKind.HOST, HOST_DEVICE_ID)
        v.release()
        with pytest.raises(RuntimeError):
            v.get()

    def test_release_idempotent(self):
        b = Buffer.allocate(10, np.float64, Allocator.CUDA, device_id=0)
        v = accessible_view(b, PMKind.HOST, HOST_DEVICE_ID)
        v.release()
        v.release()

    def test_len(self):
        b = Buffer.wrap(np.zeros(7), Allocator.MALLOC)
        v = accessible_view(b, PMKind.HOST, HOST_DEVICE_ID)
        assert len(v) == 7
        v.release()
        assert len(v) == 0

    def test_in_place_release_does_not_free_source(self):
        b = Buffer.wrap(np.zeros(4), Allocator.MALLOC)
        v = accessible_view(b, PMKind.HOST, HOST_DEVICE_ID)
        v.release()
        assert not b.freed
        assert b.data is not None
