"""Tests for the stream-ordered memory pool (cudaMallocAsync semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemoryError
from repro.hamr.allocator import Allocator
from repro.hamr.buffer import Buffer
from repro.hamr.pool import MemoryPool, pool_for, reset_pools
from repro.hamr.runtime import current_clock
from repro.hw.node import VirtualNode, get_node, set_node
from repro.hw.spec import small_node_spec
from repro.units import KiB, MiB


class TestMemoryPool:
    def test_miss_claims_then_hit_reuses(self):
        dev = get_node().devices[0]
        pool = pool_for(dev)
        assert pool.acquire(1024) is False  # miss: fresh claim
        assert dev.mem_used == 1024
        pool.release(1024)
        assert dev.mem_used == 1024  # footprint retained
        assert pool.pooled_bytes == 1024
        assert pool.acquire(1024) is True  # hit
        assert pool.pooled_bytes == 0
        assert dev.mem_used == 1024

    def test_size_buckets_are_exact(self):
        dev = get_node().devices[0]
        pool = pool_for(dev)
        pool.acquire(512)
        pool.release(512)
        assert pool.acquire(1024) is False  # different size: miss

    def test_trim_returns_memory(self):
        dev = get_node().devices[0]
        pool = pool_for(dev)
        pool.acquire(2048)
        pool.release(2048)
        assert pool.trim() == 2048
        assert dev.mem_used == 0
        assert pool.pooled_bytes == 0

    def test_hit_miss_counters(self):
        pool = pool_for(get_node().devices[1])
        pool.acquire(64)
        pool.release(64)
        pool.acquire(64)
        assert pool.hits == 1
        assert pool.misses == 1

    def test_pool_per_resource(self):
        node = get_node()
        assert pool_for(node.devices[0]) is pool_for(node.devices[0])
        assert pool_for(node.devices[0]) is not pool_for(node.devices[1])

    def test_registry_pins_resource_against_id_reuse(self):
        """Regression: keying by id(resource) aliased pools after GC.

        An ``id()`` holds no reference — once a registered resource was
        collected, a new resource could be allocated at the same id and
        silently inherit the dead resource's pool (and its buckets).
        The registry must hold a strong reference instead, released
        only by reset_pools().
        """
        import gc
        import weakref

        from repro.hw.device import VirtualDevice
        from repro.hw.spec import small_node_spec

        dev = VirtualDevice(device_id=7, spec=small_node_spec().device)
        pool = pool_for(dev)
        ref = weakref.ref(dev)
        del dev
        gc.collect()
        assert ref() is not None, "registry must pin the resource"
        assert pool_for(ref()) is pool
        del pool  # the pool object itself also references the resource
        reset_pools()
        gc.collect()
        assert ref() is None, "reset_pools must release the resource"

    def test_oom_propagates_through_pool(self):
        set_node(VirtualNode(small_node_spec(mem_capacity=KiB)))
        reset_pools()
        pool = pool_for(get_node().devices[0])
        with pytest.raises(DeviceOutOfMemoryError):
            pool.acquire(MiB)


class TestBufferPoolIntegration:
    def test_async_free_keeps_footprint(self):
        node = get_node()
        b = Buffer.allocate(128, np.float64, Allocator.CUDA_ASYNC, device_id=0)
        b.free()
        assert node.devices[0].mem_used == 1024  # pooled, not released
        assert pool_for(node.devices[0]).pooled_bytes == 1024

    def test_sync_free_releases_immediately(self):
        node = get_node()
        b = Buffer.allocate(128, np.float64, Allocator.CUDA, device_id=0)
        b.free()
        assert node.devices[0].mem_used == 0

    def test_realloc_after_free_is_cheaper(self):
        """The point of stream-ordered allocation: reuse is ~free."""
        clk = current_clock()
        b1 = Buffer.allocate(4096, np.float64, Allocator.CUDA_ASYNC, device_id=0)
        t0 = clk.now
        miss_cost = t0  # first allocation was a pool miss
        b1.free()
        t1 = clk.now
        Buffer.allocate(4096, np.float64, Allocator.CUDA_ASYNC, device_id=0)
        hit_cost = clk.now - t1
        assert hit_cost < miss_cost

    def test_pool_reuse_does_not_double_count(self):
        node = get_node()
        for _ in range(5):
            b = Buffer.allocate(100, np.float64, Allocator.HIP_ASYNC, device_id=2)
            b.free()
        assert node.devices[2].mem_used == 800  # one block cycling

    def test_trim_after_workload(self):
        node = get_node()
        b = Buffer.allocate(64, np.float64, Allocator.CUDA_ASYNC, device_id=1)
        b.free()
        pool_for(node.devices[1]).trim()
        assert node.devices[1].mem_used == 0


class TestTrimAbove:
    """Edge cases of the watermark trim the pool governor drives."""

    def fill(self, pool, sizes):
        for nbytes in sizes:
            pool.acquire(nbytes)
        for nbytes in sizes:
            pool.release(nbytes)

    def test_watermark_zero_equals_full_trim(self):
        dev = get_node().devices[0]
        pool = pool_for(dev)
        self.fill(pool, [512, 1024, 2048])
        assert pool.trim_above(0) == 3584
        assert pool.pooled_bytes == 0
        assert dev.mem_used == 0

    def test_empty_pool_is_a_no_op(self):
        dev = get_node().devices[0]
        pool = pool_for(dev)
        assert pool.trim_above(0) == 0
        assert pool.trim_above(4096) == 0
        assert dev.mem_used == 0

    def test_watermark_above_inventory_keeps_everything(self):
        dev = get_node().devices[0]
        pool = pool_for(dev)
        self.fill(pool, [1024])
        assert pool.trim_above(4096) == 0
        assert pool.pooled_bytes == 1024
        assert pool.acquire(1024) is True  # inventory kept serving hits

    def test_largest_buckets_evicted_first(self):
        dev = get_node().devices[0]
        pool = pool_for(dev)
        self.fill(pool, [256, 4096])
        freed = pool.trim_above(256)
        assert freed == 4096
        assert pool.pooled_bytes == 256
        assert pool.acquire(256) is True  # the small block survived

    def test_negative_watermark_rejected(self):
        pool = pool_for(get_node().devices[0])
        with pytest.raises(ValueError):
            pool.trim_above(-1)

    def test_trim_racing_acquire_release_keeps_accounting(self):
        """Concurrent async-mode traffic vs. trim_above stays consistent."""
        import threading

        dev = get_node().devices[0]
        pool = pool_for(dev)
        block = 1024
        rounds = 200
        errors = []

        def churn():
            try:
                for _ in range(rounds):
                    pool.acquire(block)
                    pool.release(block)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def trimmer():
            try:
                for _ in range(rounds):
                    freed = pool.trim_above(block)
                    assert freed >= 0
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=churn) for _ in range(2)]
        threads.append(threading.Thread(target=trimmer))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert pool.pooled_bytes >= 0
        # Whatever interleaving happened, claimed memory is exactly the
        # pooled inventory (no block is both trimmed and pooled, none
        # leaked): all blocks were released, so nothing is in use.
        assert dev.mem_used == pool.pooled_bytes
        pool.trim()
        assert dev.mem_used == 0

    def test_outstanding_zero_copy_views_survive_trim(self):
        from repro.hamr.allocator import PMKind
        from repro.hamr.view import accessible_view

        node = get_node()
        dev = node.devices[0]
        held = Buffer.allocate(128, np.float64, Allocator.CUDA_ASYNC, device_id=0)
        held.data[:] = 7.0
        view = accessible_view(held, PMKind.CUDA, 0)
        assert not view.is_temporary  # zero-copy: aliases the buffer
        pooled = Buffer.allocate(256, np.float64, Allocator.CUDA_ASYNC, device_id=0)
        pooled.free()  # returns 2 KiB to the pool
        in_use = 128 * 8
        assert dev.mem_used == in_use + 256 * 8
        freed = pool_for(dev).trim_above(0)
        assert freed == 256 * 8
        # Only pooled inventory was released; the viewed block stays.
        assert dev.mem_used == in_use
        np.testing.assert_array_equal(view.get(), np.full(128, 7.0))
        view.release()
        held.free()
