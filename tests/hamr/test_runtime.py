"""Tests for the thread-local runtime context."""

from __future__ import annotations

import threading

import pytest

from repro.errors import LocationError
from repro.hamr.allocator import HOST_DEVICE_ID
from repro.hamr.runtime import (
    active_device,
    current_clock,
    get_active_device,
    set_active_device,
    set_current_clock,
    use_clock,
)
from repro.hw.clock import SimClock


class TestActiveDevice:
    def test_default_is_device_zero(self):
        assert get_active_device() == 0

    def test_set_and_get(self):
        prev = set_active_device(2)
        assert prev == 0
        assert get_active_device() == 2

    def test_host_selectable(self):
        set_active_device(HOST_DEVICE_ID)
        assert get_active_device() == HOST_DEVICE_ID

    def test_invalid_device_rejected(self):
        with pytest.raises(LocationError):
            set_active_device(17)

    def test_context_manager_restores(self):
        with active_device(3):
            assert get_active_device() == 3
        assert get_active_device() == 0

    def test_thread_isolation(self):
        set_active_device(2)
        seen = {}

        def worker():
            seen["dev"] = get_active_device()
            set_active_device(1)
            seen["after"] = get_active_device()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["dev"] == 0  # fresh thread starts at default
        assert seen["after"] == 1
        assert get_active_device() == 2  # main thread unaffected


class TestCurrentClock:
    def test_lazy_creation(self):
        assert current_clock() is current_clock()

    def test_use_clock_restores(self):
        outer = current_clock()
        inner = SimClock(name="inner")
        with use_clock(inner):
            assert current_clock() is inner
        assert current_clock() is outer

    def test_thread_gets_its_own_clock(self):
        main = current_clock()
        box = {}

        def worker():
            box["clk"] = current_clock()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert box["clk"] is not main

    def test_set_current_clock_returns_previous(self):
        a = current_clock()
        b = SimClock()
        assert set_current_clock(b) is a
        assert current_clock() is b
