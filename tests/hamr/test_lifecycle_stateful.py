"""Stateful property test of the buffer/view life cycle.

Hypothesis drives random interleavings of the memory-management API —
allocate, wrap, view (any PM, any location), release, free,
synchronize — against a shadow model, checking after every step that:

- simulated memory accounting equals the bytes of live owned
  allocations (wrapped external memory is never accounted);
- data read through any view equals the shadow contents;
- freeing and releasing are idempotent and never corrupt accounting.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.buffer import Buffer
from repro.hamr.runtime import set_active_device, set_current_clock
from repro.hamr.stream import reset_default_streams
from repro.hamr.view import accessible_view
from repro.hw.clock import SimClock
from repro.hw.node import VirtualNode, get_node, set_node

DEVICE_ALLOCATORS = [
    Allocator.CUDA,
    Allocator.CUDA_ASYNC,
    Allocator.CUDA_UVA,
    Allocator.HIP,
    Allocator.OPENMP,
    Allocator.SYCL,
    Allocator.KOKKOS,
]
HOST_ALLOCATORS = [Allocator.MALLOC, Allocator.CUDA_HOST, Allocator.SYCL_HOST]
PMS = [PMKind.HOST, PMKind.CUDA, PMKind.HIP, PMKind.OPENMP, PMKind.SYCL]


class BufferLifecycle(RuleBasedStateMachine):
    buffers = Bundle("buffers")
    views = Bundle("views")

    @initialize()
    def setup(self):
        from repro.hamr.pool import reset_pools

        set_node(VirtualNode())
        reset_default_streams()
        reset_pools()
        set_current_clock(SimClock(name="stateful"))
        set_active_device(0)
        self.shadow: dict[int, np.ndarray] = {}  # id(buffer) -> contents
        self.owned: dict[int, int] = {}          # id(buffer) -> nbytes
        self.live_views: list = []

    # -- rules -------------------------------------------------------------------
    @rule(
        target=buffers,
        size=st.integers(1, 200),
        allocator=st.sampled_from(DEVICE_ALLOCATORS + HOST_ALLOCATORS),
        device=st.integers(0, 3),
        seed=st.integers(0, 2**31 - 1),
    )
    def allocate(self, size, allocator, device, seed):
        dev = HOST_DEVICE_ID if allocator.is_host_resident else device
        buf = Buffer.allocate(size, np.float64, allocator, device_id=dev)
        rng = np.random.default_rng(seed)
        buf.data[:] = rng.normal(size=size)
        self.shadow[id(buf)] = buf.data.copy()
        self.owned[id(buf)] = buf.nbytes
        return buf

    @rule(
        target=buffers,
        size=st.integers(1, 200),
        device=st.integers(0, 3),
        seed=st.integers(0, 2**31 - 1),
    )
    def wrap_external(self, size, device, seed):
        rng = np.random.default_rng(seed)
        ext = rng.normal(size=size)
        buf = Buffer.wrap(ext, Allocator.OPENMP, device_id=device)
        self.shadow[id(buf)] = ext.copy()
        # wrapped memory is externally owned: not in self.owned
        return buf

    @rule(
        target=views,
        buf=buffers,
        pm=st.sampled_from(PMS),
        device=st.integers(-1, 3),
    )
    def take_view(self, buf, pm, device):
        if buf.freed:
            return None
        if pm is PMKind.HOST:
            device = HOST_DEVICE_ID
        elif device == HOST_DEVICE_ID:
            device = 0
        view = accessible_view(buf, pm, device)
        view.synchronize()
        self.live_views.append((view, id(buf)))
        return (view, id(buf))

    @rule(entry=views)
    def release_view(self, entry):
        if entry is None:
            return
        view, _src = entry
        view.release()
        self.live_views = [(v, s) for v, s in self.live_views if v is not view]

    @rule(buf=buffers)
    def free_buffer(self, buf):
        # Only free buffers with no outstanding in-place views; a real
        # consumer holds the shared owner alive (we model the contract).
        if any(
            s == id(buf) and not v.is_temporary and v._released is False
            for v, s in self.live_views
        ):
            return
        buf.free()
        self.owned.pop(id(buf), None)
        self.shadow.pop(id(buf), None)

    @rule(buf=buffers)
    def synchronize(self, buf):
        if not buf.freed:
            buf.synchronize()

    # -- invariants ----------------------------------------------------------------
    @invariant()
    def memory_accounting_matches_live_buffers(self):
        from repro.hamr.pool import pool_for

        node = get_node()
        used = sum(r.mem_used for r in node.iter_resources())
        owned = sum(self.owned.values())
        temps = sum(
            v.buffer.nbytes
            for v, _ in self.live_views
            if v.is_temporary and not v._released
        )
        # Stream-ordered (pool) frees keep their footprint on the device
        # until trimmed.
        pooled = sum(
            pool_for(r).pooled_bytes for r in node.iter_resources()
        )
        assert used == owned + temps + pooled, (used, owned, temps, pooled)

    @invariant()
    def views_reflect_shadow_contents(self):
        for view, src in self.live_views:
            if view._released or src not in self.shadow:
                continue
            np.testing.assert_array_equal(view.get(), self.shadow[src])

    @invariant()
    def no_negative_memory(self):
        for r in get_node().iter_resources():
            assert 0 <= r.mem_used <= r.mem_capacity


BufferLifecycle.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestBufferLifecycle = BufferLifecycle.TestCase
