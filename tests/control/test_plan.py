"""Tests for ControlConfig parsing and the ControlPlane wiring/taps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.plan import (
    ControlConfig,
    ControlPlane,
    GovernorSetting,
    estimate_deep_copy_time,
    payload_nbytes,
)
from repro.errors import ConfigError
from repro.hamr.runtime import current_clock
from repro.hw.trace import chrome_trace
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.bridge import Bridge
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.execution import ExecutionMethod
from repro.sensei.xml_config import parse_document
from repro.svtk.table import TableData
from repro.transport.metrics import TransportMetrics
from repro.transport.wire import get_codec
from repro.units import MiB, gbs


class TestGovernorSetting:
    @pytest.mark.parametrize("raw", ["on", "1", "true", "YES"])
    def test_on(self, raw):
        s = GovernorSetting.parse(raw)
        assert s.enabled and not s.frozen and s.value == "on"

    @pytest.mark.parametrize("raw", ["off", "0", "False", "no"])
    def test_off(self, raw):
        s = GovernorSetting.parse(raw)
        assert not s.enabled and s.value == "off"

    @pytest.mark.parametrize("raw", ["freeze", "frozen", "observe"])
    def test_freeze(self, raw):
        s = GovernorSetting.parse(raw)
        assert s.enabled and s.frozen and s.value == "freeze"

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError, match="on/off/freeze"):
            GovernorSetting.parse("maybe")


class TestControlConfig:
    def test_defaults(self):
        cfg = ControlConfig()
        assert cfg.enabled and cfg.interval == 1 and cfg.window == 64
        assert cfg.codec.value == "on"
        assert cfg.pool_watermark_kib is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0},
            {"window": 0},
            {"mode_low": 0.2, "mode_high": 0.1},
            {"codec_margin": 0.5},
            {"overload": 0.9},
            {"pool_watermark_kib": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ControlConfig(**kwargs)

    def test_from_xml_attrs(self):
        cfg = ControlConfig.from_xml_attrs(
            {
                "enabled": "1",
                "seed": "7",
                "interval": "2",
                "window": "16",
                "codec": "freeze",
                "placement": "off",
                "mode_low": "0.02",
                "mode_high": "0.2",
                "codec_margin": "1.5",
                "overload": "2.0",
                "pool_watermark_kib": "512",
            }
        )
        assert cfg.seed == 7 and cfg.interval == 2 and cfg.window == 16
        assert cfg.codec.value == "freeze"
        assert not cfg.placement.enabled
        assert cfg.execution.value == "on"  # unmentioned: default on
        assert cfg.mode_low == 0.02 and cfg.mode_high == 0.2
        assert cfg.pool_watermark_kib == 512

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ConfigError, match="unknown attribute"):
            ControlConfig.from_xml_attrs({"kodec": "on"})

    def test_bad_number_rejected(self):
        with pytest.raises(ConfigError, match="interval"):
            ControlConfig.from_xml_attrs({"interval": "often"})

    def test_bad_enabled_rejected(self):
        with pytest.raises(ConfigError, match="enabled"):
            ControlConfig.from_xml_attrs({"enabled": "maybe"})


class TestControlXml:
    def test_control_element_parsed(self):
        doc = parse_document(
            """
            <sensei>
              <control seed="3" execution="freeze" pool_watermark_kib="64"/>
              <analysis type="histogram" mesh="m" array="a"/>
            </sensei>
            """
        )
        assert doc.control is not None
        assert doc.control.seed == 3
        assert doc.control.execution.value == "freeze"
        assert doc.control.pool_watermark_kib == 64

    def test_no_control_element_means_none(self):
        doc = parse_document(
            "<sensei><analysis type='histogram' mesh='m' array='a'/></sensei>"
        )
        assert doc.control is None

    def test_duplicate_control_rejected(self):
        with pytest.raises(ConfigError, match="at most one"):
            parse_document("<sensei><control/><control/></sensei>")


def make_adaptor(step, n=256):
    t = TableData("bodies")
    t.add_host_column("x", np.zeros(n))
    da = TableDataAdaptor({"bodies": t})
    da.set_step(step, 0.1 * step)
    return da


class TestPayloadHelpers:
    def test_payload_nbytes_counts_table_columns(self):
        assert payload_nbytes(make_adaptor(0, n=256)) == 256 * 8

    def test_copy_estimate_positive_and_scales(self):
        small = estimate_deep_copy_time(make_adaptor(0, n=64))
        large = estimate_deep_copy_time(make_adaptor(0, n=4096))
        assert 0 < small < large


class HeavyAnalysis(AnalysisAdaptor):
    """In situ work that costs ``cost`` simulated seconds per step."""

    def __init__(self, cost=0.5):
        super().__init__("heavy")
        self.cost = cost

    def acquire(self, data, deep):
        return data.time_step

    def process(self, payload, comm, device_id):
        current_clock().advance(self.cost)


class TestControlPlaneBridge:
    """Single-rank bridge scenarios on the shared ``spmd_control`` fixture.

    Each scenario runs as a 1-rank SPMD program: the fixture supplies
    the communicator, a fresh seeded clock, and the rank's control
    plane, exactly as the multi-rank coordination tests do.
    """

    def run_bridge(self, spmd_control, config, steps=6, cost=0.5):
        def body(comm, plane):
            bridge = Bridge()
            heavy = HeavyAnalysis(cost=cost)
            bridge.initialize(analyses=[heavy])
            if plane is not None:
                bridge.attach_control(plane)
            clk = current_clock()
            start = clk.now
            for step in range(steps):
                clk.advance(1.0)  # the solver
                bridge.execute(make_adaptor(step))
            bridge.finalize()
            return heavy, clk.now - start

        return spmd_control(1, body, config=config)

    def test_heavy_insitu_flips_to_asynchronous(self, spmd_control):
        run = self.run_bridge(spmd_control, ControlConfig())
        heavy, _ = run.results[0]
        plane = run.planes[0]
        assert heavy.execution_method is ExecutionMethod.ASYNCHRONOUS
        assert "execution=asynchronous" in run.actions(0)
        assert plane.signals.pushed == 6
        assert plane.summary()["by_governor"]["execution"] >= 1

    def test_light_insitu_stays_lockstep(self, spmd_control):
        run = self.run_bridge(spmd_control, ControlConfig(), cost=0.001)
        heavy, _ = run.results[0]
        assert heavy.execution_method is ExecutionMethod.LOCKSTEP
        assert not [d for d in run.decisions(0) if d.governor == "execution"]

    def test_frozen_execution_governor_logs_only(self, spmd_control):
        cfg = ControlConfig.from_xml_attrs({"execution": "freeze"})
        run = self.run_bridge(spmd_control, cfg)
        heavy, _ = run.results[0]
        assert heavy.execution_method is ExecutionMethod.LOCKSTEP
        frozen = [d for d in run.decisions(0) if d.governor == "execution"]
        assert frozen and all(not d.applied for d in frozen)

    def test_disabled_plane_is_inert(self, spmd_control):
        run = self.run_bridge(spmd_control, ControlConfig(enabled=False))
        heavy, _ = run.results[0]
        plane = run.planes[0]
        assert heavy.execution_method is ExecutionMethod.LOCKSTEP
        assert plane.signals.pushed == 0
        assert plane.decisions == [] and plane.governors == []

    def test_disabled_plane_matches_no_plane_bit_identically(self, spmd_control):
        t_without = None
        for config in (None, ControlConfig(enabled=False)):
            run = self.run_bridge(spmd_control, config)
            _, elapsed = run.results[0]
            if t_without is None:
                t_without = elapsed
            else:
                assert elapsed == t_without

    def test_placement_governor_follows_device_loads(self, spmd_control):
        def body(comm, plane):
            bridge = Bridge()
            bridge.initialize(analyses=[HeavyAnalysis(cost=0.01)])
            bridge.attach_control(plane)
            bridge.execute(make_adaptor(0))
            plane.observe_device_loads(0, {0: 0.95, 1: 0.1, 2: 0.1, 3: 0.1})
            bridge.finalize()
            return bridge.analyses[0].placement

        run = spmd_control(1, body, config=ControlConfig())
        placement = run.results[0]
        placed = [d for d in run.decisions(0) if d.governor == "placement"]
        assert len(placed) == 1
        assert placed[0].applied
        assert placement.offset == 1
        assert placement.n_use == 3


class FakeSender:
    """Stands in for a ReliableSender: cumulative metrics + codec knob."""

    def __init__(self):
        self.metrics = TransportMetrics(role="sender", peer="test")
        self.codec = get_codec("none")
        self.switched = []

    def set_codec(self, name):
        self.codec = get_codec(name)
        self.switched.append(name)

    def ship(self, nbytes, bandwidth):
        """Pretend to send ``nbytes`` over a ``bandwidth`` B/s link."""
        m = self.metrics
        wire = nbytes if self.codec.name == "none" else nbytes // 100
        m.raw_bytes += nbytes
        m.wire_bytes += wire
        m.bytes_out += wire
        from repro.transport.wire import SERIALIZE_BANDWIDTH

        encode = nbytes / SERIALIZE_BANDWIDTH
        if self.codec.name != "none":
            encode += self.codec.compress_time(nbytes)
        apparent = encode + wire / bandwidth
        current_clock().advance(apparent)
        return apparent


class TestControlPlaneTransport:
    def drive(self, plane, bandwidth, steps=6):
        sender = FakeSender()
        table = TableData("t")
        table.add_host_column("x", np.zeros(4096))
        for step in range(steps):
            apparent = sender.ship(int(1 * MiB), bandwidth)
            plane.observe_transport_step(
                sender, step, apparent, table=table
            )
        return sender

    def test_slow_link_switches_codec(self):
        plane = ControlPlane(ControlConfig())
        sender = self.drive(plane, bandwidth=gbs(0.02))
        assert sender.switched == ["zlib"]
        assert any(d.action == "codec=zlib" for d in plane.decisions)
        obs = plane.signals.latest
        assert obs.payload_bytes == int(1 * MiB)
        assert obs.extras_dict["codec"] == "zlib"

    def test_fast_link_keeps_raw(self):
        plane = ControlPlane(ControlConfig())
        sender = self.drive(plane, bandwidth=gbs(50.0))
        assert sender.switched == []

    def test_codec_off_means_no_governor(self):
        cfg = ControlConfig.from_xml_attrs({"codec": "off"})
        plane = ControlPlane(cfg)
        sender = self.drive(plane, bandwidth=gbs(0.02))
        assert sender.switched == []
        assert plane.governors == []
        assert plane.signals.pushed == 6  # still observing

    def test_decisions_deterministic_for_identical_traffic(self):
        def run():
            plane = ControlPlane(ControlConfig(seed=11))
            self.drive(plane, bandwidth=gbs(0.02))
            return [(d.step, d.action) for d in plane.decisions]

        assert run() == run()


class TestChromeEvents:
    def make_plane_with_decision(self):
        plane = ControlPlane(ControlConfig())
        bridge = Bridge()
        bridge.initialize(analyses=[HeavyAnalysis(cost=0.5)])
        bridge.attach_control(plane)
        clk = current_clock()
        for step in range(3):
            clk.advance(1.0)
            bridge.execute(make_adaptor(step))
        bridge.finalize()
        return plane

    def test_instant_event_shape(self):
        plane = self.make_plane_with_decision()
        events = plane.chrome_instant_events()
        assert events
        ev = events[0]
        assert ev["ph"] == "i" and ev["s"] == "g"
        assert ev["cat"] == "control"
        assert "execution" in ev["name"]
        assert {"step", "reason", "applied"} <= set(ev["args"])

    def test_events_ride_along_in_chrome_trace(self):
        plane = self.make_plane_with_decision()
        extra = plane.chrome_instant_events()
        trace = chrome_trace([], extra_events=extra)
        assert [e for e in trace if e.get("ph") == "i"] == extra
