"""Tests for the controller primitives: EWMA, hysteresis, bandit."""

from __future__ import annotations

import pytest

from repro.control.policy import EWMA, DiscountedUCB, Hysteresis


class TestEWMA:
    def test_no_estimate_until_first_sample(self):
        e = EWMA(0.5)
        assert e.value is None
        assert e.get(7.0) == 7.0

    def test_first_sample_taken_verbatim(self):
        e = EWMA(0.1)
        assert e.update(4.0) == 4.0

    def test_blends_toward_new_samples(self):
        e = EWMA(0.5)
        e.update(0.0)
        assert e.update(1.0) == pytest.approx(0.5)
        assert e.update(1.0) == pytest.approx(0.75)

    def test_converges_on_constant_signal(self):
        e = EWMA(0.3)
        for _ in range(100):
            e.update(2.5)
        assert e.value == pytest.approx(2.5)

    def test_reset_forgets(self):
        e = EWMA()
        e.update(1.0)
        e.reset()
        assert e.value is None

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EWMA(0.0)
        with pytest.raises(ValueError):
            EWMA(1.5)


class TestHysteresis:
    def test_flips_only_outside_the_band(self):
        h = Hysteresis(0.05, 0.15)
        assert h.update(0.10) is False  # inside: keeps state
        assert h.update(0.20) is True   # above high: flips on
        assert h.update(0.10) is True   # inside: keeps state
        assert h.update(0.01) is False  # below low: flips off

    def test_hover_near_one_threshold_does_not_flap(self):
        h = Hysteresis(0.05, 0.15)
        h.update(0.2)
        for v in (0.14, 0.16, 0.13, 0.151, 0.06):
            assert h.update(v) is True

    def test_initial_state_respected(self):
        assert Hysteresis(0.0, 1.0, state=True).update(0.5) is True
        assert Hysteresis(0.0, 1.0, state=False).update(0.5) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            Hysteresis(0.2, 0.1)


class TestDiscountedUCB:
    def test_plays_unplayed_arms_in_declaration_order(self):
        b = DiscountedUCB(("a", "b", "c"))
        for expected in ("a", "b", "c"):
            arm = b.select()
            assert arm == expected
            b.update(arm, 0.0)

    def test_prefers_the_rewarding_arm(self):
        b = DiscountedUCB(("bad", "good"), exploration=0.01)
        for _ in range(20):
            b.update("bad", -1.0)
            b.update("good", -0.1)
        assert b.select() == "good"

    def test_discount_tracks_drift(self):
        """An arm that was great long ago loses to a recently-good one."""
        b = DiscountedUCB(("a", "b"), discount=0.5, exploration=0.0)
        for _ in range(5):
            b.update("a", 1.0)
        for _ in range(10):
            b.update("a", -1.0)
            b.update("b", 0.5)
        assert b.select() == "b"

    def test_deterministic_under_seed(self):
        def run(seed):
            b = DiscountedUCB(("x", "y", "z"), seed=seed)
            picks = []
            for i in range(30):
                arm = b.select()
                picks.append(arm)
                b.update(arm, 0.0)  # all ties: forces RNG tie-breaks
            return picks

        assert run(7) == run(7)

    def test_unplayed_arm_scores_infinite(self):
        b = DiscountedUCB(("a", "b"))
        b.update("a", 1.0)
        assert b.score("b") == float("inf")
        assert b.mean("b") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiscountedUCB(())
        with pytest.raises(ValueError):
            DiscountedUCB(("a", "a"))
        with pytest.raises(ValueError):
            DiscountedUCB(("a",), discount=0.0)
        with pytest.raises(ValueError):
            DiscountedUCB(("a",), exploration=-1.0)
        with pytest.raises(ValueError):
            DiscountedUCB(("a",)).update("zzz", 0.0)
