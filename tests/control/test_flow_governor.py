"""FlowGovernor: AIMD window control + chunk rungs, deterministically."""

from __future__ import annotations

import pytest

from repro.control.governors import FlowBounds, FlowGovernor


def make_gov(**kw):
    calls = {"window": [], "chunk": []}
    kw.setdefault("bounds", FlowBounds(
        min_credits=1, max_credits=16, min_chunk=1024, max_chunk=16384
    ))
    gov = FlowGovernor(
        window_actuator=calls["window"].append,
        chunk_actuator=calls["chunk"].append,
        credits=4,
        chunk_bytes=4096,
        **kw,
    )
    return gov, calls


class TestAdditiveIncrease:
    def test_grows_while_flat_and_saturated(self):
        gov, calls = make_gov()
        for step in range(3):
            gov.observe(step, ack_latency=1e-4, retries=0, chunks=10,
                        inflight_peak=gov.credits)
            gov.decide(step)
        # One credit per decision: 4 -> 5 -> 6 -> 7.
        assert calls["window"] == [5, 6, 7]

    def test_no_growth_without_saturation(self):
        gov, calls = make_gov()
        gov.observe(0, ack_latency=1e-4, retries=0, chunks=10,
                    inflight_peak=2)  # window never filled: no demand
        d = gov.decide(0)
        assert calls["window"] == []
        # (the chunk rung may still move; the window must not)
        assert gov.credits == 4
        assert d is None or "window=4" in d.action

    def test_latency_inflation_stops_growth(self):
        gov, calls = make_gov(latency_slack=1.5)
        gov.observe(0, ack_latency=1e-4, retries=0, chunks=10,
                    inflight_peak=4)
        gov.decide(0)  # establishes the floor, grows
        gov.observe(1, ack_latency=1e-3, retries=0, chunks=10,
                    inflight_peak=gov.credits)
        before = gov.credits
        gov.decide(1)  # EWMA now far above 1.5x floor: hold
        assert gov.credits == before

    def test_growth_respects_max_credits(self):
        gov, calls = make_gov()
        for step in range(40):
            gov.observe(step, ack_latency=1e-4, retries=0, chunks=10,
                        inflight_peak=gov.credits)
            gov.decide(step)
        assert gov.credits == gov.bounds.max_credits
        assert max(calls["window"]) == 16


class TestMultiplicativeDecrease:
    def test_retry_spike_halves_window_and_chunk(self):
        gov, calls = make_gov()
        gov.observe(0, ack_latency=1e-4, retries=5, chunks=10,
                    inflight_peak=4)
        d = gov.decide(0)
        assert d is not None and d.applied
        assert gov.credits == 2 and gov.chunk_bytes == 2048
        assert calls["window"] == [2] and calls["chunk"] == [2048]
        assert "multiplicative decrease" in d.reason

    def test_cooldown_holds_between_shrinks(self):
        gov, calls = make_gov(cooldown=3)
        for step in range(3):
            gov.observe(step, ack_latency=1e-4, retries=5, chunks=10,
                        inflight_peak=4)
            gov.decide(step)
        # Only the step-0 shrink fired; steps 1-2 were inside cooldown.
        assert calls["window"] == [2]
        gov.observe(3, ack_latency=1e-4, retries=5, chunks=10,
                    inflight_peak=4)
        gov.decide(3)
        assert calls["window"] == [2, 1]

    def test_shrink_respects_min_credits(self):
        gov, calls = make_gov(cooldown=0, bounds=FlowBounds(
            min_credits=2, max_credits=16, min_chunk=2048, max_chunk=16384
        ))
        for step in range(0, 20, 5):
            gov.observe(step, ack_latency=1e-4, retries=8, chunks=10,
                        inflight_peak=4)
            gov.decide(step)
        assert gov.credits == 2
        assert gov.chunk_bytes == 2048


class TestChunkRungs:
    def test_clean_link_climbs_power_of_two_rungs(self):
        gov, calls = make_gov()
        for step in range(5):
            gov.observe(step, ack_latency=1e-4, retries=0, chunks=10,
                        inflight_peak=0)
            gov.decide(step)
        assert calls["chunk"] == [8192, 16384]  # 4096 doubles to the cap
        assert gov.chunk_bytes == 16384

    def test_hysteresis_band_prevents_flapping(self):
        gov, calls = make_gov()
        # A retry rate inside the band (low=0.01 < r < high=0.10)
        # moves nothing in either direction.
        gov.observe(0, ack_latency=1e-4, retries=1, chunks=20,
                    inflight_peak=0)
        assert gov.decide(0) is None
        assert calls["chunk"] == [] and calls["window"] == []


class TestGovernorPlumbing:
    def test_frozen_logs_but_never_actuates(self):
        gov, calls = make_gov(frozen=True)
        gov.observe(0, ack_latency=1e-4, retries=5, chunks=10,
                    inflight_peak=4)
        d = gov.decide(0)
        assert d is not None and not d.applied
        assert calls["window"] == [] and calls["chunk"] == []
        assert gov.credits == 4  # frozen: internal state holds too

    def test_no_decision_before_first_observation(self):
        gov, _ = make_gov()
        assert gov.decide(0) is None

    def test_ingest_node_overrides_local_signals(self):
        gov, calls = make_gov()
        gov.observe(0, ack_latency=1e-4, retries=5, chunks=10,
                    inflight_peak=4)  # local view: lossy
        gov.ingest_node(retry_rate=0.0, ack_latency=1e-4)
        assert gov.coordinated
        gov.decide(0)
        # Node mean says the link is clean: grow, don't shrink.
        assert calls["window"] == [5]
        # Local EWMAs stay intact as this rank's collective contribution.
        assert gov.local_retry_rate == pytest.approx(0.5)

    def test_decisions_deterministic_across_reruns(self):
        def run():
            gov, _ = make_gov()
            log = []
            schedule = [
                (0, 1e-4, 0, 10, 4), (1, 1e-4, 0, 10, 5),
                (2, 2e-4, 3, 10, 6), (3, 2e-4, 4, 10, 3),
                (4, 1e-4, 0, 10, 3), (5, 1e-4, 0, 10, 3),
            ]
            for step, ack, retries, chunks, peak in schedule:
                gov.observe(step, ack, retries, chunks, peak)
                d = gov.decide(step)
                if d is not None:
                    log.append((d.step, d.action, d.reason, d.args))
            return log
        first, second = run(), run()
        assert first == second and first

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            FlowBounds(min_credits=0)
        with pytest.raises(ValueError):
            FlowBounds(min_credits=8, max_credits=4)
        with pytest.raises(ValueError):
            FlowBounds(min_chunk=8192, max_chunk=4096)
