"""Tests for the four governors: decisions, actuation, freeze."""

from __future__ import annotations

import pytest

from repro.control.governors import (
    CodecGovernor,
    ExecutionModeGovernor,
    PlacementGovernor,
    PoolTrimGovernor,
)
from repro.hamr.pool import pool_for
from repro.hamr.runtime import current_clock
from repro.hw.node import get_node
from repro.sensei.execution import ExecutionMethod
from repro.sensei.placement import DevicePlacement
from repro.units import KiB, MiB, gbs


class Recorder:
    def __init__(self):
        self.calls = []

    def __call__(self, *args):
        self.calls.append(args)


def feed_codec(gov, steps=4, payload=int(4 * MiB), bandwidth=gbs(0.05),
               sample=b"\x00" * 8192):
    """Feed ``steps`` uncompressed observations at a given link speed."""
    for step in range(steps):
        gov.observe(
            step,
            raw_bytes=payload,
            wire_bytes=payload,
            transfer_time=payload / bandwidth,
            apparent_time=payload / bandwidth,
            sample=sample,
        )


class TestCodecGovernor:
    def test_silent_until_estimates_warm(self):
        gov = CodecGovernor()
        assert gov.decide(0) is None

    def test_slow_link_switches_to_compression(self):
        rec = Recorder()
        gov = CodecGovernor(actuator=rec, initial="none")
        feed_codec(gov, bandwidth=gbs(0.05))  # zeros compress ~1000x
        d = gov.decide(4)
        assert d is not None
        assert d.action == "codec=zlib"
        assert d.applied
        assert rec.calls == [("zlib",)]
        assert gov.current == "zlib"
        assert d.args_dict["cost_best"] < d.args_dict["cost_current"]

    def test_fast_link_stays_uncompressed(self):
        """When the wire outruns the compressor, paying it is a loss."""
        rec = Recorder()
        gov = CodecGovernor(actuator=rec, initial="none")
        feed_codec(gov, bandwidth=gbs(100.0))
        assert gov.decide(4) is None
        assert rec.calls == []

    def test_margin_suppresses_marginal_switches(self):
        gov_tight = CodecGovernor(margin=1.0)
        gov_wide = CodecGovernor(margin=1e9)
        for g in (gov_tight, gov_wide):
            feed_codec(g, bandwidth=gbs(0.05))
        assert gov_tight.decide(4) is not None
        assert gov_wide.decide(4) is None

    def test_probe_charges_the_simulated_clock(self):
        clk = current_clock()
        before = clk.now
        gov = CodecGovernor()
        gov.observe(0, raw_bytes=1024, wire_bytes=1024, transfer_time=0.01,
                    sample=b"\x01" * 4096)
        assert clk.now > before  # adaptivity is not free

    def test_frozen_logs_but_does_not_actuate(self):
        rec = Recorder()
        gov = CodecGovernor(actuator=rec, frozen=True)
        feed_codec(gov, bandwidth=gbs(0.05))
        d = gov.decide(4)
        assert d is not None and not d.applied
        assert rec.calls == []
        assert gov.current == "none"  # state untouched in a dry run

    def test_bandit_policy_is_deterministic(self):
        def run(seed):
            gov = CodecGovernor(policy="bandit", seed=seed)
            actions = []
            for step in range(16):
                gov.observe(step, raw_bytes=1024, wire_bytes=1024,
                            transfer_time=0.01, apparent_time=0.02)
                d = gov.decide(step)
                actions.append(d.action if d else None)
                if d is not None and d.applied:
                    pass
            return actions

        assert run(3) == run(3)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            CodecGovernor(policy="oracle")


class TestExecutionModeGovernor:
    def test_heavy_insitu_goes_asynchronous(self):
        rec = Recorder()
        gov = ExecutionModeGovernor(actuator=rec, low=0.05, high=0.15)
        gov.observe(0, sim_time=1.0, insitu_time=0.5, apparent_time=0.5,
                    copy_estimate=0.02)
        d = gov.decide(0)
        assert d is not None
        assert d.action == "execution=asynchronous"
        assert rec.calls == [(ExecutionMethod.ASYNCHRONOUS,)]
        assert gov.mode is ExecutionMethod.ASYNCHRONOUS

    def test_light_insitu_returns_to_lockstep(self):
        gov = ExecutionModeGovernor(
            actuator=Recorder(), initial=ExecutionMethod.ASYNCHRONOUS,
            alpha=0.5,
        )
        for step in range(8):
            gov.observe(step, sim_time=1.0, insitu_time=0.001,
                        apparent_time=0.002)
        d = gov.decide(8)
        assert d is not None
        assert d.action == "execution=lockstep"
        assert gov.mode is ExecutionMethod.LOCKSTEP

    def test_band_interior_keeps_current_mode(self):
        gov = ExecutionModeGovernor(low=0.05, high=0.15)
        gov.observe(0, sim_time=1.0, insitu_time=0.10, apparent_time=0.10,
                    copy_estimate=0.0)
        assert gov.decide(0) is None
        assert gov.mode is ExecutionMethod.LOCKSTEP

    def test_copy_cost_counts_against_async(self):
        """In situ work the copy eats cannot be hidden by async."""
        gov = ExecutionModeGovernor(low=0.05, high=0.15)
        # Half the step is in situ, but copying costs nearly as much.
        gov.observe(0, sim_time=1.0, insitu_time=0.5, apparent_time=0.5,
                    copy_estimate=0.45)
        assert gov.decide(0) is None
        assert gov.last_ratio == pytest.approx(0.05, abs=1e-9)

    def test_measured_copy_replaces_the_estimate(self):
        gov = ExecutionModeGovernor(initial=ExecutionMethod.ASYNCHRONOUS)
        # Async apparent time IS the copy; later estimates are ignored.
        gov.observe(0, sim_time=1.0, insitu_time=0.5, apparent_time=0.2)
        assert gov._copy_measured
        gov.observe(1, sim_time=1.0, insitu_time=0.5, apparent_time=0.2,
                    copy_estimate=99.0)
        assert gov._copy.value == pytest.approx(0.2)

    def test_frozen_never_switches(self):
        rec = Recorder()
        gov = ExecutionModeGovernor(actuator=rec, frozen=True)
        gov.observe(0, sim_time=1.0, insitu_time=0.8, apparent_time=0.8,
                    copy_estimate=0.0)
        d = gov.decide(0)
        assert d is not None and not d.applied
        assert rec.calls == []
        assert gov.mode is ExecutionMethod.LOCKSTEP


class TestPlacementGovernor:
    def test_overload_reaims_at_the_calm_set(self):
        rec = Recorder()
        gov = PlacementGovernor(actuator=rec, rank=0)  # Eq. 1 -> device 0
        gov.observe(0, {0: 0.9, 1: 0.10, 2: 0.20, 3: 0.15})
        d = gov.decide(0)
        assert d is not None
        assert rec.calls, "actuator should receive the new placement"
        new = rec.calls[0][0]
        assert isinstance(new, DevicePlacement)
        assert new.offset == 1        # calmest device
        assert new.n_use == 3         # the calm set
        assert gov.placement == new
        assert d.args_dict["overloaded_device"] == 0

    def test_balanced_node_is_left_alone(self):
        gov = PlacementGovernor(rank=0)
        gov.observe(0, {0: 0.5, 1: 0.5, 2: 0.5, 3: 0.5})
        assert gov.decide(0) is None

    def test_no_loads_no_opinion(self):
        assert PlacementGovernor(rank=0).decide(0) is None

    def test_host_placement_is_out_of_scope(self):
        gov = PlacementGovernor(rank=0, base=DevicePlacement.host())
        gov.observe(0, {0: 0.9, 1: 0.1})
        assert gov.decide(0) is None

    def test_contention_dilates_shared_devices(self):
        gov = PlacementGovernor(rank=0)
        gov.observe(0, {0: 0.5, 1: 0.5}, parties={0: 3, 1: 1})
        s = gov.scores()
        assert s[0] > s[1]  # same busy fraction, but device 0 is shared

    def test_frozen_observes_only(self):
        rec = Recorder()
        gov = PlacementGovernor(actuator=rec, rank=0, frozen=True)
        base = gov.placement
        gov.observe(0, {0: 0.9, 1: 0.1, 2: 0.1, 3: 0.1})
        d = gov.decide(0)
        assert d is not None and not d.applied
        assert rec.calls == []
        assert gov.placement == base


class TestPoolTrimGovernor:
    def _pooled(self, nbytes):
        pool = pool_for(get_node().devices[0])
        pool.acquire(nbytes)
        pool.release(nbytes)
        return pool

    def test_trims_above_the_watermark(self):
        pool = self._pooled(int(4 * KiB))
        gov = PoolTrimGovernor(pool, int(1 * KiB))
        d = gov.decide(0)
        assert d is not None and d.applied
        assert pool.pooled_bytes <= int(1 * KiB)
        assert gov.trimmed_bytes == int(4 * KiB)
        assert d.args_dict["freed"] == int(4 * KiB)

    def test_below_watermark_is_quiet(self):
        pool = self._pooled(512)
        gov = PoolTrimGovernor(pool, int(1 * KiB))
        assert gov.decide(0) is None
        assert pool.pooled_bytes == 512

    def test_frozen_reports_without_trimming(self):
        pool = self._pooled(int(4 * KiB))
        gov = PoolTrimGovernor(pool, 0, frozen=True)
        d = gov.decide(0)
        assert d is not None and not d.applied
        assert pool.pooled_bytes == int(4 * KiB)
        assert gov.trimmed_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolTrimGovernor(self._pooled(64), -1)


class TestPoolGrowth:
    """Adaptive high-watermark: churn grows it, quiet shrinks it back."""

    WM = int(1 * KiB)

    def _pool(self):
        return pool_for(get_node().devices[0])

    def _gov(self, pool, **kw):
        kw.setdefault("adaptive", True)
        kw.setdefault("churn_window", 2)
        kw.setdefault("quiet_window", 2)
        return PoolTrimGovernor(pool, self.WM, **kw)

    def _churn(self, pool, nbytes=int(4 * KiB)):
        """One trim-then-refill cycle: the refill misses the pool."""
        pool.acquire(nbytes)
        pool.release(nbytes)

    def test_churn_streak_raises_the_watermark(self):
        pool = self._pool()
        self._churn(pool)
        gov = self._gov(pool)
        step = 0
        grown = None
        # Trim, refill (a miss), trim, refill ... until the churn
        # streak completes and the governor doubles the watermark.
        for step in range(8):
            d = gov.decide(step)
            if d is not None and "->" in d.action and "watermark" in d.action:
                grown = d
                break
            self._churn(pool)
        assert grown is not None and grown.applied
        assert gov.watermark == 2 * self.WM
        assert grown.args_dict["previous"] == self.WM
        assert grown.args_dict["misses"] >= 1

    def test_growth_capped_at_max_watermark(self):
        pool = self._pool()
        self._churn(pool)
        gov = self._gov(pool, max_watermark=2 * self.WM)
        for step in range(32):
            gov.decide(step)
            self._churn(pool)
        assert gov.watermark == 2 * self.WM

    def test_quiet_streak_shrinks_back_to_base(self):
        pool = self._pool()
        self._churn(pool)
        gov = self._gov(pool)
        for step in range(8):
            if gov.watermark > self.WM:
                break
            gov.decide(step)
            self._churn(pool)
        assert gov.watermark == 2 * self.WM
        # Quiet: pool inventory stays below the watermark, no misses.
        shrunk = None
        for step in range(8, 20):
            d = gov.decide(step)
            if d is not None and "watermark" in d.action:
                shrunk = d
                break
        assert shrunk is not None and shrunk.applied
        assert gov.watermark == self.WM
        # Never shrinks below the configured base.
        for step in range(20, 30):
            assert gov.decide(step) is None
        assert gov.watermark == self.WM

    def test_single_quiet_round_does_not_reset_growth(self):
        """Hysteresis: one quiet decision alone never moves the mark."""
        pool = self._pool()
        self._churn(pool)
        gov = self._gov(pool, quiet_window=3)
        for step in range(8):
            if gov.watermark > self.WM:
                break
            gov.decide(step)
            self._churn(pool)
        grown = gov.watermark
        assert grown == 2 * self.WM
        gov.decide(100)  # one quiet round
        self._churn(pool)
        gov.decide(101)  # churn again: quiet streak was reset
        assert gov.watermark == grown

    def test_non_adaptive_never_moves(self):
        pool = self._pool()
        self._churn(pool)
        gov = PoolTrimGovernor(pool, self.WM, adaptive=False)
        for step in range(8):
            d = gov.decide(step)
            assert d is None or "watermark" not in d.action
            self._churn(pool)
        assert gov.watermark == self.WM

    def test_frozen_adaptive_never_moves_the_watermark(self):
        """Frozen trims are unapplied, so churn never registers."""
        pool = self._pool()
        self._churn(pool)
        gov = self._gov(pool, frozen=True)
        decisions = []
        for step in range(8):
            d = gov.decide(step)
            if d is not None:
                decisions.append(d)
            self._churn(pool)
        # Trim decisions are logged but unapplied; the pool is never
        # actually drained, so no refill misses and no growth.
        assert decisions and all(not d.applied for d in decisions)
        assert all("watermark" not in d.action for d in decisions)
        assert gov.watermark == self.WM

    def test_validation(self):
        pool = self._pool()
        with pytest.raises(ValueError):
            self._gov(pool, churn_window=0)
        with pytest.raises(ValueError):
            self._gov(pool, max_watermark=self.WM // 2)


class TestDecisionRecord:
    def test_to_dict_round_trip(self):
        gov = ExecutionModeGovernor()
        gov.observe(0, sim_time=1.0, insitu_time=0.9, apparent_time=0.9,
                    copy_estimate=0.0)
        d = gov.decide(3, t=12.5)
        out = d.to_dict()
        assert out["governor"] == "execution"
        assert out["step"] == 3
        assert out["time"] == 12.5
        assert out["applied"] is False  # no actuator attached
        assert out["args"]["previous"] == "lockstep"
