"""Multi-rank tests for the cluster placement governor and its wiring.

Every scenario runs on the ``spmd_control`` fixture: N thread-backed
ranks, fresh seeded clocks, one ``ControlPlane`` per rank built from a
shared config.  The canonical crowding scenario mirrors the benchmark:
4 devices, background load on devices 1 and 2, every rank aimed at
device 0 by Eq. 1 — per-rank governors flap (each rank flees to the
same calm device), the coordinated governor spreads the ranks in one
round.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.control.cluster import ClusterPlacementGovernor
from repro.control.plan import ControlConfig, ControlPlane
from repro.errors import ConfigError
from repro.hw.contention import ContentionModel, SharedResource
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.bridge import Bridge
from repro.sensei.placement import DevicePlacement
from repro.sensei.xml_config import parse_document

BG = {1: 1.25, 2: 1.25}  # external load pinned to devices 1 and 2
BASE = 0.5               # busy fraction each governed rank adds
DIL = ContentionModel().dilation(SharedResource.GPU_COMPUTE, 1)


def crowded_loads(size):
    """Node-wide busy fractions with all ``size`` ranks on device 0."""
    crowd_dil = ContentionModel().dilation(
        SharedResource.GPU_COMPUTE, size - 1
    )
    loads = {0: size * BASE * crowd_dil, 3: 0.0}
    loads.update(BG)
    return loads, BASE * crowd_dil


class NullAnalysis(AnalysisAdaptor):
    def __init__(self, name="null"):
        super().__init__(name)

    def acquire(self, data, deep):
        return None

    def process(self, payload, comm, device_id):
        pass


def coordination_config(**extra):
    attrs = {
        "coordination": "node",
        "execution": "off",
        "codec": "off",
        "pool": "off",
    }
    attrs.update(extra)
    return ControlConfig.from_xml_attrs(attrs)


class TestClusterGovernor:
    def test_reaim_is_node_consistent_across_ranks(self, spmd_control):
        def body(comm, plane):
            applied = []
            gov = ClusterPlacementGovernor(
                comm,
                actuator=applied.append,
                base=DevicePlacement.auto(n_use=1),
            )
            loads, self_load = crowded_loads(comm.size)
            gov.observe(0, loads, self_load=self_load)
            decisions = gov.coordinate(0, t=0.0)
            return gov.placement, [d.to_dict() for d in decisions], applied

        run = spmd_control(2, body, devices=4)
        placements = [r[0] for r in run.results]
        logs = [r[1] for r in run.results]
        assert placements[0] == placements[1]
        p = placements[0]
        assert (p.n_use, p.stride, p.offset) == (2, 1, 3)
        # Per-rank Eq. 1 resolution now fans the ranks out.
        assert {p.resolve(r, n_available=4) for r in range(2)} == {0, 3}
        assert logs[0] == logs[1]
        assert all(r[2] == [p] for r in run.results)

    def test_crowding_decision_carries_counts(self, spmd_control):
        def body(comm, plane):
            gov = ClusterPlacementGovernor(
                comm, base=DevicePlacement.auto(n_use=1)
            )
            loads, self_load = crowded_loads(comm.size)
            gov.observe(0, loads, self_load=self_load)
            gov.coordinate(0, t=0.0)
            return gov.last_crowding

        run = spmd_control(3, body, devices=4)
        for crowding in run.results:
            assert crowding is not None
            assert crowding.action == "crowding"
            assert not crowding.applied  # a finding, not an actuation
            args = crowding.args_dict
            assert args["crowded"] == ((0, 3),)
            assert args["idle"] == (1, 2, 3)
            assert args["counts"] == (3, 0, 0, 0)

    def test_converges_within_five_rounds_and_stays(self, spmd_control):
        """The acceptance loop: re-aim round 0, non-overlap from step 1."""

        def body(comm, plane):
            gov = ClusterPlacementGovernor(
                comm,
                actuator=lambda p: None,  # applied; state kept by governor
                base=DevicePlacement.auto(n_use=1),
            )
            contention = ContentionModel()
            history = []
            for step in range(6):
                current = gov.placement.resolve(comm.rank, n_available=4)
                assignment = comm.allgather(current)
                history.append(tuple(assignment))
                counts = {d: assignment.count(d) for d in set(assignment)}
                loads = dict(BG)
                for d, c in counts.items():
                    dil = contention.dilation(
                        SharedResource.GPU_COMPUTE, c - 1
                    )
                    loads[d] = loads.get(d, 0.0) + c * BASE * dil
                self_dil = contention.dilation(
                    SharedResource.GPU_COMPUTE, counts[current] - 1
                )
                gov.observe(step, loads, self_load=BASE * self_dil)
                gov.coordinate(step, t=float(step))
            return history, gov.rounds

        run = spmd_control(2, body, devices=4)
        history, rounds = run.results[0]
        assert rounds == 6
        assert history[0] == (0, 0)  # both ranks crowded at the start
        for assignment in history[1:5]:
            if len(set(assignment)) == len(assignment):
                break
        else:
            pytest.fail(f"no non-overlapping round within 5: {history}")
        # ... and the spread assignment is stable, not a flap.
        assert history[-1] == history[-2]
        assert len(set(history[-1])) == 2

    def test_frozen_governor_dry_runs(self, spmd_control):
        def body(comm, plane):
            applied = []
            gov = ClusterPlacementGovernor(
                comm,
                actuator=applied.append,
                base=DevicePlacement.auto(n_use=1),
                frozen=True,
            )
            loads, self_load = crowded_loads(comm.size)
            gov.observe(0, loads, self_load=self_load)
            decisions = gov.coordinate(0, t=0.0)
            return gov.placement, decisions, applied

        run = spmd_control(2, body, devices=4)
        for placement, decisions, applied in run.results:
            assert placement == DevicePlacement.auto(n_use=1)
            assert applied == []
            reaims = [
                d for d in decisions if d.action.startswith("placement=")
            ]
            assert reaims and not reaims[0].applied

    def test_disabled_rank_still_participates(self, spmd_control):
        """Enable-state mismatch must not deadlock the collective."""

        def body(comm, plane):
            gov = ClusterPlacementGovernor(
                comm,
                base=DevicePlacement.auto(n_use=1),
                enabled=comm.rank == 0,
            )
            loads, self_load = crowded_loads(comm.size)
            gov.observe(0, loads, self_load=self_load)
            return gov.coordinate(0, t=0.0)

        run = spmd_control(2, body, devices=4)
        assert run.results[1] == []  # disabled: contributes zeros only
        # Rank 0 sees a single participant and no crowding.
        assert all(
            d.action != "crowding" for d in run.results[0]
        )

    def test_identical_runs_log_identical_decisions(self, spmd_control):
        def body(comm, plane):
            gov = ClusterPlacementGovernor(
                comm, base=DevicePlacement.auto(n_use=1)
            )
            out = []
            for step in range(4):
                loads, self_load = crowded_loads(comm.size)
                gov.observe(step, loads, self_load=self_load)
                out.extend(
                    d.to_dict() for d in gov.coordinate(step, t=float(step))
                )
            return out

        first = spmd_control(2, body, devices=4)
        second = spmd_control(2, body, devices=4)
        assert first.results == second.results


class TestPlaneCoordination:
    def run_plane(self, spmd_control, config, size=2, steps=1):
        def body(comm, plane):
            bridge = Bridge()
            analysis = NullAnalysis()
            analysis.set_placement(DevicePlacement.auto(n_use=1))
            bridge.initialize(analyses=[analysis])
            bridge.attach_control(plane)
            plane.wire_bridge(bridge)
            for step in range(steps):
                loads, self_load = crowded_loads(comm.size)
                plane.observe_device_loads(step, loads, self_load=self_load)
            return analysis.placement

        return spmd_control(size, body, config=config, devices=4)

    def test_plane_applies_node_consistent_reaim(self, spmd_control):
        run = self.run_plane(spmd_control, coordination_config())
        placements = run.results
        assert placements[0] == placements[1]
        assert placements[0].n_use == 2
        for rank in range(2):
            names = {d.governor for d in run.decisions(rank)}
            assert names == {"cluster"}
            assert "crowding" in run.actions(rank)
        assert run.decisions(0)[0].to_dict() == run.decisions(1)[0].to_dict()

    def test_crowding_exported_as_instant_events(self, spmd_control):
        run = self.run_plane(spmd_control, coordination_config())
        events = run.planes[0].chrome_instant_events()
        crowding = [e for e in events if "crowding" in e["name"]]
        assert crowding
        ev = crowding[0]
        assert ev["ph"] == "i" and ev["s"] == "g" and ev["cat"] == "control"
        assert ev["args"]["crowded"] and ev["args"]["idle"]

    def test_coordination_off_keeps_per_rank_governor(self, spmd_control):
        cfg = ControlConfig.from_xml_attrs(
            {"execution": "off", "codec": "off", "pool": "off"}
        )
        run = self.run_plane(spmd_control, cfg)
        for plane in run.planes:
            assert [g.name for g in plane.governors] == ["placement"]
            assert not plane.coordinating

    def test_placement_off_disables_coordination(self, spmd_control):
        cfg = coordination_config(placement="off")
        run = self.run_plane(spmd_control, cfg)
        for plane in run.planes:
            assert plane.governors == []
            assert not plane.coordinating

    def test_placement_freeze_dry_runs_coordination(self, spmd_control):
        run = self.run_plane(
            spmd_control, coordination_config(placement="freeze")
        )
        for rank, placement in enumerate(run.results):
            assert placement == DevicePlacement.auto(n_use=1)
            reaims = [
                d for d in run.decisions(rank)
                if d.action.startswith("placement=")
            ]
            assert reaims and not reaims[0].applied

    def test_coordination_interval_gates_rounds(self, spmd_control):
        cfg = coordination_config(coordination_interval="2")
        run = self.run_plane(spmd_control, cfg, steps=4)
        for plane in run.planes:
            (gov,) = [g for g in plane.governors if g.name == "cluster"]
            assert gov.rounds == 2  # steps 0 and 2 only

    def test_attach_comm_after_wiring_rejected(self, spmd_control):
        def body(comm, plane):
            bridge = Bridge()
            analysis = NullAnalysis()
            bridge.initialize(analyses=[analysis])
            plane.wire_bridge(bridge)
            plane.attach_comm(comm)  # same comm: fine
            with pytest.raises(ConfigError, match="cannot change"):
                plane.attach_comm(object())
            return True

        run = spmd_control(2, body, config=coordination_config(), devices=4)
        assert run.results == [True, True]

    def test_coordinating_plane_without_comm_falls_back(self):
        plane = ControlPlane(coordination_config())
        bridge = Bridge()
        bridge.initialize(analyses=[NullAnalysis()])
        plane.wire_bridge(bridge)
        # The bridge's own SelfCommunicator was adopted instead.
        assert [g.name for g in plane.governors] == ["cluster"]


class TestCoordinationConfig:
    def test_xml_round_trip(self):
        doc = parse_document(
            """
            <sensei>
              <control coordination="node" coordination_interval="4"/>
              <analysis type="histogram" mesh="m" array="a"/>
            </sensei>
            """
        )
        assert doc.control.coordination == "node"
        assert doc.control.coordination_interval == 4

    def test_defaults_off(self):
        cfg = ControlConfig()
        assert cfg.coordination == "off"
        assert cfg.coordination_interval == 1
        assert not ControlPlane(cfg).coordinating

    def test_bad_coordination_rejected(self):
        with pytest.raises(ConfigError, match="coordination"):
            ControlConfig(coordination="rack")

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigError, match="coordination_interval"):
            ControlConfig.from_xml_attrs(
                {"coordination": "node", "coordination_interval": "0"}
            )
