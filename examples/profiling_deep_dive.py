#!/usr/bin/env python3
"""Deeper profiling of a placement run (the paper's Section 5 plan).

Runs one asynchronous same-device case through the real stack, then
analyzes the recorded timelines: per-resource utilization with a
category breakdown, idle-gap analysis (where would an in situ placement
fit?), a concurrency profile, and a Chrome-trace export loadable in
Perfetto / chrome://tracing.

Run:  python examples/profiling_deep_dive.py [trace.json]
"""

from __future__ import annotations

import sys

from repro.harness.calibrate import SmallWorkload, scaled_node_spec
from repro.harness.runner import execute_small
from repro.harness.spec import InSituPlacement, RunSpec
from repro.hw.node import get_node
from repro.hw.trace import (
    concurrency_profile,
    idle_gaps,
    utilization,
    write_chrome_trace,
)
from repro.sensei.execution import ExecutionMethod
from repro.units import fmt_time


def main() -> None:
    spec = RunSpec(InSituPlacement.SAME_DEVICE,
                   ExecutionMethod.ASYNCHRONOUS, nodes=1)
    w = SmallWorkload(n_bodies=1200, steps=4, n_coordinate_systems=3,
                      n_variables=3, bins=(32, 32))
    result = execute_small(spec, w, node_spec=scaled_node_spec())
    print(f"ran {spec.label}: total {fmt_time(result.total_time)}, "
          f"solver/iter {fmt_time(result.solver_per_iter)}")

    node = get_node()
    timelines = [r.timeline for r in node.iter_resources()]
    end = result.total_time

    print("\nper-resource utilization over the run:")
    for tl in timelines:
        u = utilization(tl, 0.0, end)
        cats = ", ".join(f"{k}={fmt_time(v)}" for k, v in sorted(u.by_category.items()))
        print(f"  {tl.name:<12} {100 * u.fraction:6.2f}%  ({cats or 'idle'})")

    print("\nlargest idle gaps per device (opportunities for placement):")
    for tl in timelines[1:]:
        gaps = sorted(idle_gaps(tl, 0.0, end), key=lambda g: g[1] - g[0],
                      reverse=True)[:3]
        desc = ", ".join(f"{fmt_time(b - a)} @ {fmt_time(a)}" for a, b in gaps)
        print(f"  {tl.name:<12} {desc or 'none'}")

    profile = concurrency_profile(timelines)
    if profile:
        peak = max(n for _, n in profile)
        print(f"\npeak resource concurrency: {peak} of {len(timelines)}")

    out = sys.argv[1] if len(sys.argv) > 1 else "placement_trace.json"
    write_chrome_trace(out, timelines)
    print(f"wrote {out} — load it in Perfetto or chrome://tracing")


if __name__ == "__main__":
    main()
