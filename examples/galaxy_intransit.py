#!/usr/bin/env python3
"""Galaxy analysis, in transit: M simulation ranks -> N analysis endpoints.

A Plummer-sphere galaxy (the MAGI-substitute initializer) is evolved by
four simulation ranks while two dedicated endpoint ranks receive the
particle tables over the (simulated) interconnect, assemble them, and
run the analyses — the M-to-N in transit mode that complements the
paper's on-node placements.  The endpoints bin mass radially (via the
x-y plane) and histogram the speed distribution, writing the final
grids as CSV.

Run:  python examples/galaxy_intransit.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.binning.axes import AxisSpec
from repro.binning.operator import BinRequest
from repro.binning.reduce import ReductionOp
from repro.newton.adaptor import NewtonDataAdaptor
from repro.newton.solver import NewtonSolver, SolverConfig
from repro.sensei.backends.binning import BinningAnalysis
from repro.sensei.intransit import InTransitLayout, run_in_transit
from repro.svtk.writer import write_vtk_image

N_BODIES = 2000
STEPS = 4
M_PRODUCERS, N_ENDPOINTS = 4, 2


def producer_main(sim_comm, bridge):
    solver = NewtonSolver(
        SolverConfig(
            n_bodies=N_BODIES, dt=5e-4, softening=0.05, seed=11,
            ic="plummer", box=20.0,
        ),
        sim_comm,
    )
    adaptor = NewtonDataAdaptor(solver)
    solver.run(STEPS, bridge=bridge, adaptor=adaptor)
    return solver.n_local


def analyses_factory():
    mass_xy = BinningAnalysis(
        "bodies",
        [AxisSpec("x", 64, -5, 5), AxisSpec("y", 64, -5, 5)],
        [BinRequest(ReductionOp.SUM, "mass")],
        name="mass-xy",
    )
    speed = BinningAnalysis(
        "bodies",
        [AxisSpec("vx", 48)],
        [BinRequest(ReductionOp.AVERAGE, "mass")],
        name="vx-dist",
    )
    for a in (mass_xy, speed):
        a.set_device_id(-1)
    return [mass_xy, speed]


def main() -> None:
    outdir = Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    outdir.mkdir(parents=True, exist_ok=True)

    layout = InTransitLayout(m=M_PRODUCERS, n=N_ENDPOINTS)
    producers, endpoints = run_in_transit(layout, producer_main, analyses_factory)
    print(f"{M_PRODUCERS} producers simulated {sum(producers)} bodies; "
          f"{N_ENDPOINTS} endpoints analyzed {endpoints[0].steps_processed} steps")

    # Endpoint results are globally reduced; take endpoint 0's copies.
    for analysis in endpoints[0].analyses:
        mesh = analysis.latest
        count = mesh.cell_array_as_grid("count")
        print(f"  {analysis.name}: grid {mesh.dims}, binned rows {int(count.sum())}")
        assert count.sum() == N_BODIES
        path = outdir / f"{analysis.name}.vtk"
        write_vtk_image(mesh, path)
        print(f"  wrote {path}")

    # The galaxy is centrally concentrated: the central 16x16 patch of
    # the 64x64 mass grid holds most of the mass.
    mass = endpoints[0].analyses[0].latest.cell_array_as_grid("mass_sum")
    central = mass[24:40, 24:40].sum()
    print(f"  central-region mass fraction: {central / mass.sum():.2%}")


if __name__ == "__main__":
    main()
