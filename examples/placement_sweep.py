#!/usr/bin/env python3
"""The placement study: all eight Table 1 cases, both ways.

Part 1 replays the study at paper scale (24M bodies, 128 nodes, 512
GPUs) on the calibrated cost model and prints the Figure 2 / Figure 3
series plus the five qualitative findings of Section 4.4.

Part 2 runs the *real* stack (Newton++ -> SENSEI -> data binning) for
every case at laptop scale on one slowed-down virtual node and prints
the same per-iteration decomposition from the genuine code paths.

Run:  python examples/placement_sweep.py
"""

from __future__ import annotations

from repro.harness.calibrate import SmallWorkload, scaled_node_spec
from repro.harness.report import format_fig2, format_fig3, format_table1, verify_findings
from repro.harness.runner import execute_small, simulate
from repro.harness.spec import table1_matrix


def paper_scale() -> None:
    print("=" * 72)
    print("PART 1 - paper scale (cost model): 24M bodies, 128 nodes, 512 GPUs")
    print("=" * 72)
    specs = table1_matrix()
    print(format_table1(specs))
    print()
    results = [simulate(s) for s in specs]
    print(format_fig2(results))
    print(format_fig3(results))
    print("Section 4.4 findings:")
    for name, ok in verify_findings(results).items():
        print(f"  [{'ok' if ok else 'VIOLATED'}] {name.replace('_', ' ')}")


def small_scale() -> None:
    print()
    print("=" * 72)
    print("PART 2 - real stack (small scale): Newton++ -> SENSEI -> binning")
    print("=" * 72)
    w = SmallWorkload(
        n_bodies=1200, steps=3, n_coordinate_systems=4, n_variables=3,
        bins=(32, 32),
    )
    node = scaled_node_spec()
    print(
        f"{'case':<45} {'total':>10} {'solver/it':>10} "
        f"{'apparent':>10} {'actual':>10}"
    )
    for spec in table1_matrix(nodes=1):
        r = execute_small(spec, w, node_spec=node)
        print(
            f"{spec.label:<45} {1e3 * r.total_time:>8.2f}ms "
            f"{1e3 * r.solver_per_iter:>8.2f}ms "
            f"{1e3 * r.insitu_apparent_per_iter:>8.2f}ms "
            f"{1e3 * r.insitu_actual_per_iter:>8.2f}ms"
        )
    print(
        "\nNote how asynchronous cases show a small *apparent* in situ cost\n"
        "while the *actual* analysis time is much larger - the overlap the\n"
        "paper's execution-model extension buys."
    )


def main() -> None:
    paper_scale()
    small_scale()


if __name__ == "__main__":
    main()
