#!/usr/bin/env python3
"""Quickstart: the heterogeneous data model in five minutes.

Mirrors the paper's Listing 1 — a simulation allocates and initializes
an array on a device under one programming model, hands it to SENSEI
zero-copy with coordinated life-cycle management, and a consumer reads
it wherever it likes; any movement happens automatically.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Allocator,
    HAMRDataArray,
    PMKind,
    StreamMode,
    current_clock,
    default_stream,
    get_node,
    set_active_device,
)


def main() -> None:
    node = get_node()
    print(f"virtual node: {node.num_devices} GPUs + host "
          f"({node.spec.device.name} / {node.spec.host.name})")

    # --- the simulation side (paper Listing 1) ---------------------------------
    dev_id = 1
    set_active_device(dev_id)             # omp_set_default_device(devId)
    n_elem = 1_000_000

    # "allocate device memory" + "initialize the array on the device"
    # (the simulation owns this storage; think omp_target_alloc).
    device_ptr = np.empty(n_elem)
    device_ptr[:] = -3.14

    # "zero-copy construct with coordinated life cycle management"
    freed = []
    sim_data = HAMRDataArray.zero_copy(
        "simData",
        device_ptr,
        n_components=1,
        allocator=Allocator.OPENMP,
        stream=default_stream(dev_id),
        stream_mode=StreamMode.ASYNC,
        device_id=dev_id,
        deleter=lambda: freed.append("simData storage released"),
    )
    print(f"published {sim_data!r}")

    # --- a consumer that knows nothing about the producer ------------------------
    # It asks for host access; because the data lives on device 1, the
    # data model allocates a temporary, moves the bytes, and hands back
    # a shared view that cleans the temporary up automatically.
    view = sim_data.get_host_accessible()
    sim_data.synchronize()  # "make sure the data, if moved, has arrived"
    host_values = view.get()
    print(f"host view: temporary={view.is_temporary}, "
          f"first values={host_values[:3]}")
    assert view.is_temporary
    assert np.all(host_values == -3.14)
    view.release()

    # A CUDA consumer on the *same* device gets direct, zero-cost access:
    cuda_view = sim_data.get_cuda_accessible(device_id=dev_id)
    print(f"cuda view on device {dev_id}: temporary={cuda_view.is_temporary}")
    assert not cuda_view.is_temporary
    cuda_view.release()

    # "free up the container" — the deleter coordinates the life cycle.
    sim_data.delete()
    print(f"cleanup: {freed[0]}")

    print(f"simulated time elapsed: {current_clock().now * 1e3:.3f} ms")


if __name__ == "__main__":
    main()
