#!/usr/bin/env python3
"""Newton++ with XML-configured in situ data binning (the Figure 1 run).

A uniform-random n-body system with a massive central body is evolved
on 4 MPI ranks / 4 virtual GPUs; SENSEI is configured from run-time XML
(exactly how the paper's runs were orchestrated) to bin the sum of body
mass onto 256x256 grids in the x-y and x-z planes at every iteration,
and the final grids are written as legacy VTK files for post hoc
visualization.

Run:  python examples/nbody_insitu.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.mpi.comm import run_spmd
from repro.newton.adaptor import NewtonDataAdaptor
from repro.newton.solver import NewtonSolver, SolverConfig
from repro.sensei.bridge import Bridge
from repro.sensei.configurable import ConfigurableAnalysis
from repro.svtk.writer import write_vtk_image

N_BODIES = 3000
STEPS = 5
GRID = 256

SENSEI_XML = f"""
<sensei>
  <analysis type="data_binning" mesh="bodies"
            axes="x,y" bins="{GRID},{GRID}" variables="mass:sum"
            execution="lockstep" placement="auto" name="bin-xy"/>
  <analysis type="data_binning" mesh="bodies"
            axes="x,z" bins="{GRID},{GRID}" variables="mass:sum"
            execution="lockstep" placement="auto" name="bin-xz"/>
</sensei>
"""


def rank_main(comm, outdir: str):
    solver = NewtonSolver(
        SolverConfig(
            n_bodies=N_BODIES,
            dt=1e-4,
            softening=0.05,
            seed=7,
            central_mass=50.0,
            mass_range=(0.01, 0.03),
        ),
        comm,
    )
    analysis = ConfigurableAnalysis(xml=SENSEI_XML)
    bridge = Bridge()
    bridge.initialize(comm, analyses=[analysis])
    adaptor = NewtonDataAdaptor(solver)
    solver.run(STEPS, bridge=bridge, adaptor=adaptor)
    bridge.finalize()

    results = {}
    for child in analysis.children:
        mesh = child.latest
        results[child.name] = mesh
        if comm.rank == 0:
            path = Path(outdir) / f"{child.name}_step{solver.step_count:04d}.vtk"
            write_vtk_image(mesh, path)
            print(f"rank 0 wrote {path}")
    if comm.rank == 0:
        for name, mesh in results.items():
            total = mesh.cell_array_as_grid("mass_sum").sum()
            occupied = int((mesh.cell_array_as_grid("count") > 0).sum())
            print(
                f"{name}: {GRID}x{GRID} grid, occupied bins {occupied}, "
                f"total binned mass {total:.4f}"
            )
    return solver.mean_step_time, bridge.total_apparent_time


def main() -> None:
    outdir = sys.argv[1] if len(sys.argv) > 1 else "."
    Path(outdir).mkdir(parents=True, exist_ok=True)
    out = run_spmd(4, rank_main, outdir)
    solver_ms = 1e3 * sum(o[0] for o in out) / len(out)
    insitu_ms = 1e3 * max(o[1] for o in out)
    print(f"mean solver time per iteration: {solver_ms:.3f} ms (simulated)")
    print(f"total apparent in situ time:    {insitu_ms:.3f} ms (simulated)")


if __name__ == "__main__":
    main()
