#!/usr/bin/env python3
"""PM interoperability: the paper's Listings 2-4, end to end.

Three independently developed "libraries" in three programming models
exchange data through the HDA access API without knowing each other's
internals:

- the *driver* (Listing 2) allocates one array on the host and one on
  device 1 with OpenMP offload;
- *libA* (Listing 3) is written in CUDA and adds two arrays on
  device 2 — wherever the inputs live, the access API stages them;
- *libB* (Listing 4) is host-only C++ and writes the result to disk
  through a host-accessible view.

Run:  python examples/pm_interop.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import Allocator, HAMRDataArray, PMKind, StreamMode, set_active_device
from repro.hamr.stream import Stream
from repro.pm import launch
from repro.svtk.hamr_array import HAMRDoubleArray


def lib_a_add(dev: int, a1: HAMRDoubleArray, a2: HAMRDoubleArray) -> HAMRDoubleArray:
    """libA (Listing 3): element-wise add in the CUDA PM on device ``dev``.

    libA never asks where its inputs live; the HDA access API hands it
    CUDA-accessible views, moving data invisibly if needed.
    """
    strm = Stream(device_id=dev, pm=PMKind.CUDA)  # svtkStream()

    set_active_device(dev)                        # cudaSetDevice(dev)
    sp_a1 = a1.get_cuda_accessible(device_id=dev, stream=strm)
    sp_a2 = a2.get_cuda_accessible(device_id=dev, stream=strm)

    # allocate space for the result (stream-ordered, asynchronous)
    n_elem = a1.n_tuples
    a3 = HAMRDoubleArray.new(
        "sum", n_elem,
        allocator=Allocator.CUDA_ASYNC,
        stream=strm, stream_mode=StreamMode.ASYNC, device_id=dev,
    )
    # direct access to the result since we know it is in place
    p_a3 = a3.get_data()

    # make sure the data in flight, if it was moved, has arrived
    a1.synchronize()
    a2.synchronize()

    # do the calculation (add<<<blocks, threads, 0, strm>>>)
    launch(
        lambda x, y, out: np.add(x, y, out=out),
        reads=[sp_a1.buffer, sp_a2.buffer],
        writes=[a3.buffer],
        device_id=dev,
        flops=float(n_elem),
        bytes_moved=24.0 * n_elem,
        stream=strm,
        mode=StreamMode.ASYNC,
        name="libA-add",
    )
    sp_a1.release()
    sp_a2.release()
    return a3


def lib_b_write(path: Path, a: HAMRDoubleArray) -> None:
    """libB (Listing 4): host-only writer.

    Any host-device data movement is handled automatically and
    invisibly to libB.
    """
    sp_a = a.get_host_accessible()
    a.synchronize()  # make sure the data if moved has arrived
    p_a = sp_a.get()
    with open(path, "w", encoding="ascii") as ofs:
        for v in p_a:
            ofs.write(f"{v:g} ")
    sp_a.release()


def main() -> None:
    n = 100_000

    # Listing 2: one array on the host ...
    a1 = HAMRDoubleArray.new("a1", n, allocator=Allocator.MALLOC)
    a1.get_data()[:] = 1.0
    # ... and one on device 1 under OpenMP offload.
    a2 = HAMRDoubleArray.new("a2", n, allocator=Allocator.OPENMP, device_id=1)
    a2.get_data()[:] = 2.0

    # libA adds them on device 2 in the CUDA PM.
    a3 = lib_a_add(2, a1, a2)
    print(f"libA produced {a3!r}")

    # libB writes the result from the host.
    out = Path(tempfile.gettempdir()) / "pm_interop_sum.txt"
    lib_b_write(out, a3)
    first = out.read_text()[:20]
    print(f"libB wrote {out} (starts with: {first!r})")
    assert first.startswith("3 3 3")

    for arr in (a1, a2, a3):
        arr.delete()
    print("ok: host + OpenMP-device data, consumed by CUDA code on a third "
          "device, written by host-only code — no library knew another's PM.")


if __name__ == "__main__":
    main()
