#!/usr/bin/env python3
"""PM interoperability: the paper's Listings 2-4, end to end.

Three independently developed "libraries" in three programming models
exchange data through the HDA access API without knowing each other's
internals:

- the *driver* (Listing 2) allocates one array on the host and one on
  device 1 with OpenMP offload;
- *libA* (Listing 3) is written in CUDA and adds two arrays on
  device 2 — wherever the inputs live, the access API stages them;
- *libB* (Listing 4) is host-only C++ and writes the result to disk
  through a host-accessible view.

Zero-copy lifetime contract
---------------------------
The driver's arrays are handed to the data model with
``HAMRDoubleArray.zero_copy`` — no bytes move, the buffer captures a
*pointer* to storage the driver still owns.  Every wrap therefore names
a lifetime coordinator:

- ``deleter=`` — a callable invoked exactly once when the container is
  deleted (the raw-pointer hand-off: the driver's free routine runs at
  a point where no view can still reference the bytes);
- ``owner=``  — alternatively, a keep-alive reference for
  smart-pointer-style shared ownership.

Wrapping without either is flagged by ``python -m repro lint`` (rule
HL004): the wrapped memory could be reclaimed while SENSEI still reads
it — the classic zero-copy use-after-free the runtime sanitizer
(``python -m repro sanitize examples/pm_interop.py``) also detects.

Run:  python examples/pm_interop.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import Allocator, HAMRDataArray, PMKind, StreamMode, set_active_device
from repro.hamr.stream import Stream
from repro.pm import launch
from repro.svtk.hamr_array import HAMRDoubleArray


def lib_a_add(dev: int, a1: HAMRDoubleArray, a2: HAMRDoubleArray) -> HAMRDoubleArray:
    """libA (Listing 3): element-wise add in the CUDA PM on device ``dev``.

    libA never asks where its inputs live; the HDA access API hands it
    CUDA-accessible views, moving data invisibly if needed.
    """
    strm = Stream(device_id=dev, pm=PMKind.CUDA)  # svtkStream()

    set_active_device(dev)                        # cudaSetDevice(dev)
    sp_a1 = a1.get_cuda_accessible(device_id=dev, stream=strm)
    sp_a2 = a2.get_cuda_accessible(device_id=dev, stream=strm)

    # allocate space for the result (stream-ordered, asynchronous)
    n_elem = a1.n_tuples
    a3 = HAMRDoubleArray.new(
        "sum", n_elem,
        allocator=Allocator.CUDA_ASYNC,
        stream=strm, stream_mode=StreamMode.ASYNC, device_id=dev,
    )
    # direct access to the result since we know it is in place
    p_a3 = a3.get_data()

    # make sure the data in flight, if it was moved, has arrived
    a1.synchronize()
    a2.synchronize()

    # do the calculation (add<<<blocks, threads, 0, strm>>>)
    launch(
        lambda x, y, out: np.add(x, y, out=out),
        reads=[sp_a1.buffer, sp_a2.buffer],
        writes=[a3.buffer],
        device_id=dev,
        flops=float(n_elem),
        bytes_moved=24.0 * n_elem,
        stream=strm,
        mode=StreamMode.ASYNC,
        name="libA-add",
    )
    sp_a1.release()
    sp_a2.release()
    return a3


def lib_b_write(path: Path, a: HAMRDoubleArray) -> None:
    """libB (Listing 4): host-only writer.

    Any host-device data movement is handled automatically and
    invisibly to libB.
    """
    sp_a = a.get_host_accessible()
    a.synchronize()  # make sure the data if moved has arrived
    p_a = sp_a.get()
    with open(path, "w", encoding="ascii") as ofs:
        for v in p_a:
            ofs.write(f"{v:g} ")
    sp_a.release()


def main() -> None:
    n = 100_000
    released: list[str] = []

    # Listing 2: the driver owns one array in host memory ...
    host_mem = np.full(n, 1.0)                    # the driver's malloc
    a1 = HAMRDoubleArray.zero_copy(
        "a1", host_mem,
        allocator=Allocator.MALLOC,
        deleter=lambda: released.append("a1"),    # driver's free routine
    )
    # ... and one on device 1 under OpenMP offload.
    set_active_device(1)                          # omp_set_default_device(1)
    dev_mem = np.full(n, 2.0)                     # omp_target_alloc storage
    a2 = HAMRDoubleArray.zero_copy(
        "a2", dev_mem,
        allocator=Allocator.OPENMP, device_id=1,
        deleter=lambda: released.append("a2"),    # omp_target_free
    )

    # libA adds them on device 2 in the CUDA PM.
    a3 = lib_a_add(2, a1, a2)
    print(f"libA produced {a3!r}")

    # libB writes the result from the host.
    out = Path(tempfile.gettempdir()) / "pm_interop_sum.txt"
    lib_b_write(out, a3)
    first = out.read_text()[:20]
    print(f"libB wrote {out} (starts with: {first!r})")
    assert first.startswith("3 3 3")

    # Deleting the containers runs each wrap's deleter exactly once;
    # only now may the driver's storage actually be reclaimed.
    for arr in (a1, a2, a3):
        arr.delete()
    assert released == ["a1", "a2"], released
    print("ok: host + OpenMP-device data, consumed by CUDA code on a third "
          "device, written by host-only code — no library knew another's PM.")


if __name__ == "__main__":
    main()
