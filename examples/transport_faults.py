#!/usr/bin/env python3
"""The transport plane under fire: compression, faults, recovery.

Eight simulation ranks stream particle tables to two analysis
endpoints over a deliberately hostile channel — 20% of data frames are
dropped, 5% duplicated, and some are reordered — while the reliable
transport (per-chunk ACKs, retries with backoff, sequence-number
dedup) delivers every table byte-identically anyway.  The same run is
then repeated with zlib compression to show the wire-byte saving, and
the transport timelines plus per-endpoint counters are exported as a
Chrome trace (load it in Perfetto / chrome://tracing).

Run:  python examples/transport_faults.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.hw.trace import write_chrome_trace
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.sensei.intransit import InTransitLayout, run_in_transit
from repro.svtk.table import TableData
from repro.transport import (
    TransportConfig,
    reset_transport_timelines,
    transport_timelines,
)
from repro.transport.retry import RetryPolicy

M_PRODUCERS, N_ENDPOINTS = 8, 2
N_ROWS = 400
STEPS = 3


class ChecksumAnalysis(AnalysisAdaptor):
    """Records a checksum of every assembled table."""

    def __init__(self):
        super().__init__("checksum")
        self.set_device_id(-1)
        self.checksums: list[int] = []
        self.rows = 0

    def acquire(self, data, deep):
        t = data.get_mesh("bodies")
        return {n: t.column(n).as_numpy_host().copy() for n in t.column_names}

    def process(self, payload, comm, device_id):
        import zlib

        blob = b"".join(payload[n].tobytes() for n in sorted(payload))
        self.checksums.append(zlib.crc32(blob))
        self.rows = sum(len(v) for v in payload.values()) // len(payload)


def producer_main(sim_comm, bridge):
    rank = bridge._world.rank
    rng = np.random.default_rng(rank)
    for step in range(STEPS):
        t = TableData("bodies")
        t.add_host_column("x", rng.standard_normal(N_ROWS))
        t.add_host_column("mass", np.full(N_ROWS, 0.01 * (rank + 1)))
        da = TableDataAdaptor({"bodies": t})
        da.set_step(step, step * 1e-3)
        bridge.execute(da)
    return rank


def run_once(transport: TransportConfig):
    layout = InTransitLayout(m=M_PRODUCERS, n=N_ENDPOINTS)
    _, endpoints = run_in_transit(
        layout, producer_main, lambda: [ChecksumAnalysis()],
        transport=transport,
    )
    return endpoints


def main() -> None:
    outdir = Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    outdir.mkdir(parents=True, exist_ok=True)
    reset_transport_timelines()

    retry = RetryPolicy(max_retries=40, ack_timeout=0.02)
    hostile = TransportConfig(
        chunk_bytes=1024, retry=retry,
    ).with_faults(drop=0.20, duplicate=0.05, reorder=0.05, seed=42)

    endpoints = run_once(hostile)
    baseline = [r.analyses[0].checksums for r in endpoints]
    metrics = [
        m for r in endpoints for m in
        (rm.as_dict() for rm in r.receiver_metrics.values())
    ]
    dups = sum(m["duplicates_dropped"] for m in metrics)
    chunks = sum(m["chunks_received"] for m in metrics)
    print(f"hostile channel: {chunks} chunks received, "
          f"{dups} duplicates discarded, all {STEPS} steps assembled")

    # Same run, clean channel: checksums must match byte for byte.
    clean = run_once(TransportConfig(chunk_bytes=1024, retry=retry))
    assert [r.analyses[0].checksums for r in clean] == baseline
    print("clean-channel checksums match: delivery was byte-identical")

    # Compression: fewer wire bytes for the same payload.
    packed = run_once(
        TransportConfig(chunk_bytes=1024, retry=retry, compression="zlib")
    )
    assert [r.analyses[0].checksums for r in packed] == baseline
    wire = {
        name: sum(
            rm.wire_bytes
            for r in eps for rm in r.receiver_metrics.values()
        )
        for name, eps in (("none", clean), ("zlib", packed))
    }
    ratio = wire["none"] / wire["zlib"]
    print(f"wire bytes: none={wire['none']}, zlib={wire['zlib']} "
          f"({ratio:.1f}x smaller)")
    assert wire["zlib"] < wire["none"]

    # Export transport timelines + counters for Perfetto.
    counters = []
    tid = 1000
    for eps in (clean, packed):
        for r in eps:
            for rm in r.receiver_metrics.values():
                counters.extend(rm.chrome_counter_events(tid=tid))
                tid += 1
    trace_path = outdir / "transport_trace.json"
    write_chrome_trace(
        trace_path, transport_timelines(), extra_events=counters
    )
    print(f"wrote {trace_path}")


if __name__ == "__main__":
    main()
