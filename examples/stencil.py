#!/usr/bin/env python3
"""The array plane end to end: a heat stencil that rebalances itself.

Four SPMD ranks advance a 1-D Jacobi heat stencil over a
:class:`~repro.array.DistributedArray` — one global index space,
per-rank shards in pooled device buffers, ghost rows shipped through
the reliable transport channel every step.  A cost hotspot on the
first rows skews the charged load; the
:class:`~repro.control.repartition.RepartitionGovernor` sees the skew
in the allreduced busy vector and re-cuts the partition with the
``chain`` partitioner, shipping shards over the same channel.  The
identical physics then runs a second time with the governor disabled
to show what the rebalance bought.

The same workload then runs as an in-transit producer: four simulation
ranks stream their owned rows to two analysis endpoints through
``run_in_transit``, where a thermometer analysis reassembles the
global temperature field each step.

Run:  python examples/stencil.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

from repro.array import StencilConfig, StencilWorkload, stencil_producer
from repro.hamr.pool import reset_pools
from repro.hamr.runtime import (
    current_clock,
    set_active_device,
    set_current_clock,
)
from repro.hamr.stream import reset_default_streams
from repro.hw.clock import SimClock
from repro.hw.node import reset_node
from repro.hw.trace import write_chrome_trace
from repro.mpi import run_spmd
from repro.mpi.comm import CommCostModel
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.intransit import InTransitLayout, run_in_transit
from repro.units import gbs, us

RANKS = 4
CONFIG = StencilConfig(
    length=2048, steps=16, block_rows=128, compute_rate=2.0e6,
    hotspot=(0.0, 0.125), hotspot_cost=6.0, hotspot_from=1,
)
COST = CommCostModel(latency=us(20.0), bandwidth=gbs(2.0))


def fresh_substrate(name: str) -> None:
    """Compared runs must not share clocks, streams, or pools."""
    reset_node()
    reset_default_streams()
    reset_pools()
    set_current_clock(SimClock(name=name))
    set_active_device(0)


def simulate(adaptive: bool):
    """One SPMD stencil run; returns (makespan, rank-0 summary, timelines)."""
    fresh_substrate(f"stencil-{'adaptive' if adaptive else 'static'}")

    def main(comm):
        workload = StencilWorkload(comm, CONFIG, adaptive=adaptive)
        workload.run()
        elapsed = current_clock().now
        timelines = [
            s.timeline
            for _k, s in sorted(workload.exchanger._senders.items())
        ]
        summary = workload.summary()
        workload.close()
        return elapsed, summary, timelines

    out = run_spmd(RANKS, main, cost=COST)
    makespan = max(r[0] for r in out)
    timelines = [t for r in out for t in r[2]]
    return makespan, out[0][1], timelines


class Thermometer(AnalysisAdaptor):
    """Reassembles the global field and records its mean each step."""

    def __init__(self):
        super().__init__("thermometer")
        self.set_device_id(-1)
        self.means: list[float] = []
        self.rows: list[int] = []

    def acquire(self, data, deep):
        t = data.get_mesh("stencil")
        return {n: t.column(n).as_numpy_host().copy() for n in t.column_names}

    def process(self, payload, comm, device_id):
        u = payload["u"]
        self.rows.append(len(u))
        self.means.append(float(np.mean(u)))


def main() -> None:
    outdir = Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    outdir.mkdir(parents=True, exist_ok=True)

    # -- standalone: adaptive vs frozen-layout run of the same physics
    static_time, static_summary, _ = simulate(adaptive=False)
    adaptive_time, summary, timelines = simulate(adaptive=True)
    assert abs(summary["checksum"] - static_summary["checksum"]) < 1e-12
    print(f"hotspot rows {CONFIG.hotspot_rows} charge "
          f"{CONFIG.hotspot_cost:g}x extra")
    print(f"static block layout: {static_time * 1e3:.2f} ms charged")
    print(f"adaptive layout:     {adaptive_time * 1e3:.2f} ms charged "
          f"({summary['repartitions']} repartition, "
          f"{summary['blocks_moved']} blocks moved, "
          f"{summary['handoff_bytes']} handoff bytes)")
    print(f"identical physics, {static_time / adaptive_time:.2f}x faster: "
          f"checksum {summary['checksum']:.6f}")
    trace_path = outdir / "stencil_trace.json"
    write_chrome_trace(trace_path, timelines)
    print(f"wrote {trace_path}")

    # -- in transit: the same producer streaming rows to endpoints
    fresh_substrate("stencil-intransit")
    layout = InTransitLayout(m=RANKS, n=2)
    results, endpoints = run_in_transit(
        layout,
        stencil_producer(CONFIG, adaptive=True),
        lambda: [Thermometer()],
        mesh_name="stencil",
    )
    analyses = [ep.analyses[0] for ep in endpoints]
    # Each endpoint sees its own producers' rows; together they cover
    # the whole field every step — across the mid-run repartition too.
    for step in range(CONFIG.steps):
        assert sum(a.rows[step] for a in analyses) == CONFIG.length
    assert all(r["repartitions"] == 1 for r in results)
    final_mean = sum(
        a.means[-1] * a.rows[-1] for a in analyses
    ) / CONFIG.length
    print(f"in transit: {len(endpoints)} endpoints reassembled "
          f"{CONFIG.steps} steps of {CONFIG.length} rows "
          f"(final mean {final_mean:.2e})")


if __name__ == "__main__":
    main()
