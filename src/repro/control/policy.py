"""Controller primitives: estimators, hysteresis, a discrete bandit.

These are the reusable decision mechanics the governors compose.  All
of them are deterministic under a fixed seed: the EWMA and hysteresis
are pure functions of their inputs, and the discounted-UCB bandit only
consults its seeded RNG to break exact score ties.
"""

from __future__ import annotations

import math
import random
from typing import Hashable, Sequence

__all__ = ["EWMA", "Hysteresis", "DiscountedUCB"]


class EWMA:
    """Exponentially weighted moving average of a noisy signal.

    ``alpha`` is the weight of the newest sample; ``value`` is ``None``
    until the first update (so consumers can distinguish "no estimate
    yet" from an estimate of zero).
    """

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = float(alpha)
        self._value: float | None = None

    @property
    def value(self) -> float | None:
        return self._value

    def get(self, default: float = 0.0) -> float:
        return self._value if self._value is not None else default

    def update(self, x: float) -> float:
        if self._value is None:
            self._value = float(x)
        else:
            self._value += self.alpha * (float(x) - self._value)
        return self._value

    def reset(self) -> None:
        self._value = None


class Hysteresis:
    """A two-threshold (Schmitt trigger) band over a scalar signal.

    The state flips to True only when the signal rises above ``high``
    and back to False only when it falls below ``low`` — values inside
    the band keep the current state, which is what stops a governor
    from flapping on a signal that hovers near a single threshold.
    """

    def __init__(self, low: float, high: float, state: bool = False):
        if low > high:
            raise ValueError(f"need low <= high, got {low} > {high}")
        self.low = float(low)
        self.high = float(high)
        self.state = bool(state)

    def update(self, value: float) -> bool:
        if value > self.high:
            self.state = True
        elif value < self.low:
            self.state = False
        return self.state


class DiscountedUCB:
    """Discounted upper-confidence-bound bandit over discrete arms.

    Rewards decay geometrically (``discount`` per update), so the
    bandit tracks drifting conditions — exactly the regime a run-time
    knob lives in (link quality and analysis cost change over a run).
    ``select`` plays each arm once in declaration order, then
    maximizes ``mean + exploration * sqrt(log(N) / n)``; exact score
    ties are broken by the seeded RNG so behavior is reproducible
    under a fixed seed.
    """

    def __init__(
        self,
        arms: Sequence[Hashable],
        discount: float = 0.95,
        exploration: float = 0.5,
        seed: int = 0,
    ):
        if not arms:
            raise ValueError("need at least one arm")
        if not 0.0 < discount <= 1.0:
            raise ValueError(f"discount must be in (0, 1]: {discount}")
        if exploration < 0.0:
            raise ValueError(f"exploration must be >= 0: {exploration}")
        self.arms = tuple(arms)
        if len(set(self.arms)) != len(self.arms):
            raise ValueError(f"duplicate arms: {self.arms}")
        self.discount = float(discount)
        self.exploration = float(exploration)
        self._rng = random.Random(seed)
        self._counts: dict[Hashable, float] = {a: 0.0 for a in self.arms}
        self._rewards: dict[Hashable, float] = {a: 0.0 for a in self.arms}
        self.pulls = 0

    def mean(self, arm: Hashable) -> float:
        """Discounted mean reward of one arm (0.0 while unplayed)."""
        c = self._counts[arm]
        return self._rewards[arm] / c if c > 0 else 0.0

    def score(self, arm: Hashable) -> float:
        """The UCB score ``select`` maximizes (inf while unplayed)."""
        c = self._counts[arm]
        if c <= 0:
            return math.inf
        n = sum(self._counts.values())
        return self.mean(arm) + self.exploration * math.sqrt(
            math.log(max(n, math.e)) / c
        )

    def select(self) -> Hashable:
        """The arm to play next (does not record the pull)."""
        for arm in self.arms:  # round-robin through unplayed arms first
            if self._counts[arm] <= 0:
                return arm
        scores = {a: self.score(a) for a in self.arms}
        best = max(scores.values())
        tied = [a for a in self.arms if scores[a] == best]
        return tied[0] if len(tied) == 1 else self._rng.choice(tied)

    def update(self, arm: Hashable, reward: float) -> None:
        """Record ``reward`` for ``arm``, decaying all history first."""
        if arm not in self._counts:
            raise ValueError(f"unknown arm {arm!r}; have {self.arms}")
        for a in self.arms:
            self._counts[a] *= self.discount
            self._rewards[a] *= self.discount
        self._counts[arm] += 1.0
        self._rewards[arm] += float(reward)
        self.pulls += 1
