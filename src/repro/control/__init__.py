"""repro.control — the adaptive runtime control plane.

The paper exposes its execution-model knobs — lockstep vs.
asynchronous execution, the Eq. 1 placement parameters, the transport
codec — as static, user-supplied configuration.  This package closes
the loop: per-step observations (solver time, in situ busy time,
transfer bytes/time, compression ratio, device load) feed controller
primitives (EWMA estimators, hysteresis bands, a discounted-UCB
bandit), which drive *governors* that retune the knobs online through
narrow actuator hooks:

- :class:`~repro.control.governors.CodecGovernor` — picks the wire
  codec per endpoint from the observed compression ratio and the
  measured link bandwidth (``ReliableSender.set_codec``);
- :class:`~repro.control.governors.ExecutionModeGovernor` — switches
  lockstep ↔ asynchronous when the measured in situ / solver time
  ratio crosses a hysteresis band, accounting for the deep copy's
  apparent cost (``AnalysisAdaptor.set_execution_method``);
- :class:`~repro.control.governors.PlacementGovernor` — starts from
  Eq. 1 and rebalances ``n_use``/``offset`` when the device-load
  signal shows overload (``AnalysisAdaptor.set_placement``);
- :class:`~repro.control.governors.PoolTrimGovernor` — trims
  stream-ordered memory pools above a high watermark
  (``MemoryPool.trim_above``);
- :class:`~repro.control.governors.FlowGovernor` — AIMD flow control
  over a reliable sender's credit window and chunk size from the ACK
  round-trip EWMA and retry rate (``ReliableSender.set_window`` /
  ``set_chunk_bytes``); with node coordination its retry/latency
  signals piggyback on the placement allreduce so every rank converges
  on the same window;
- :class:`~repro.control.cluster.ClusterPlacementGovernor` — the
  cross-rank variant of placement control: device-load vectors are
  allreduced over the plane's communicator each coordination round, so
  all ranks apply one node-consistent Eq. 1 re-aim on the same step
  and neighbor ranks crowding onto one device are detected
  (``<control coordination="node">``);
- :class:`~repro.control.quota.QuotaGovernor` /
  :class:`~repro.control.quota.ShardGovernor` — per-tenant admission
  control for the service plane (:mod:`repro.service`): weighted-fair
  endpoint credit budgets with AIMD reclaim of idle quota, and
  skew-triggered migration of a pipeline's endpoint assignment, both
  driven by demand vectors allreduced over the producer group
  (``<control quota="on">``);
- :class:`~repro.control.repartition.RepartitionGovernor` — distributed
  -array load balancing (:mod:`repro.array`): re-cuts block ownership
  with the ``chain`` partitioner when allreduced per-rank busy time or
  halo traffic skews past a threshold, actuating the array's
  collective shard handoff (``<control repartition="on">``).

A :class:`~repro.control.plan.ControlPlane` owns the governors, the
signal ring buffer, and the decision log; every decision is also
exported as a Chrome-trace *instant* event so it is visible on the
same timeline as the work it re-routed.  Configuration comes from the
``<control>`` XML element (:class:`~repro.control.plan.ControlConfig`)
with per-governor enable/freeze.  With no control plane attached,
behavior is bit-identical to the static configuration.
"""

from repro.control.cluster import ClusterPlacementGovernor
from repro.control.governors import (
    CodecGovernor,
    Decision,
    ExecutionModeGovernor,
    FlowBounds,
    FlowGovernor,
    Governor,
    PlacementGovernor,
    PoolTrimGovernor,
)
from repro.control.plan import ControlConfig, ControlPlane, GovernorSetting
from repro.control.policy import EWMA, DiscountedUCB, Hysteresis
from repro.control.quota import QuotaGovernor, ShardGovernor
from repro.control.repartition import RepartitionGovernor
from repro.control.signals import SignalBuffer, StepObservation

__all__ = [
    "ClusterPlacementGovernor",
    "CodecGovernor",
    "ControlConfig",
    "ControlPlane",
    "Decision",
    "DiscountedUCB",
    "EWMA",
    "ExecutionModeGovernor",
    "FlowBounds",
    "FlowGovernor",
    "Governor",
    "GovernorSetting",
    "Hysteresis",
    "PlacementGovernor",
    "PoolTrimGovernor",
    "QuotaGovernor",
    "RepartitionGovernor",
    "ShardGovernor",
    "SignalBuffer",
    "StepObservation",
]
