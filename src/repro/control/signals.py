"""Per-step observations: the control plane's sensor layer.

Signals are sampled where the work happens — :class:`repro.sensei.bridge.Bridge`
taps solver/in situ time, :class:`repro.sensei.intransit.InTransitBridge`
taps transport counters — and pushed into a bounded
:class:`SignalBuffer` ring.  Governors read aggregate views (windowed
means, totals, deltas) rather than raw events, so a burst of steps
cannot grow memory and a single noisy step cannot flip a knob.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import Iterator

__all__ = ["StepObservation", "SignalBuffer"]


@dataclass(frozen=True)
class StepObservation:
    """One step's worth of measurements (simulated seconds/bytes).

    Not every tap fills every field: a purely in situ bridge leaves the
    transport fields at their defaults, a transport tap leaves the
    solver fields at theirs.  ``t`` is the simulated time the sample
    was taken, which orders decisions on the trace.
    """

    step: int
    t: float
    sim_time: float = 0.0        # solver work since the previous step
    insitu_time: float = 0.0     # analysis busy time attributed to this step
    apparent_time: float = 0.0   # time the simulation observed blocked
    payload_bytes: int = 0       # raw bytes published/shipped this step
    wire_bytes: int = 0          # bytes that hit the wire this step
    transfer_time: float = 0.0   # wire time (apparent minus encode charge)
    compression_ratio: float = 1.0
    retries: int = 0
    ack_latency: float = 0.0     # EWMA of per-chunk ACK RTT (simulated s)
    inflight_peak: int = 0       # credit-window high-water this step
    extras: tuple = ()           # sorted (key, value) pairs, free-form

    @property
    def extras_dict(self) -> dict:
        return dict(self.extras)


class SignalBuffer:
    """A bounded ring buffer of :class:`StepObservation` records.

    Appends beyond ``capacity`` evict the oldest sample; aggregate
    helpers operate over the most recent ``n`` samples (the window a
    governor reasons about).
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = int(capacity)
        self._ring: deque[StepObservation] = deque(maxlen=self.capacity)
        self._pushed = 0

    def push(self, obs: StepObservation) -> None:
        self._ring.append(obs)
        self._pushed += 1

    @property
    def pushed(self) -> int:
        """Total observations ever pushed (evictions included)."""
        return self._pushed

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[StepObservation]:
        return iter(tuple(self._ring))

    @property
    def latest(self) -> StepObservation | None:
        return self._ring[-1] if self._ring else None

    def last(self, n: int) -> list[StepObservation]:
        """The most recent ``n`` observations, oldest first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def mean(self, attr: str, n: int | None = None) -> float:
        """Windowed mean of one numeric field (0.0 on an empty window)."""
        window = self.last(n if n is not None else len(self._ring))
        if not window:
            return 0.0
        return sum(getattr(o, attr) for o in window) / len(window)

    def total(self, attr: str, n: int | None = None) -> float:
        """Windowed sum of one numeric field."""
        window = self.last(n if n is not None else len(self._ring))
        return sum(getattr(o, attr) for o in window)

    def as_dicts(self) -> list[dict]:
        """JSON-ready dump of the window (reporting/debugging aid)."""
        out = []
        for o in self._ring:
            d = {f.name: getattr(o, f.name) for f in fields(o) if f.name != "extras"}
            d.update(o.extras_dict)
            out.append(d)
        return out
