"""Governors: feedback controllers wired to the paper's runtime knobs.

Each governor closes one loop: it digests observations through the
primitives in :mod:`repro.control.policy` and, when the evidence says
the current setting is wrong, pushes a new one through a narrow
*actuator* callable.  A frozen governor keeps observing and logging
decisions but never actuates — the ``<control>`` element's per-governor
``freeze`` mode, useful for dry-running a policy against a production
configuration.

The four concrete governors map to the paper's knobs:

==================  =====================================  =========================
governor            decides                                actuator
==================  =====================================  =========================
CodecGovernor       wire codec per transport endpoint      ``ReliableSender.set_codec``
ExecutionModeGov.   lockstep vs. asynchronous execution    ``AnalysisAdaptor.set_execution_method``
PlacementGovernor   Eq. 1 ``n_use``/``offset`` rebalance   ``AnalysisAdaptor.set_placement``
PoolTrimGovernor    pool high-watermark trim               ``MemoryPool.trim_above``
==================  =====================================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.control.policy import EWMA, DiscountedUCB, Hysteresis
from repro.hamr.runtime import current_clock
from repro.hw.contention import ContentionModel, SharedResource
from repro.sensei.execution import ExecutionMethod
from repro.sensei.placement import DevicePlacement
from repro.transport.wire import SERIALIZE_BANDWIDTH, get_codec

__all__ = [
    "Decision",
    "Governor",
    "CodecGovernor",
    "ExecutionModeGovernor",
    "PlacementGovernor",
    "PoolTrimGovernor",
]


@dataclass(frozen=True)
class Decision:
    """One governor verdict, logged whether or not it was applied.

    ``applied`` is False when the governor is frozen (observe-only) or
    has no actuator; ``args`` carries the structured context in the
    same sorted ``(key, value)`` tuple format the analysis findings
    use, so decision logs and lint/sanitizer reports line up.
    """

    governor: str
    step: int
    time: float  # simulated seconds; positions the decision on the trace
    action: str
    reason: str
    applied: bool = True
    args: tuple = ()

    @property
    def args_dict(self) -> dict:
        return dict(self.args)

    def to_dict(self) -> dict:
        return {
            "governor": self.governor,
            "step": self.step,
            "time": self.time,
            "action": self.action,
            "reason": self.reason,
            "applied": self.applied,
            "args": self.args_dict,
        }


class Governor:
    """Base class: enable/freeze plumbing plus decision construction."""

    name = "governor"

    def __init__(
        self,
        actuator: Callable | None = None,
        enabled: bool = True,
        frozen: bool = False,
    ):
        self.actuator = actuator
        self.enabled = bool(enabled)
        self.frozen = bool(frozen)

    def _actuate(self, *args) -> bool:
        """Push a setting through the actuator; False when frozen."""
        if self.frozen or self.actuator is None:
            return False
        self.actuator(*args)
        return True

    def _decision(
        self,
        step: int,
        t: float | None,
        action: str,
        reason: str,
        applied: bool,
        **args,
    ) -> Decision:
        return Decision(
            governor=self.name,
            step=int(step),
            time=float(t) if t is not None else current_clock().now,
            action=action,
            reason=reason,
            applied=applied,
            args=tuple(sorted(args.items())),
        )

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        """Evaluate the loop; a Decision when the setting should change."""
        raise NotImplementedError


class CodecGovernor(Governor):
    """Chooses the wire codec per endpoint: observed ratio × bandwidth.

    The governor keeps EWMA estimates of the per-step payload, the
    achieved link bandwidth (wire bytes over measured wire time), and
    the achievable compression ratio — observed directly while a
    compressing codec is active, or measured by compressing a small
    payload *sample* (the probe, charged to the simulated clock) while
    running uncompressed.  Each decision compares the predicted
    per-step cost of every candidate codec::

        cost(none) = payload/serialize_bw + payload/bw_link
        cost(c)    = payload/serialize_bw + payload/c.compress_bw
                     + (payload/ratio)/bw_link

    and switches only when the current codec is worse than the best by
    more than ``margin`` (anti-flap).  With ``policy="bandit"`` the
    model is replaced by a discounted-UCB bandit over the candidate
    codecs rewarded with the negative observed cost per raw byte —
    useful when the cost model is not trusted; deterministic under the
    configured seed.
    """

    name = "codec"

    def __init__(
        self,
        actuator: Callable[[str], None] | None = None,
        codecs: Sequence[str] = ("none", "zlib"),
        initial: str = "none",
        margin: float = 1.05,
        alpha: float = 0.5,
        probe_bytes: int = 8192,
        probe_interval: int = 8,
        policy: str = "model",
        seed: int = 0,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(actuator, enabled, frozen)
        if policy not in ("model", "bandit"):
            raise ValueError(f"policy must be 'model' or 'bandit': {policy!r}")
        self.codecs = tuple(codecs)
        self.current = str(initial)
        self.margin = float(margin)
        self.probe_bytes = int(probe_bytes)
        self.probe_interval = int(probe_interval)
        self.policy = policy
        self._bandwidth = EWMA(alpha)
        self._payload = EWMA(alpha)
        self._ratio = EWMA(alpha)
        self._last_probe_step: int | None = None
        self._bandit = DiscountedUCB(self.codecs, seed=seed)

    # -- sensors ---------------------------------------------------------------
    def observe(
        self,
        step: int,
        raw_bytes: int,
        wire_bytes: int,
        transfer_time: float,
        apparent_time: float | None = None,
        sample: bytes | None = None,
    ) -> None:
        """Feed one step's transport measurements.

        ``transfer_time`` is the wire time (apparent ship time minus
        the encode/backoff charges); ``sample`` is a slice of the raw
        payload the ratio probe may compress.
        """
        if raw_bytes > 0:
            self._payload.update(raw_bytes)
        if wire_bytes > 0 and transfer_time > 0:
            self._bandwidth.update(wire_bytes / transfer_time)
        if self.current != "none" and raw_bytes > 0 and wire_bytes > 0:
            self._ratio.update(raw_bytes / wire_bytes)
        elif sample:
            due = (
                self._ratio.value is None
                or self._last_probe_step is None
                or step - self._last_probe_step >= self.probe_interval
            )
            if due:
                self._probe(step, sample)
        if apparent_time is not None and raw_bytes > 0:
            # Reward for the bandit: cheap steps per raw byte are good.
            self._bandit.update(self.current, -apparent_time / raw_bytes)

    def _probe(self, step: int, sample: bytes) -> None:
        """Measure the achievable ratio on a payload sample.

        The probe compresses up to ``probe_bytes`` with the first
        compressing candidate and charges that CPU to the simulated
        clock, so adaptivity is never free in the measurements.
        """
        names = [c for c in self.codecs if c != "none"]
        if not names:
            return
        codec = get_codec(names[0])
        probe = bytes(sample[: self.probe_bytes])
        if not probe:
            return
        compressed = codec.compress(probe)
        current_clock().advance(codec.compress_time(len(probe)))
        self._ratio.update(len(probe) / max(len(compressed), 1))
        self._last_probe_step = step

    # -- the loop ---------------------------------------------------------------
    def predict_cost(self, name: str) -> float | None:
        """Predicted per-step cost of running under codec ``name``."""
        payload = self._payload.value
        bandwidth = self._bandwidth.value
        if payload is None or bandwidth is None or bandwidth <= 0:
            return None
        codec = get_codec(name)
        serialize = payload / SERIALIZE_BANDWIDTH
        if codec.name == "none":
            return serialize + payload / bandwidth
        ratio = max(self._ratio.get(1.0), 1e-9)
        return (
            serialize
            + codec.compress_time(payload)
            + (payload / ratio) / bandwidth
        )

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        if not self.enabled:
            return None
        if self.policy == "bandit":
            choice = self._bandit.select()
            if choice == self.current:
                return None
            reason = (
                f"discounted-UCB over {self.codecs}: "
                f"score({choice})={self._bandit.score(choice):.3g}"
            )
            detail = {"policy": "bandit", "pulls": self._bandit.pulls}
        else:
            costs = {c: self.predict_cost(c) for c in self.codecs}
            if any(v is None for v in costs.values()):
                return None  # estimates not warm yet
            choice = min(self.codecs, key=lambda c: costs[c])
            if choice == self.current:
                return None
            if costs[self.current] <= self.margin * costs[choice]:
                return None  # not enough predicted improvement to switch
            reason = (
                f"predicted step cost {costs[self.current]:.3g}s under "
                f"{self.current!r} vs {costs[choice]:.3g}s under {choice!r} "
                f"(ratio~{self._ratio.get(1.0):.2f}, "
                f"bw~{self._bandwidth.get(0.0):.3g} B/s)"
            )
            detail = {
                "policy": "model",
                "cost_current": costs[self.current],
                "cost_best": costs[choice],
            }
        applied = self._actuate(choice)
        previous = self.current
        if applied:
            self.current = choice
        return self._decision(
            step, t, f"codec={choice}", reason, applied,
            previous=previous, **detail,
        )


class ExecutionModeGovernor(Governor):
    """Switches lockstep ↔ asynchronous on the in situ / solver ratio.

    The controlled signal is ``(insitu - copy) / sim``: the busy time
    asynchronous execution could hide, net of the deep copy it cannot
    (``deep_copy_table`` charges the snapshot to the simulation — the
    paper's "apparent" asynchronous cost), relative to the solver's
    step time.  The signal passes through a hysteresis band so one
    noisy step cannot flap the mode.  The copy-cost estimate prefers
    measurement (the apparent time of an asynchronous step *is* the
    copy charge) and falls back to the analytic estimate supplied by
    the caller until the first asynchronous step provides one.
    """

    name = "execution"

    def __init__(
        self,
        actuator: Callable[[ExecutionMethod], None] | None = None,
        low: float = 0.05,
        high: float = 0.15,
        alpha: float = 0.5,
        initial: ExecutionMethod = ExecutionMethod.LOCKSTEP,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(actuator, enabled, frozen)
        self.mode = initial
        self._band = Hysteresis(
            low, high, state=(initial is ExecutionMethod.ASYNCHRONOUS)
        )
        self._sim = EWMA(alpha)
        self._insitu = EWMA(alpha)
        self._copy = EWMA(alpha)
        self._copy_measured = False
        self.last_ratio: float | None = None

    def observe(
        self,
        step: int,
        sim_time: float,
        insitu_time: float,
        apparent_time: float,
        copy_estimate: float | None = None,
    ) -> None:
        if sim_time > 0:
            self._sim.update(sim_time)
        if insitu_time > 0:
            self._insitu.update(insitu_time)
        if self.mode is ExecutionMethod.ASYNCHRONOUS and apparent_time > 0:
            # Under async the simulation only pays the deep copy.
            self._copy.update(apparent_time)
            self._copy_measured = True
        elif not self._copy_measured and copy_estimate is not None \
                and copy_estimate > 0:
            self._copy.update(copy_estimate)

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        if not self.enabled:
            return None
        sim = self._sim.value
        insitu = self._insitu.value
        if not sim or insitu is None:
            return None
        copy = self._copy.get(0.0)
        ratio = (insitu - copy) / sim
        self.last_ratio = ratio
        want_async = self._band.update(ratio)
        target = (
            ExecutionMethod.ASYNCHRONOUS if want_async
            else ExecutionMethod.LOCKSTEP
        )
        if target is self.mode:
            return None
        applied = self._actuate(target)
        previous = self.mode
        if applied:
            self.mode = target
        return self._decision(
            step, t, f"execution={target.value}",
            f"(insitu-copy)/sim = ({insitu:.3g}-{copy:.3g})/{sim:.3g} = "
            f"{ratio:.3f} crossed the [{self._band.low}, {self._band.high}] "
            "band",
            applied,
            previous=previous.value,
            ratio=round(ratio, 4),
            insitu=insitu,
            copy=copy,
            sim=sim,
        )


class PlacementGovernor(Governor):
    """Rebalances Eq. 1's ``n_use``/``offset`` under device overload.

    The load signal is a per-device busy fraction (windowed
    utilization); an optional per-device sharer count is translated
    into an effective load through the
    :class:`~repro.hw.contention.ContentionModel` dilation — a device
    two parties time-share is worth more than its raw busy fraction
    says.  When the device Eq. 1 resolves to for this rank scores
    above ``overload`` × the node mean while calmer devices exist, the
    governor re-aims ``offset`` at the calmest device and widens
    ``n_use`` to the calm set, keeping the paper's placement formula as
    the mechanism and changing only its parameters.
    """

    name = "placement"

    def __init__(
        self,
        actuator: Callable[[DevicePlacement], None] | None = None,
        rank: int = 0,
        base: DevicePlacement | None = None,
        overload: float = 1.30,
        contention: ContentionModel | None = None,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(actuator, enabled, frozen)
        self.rank = int(rank)
        self.placement = base if base is not None else DevicePlacement.auto()
        self.overload = float(overload)
        self.contention = contention if contention is not None else ContentionModel()
        self._loads: dict[int, float] = {}
        self._parties: dict[int, int] = {}

    def observe(
        self,
        step: int,
        loads: Mapping[int, float],
        parties: Mapping[int, int] | None = None,
    ) -> None:
        """Latest per-device busy fractions (and optional sharer counts)."""
        self._loads = {int(d): float(v) for d, v in loads.items()}
        self._parties = (
            {int(d): int(v) for d, v in parties.items()} if parties else {}
        )

    def scores(self) -> dict[int, float]:
        """Effective load per device: busy fraction × contention dilation."""
        out = {}
        for d, load in self._loads.items():
            sharers = max(0, self._parties.get(d, 1) - 1)
            out[d] = load * self.contention.dilation(
                SharedResource.GPU_COMPUTE, sharers
            )
        return out

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        if not self.enabled or not self._loads:
            return None
        n_available = len(self._loads)
        current = self.placement.resolve(self.rank, n_available=n_available)
        if current < 0 or current not in self._loads:
            return None  # host placement is not this governor's business
        s = self.scores()
        mean = sum(s.values()) / len(s)
        if mean <= 0 or s[current] <= self.overload * mean:
            return None
        calm = sorted(
            (d for d in s if s[d] <= self.overload * mean),
            key=lambda d: (s[d], d),
        )
        if not calm:
            return None  # everything is overloaded: nowhere better to go
        new = DevicePlacement.auto(
            n_use=len(calm), stride=1, offset=calm[0]
        )
        if new == self.placement:
            return None
        applied = self._actuate(new)
        previous = self.placement
        if applied:
            self.placement = new
        return self._decision(
            step, t, f"placement=auto(n_use={new.n_use}, offset={new.offset})",
            f"device {current} effective load {s[current]:.3f} exceeds "
            f"{self.overload:.2f}x node mean {mean:.3f}; calm set {calm}",
            applied,
            previous=f"auto(n_use={previous.n_use}, offset={previous.offset})",
            overloaded_device=current,
            load=round(s[current], 4),
            mean=round(mean, 4),
        )


class PoolTrimGovernor(Governor):
    """Trims a stream-ordered memory pool above a high watermark.

    Pooled bytes stay claimed on the device (the OOM footprint the
    paper worries about); this governor releases them back whenever
    the pool's idle inventory exceeds ``watermark_bytes``, via
    :meth:`repro.hamr.pool.MemoryPool.trim_above`.
    """

    name = "pool"

    def __init__(
        self,
        pool,
        watermark_bytes: int,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(pool.trim_above, enabled, frozen)
        if watermark_bytes < 0:
            raise ValueError(f"watermark must be >= 0: {watermark_bytes}")
        self.pool = pool
        self.watermark = int(watermark_bytes)
        self.trimmed_bytes = 0

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        if not self.enabled:
            return None
        pooled = self.pool.pooled_bytes
        if pooled <= self.watermark:
            return None
        freed = 0
        applied = not self.frozen
        if applied:
            freed = self.actuator(self.watermark)
            self.trimmed_bytes += freed
        return self._decision(
            step, t, f"trim {freed} B",
            f"pooled {pooled} B exceeds watermark {self.watermark} B on "
            f"{self.pool.resource.name}",
            applied,
            pooled=pooled,
            watermark=self.watermark,
            freed=freed,
        )
