"""Governors: feedback controllers wired to the paper's runtime knobs.

Each governor closes one loop: it digests observations through the
primitives in :mod:`repro.control.policy` and, when the evidence says
the current setting is wrong, pushes a new one through a narrow
*actuator* callable.  A frozen governor keeps observing and logging
decisions but never actuates — the ``<control>`` element's per-governor
``freeze`` mode, useful for dry-running a policy against a production
configuration.

The five concrete governors map to the paper's knobs:

==================  =====================================  =========================
governor            decides                                actuator
==================  =====================================  =========================
CodecGovernor       wire codec per transport endpoint      ``ReliableSender.set_codec``
ExecutionModeGov.   lockstep vs. asynchronous execution    ``AnalysisAdaptor.set_execution_method``
PlacementGovernor   Eq. 1 ``n_use``/``offset`` rebalance   ``AnalysisAdaptor.set_placement``
PoolTrimGovernor    pool high-watermark trim               ``MemoryPool.trim_above``
FlowGovernor        credit window + chunk size (AIMD)      ``ReliableSender.set_window`` / ``set_chunk_bytes``
==================  =====================================  =========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.control.policy import EWMA, DiscountedUCB, Hysteresis
from repro.hamr.runtime import current_clock
from repro.hw.contention import ContentionModel, SharedResource
from repro.sensei.execution import ExecutionMethod
from repro.sensei.placement import DevicePlacement
from repro.transport.wire import SERIALIZE_BANDWIDTH, get_codec
from repro.units import KiB

__all__ = [
    "Decision",
    "Governor",
    "CodecGovernor",
    "ExecutionModeGovernor",
    "PlacementGovernor",
    "PoolTrimGovernor",
    "FlowBounds",
    "FlowGovernor",
]


@dataclass(frozen=True)
class Decision:
    """One governor verdict, logged whether or not it was applied.

    ``applied`` is False when the governor is frozen (observe-only) or
    has no actuator; ``args`` carries the structured context in the
    same sorted ``(key, value)`` tuple format the analysis findings
    use, so decision logs and lint/sanitizer reports line up.
    """

    governor: str
    step: int
    time: float  # simulated seconds; positions the decision on the trace
    action: str
    reason: str
    applied: bool = True
    args: tuple = ()

    @property
    def args_dict(self) -> dict:
        return dict(self.args)

    def to_dict(self) -> dict:
        return {
            "governor": self.governor,
            "step": self.step,
            "time": self.time,
            "action": self.action,
            "reason": self.reason,
            "applied": self.applied,
            "args": self.args_dict,
        }


class Governor:
    """Base class: enable/freeze plumbing plus decision construction."""

    name = "governor"

    def __init__(
        self,
        actuator: Callable | None = None,
        enabled: bool = True,
        frozen: bool = False,
    ):
        self.actuator = actuator
        self.enabled = bool(enabled)
        self.frozen = bool(frozen)

    def _actuate(self, *args) -> bool:
        """Push a setting through the actuator; False when frozen."""
        if self.frozen or self.actuator is None:
            return False
        self.actuator(*args)
        return True

    def _decision(
        self,
        step: int,
        t: float | None,
        action: str,
        reason: str,
        applied: bool,
        **args,
    ) -> Decision:
        return Decision(
            governor=self.name,
            step=int(step),
            time=float(t) if t is not None else current_clock().now,
            action=action,
            reason=reason,
            applied=applied,
            args=tuple(sorted(args.items())),
        )

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        """Evaluate the loop; a Decision when the setting should change."""
        raise NotImplementedError


class CodecGovernor(Governor):
    """Chooses the wire codec per endpoint: observed ratio × bandwidth.

    The governor keeps EWMA estimates of the per-step payload, the
    achieved link bandwidth (wire bytes over measured wire time), and
    the achievable compression ratio — observed directly while a
    compressing codec is active, or measured by compressing a small
    payload *sample* (the probe, charged to the simulated clock) while
    running uncompressed.  Each decision compares the predicted
    per-step cost of every candidate codec::

        cost(none) = payload/serialize_bw + payload/bw_link
        cost(c)    = payload/serialize_bw + payload/c.compress_bw
                     + (payload/ratio)/bw_link

    and switches only when the current codec is worse than the best by
    more than ``margin`` (anti-flap).  With ``policy="bandit"`` the
    model is replaced by a discounted-UCB bandit over the candidate
    codecs rewarded with the negative observed cost per raw byte —
    useful when the cost model is not trusted; deterministic under the
    configured seed.
    """

    name = "codec"

    def __init__(
        self,
        actuator: Callable[[str], None] | None = None,
        codecs: Sequence[str] = ("none", "zlib"),
        initial: str = "none",
        margin: float = 1.05,
        alpha: float = 0.5,
        probe_bytes: int = 8192,
        probe_interval: int = 8,
        policy: str = "model",
        seed: int = 0,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(actuator, enabled, frozen)
        if policy not in ("model", "bandit"):
            raise ValueError(f"policy must be 'model' or 'bandit': {policy!r}")
        self.codecs = tuple(codecs)
        self.current = str(initial)
        self.margin = float(margin)
        self.probe_bytes = int(probe_bytes)
        self.probe_interval = int(probe_interval)
        self.policy = policy
        self._bandwidth = EWMA(alpha)
        self._payload = EWMA(alpha)
        self._ratio = EWMA(alpha)
        self._last_probe_step: int | None = None
        self._bandit = DiscountedUCB(self.codecs, seed=seed)

    # -- sensors ---------------------------------------------------------------
    def observe(
        self,
        step: int,
        raw_bytes: int,
        wire_bytes: int,
        transfer_time: float,
        apparent_time: float | None = None,
        sample: bytes | None = None,
    ) -> None:
        """Feed one step's transport measurements.

        ``transfer_time`` is the wire time (apparent ship time minus
        the encode/backoff charges); ``sample`` is a slice of the raw
        payload the ratio probe may compress.
        """
        if raw_bytes > 0:
            self._payload.update(raw_bytes)
        if wire_bytes > 0 and transfer_time > 0:
            self._bandwidth.update(wire_bytes / transfer_time)
        if self.current != "none" and raw_bytes > 0 and wire_bytes > 0:
            self._ratio.update(raw_bytes / wire_bytes)
        elif sample:
            due = (
                self._ratio.value is None
                or self._last_probe_step is None
                or step - self._last_probe_step >= self.probe_interval
            )
            if due:
                self._probe(step, sample)
        if apparent_time is not None and raw_bytes > 0:
            # Reward for the bandit: cheap steps per raw byte are good.
            self._bandit.update(self.current, -apparent_time / raw_bytes)

    def _probe(self, step: int, sample: bytes) -> None:
        """Measure the achievable ratio on a payload sample.

        The probe compresses up to ``probe_bytes`` with the first
        compressing candidate and charges that CPU to the simulated
        clock, so adaptivity is never free in the measurements.
        """
        names = [c for c in self.codecs if c != "none"]
        if not names:
            return
        codec = get_codec(names[0])
        probe = bytes(sample[: self.probe_bytes])
        if not probe:
            return
        compressed = codec.compress(probe)
        current_clock().advance(codec.compress_time(len(probe)))
        self._ratio.update(len(probe) / max(len(compressed), 1))
        self._last_probe_step = step

    # -- the loop ---------------------------------------------------------------
    def predict_cost(self, name: str) -> float | None:
        """Predicted per-step cost of running under codec ``name``."""
        payload = self._payload.value
        bandwidth = self._bandwidth.value
        if payload is None or bandwidth is None or bandwidth <= 0:
            return None
        codec = get_codec(name)
        serialize = payload / SERIALIZE_BANDWIDTH
        if codec.name == "none":
            return serialize + payload / bandwidth
        ratio = max(self._ratio.get(1.0), 1e-9)
        return (
            serialize
            + codec.compress_time(payload)
            + (payload / ratio) / bandwidth
        )

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        if not self.enabled:
            return None
        if self.policy == "bandit":
            choice = self._bandit.select()
            if choice == self.current:
                return None
            reason = (
                f"discounted-UCB over {self.codecs}: "
                f"score({choice})={self._bandit.score(choice):.3g}"
            )
            detail = {"policy": "bandit", "pulls": self._bandit.pulls}
        else:
            costs = {c: self.predict_cost(c) for c in self.codecs}
            if any(costs[c] is None for c in self.codecs):
                return None  # estimates not warm yet
            choice = min(self.codecs, key=lambda c: costs[c])
            if choice == self.current:
                return None
            if costs[self.current] <= self.margin * costs[choice]:
                return None  # not enough predicted improvement to switch
            reason = (
                f"predicted step cost {costs[self.current]:.3g}s under "
                f"{self.current!r} vs {costs[choice]:.3g}s under {choice!r} "
                f"(ratio~{self._ratio.get(1.0):.2f}, "
                f"bw~{self._bandwidth.get(0.0):.3g} B/s)"
            )
            detail = {
                "policy": "model",
                "cost_current": costs[self.current],
                "cost_best": costs[choice],
            }
        applied = self._actuate(choice)
        previous = self.current
        if applied:
            self.current = choice
        return self._decision(
            step, t, f"codec={choice}", reason, applied,
            previous=previous, **detail,
        )


class ExecutionModeGovernor(Governor):
    """Switches lockstep ↔ asynchronous on the in situ / solver ratio.

    The controlled signal is ``(insitu - copy) / sim``: the busy time
    asynchronous execution could hide, net of the deep copy it cannot
    (``deep_copy_table`` charges the snapshot to the simulation — the
    paper's "apparent" asynchronous cost), relative to the solver's
    step time.  The signal passes through a hysteresis band so one
    noisy step cannot flap the mode.  The copy-cost estimate prefers
    measurement (the apparent time of an asynchronous step *is* the
    copy charge) and falls back to the analytic estimate supplied by
    the caller until the first asynchronous step provides one.
    """

    name = "execution"

    def __init__(
        self,
        actuator: Callable[[ExecutionMethod], None] | None = None,
        low: float = 0.05,
        high: float = 0.15,
        alpha: float = 0.5,
        initial: ExecutionMethod = ExecutionMethod.LOCKSTEP,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(actuator, enabled, frozen)
        self.mode = initial
        self._band = Hysteresis(
            low, high, state=(initial is ExecutionMethod.ASYNCHRONOUS)
        )
        self._sim = EWMA(alpha)
        self._insitu = EWMA(alpha)
        self._copy = EWMA(alpha)
        self._copy_measured = False
        self.last_ratio: float | None = None

    def observe(
        self,
        step: int,
        sim_time: float,
        insitu_time: float,
        apparent_time: float,
        copy_estimate: float | None = None,
    ) -> None:
        if sim_time > 0:
            self._sim.update(sim_time)
        if insitu_time > 0:
            self._insitu.update(insitu_time)
        if self.mode is ExecutionMethod.ASYNCHRONOUS and apparent_time > 0:
            # Under async the simulation only pays the deep copy.
            self._copy.update(apparent_time)
            self._copy_measured = True
        elif not self._copy_measured and copy_estimate is not None \
                and copy_estimate > 0:
            self._copy.update(copy_estimate)

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        if not self.enabled:
            return None
        sim = self._sim.value
        insitu = self._insitu.value
        if not sim or insitu is None:
            return None
        copy = self._copy.get(0.0)
        ratio = (insitu - copy) / sim
        self.last_ratio = ratio
        want_async = self._band.update(ratio)
        target = (
            ExecutionMethod.ASYNCHRONOUS if want_async
            else ExecutionMethod.LOCKSTEP
        )
        if target is self.mode:
            return None
        applied = self._actuate(target)
        previous = self.mode
        if applied:
            self.mode = target
        return self._decision(
            step, t, f"execution={target.value}",
            f"(insitu-copy)/sim = ({insitu:.3g}-{copy:.3g})/{sim:.3g} = "
            f"{ratio:.3f} crossed the [{self._band.low}, {self._band.high}] "
            "band",
            applied,
            previous=previous.value,
            ratio=round(ratio, 4),
            insitu=insitu,
            copy=copy,
            sim=sim,
        )


class PlacementGovernor(Governor):
    """Rebalances Eq. 1's ``n_use``/``offset`` under device overload.

    The load signal is a per-device busy fraction (windowed
    utilization); an optional per-device sharer count is translated
    into an effective load through the
    :class:`~repro.hw.contention.ContentionModel` dilation — a device
    two parties time-share is worth more than its raw busy fraction
    says.  When the device Eq. 1 resolves to for this rank scores
    above ``overload`` × the node mean while calmer devices exist, the
    governor re-aims ``offset`` at the calmest device and widens
    ``n_use`` to the calm set, keeping the paper's placement formula as
    the mechanism and changing only its parameters.
    """

    name = "placement"

    def __init__(
        self,
        actuator: Callable[[DevicePlacement], None] | None = None,
        rank: int = 0,
        base: DevicePlacement | None = None,
        overload: float = 1.30,
        contention: ContentionModel | None = None,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(actuator, enabled, frozen)
        self.rank = int(rank)
        self.placement = base if base is not None else DevicePlacement.auto()
        self.overload = float(overload)
        self.contention = contention if contention is not None else ContentionModel()
        self._loads: dict[int, float] = {}
        self._parties: dict[int, int] = {}

    def observe(
        self,
        step: int,
        loads: Mapping[int, float],
        parties: Mapping[int, int] | None = None,
    ) -> None:
        """Latest per-device busy fractions (and optional sharer counts)."""
        self._loads = {int(d): float(v) for d, v in loads.items()}
        self._parties = (
            {int(d): int(v) for d, v in parties.items()} if parties else {}
        )

    def scores(self) -> dict[int, float]:
        """Effective load per device: busy fraction × contention dilation."""
        out = {}
        for d, load in sorted(self._loads.items()):
            sharers = max(0, self._parties.get(d, 1) - 1)
            out[d] = load * self.contention.dilation(
                SharedResource.GPU_COMPUTE, sharers
            )
        return out

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        if not self.enabled or not self._loads:
            return None
        n_available = len(self._loads)
        current = self.placement.resolve(self.rank, n_available=n_available)
        if current < 0 or current not in self._loads:
            return None  # host placement is not this governor's business
        s = self.scores()
        mean = sum(s.values()) / len(s)
        if mean <= 0 or s[current] <= self.overload * mean:
            return None
        calm = sorted(
            (d for d in s if s[d] <= self.overload * mean),
            key=lambda d: (s[d], d),
        )
        if not calm:
            return None  # everything is overloaded: nowhere better to go
        new = DevicePlacement.auto(
            n_use=len(calm), stride=1, offset=calm[0]
        )
        if new == self.placement:
            return None
        applied = self._actuate(new)
        previous = self.placement
        if applied:
            self.placement = new
        return self._decision(
            step, t, f"placement=auto(n_use={new.n_use}, offset={new.offset})",
            f"device {current} effective load {s[current]:.3f} exceeds "
            f"{self.overload:.2f}x node mean {mean:.3f}; calm set {calm}",
            applied,
            previous=f"auto(n_use={previous.n_use}, offset={previous.offset})",
            overloaded_device=current,
            load=round(s[current], 4),
            mean=round(mean, 4),
        )


class PoolTrimGovernor(Governor):
    """Trims a stream-ordered memory pool above a high watermark.

    Pooled bytes stay claimed on the device (the OOM footprint the
    paper worries about); this governor releases them back whenever
    the pool's idle inventory exceeds ``watermark_bytes``, via
    :meth:`repro.hamr.pool.MemoryPool.trim_above`.

    With ``adaptive=True`` the watermark itself closes a loop on
    trim/refill churn: when ``churn_window`` consecutive decisions each
    trimmed *and* were followed by pool misses (the trim forced fresh
    device allocations, so trimming is fighting the workload), the
    watermark doubles (bounded by ``max_watermark``); after
    ``quiet_window`` consecutive decisions with neither trims nor
    misses it halves back toward the configured base.  The two
    independent streak counters are the hysteresis — a single quiet or
    churny decision resets only its own streak, so the watermark never
    flaps on alternating behavior.
    """

    name = "pool"

    #: Watermark growth/decay factor per adaptation.
    GROWTH = 2.0
    #: Default cap on adaptive growth, as a multiple of the base.
    MAX_GROWTH = 8.0

    def __init__(
        self,
        pool,
        watermark_bytes: int,
        enabled: bool = True,
        frozen: bool = False,
        adaptive: bool = False,
        churn_window: int = 3,
        quiet_window: int = 3,
        max_watermark: int | None = None,
    ):
        super().__init__(pool.trim_above, enabled, frozen)
        if watermark_bytes < 0:
            raise ValueError(f"watermark must be >= 0: {watermark_bytes}")
        if churn_window < 1 or quiet_window < 1:
            raise ValueError(
                f"churn/quiet windows must be >= 1: "
                f"{churn_window}/{quiet_window}"
            )
        self.pool = pool
        self.watermark = int(watermark_bytes)
        self.base_watermark = int(watermark_bytes)
        self.adaptive = bool(adaptive)
        self.churn_window = int(churn_window)
        self.quiet_window = int(quiet_window)
        self.max_watermark = (
            int(max_watermark) if max_watermark is not None
            else int(self.MAX_GROWTH * max(1, self.base_watermark))
        )
        if self.max_watermark < self.base_watermark:
            raise ValueError(
                f"max_watermark {self.max_watermark} below base "
                f"{self.base_watermark}"
            )
        self.trimmed_bytes = 0
        self._churn_streak = 0
        self._quiet_streak = 0
        self._trimmed_last = False
        self._miss_mark = int(getattr(pool, "misses", 0))

    def _adapt(self, step: int, t: float | None) -> Decision | None:
        """Move the watermark if a churn or quiet streak completed."""
        misses = int(getattr(self.pool, "misses", 0))
        d_misses = misses - self._miss_mark
        self._miss_mark = misses
        if self._trimmed_last and d_misses > 0:
            # The last trim was refilled from the allocator: churn.
            self._churn_streak += 1
            self._quiet_streak = 0
        elif not self._trimmed_last and d_misses == 0:
            self._quiet_streak += 1
            self._churn_streak = 0
        else:
            self._churn_streak = 0
            self._quiet_streak = 0
        old = self.watermark
        if (
            self._churn_streak >= self.churn_window
            and old < self.max_watermark
        ):
            new = min(self.max_watermark, int(old * self.GROWTH))
            reason = (
                f"{self._churn_streak} consecutive trim+refill cycles on "
                f"{self.pool.resource.name}: trimming fights the workload"
            )
            self._churn_streak = 0
        elif (
            self._quiet_streak >= self.quiet_window
            and old > self.base_watermark
        ):
            new = max(self.base_watermark, int(old / self.GROWTH))
            reason = (
                f"{self._quiet_streak} consecutive quiet decisions on "
                f"{self.pool.resource.name}: decay toward base watermark"
            )
            self._quiet_streak = 0
        else:
            return None
        applied = not self.frozen
        if applied:
            self.watermark = new
        return self._decision(
            step, t,
            f"watermark {old} -> {new} B",
            reason, applied,
            watermark=new, previous=old, misses=d_misses,
        )

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        if not self.enabled:
            return None
        if self.adaptive:
            moved = self._adapt(step, t)
            if moved is not None:
                self._trimmed_last = False
                return moved
        pooled = self.pool.pooled_bytes
        if pooled <= self.watermark:
            self._trimmed_last = False
            return None
        freed = 0
        applied = not self.frozen
        if applied:
            freed = self.actuator(self.watermark)
            self.trimmed_bytes += freed
        self._trimmed_last = applied
        return self._decision(
            step, t, f"trim {freed} B",
            f"pooled {pooled} B exceeds watermark {self.watermark} B on "
            f"{self.pool.resource.name}",
            applied,
            pooled=pooled,
            watermark=self.watermark,
            freed=freed,
        )


@dataclass(frozen=True)
class FlowBounds:
    """Actuation limits for :class:`FlowGovernor`.

    ``min_chunk``/``max_chunk`` bound the power-of-two chunk rungs;
    ``min_credits``/``max_credits`` bound the credit window.
    """

    min_credits: int = 1
    max_credits: int = 64
    min_chunk: int = 4 * KiB
    max_chunk: int = 256 * KiB

    def __post_init__(self):
        if self.min_credits < 1:
            raise ValueError(f"min_credits must be >= 1: {self.min_credits}")
        if self.max_credits < self.min_credits:
            raise ValueError(
                f"max_credits {self.max_credits} < min_credits "
                f"{self.min_credits}"
            )
        if self.min_chunk < 1:
            raise ValueError(f"min_chunk must be >= 1: {self.min_chunk}")
        if self.max_chunk < self.min_chunk:
            raise ValueError(
                f"max_chunk {self.max_chunk} < min_chunk {self.min_chunk}"
            )


class FlowGovernor(Governor):
    """AIMD flow control over one sender's credit window and chunk size.

    The controlled signals are the sender's ACK round-trip EWMA and its
    per-chunk retry rate (both simulated-clock quantities, so the loop
    is deterministic under seeded faults):

    - **Additive increase**: while the ACK latency stays flat (within
      ``latency_slack`` × the lowest EWMA seen) *and* the window
      saturates (the step's in-flight high-water reaches the credit
      limit), grow the window by ``grow`` credits — there is demand and
      the link shows no strain.
    - **Multiplicative decrease**: when the retry-rate EWMA crosses the
      hysteresis band's high threshold, halve both the window and the
      chunk rung (classic loss response), then hold for ``cooldown``
      decisions so the EWMA can decay before shrinking again.
    - **Chunk rungs**: chunk size moves on bounded power-of-two rungs —
      up one rung while the retry rate sits under the band's low
      threshold, down with every loss response — so a lossy link pays
      for retransmissions in small units and a clean link amortizes
      per-chunk overhead in large ones.

    Shrinks actuate through :meth:`ReliableSender.set_window`, whose
    deferred-shrink semantics guarantee in-flight credits are never
    stranded.  With node coordination, :meth:`ingest_node` overrides
    the local signals with node means so every rank converges on the
    same window.
    """

    name = "flow"

    def __init__(
        self,
        window_actuator: Callable[[int], None] | None = None,
        chunk_actuator: Callable[[int], None] | None = None,
        credits: int = 8,
        chunk_bytes: int = 64 * KiB,
        bounds: FlowBounds | None = None,
        retry_low: float = 0.01,
        retry_high: float = 0.10,
        latency_slack: float = 1.5,
        alpha: float = 0.5,
        grow: int = 1,
        cooldown: int = 2,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(None, enabled, frozen)
        self.window_actuator = window_actuator
        self.chunk_actuator = chunk_actuator
        self.bounds = bounds if bounds is not None else FlowBounds()
        self.credits = max(
            self.bounds.min_credits, min(self.bounds.max_credits, int(credits))
        )
        self.chunk_bytes = max(
            self.bounds.min_chunk, min(self.bounds.max_chunk, int(chunk_bytes))
        )
        self.latency_slack = float(latency_slack)
        self.grow = int(grow)
        self.cooldown = int(cooldown)
        self._band = Hysteresis(retry_low, retry_high, state=False)
        self._retry = EWMA(alpha)
        self._ack = EWMA(alpha)
        self._floor: float | None = None
        self._last_peak = 0
        self._last_shrink: int | None = None
        self._samples = 0
        self._node_retry: float | None = None
        self._node_ack: float | None = None

    # -- sensors ---------------------------------------------------------------
    def observe(
        self,
        step: int,
        ack_latency: float,
        retries: int,
        chunks: int,
        inflight_peak: int,
    ) -> None:
        """Feed one step's transport measurements (deltas for counters)."""
        if ack_latency > 0:
            self._ack.update(ack_latency)
        if chunks > 0:
            self._retry.update(retries / chunks)
        self._last_peak = int(inflight_peak)
        self._samples += 1

    def ingest_node(self, retry_rate: float, ack_latency: float) -> None:
        """Override local signals with node means (coordinated mode).

        Every rank feeding its governor identical node means drives all
        windows through identical decisions — the node-consistent
        window without a second collective.
        """
        self._node_retry = float(retry_rate)
        self._node_ack = float(ack_latency)

    @property
    def coordinated(self) -> bool:
        """True once node-mean signals have been ingested."""
        return self._node_retry is not None

    @property
    def local_retry_rate(self) -> float:
        """This rank's own retry-rate EWMA (the collective contribution)."""
        return self._retry.get(0.0)

    @property
    def local_ack_estimate(self) -> float:
        """This rank's own ACK-latency EWMA (the collective contribution)."""
        return self._ack.get(0.0)

    @property
    def retry_rate(self) -> float:
        """The retry-rate signal the next decision will act on."""
        return (
            self._node_retry if self._node_retry is not None
            else self.local_retry_rate
        )

    @property
    def ack_estimate(self) -> float:
        """The ACK-latency signal the next decision will act on."""
        return (
            self._node_ack if self._node_ack is not None
            else self.local_ack_estimate
        )

    # -- the loop ---------------------------------------------------------------
    def decide(self, step: int, t: float | None = None) -> Decision | None:
        if not self.enabled or self._samples == 0:
            return None
        retry_rate = self.retry_rate
        ack = self.ack_estimate
        if ack > 0 and (self._floor is None or ack < self._floor):
            self._floor = ack
        lossy = self._band.update(retry_rate)
        credits, chunk = self.credits, self.chunk_bytes
        new_credits, new_chunk = credits, chunk
        why = []
        if lossy:
            held = (
                self._last_shrink is not None
                and step - self._last_shrink < self.cooldown
            )
            if not held:
                new_credits = max(self.bounds.min_credits, credits // 2)
                new_chunk = max(self.bounds.min_chunk, chunk // 2)
                self._last_shrink = step
                why.append(
                    f"retry rate {retry_rate:.3f} above "
                    f"{self._band.high:.3f}: multiplicative decrease"
                )
        else:
            flat = (
                self._floor is None
                or ack <= self.latency_slack * max(self._floor, 1e-12)
            )
            if flat and self._last_peak >= credits:
                new_credits = min(self.bounds.max_credits, credits + self.grow)
                if new_credits != credits:
                    why.append(
                        f"ack latency {ack:.3g}s within "
                        f"{self.latency_slack:.2f}x floor and window "
                        f"saturated (peak {self._last_peak}): additive grow"
                    )
            if retry_rate <= self._band.low:
                new_chunk = min(self.bounds.max_chunk, chunk * 2)
                if new_chunk != chunk:
                    why.append(
                        f"retry rate {retry_rate:.3f} under "
                        f"{self._band.low:.3f}: chunk rung up"
                    )
        if new_credits == credits and new_chunk == chunk:
            return None
        applied = not self.frozen
        if applied:
            if new_credits != credits and self.window_actuator is not None:
                self.window_actuator(new_credits)
            if new_chunk != chunk and self.chunk_actuator is not None:
                self.chunk_actuator(new_chunk)
            self.credits, self.chunk_bytes = new_credits, new_chunk
        return self._decision(
            step, t, f"window={new_credits} chunk={new_chunk}",
            "; ".join(why), applied,
            previous_window=credits,
            previous_chunk=chunk,
            retry_rate=round(retry_rate, 6),
            ack_latency=round(ack, 9),
            inflight_peak=self._last_peak,
            coordinated=self._node_retry is not None,
        )
