"""Cross-rank placement coordination: the cluster placement governor.

:class:`~repro.control.governors.PlacementGovernor` evaluates Eq. 1
per rank, which leaves a blind spot the ROADMAP names: two ranks on
one node can independently "flee" an overloaded device to the *same*
calm one and crowd it — each rank's local view says the move is good,
and neither can see the other deciding the same thing.  The
:class:`ClusterPlacementGovernor` closes that loop collectively:

1. every participating rank contributes a per-device load vector
   (busy fraction dilated by contention sharers, its own contribution
   to its current device, resident pool bytes, and a one-hot of the
   device Eq. 1 currently resolves to for it);
2. one :meth:`~repro.mpi.comm.Communicator.coordinated_allreduce`
   folds the vectors — the epoch counter turns cadence skew between
   ranks into a structured error instead of a deadlock;
3. every rank derives the *same* external-load picture (node busy
   minus what the governed ranks themselves contribute — the load that
   will not move when they do), detects **crowding** (>= 2 ranks
   resolved to one device while another sits idle), and, when
   triggered, computes the *same* node-consistent re-aim through
   :func:`repro.sensei.placement.reaim` — new Eq. 1
   ``n_use``/``stride``/``offset`` whose rank image spreads the
   participants over the calmest devices.

Because the aggregated vector, the trigger, and the re-aim rule are
pure functions of the allreduced data, all ranks apply the identical
:class:`~repro.sensei.placement.DevicePlacement` on the same step —
per-rank Eq. 1 resolution then fans them out across the target set
instead of piling them onto one device.  Crowding findings are logged
as decisions (and therefore exported as Chrome-trace instant events by
:meth:`~repro.control.plan.ControlPlane.chrome_instant_events`) even
when no re-aim results.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.control.governors import Decision, Governor
from repro.hw.contention import ContentionModel, SharedResource
from repro.hw.node import num_devices
from repro.mpi.comm import Communicator
from repro.sensei.placement import DevicePlacement, reaim

__all__ = ["ClusterPlacementGovernor"]


class ClusterPlacementGovernor(Governor):
    """Allreduce-coordinated Eq. 1 re-aim, node-consistent across ranks.

    One instance lives on each participating rank; :meth:`coordinate`
    is **collective** — every rank of ``comm`` must call it with the
    same step, the way ranks call any blocking collective together.
    ``resident_weight`` folds resident pool bytes into the device
    score (a device whose pool hoards memory is a worse target even
    when idle); ``overload`` is the re-aim trigger threshold relative
    to the node-mean external load, matching the per-rank governor's
    knob.
    """

    name = "cluster"

    def __init__(
        self,
        comm: Communicator,
        actuator: Callable[[DevicePlacement], None] | None = None,
        rank: int | None = None,
        base: DevicePlacement | None = None,
        n_devices: int | None = None,
        overload: float = 1.30,
        resident_weight: float = 0.25,
        contention: ContentionModel | None = None,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(actuator, enabled, frozen)
        self.comm = comm
        self.rank = comm.rank if rank is None else int(rank)
        self.placement = base if base is not None else DevicePlacement.auto()
        self.n_devices = (
            int(n_devices) if n_devices is not None else num_devices()
        )
        self.overload = float(overload)
        self.resident_weight = float(resident_weight)
        self.contention = (
            contention if contention is not None else ContentionModel()
        )
        self._loads: dict[int, float] = {}
        self._parties: dict[int, int] = {}
        self._resident: dict[int, int] = {}
        self._self_load = 0.0
        #: Flow governor fed node-mean retry/latency signals each round.
        self._flow = None  # FlowGovernor | None
        #: Crowding findings from the latest round (reporting access).
        self.last_crowding: Decision | None = None
        self.rounds = 0

    def attach_flow(self, governor) -> None:
        """Piggyback a flow governor's signals on the placement round.

        Each coordination allreduce then also folds the per-rank
        retry-rate and ACK-latency estimates; the node means are pushed
        back into the governor (:meth:`FlowGovernor.ingest_node`) so
        every rank's window converges on the same AIMD trajectory.
        Idempotent; safe whether or not any rank has a flow governor —
        ranks without one contribute zeros, and the vector layout is
        identical either way.
        """
        self._flow = governor

    # -- sensors ---------------------------------------------------------------
    def observe(
        self,
        step: int,
        loads: Mapping[int, float],
        parties: Mapping[int, int] | None = None,
        self_load: float = 0.0,
        resident_bytes: Mapping[int, int] | None = None,
    ) -> None:
        """This rank's latest per-device measurements.

        ``loads`` are node-wide busy fractions as this rank sees them;
        ``self_load`` is the slice of its *own* current device's busy
        fraction this rank itself produced (the load that moves with
        it); ``resident_bytes`` is per-device resident pool footprint.
        """
        self._loads = {int(d): float(v) for d, v in loads.items()}
        self._parties = (
            {int(d): int(v) for d, v in parties.items()} if parties else {}
        )
        self._self_load = max(0.0, float(self_load))
        self._resident = (
            {int(d): int(v) for d, v in resident_bytes.items()}
            if resident_bytes
            else {}
        )

    # -- the collective round -----------------------------------------------------
    def _local_vector(self, current: int) -> np.ndarray:
        """[busy(n) | self(n) | resident(n) | one-hot(n) | participation |
        retry-rate | ack-latency].

        The two trailing flow slots are *always* present (zeros when no
        flow governor is attached) so vector lengths match across ranks
        regardless of which ranks govern their transport.
        """
        n = self.n_devices
        vec = np.zeros(4 * n + 3)
        for d in range(n):
            sharers = max(0, self._parties.get(d, 1) - 1)
            dil = self.contention.dilation(SharedResource.GPU_COMPUTE, sharers)
            vec[d] = self._loads.get(d, 0.0) * dil
            vec[2 * n + d] = float(self._resident.get(d, 0))
            if d == current:
                vec[n + d] = self._self_load * dil
        if 0 <= current < n:
            vec[3 * n + current] = 1.0
        vec[4 * n] = 1.0
        if self._flow is not None:
            vec[4 * n + 1] = self._flow.local_retry_rate
            vec[4 * n + 2] = self._flow.local_ack_estimate
        return vec

    def coordinate(self, step: int, t: float | None = None) -> list[Decision]:
        """One coordination round; returns the decisions to log.

        Collective over ``comm`` — every rank calls with the same step.
        Disabled governors still participate (contributing zeros and
        never re-aiming) so enable-state mismatches between ranks show
        up as epoch skew, not a hang.
        """
        n = self.n_devices
        current = (
            self.placement.resolve(self.rank, n_available=n)
            if self.enabled
            else -1
        )
        local = (
            self._local_vector(current)
            if self.enabled
            else np.zeros(4 * n + 3)
        )
        total = self.comm.coordinated_allreduce(local, op="sum")
        self.rounds += 1
        if not self.enabled:
            return []
        ranks_total = int(round(total[4 * n]))
        if ranks_total < 1:
            return []
        if self._flow is not None:
            # Node-consistent windows: every rank's flow governor acts
            # on the same node-mean retry/latency signals from here on.
            self._flow.ingest_node(
                float(total[4 * n + 1]) / ranks_total,
                float(total[4 * n + 2]) / ranks_total,
            )
        busy_mean = total[:n] / ranks_total
        self_sum = total[n : 2 * n]
        resident = total[2 * n : 3 * n]
        counts = total[3 * n : 4 * n]
        # External load: what stays on a device when the governed ranks
        # move off it.  Resident pool bytes tip ties toward devices
        # with headroom.
        external = np.maximum(0.0, busy_mean - self_sum)
        resident_total = float(resident.sum())
        score = external + (
            self.resident_weight * resident / resident_total
            if resident_total > 0
            else 0.0
        )

        decisions: list[Decision] = []
        crowded = [
            (d, int(round(counts[d]))) for d in range(n) if counts[d] >= 2
        ]
        idle = [d for d in range(n) if counts[d] == 0]
        self.last_crowding = None
        if crowded and idle:
            self.last_crowding = self._decision(
                step,
                t,
                "crowding",
                f"devices {[d for d, _c in crowded]} carry >=2 ranks each "
                f"while {idle} sit idle",
                applied=False,
                crowded=tuple(crowded),
                idle=tuple(idle),
                counts=tuple(int(round(c)) for c in counts),
            )
            decisions.append(self.last_crowding)

        mean_score = float(score.mean())
        occupied = [d for d in range(n) if counts[d] > 0]
        overloaded = [
            d for d in occupied if mean_score > 0
            and score[d] > self.overload * mean_score
        ]
        if not (crowded and idle) and not overloaded:
            return decisions
        k = min(ranks_total, n)
        order = sorted(range(n), key=lambda d: (score[d], d))
        targets = order[:k]
        proposal = reaim(targets, n_available=n)
        if proposal == self.placement:
            return decisions
        applied = self._actuate(proposal)
        previous = self.placement
        if applied:
            self.placement = proposal
        decisions.append(
            self._decision(
                step,
                t,
                f"placement=auto(n_use={proposal.n_use}, "
                f"stride={proposal.stride}, offset={proposal.offset})",
                f"coordinated re-aim over {ranks_total} ranks: targets "
                f"{targets} (external loads "
                f"{[round(float(s), 3) for s in score]})",
                applied,
                previous=(
                    f"auto(n_use={previous.n_use}, stride={previous.stride}, "
                    f"offset={previous.offset})"
                ),
                targets=tuple(targets),
                ranks=ranks_total,
                crowding=bool(crowded and idle),
            )
        )
        return decisions

    def decide(self, step: int, t: float | None = None) -> Decision | None:
        """Collective; see :meth:`coordinate`.  Returns the re-aim (if any)."""
        out = self.coordinate(step, t)
        reaims = [d for d in out if d.action.startswith("placement=")]
        return reaims[-1] if reaims else None
