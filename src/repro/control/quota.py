"""Per-tenant admission control for the in-transit service plane.

Two governors close the "heavy traffic" loop for
:func:`repro.service.run_service`, reusing the
:class:`~repro.control.governors.Decision` plumbing of the four
existing governors:

- :class:`QuotaGovernor` partitions each shared endpoint's credit
  budget across the pipelines (tenants) assigned to it: **weighted
  fair shares** over the tenants that shipped bytes since the last
  round, with AIMD-style dynamics — an active tenant ramps toward its
  fair share roughly halving the gap per round, an idle tenant's
  allocation decays multiplicatively until only a floor of
  ``min_credits`` is parked on it, and the reclaimed credits are
  immediately redistributed to the active tenants.
- :class:`ShardGovernor` watches per-endpoint offered load (demand
  spread over each pipeline's shard) and migrates the dominant tenant
  off an endpoint whose load skews past ``skew`` times the mean, onto
  the coldest endpoint outside that tenant's shard — at most one
  migration per round, with a cooldown so assignments settle between
  moves.

Neither governor measures anything itself: the service's coordination
round allreduces per-pipeline demand over the producer group (the same
epoch-checked collective the cluster placement governor uses) and
feeds both governors the identical node-wide vectors, so every rank
derives the same decisions on the same step.  Inputs are deterministic
byte counts — never wall-jittery retry or latency signals — so seeded
reruns produce bit-identical decision logs.
"""

from __future__ import annotations

from typing import Mapping

from repro.control.governors import Decision, Governor

__all__ = ["QuotaGovernor", "ShardGovernor"]


class QuotaGovernor(Governor):
    """Weighted-fair credit budgets per (endpoint, pipeline) tenant pair.

    ``actuator(name, endpoint, credits)`` is called for every changed
    allocation; the service's router translates that into
    ``set_window`` on whichever of its local senders carry the
    pipeline (ranks without a local sender simply no-op).
    """

    name = "quota"

    def __init__(
        self,
        weights: Mapping[str, float],
        budget: int,
        actuator=None,
        min_credits: int = 1,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(actuator, enabled, frozen)
        if budget < 1:
            raise ValueError(f"budget must be >= 1 credit: {budget}")
        if min_credits < 1:
            raise ValueError(f"min_credits must be >= 1: {min_credits}")
        if min_credits > budget:
            raise ValueError(
                f"min_credits {min_credits} exceeds budget {budget}"
            )
        for tenant, w in sorted(weights.items()):
            if w <= 0:
                raise ValueError(f"weight for {tenant!r} must be > 0: {w}")
        self.weights = dict(sorted(weights.items()))
        self.budget = int(budget)
        self.min_credits = int(min_credits)
        #: Fractional credit state per (endpoint, pipeline); the
        #: actuated value is the floor, never below ``min_credits``.
        self._alloc: dict[tuple[int, str], float] = {}

    def credits_for(self, name: str, endpoint: int) -> int | None:
        """Current integer allocation, or None before the first round."""
        alloc = self._alloc.get((endpoint, name))
        if alloc is None:
            return None
        return max(self.min_credits, int(alloc))

    def rebalance(
        self,
        step: int,
        demand: Mapping[str, int],
        active: Mapping[str, bool],
        shards: Mapping[str, tuple[int, ...]],
        t: float | None = None,
    ) -> list[Decision]:
        """One admission round over node-wide (allreduced) demand.

        ``demand`` is raw payload bytes each pipeline shipped since the
        last round, ``active`` whether it shipped at all, ``shards``
        the current endpoint assignment.  Returns the decisions for
        every allocation whose integer value changed.
        """
        if not self.enabled:
            return []
        decisions: list[Decision] = []
        endpoints = sorted({e for n in sorted(shards) for e in shards[n]})
        for e in endpoints:
            tenants = [n for n in sorted(shards) if e in shards[n]]
            idle = [n for n in tenants if not active.get(n)]
            live = [n for n in tenants if active.get(n)]
            # Idle tenants decay multiplicatively toward the floor …
            for n in idle:
                cur = self._alloc.get((e, n), float(self.min_credits))
                self._alloc[(e, n)] = max(self.min_credits, cur / 2.0)
            parked = sum(self._alloc[(e, n)] for n in idle)
            # … and the freed budget goes back to the live tenants by
            # weight, each ramping about half the remaining gap per
            # round (an overshooting tenant snaps straight down).
            available = max(0.0, float(self.budget) - parked)
            wsum = sum(self.weights.get(n, 1.0) for n in live)
            for n in live:
                fair = available * self.weights.get(n, 1.0) / wsum
                cur = self._alloc.get((e, n), float(self.min_credits))
                if cur < fair:
                    cur = min(fair, cur + max(1.0, (fair - cur) / 2.0))
                else:
                    cur = fair
                self._alloc[(e, n)] = max(float(self.min_credits), cur)
            for n in tenants:
                credits = max(self.min_credits, int(self._alloc[(e, n)]))
                applied = self._actuate(n, e, credits)
                decisions.append(
                    self._decision(
                        step, t,
                        f"quota {n}@ep{e} -> {credits}",
                        (
                            f"{'active' if n in live else 'idle'} tenant "
                            f"among {len(tenants)} on endpoint {e}: "
                            f"weighted fair share of {self.budget} credits"
                        ),
                        applied,
                        pipeline=n,
                        endpoint=e,
                        credits=credits,
                        demand_bytes=int(demand.get(n, 0)),
                        active=bool(active.get(n)),
                        tenants=len(tenants),
                    )
                )
        return decisions


class ShardGovernor(Governor):
    """Migrates a pipeline off a skewed endpoint at step boundaries.

    ``actuator(name, new_shard)`` rewrites the shared shard map; the
    caller is responsible for replicating the same call on every rank
    (the decision is a pure function of allreduced inputs, so each
    rank computes it independently and identically).
    """

    name = "shard"

    def __init__(
        self,
        endpoints: int,
        actuator=None,
        skew: float = 1.5,
        cooldown: int = 2,
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(actuator, enabled, frozen)
        if endpoints < 1:
            raise ValueError(f"endpoints must be >= 1: {endpoints}")
        if skew <= 1.0:
            raise ValueError(f"skew threshold must be > 1: {skew}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0: {cooldown}")
        self.endpoints = int(endpoints)
        self.skew = float(skew)
        self.cooldown = int(cooldown)
        self._hold = 0

    @staticmethod
    def offered_loads(
        demand: Mapping[str, int],
        shards: Mapping[str, tuple[int, ...]],
        endpoints: int,
    ) -> list[float]:
        """Per-endpoint offered bytes: each pipeline's demand spread
        evenly over its shard."""
        loads = [0.0] * endpoints
        for n in sorted(shards):
            shard = shards[n]
            if not shard:
                continue
            share = demand.get(n, 0) / len(shard)
            for e in shard:
                loads[e] += share
        return loads

    def rebalance(
        self,
        step: int,
        demand: Mapping[str, int],
        shards: Mapping[str, tuple[int, ...]],
        t: float | None = None,
    ) -> tuple[Decision | None, tuple[str, int, int] | None]:
        """One skew check; at most one migration.

        Returns ``(decision, migration)`` where ``migration`` is
        ``(pipeline, old_endpoint, new_endpoint)`` when a move was
        *applied* (None while frozen, cooling down, or balanced).
        """
        if not self.enabled or self.endpoints < 2:
            return None, None
        if self._hold > 0:
            self._hold -= 1
            return None, None
        loads = self.offered_loads(demand, shards, self.endpoints)
        total = sum(loads)
        if total <= 0:
            return None, None
        mean = total / self.endpoints
        hot = max(range(self.endpoints), key=lambda e: (loads[e], -e))
        ratio = loads[hot] / mean
        if ratio < self.skew:
            return None, None
        # The dominant tenant on the hot endpoint, by offered share.
        tenants = [n for n in sorted(shards) if hot in shards[n]]
        movable = [
            n for n in tenants
            if any(e not in shards[n] for e in range(self.endpoints))
        ]
        if len(tenants) < 2 or not movable:
            return None, None  # nothing to separate
        dom = max(
            movable,
            key=lambda n: (demand.get(n, 0) / len(shards[n]), n),
        )
        share = demand.get(dom, 0) / len(shards[dom])
        candidates = [
            e for e in range(self.endpoints) if e not in shards[dom]
        ]
        cold = min(candidates, key=lambda e: (loads[e], e))
        if loads[cold] + share >= loads[hot]:
            return None, None  # the move would not improve the skew
        new_shard = tuple(sorted(
            e for e in shards[dom] if e != hot
        ) + [cold])
        applied = self._actuate(dom, new_shard)
        if applied:
            self._hold = self.cooldown
        decision = self._decision(
            step, t,
            f"migrate {dom}: ep{hot} -> ep{cold}",
            (
                f"endpoint {hot} offered load {ratio:.2f}x the mean "
                f"across {self.endpoints} endpoints; moving its dominant "
                f"tenant to endpoint {cold}"
            ),
            applied,
            pipeline=dom,
            hot=hot,
            cold=cold,
            skew=round(ratio, 6),
            demand_bytes=int(demand.get(dom, 0)),
        )
        return decision, ((dom, hot, cold) if applied else None)
