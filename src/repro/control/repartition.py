"""The repartition governor: re-cutting a distributed array under skew.

Closes the load-balance loop for :mod:`repro.array`: when per-rank
busy time (or per-rank halo traffic) skews past a threshold, the
partition is re-cut with the ``chain`` partitioner using measured
per-block costs as weights — contiguous spans, so the new layout keeps
halo surfaces minimal while evening out the summed cost per rank.

Like the service plane's quota/shard governors, this governor measures
nothing itself: :class:`repro.array.coordinate.ArrayCoordinator`
allreduces per-block busy seconds and per-rank halo bytes over the
array's communicator (the epoch-checked collective, so a rank that
skipped a round fails loudly instead of diverging) and feeds every
rank the identical vectors.  Each rank then computes the identical
decision — including the identical new owner map — so actuation is
just every rank calling the same collective repartition on the same
step.  Inputs are simulated-clock charges and plan-derived byte
counts, never wall-jittery signals: seeded reruns produce bit-identical
decision logs.
"""

from __future__ import annotations

from typing import Sequence

from repro.control.governors import Decision, Governor
from repro.transport.partition import get_partitioner

__all__ = ["RepartitionGovernor"]


class RepartitionGovernor(Governor):
    """Re-cuts block ownership when busy-time or halo-byte skew crosses
    the threshold.

    ``actuator(owners)`` receives the new owner tuple; the coordinator
    wires it to the array's collective repartition (every rank makes
    the identical call, so the shard handoff is itself coordinated).
    A cooldown of ``cooldown`` rounds follows every applied re-cut so
    the new layout's costs are observed before it can be judged again.
    """

    name = "repartition"

    def __init__(
        self,
        actuator=None,
        skew: float = 1.25,
        cooldown: int = 2,
        partitioner: str = "chain",
        enabled: bool = True,
        frozen: bool = False,
    ):
        super().__init__(actuator, enabled, frozen)
        if skew <= 1.0:
            raise ValueError(f"skew threshold must be > 1: {skew}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0: {cooldown}")
        self.skew = float(skew)
        self.cooldown = int(cooldown)
        self.partitioner = str(partitioner)
        self._hold = 0

    @staticmethod
    def _skew(values: Sequence[float]) -> float:
        """max / mean, or 0 when the signal is silent."""
        total = float(sum(values))
        if total <= 0.0:
            return 0.0
        return max(float(v) for v in values) * len(values) / total

    @staticmethod
    def _rank_loads(
        owners: Sequence[int], costs: Sequence[float], ranks: int
    ) -> list[float]:
        loads = [0.0] * ranks
        for b, r in enumerate(owners):
            loads[r] += float(costs[b])
        return loads

    def rebalance(
        self,
        step: int,
        owners: Sequence[int],
        block_costs: Sequence[float],
        rank_busy: Sequence[float],
        halo_bytes: Sequence[float],
        t: float | None = None,
    ) -> tuple[Decision | None, tuple[int, ...] | None]:
        """One skew check over node-wide (allreduced) vectors.

        ``block_costs`` is busy seconds charged per block since the
        last round, ``rank_busy`` the per-rank sums, ``halo_bytes`` the
        plan-derived per-rank halo traffic.  Returns
        ``(decision, new_owners)`` — ``new_owners`` only when a re-cut
        was *applied* (None while frozen, cooling down, balanced, or
        when the re-cut would not improve the worst rank).
        """
        if not self.enabled or len(rank_busy) < 2:
            return None, None
        if self._hold > 0:
            self._hold -= 1
            return None, None
        busy_skew = self._skew(rank_busy)
        halo_skew = self._skew(halo_bytes)
        if max(busy_skew, halo_skew) < self.skew:
            return None, None
        total_cost = float(sum(block_costs))
        if total_cost <= 0.0:
            return None, None
        ranks = len(rank_busy)
        new_owners = tuple(
            get_partitioner(self.partitioner).assign(
                len(block_costs), ranks, [float(c) for c in block_costs]
            )
        )
        moved = sum(1 for a, b in zip(owners, new_owners) if a != b)
        if moved == 0:
            return None, None
        cur = self._rank_loads(owners, block_costs, ranks)
        new = self._rank_loads(new_owners, block_costs, ranks)
        if max(new) >= max(cur):
            return None, None  # the re-cut would not improve the worst rank
        applied = self._actuate(new_owners)
        if applied:
            self._hold = self.cooldown
        decision = self._decision(
            step, t,
            f"repartition: move {moved} of {len(block_costs)} blocks",
            (
                f"rank busy skew {busy_skew:.2f}x, halo skew "
                f"{halo_skew:.2f}x mean across {ranks} ranks; chain re-cut "
                f"drops the worst rank from {max(cur):.3g}s to "
                f"{max(new):.3g}s of charged cost"
            ),
            applied,
            moved=moved,
            blocks=len(block_costs),
            ranks=ranks,
            busy_skew=round(busy_skew, 6),
            halo_skew=round(halo_skew, 6),
            worst_before=round(max(cur), 9),
            worst_after=round(max(new), 9),
        )
        return decision, (new_owners if applied else None)
