"""The control plane: configuration, wiring, taps, and the decision log.

:class:`ControlPlane` is the one object harness code touches.  It owns
the signal ring buffer, the governors, and the decision log; bridges
and senders that have a plane *attached* call its ``observe_*`` taps
once per step, and the plane turns those measurements into governor
decisions on the configured cadence.  Nothing here runs unless a plane
is attached — with no control plane, behavior is bit-identical to the
static configuration.

Configuration is the ``<control>`` element::

    <sensei>
      <control enabled="1" seed="0" interval="1" window="64"
               codec="on" execution="freeze" placement="off" pool="on"
               flow="on" coordination="node" coordination_interval="4"
               mode_low="0.05" mode_high="0.15" codec_margin="1.05"
               overload="1.3" pool_watermark_kib="1024">
        <flow min_credits="1" max_credits="64"
              min_chunk="4096" max_chunk="262144"/>
      </control>
      ...
    </sensei>

Each governor attribute takes ``on`` (closed loop), ``freeze``
(observe and log decisions but never actuate — a dry run), or ``off``
(not even created).  ``flow`` defaults to **off** — the transport
flow-control governor is opt-in, so static ``max_inflight`` /
``chunk_bytes`` configurations behave exactly as before; the nested
``<flow>`` element bounds its actuation range (chunk bounds in bytes,
stepped on power-of-two rungs).

``coordination="node"`` replaces the per-rank placement governor with
the allreduce-coordinated
:class:`~repro.control.cluster.ClusterPlacementGovernor`: device-load
rounds every ``interval * coordination_interval`` steps are collective
over the plane's communicator, so every rank applies the same Eq. 1
re-aim on the same step (and crowding — several ranks resolved onto
one device while another idles — is detected and logged).  A plane
coordinating needs its communicator: pass ``comm=`` at construction,
call :meth:`ControlPlane.attach_comm`, or let ``wire_bridge`` pick it
up from the bridge.  The ``placement`` setting still gates the
mechanism (``freeze`` dry-runs coordination, ``off`` disables it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.control.governors import (
    CodecGovernor,
    Decision,
    ExecutionModeGovernor,
    FlowBounds,
    FlowGovernor,
    Governor,
    PlacementGovernor,
    PoolTrimGovernor,
)
from repro.control.signals import SignalBuffer, StepObservation
from repro.errors import ConfigError
from repro.hamr.allocator import HOST_DEVICE_ID
from repro.hamr.runtime import current_clock
from repro.svtk.table import TableData
from repro.transport.wire import SERIALIZE_BANDWIDTH
from repro.units import KiB

__all__ = [
    "GovernorSetting",
    "ControlConfig",
    "ControlPlane",
    "payload_nbytes",
    "estimate_deep_copy_time",
]


@dataclass(frozen=True)
class GovernorSetting:
    """Per-governor switch: on (closed loop), freeze (dry run), off."""

    enabled: bool = True
    frozen: bool = False

    @classmethod
    def parse(cls, raw: str) -> "GovernorSetting":
        key = str(raw).strip().lower()
        if key in ("on", "1", "true", "yes"):
            return cls(enabled=True, frozen=False)
        if key in ("off", "0", "false", "no"):
            return cls(enabled=False, frozen=False)
        if key in ("freeze", "frozen", "observe"):
            return cls(enabled=True, frozen=True)
        raise ConfigError(
            f"governor setting must be on/off/freeze, got {raw!r}"
        )

    @property
    def value(self) -> str:
        if not self.enabled:
            return "off"
        return "freeze" if self.frozen else "on"


_ON = GovernorSetting(True, False)
_OFF = GovernorSetting(False, False)


@dataclass(frozen=True)
class ControlConfig:
    """Parsed ``<control>`` element (all attributes optional)."""

    enabled: bool = True
    seed: int = 0
    interval: int = 1          # decide every N observed steps
    window: int = 64           # signal ring-buffer capacity
    codec: GovernorSetting = field(default_factory=lambda: _ON)
    execution: GovernorSetting = field(default_factory=lambda: _ON)
    placement: GovernorSetting = field(default_factory=lambda: _ON)
    pool: GovernorSetting = field(default_factory=lambda: _ON)
    flow: GovernorSetting = field(default_factory=lambda: _OFF)
    #: Service-plane admission control (per-tenant endpoint quotas plus
    #: shard rebalancing).  Off by default: only ``run_service`` runs
    #: coordination rounds, and only when this is enabled.
    quota: GovernorSetting = field(default_factory=lambda: _OFF)
    #: Distributed-array load balancing: the repartition governor
    #: re-cuts block ownership when per-rank busy time or halo traffic
    #: skews (:mod:`repro.array`).  Off by default — only an
    #: :class:`~repro.array.coordinate.ArrayCoordinator` runs its
    #: rounds, and only when this is enabled.
    repartition: GovernorSetting = field(default_factory=lambda: _OFF)
    repartition_skew: float = 1.25   # rank busy/halo skew (x mean)
    repartition_cooldown: int = 2    # rounds to settle after a re-cut
    #: Let the pool governor *raise* its watermark under trim/refill
    #: churn (and decay it back when quiet) instead of only trimming.
    pool_growth: bool = False
    flow_bounds: FlowBounds = field(default_factory=FlowBounds)
    mode_low: float = 0.05     # hysteresis band on (insitu-copy)/sim
    mode_high: float = 0.15
    codec_margin: float = 1.05  # predicted-cost ratio needed to switch
    overload: float = 1.30     # placement rebalance threshold (x mean)
    pool_watermark_kib: float | None = None
    coordination: str = "off"  # "node": cross-rank placement rounds
    coordination_interval: int = 1  # rounds every N-th decision interval

    def __post_init__(self):
        if self.interval < 1:
            raise ConfigError(f"interval must be >= 1: {self.interval}")
        if self.window < 1:
            raise ConfigError(f"window must be >= 1: {self.window}")
        if self.coordination not in ("off", "node"):
            raise ConfigError(
                f"coordination must be 'node' or 'off': {self.coordination!r}"
            )
        if self.coordination_interval < 1:
            raise ConfigError(
                f"coordination_interval must be >= 1: "
                f"{self.coordination_interval}"
            )
        if self.mode_low > self.mode_high:
            raise ConfigError(
                f"need mode_low <= mode_high: "
                f"{self.mode_low} > {self.mode_high}"
            )
        if self.codec_margin < 1.0:
            raise ConfigError(
                f"codec_margin must be >= 1: {self.codec_margin}"
            )
        if self.overload < 1.0:
            raise ConfigError(f"overload must be >= 1: {self.overload}")
        if self.repartition_skew <= 1.0:
            raise ConfigError(
                f"repartition_skew must be > 1: {self.repartition_skew}"
            )
        if self.repartition_cooldown < 0:
            raise ConfigError(
                f"repartition_cooldown must be >= 0: "
                f"{self.repartition_cooldown}"
            )
        if self.pool_watermark_kib is not None and self.pool_watermark_kib < 0:
            raise ConfigError(
                f"pool_watermark_kib must be >= 0: {self.pool_watermark_kib}"
            )

    @classmethod
    def from_xml_attrs(
        cls,
        attrs: Mapping[str, str],
        flow_attrs: Mapping[str, str] | None = None,
    ) -> "ControlConfig":
        """Build a config from a ``<control>`` element's attributes.

        ``flow_attrs`` carries the nested ``<flow>`` element's
        attributes (``min_credits``/``max_credits`` in credits,
        ``min_chunk``/``max_chunk`` in bytes), bounding the flow
        governor's actuation range.
        """
        attrs = dict(attrs)

        def _num(key: str, default, conv):
            raw = attrs.pop(key, None)
            if raw is None:
                return default
            try:
                return conv(raw)
            except ValueError:
                raise ConfigError(
                    f"<control>: attribute {key!r} must be a "
                    f"{conv.__name__}, got {raw!r}"
                ) from None

        enabled_raw = attrs.pop("enabled", "1").strip().lower()
        if enabled_raw in ("1", "true", "yes", "on"):
            enabled = True
        elif enabled_raw in ("0", "false", "no", "off"):
            enabled = False
        else:
            raise ConfigError(f"invalid enabled value {enabled_raw!r}")
        settings = {}
        for name in ("codec", "execution", "placement", "pool"):
            raw = attrs.pop(name, None)
            settings[name] = (
                GovernorSetting.parse(raw) if raw is not None else _ON
            )
        raw_flow = attrs.pop("flow", None)
        settings["flow"] = (
            GovernorSetting.parse(raw_flow) if raw_flow is not None else _OFF
        )
        raw_quota = attrs.pop("quota", None)
        settings["quota"] = (
            GovernorSetting.parse(raw_quota) if raw_quota is not None else _OFF
        )
        raw_repart = attrs.pop("repartition", None)
        settings["repartition"] = (
            GovernorSetting.parse(raw_repart)
            if raw_repart is not None else _OFF
        )
        raw_growth = attrs.pop("pool_growth", "off").strip().lower()
        if raw_growth in ("1", "true", "yes", "on"):
            pool_growth = True
        elif raw_growth in ("0", "false", "no", "off"):
            pool_growth = False
        else:
            raise ConfigError(f"invalid pool_growth value {raw_growth!r}")
        watermark = _num("pool_watermark_kib", None, float)
        coordination = attrs.pop("coordination", "off").strip().lower()
        flow_attrs = dict(flow_attrs) if flow_attrs else {}
        defaults = FlowBounds()

        def _flow_num(key: str, default: int) -> int:
            raw = flow_attrs.pop(key, None)
            if raw is None:
                return default
            try:
                return int(raw)
            except ValueError:
                raise ConfigError(
                    f"<flow>: attribute {key!r} must be an int, got {raw!r}"
                ) from None

        try:
            flow_bounds = FlowBounds(
                min_credits=_flow_num("min_credits", defaults.min_credits),
                max_credits=_flow_num("max_credits", defaults.max_credits),
                min_chunk=_flow_num("min_chunk", defaults.min_chunk),
                max_chunk=_flow_num("max_chunk", defaults.max_chunk),
            )
        except ValueError as exc:
            raise ConfigError(f"<flow>: {exc}") from None
        if flow_attrs:
            raise ConfigError(
                f"<flow>: unknown attribute(s) {sorted(flow_attrs)}"
            )
        config = cls(
            flow_bounds=flow_bounds,
            enabled=enabled,
            seed=_num("seed", 0, int),
            interval=_num("interval", 1, int),
            window=_num("window", 64, int),
            mode_low=_num("mode_low", 0.05, float),
            mode_high=_num("mode_high", 0.15, float),
            codec_margin=_num("codec_margin", 1.05, float),
            overload=_num("overload", 1.30, float),
            repartition_skew=_num("repartition_skew", 1.25, float),
            repartition_cooldown=_num("repartition_cooldown", 2, int),
            pool_watermark_kib=watermark,
            pool_growth=pool_growth,
            coordination=coordination,
            coordination_interval=_num("coordination_interval", 1, int),
            **settings,
        )
        if attrs:
            raise ConfigError(
                f"<control>: unknown attribute(s) {sorted(attrs)}"
            )
        return config


def payload_nbytes(data) -> int:
    """Raw bytes of every table the data adaptor currently publishes."""
    total = 0
    for name in data.get_mesh_names():
        mesh = data.get_mesh(name)
        if not isinstance(mesh, TableData):
            continue
        for col_name in mesh.column_names:
            col = mesh.column(col_name)
            total += int(col.n_values) * np.dtype(col.dtype).itemsize
    return total


def estimate_deep_copy_time(data) -> float:
    """Analytic estimate of ``deep_copy_table``'s apparent cost.

    Used by the execution-mode governor before the first asynchronous
    step has *measured* the copy; per-column same-space transfers at
    the modeled memory bandwidth, matching what the copier would
    charge.
    """
    from repro.hamr.copier import transfer_duration

    total = 0.0
    for name in data.get_mesh_names():
        mesh = data.get_mesh(name)
        if not isinstance(mesh, TableData):
            continue
        for col_name in mesh.column_names:
            col = mesh.column(col_name)
            nbytes = int(col.n_values) * np.dtype(col.dtype).itemsize
            device = getattr(col, "device_id", HOST_DEVICE_ID)
            total += transfer_duration(nbytes, device, device)
    return total


class ControlPlane:
    """Owns the governors, the signal buffer, and the decision log.

    One plane serves one rank's bridge and/or transport endpoints.
    Attach with :meth:`repro.sensei.bridge.Bridge.attach_control` /
    :meth:`repro.sensei.intransit.InTransitBridge.attach_control`; the
    taps wire governors lazily on first observation, so attachment
    order does not matter.

    ``comm`` is this rank's communicator over the ranks that
    coordinate (``coordination="node"``); the taps carry it to the
    cluster governor.  Left None, ``wire_bridge`` adopts the bridge's
    communicator on first observation.
    """

    def __init__(
        self, config: ControlConfig | None = None, comm=None
    ):
        self.config = config if config is not None else ControlConfig()
        self.signals = SignalBuffer(self.config.window)
        self.decisions: list[Decision] = []
        self.governors: list[Governor] = []
        self._comm = comm
        self._mode_governor: ExecutionModeGovernor | None = None
        self._placement_governor: PlacementGovernor | None = None
        self._cluster_governor = None  # ClusterPlacementGovernor | None
        self._codec_governors: dict[int, CodecGovernor] = {}
        self._pool_governors: dict[int, PoolTrimGovernor] = {}
        self._flow_governors: dict[int, FlowGovernor] = {}
        # Per-tap bookkeeping for delta extraction.
        self._bridge_prev_end: float | None = None
        self._bridge_insitu_total = 0.0
        self._sender_marks: dict[int, tuple] = {}
        self._recorder = None

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    @property
    def coordinating(self) -> bool:
        """True when cross-rank placement rounds are configured."""
        return (
            self.enabled
            and self.config.coordination == "node"
            and self.config.placement.enabled
        )

    def attach_comm(self, comm) -> None:
        """Bind the communicator coordination rounds run over.

        Must happen before the cluster governor is wired (i.e. before
        the first bridge/load observation); once rounds have started
        the communicator cannot change under them.
        """
        if self._cluster_governor is not None and comm is not self._comm:
            raise ConfigError(
                "cannot change the coordination communicator after the "
                "cluster governor is wired"
            )
        self._comm = comm

    def attach_recorder(self, recorder) -> None:
        """Mirror the plane's traffic into a trace recorder sink.

        ``recorder`` needs ``on_decision(decision)`` and
        ``on_observation(observation, origin)`` callables — the
        :class:`repro.trace.recorder.RankSink` protocol.  Every
        decision the plane logs (its own governors' plus the
        externally-driven ones handed to :meth:`record`) and every
        step observation pushed through the taps is forwarded as it
        lands, in this rank's program order, so the recorder sees the
        exact stream the determinism contract is made over.  One sink
        per plane; attaching again replaces it.
        """
        self._recorder = recorder

    def _log(self, decision: Decision | None) -> Decision | None:
        if decision is not None:
            self.decisions.append(decision)
            if self._recorder is not None:
                self._recorder.on_decision(decision)
        return decision

    def record(self, decision: Decision | None) -> Decision | None:
        """Log a decision made by an externally-driven governor.

        The service plane's quota/shard governors run their own
        coordination rounds (they need the whole producer group, not
        one sender tap) and hand their decisions here so one plane owns
        the complete log and the Chrome-trace export.
        """
        return self._log(decision)

    def _push(self, obs: StepObservation, origin: str) -> None:
        """Ring-buffer an observation and mirror it to the recorder.

        ``origin`` tells the trace replayer whether the observation is
        regenerated by replaying the transport (``"transport"``) or
        must be re-injected from the script (``"bridge"`` — the in situ
        side does not run under replay).
        """
        self.signals.push(obs)
        if self._recorder is not None:
            self._recorder.on_observation(obs, origin)

    def _due(self, step: int) -> bool:
        return step % self.config.interval == 0

    # -- wiring ------------------------------------------------------------------
    def wire_bridge(self, bridge) -> None:
        """Create the execution-mode and placement governors for a bridge."""
        cfg = self.config
        if cfg.execution.enabled and self._mode_governor is None:
            analyses = bridge.analyses

            def set_mode(method):
                for a in analyses:
                    a.set_execution_method(method)

            initial = (
                analyses[0].execution_method if analyses
                else ExecutionModeGovernor().mode
            )
            self._mode_governor = ExecutionModeGovernor(
                actuator=set_mode,
                low=cfg.mode_low,
                high=cfg.mode_high,
                initial=initial,
                frozen=cfg.execution.frozen,
            )
            self.governors.append(self._mode_governor)
        if cfg.placement.enabled and self._placement_governor is None \
                and self._cluster_governor is None:
            analyses = bridge.analyses

            def set_placement(placement):
                for a in analyses:
                    a.set_placement(placement)

            base = analyses[0].placement if analyses else None
            comm = self._comm or getattr(bridge, "_comm", None)
            if self.coordinating and comm is not None:
                from repro.control.cluster import ClusterPlacementGovernor

                self._cluster_governor = ClusterPlacementGovernor(
                    comm,
                    actuator=set_placement,
                    base=base,
                    overload=cfg.overload,
                    frozen=cfg.placement.frozen,
                )
                self.governors.append(self._cluster_governor)
                for fgov in self._flow_governors.values():
                    self._cluster_governor.attach_flow(fgov)
            else:
                rank = getattr(comm, "rank", 0)
                self._placement_governor = PlacementGovernor(
                    actuator=set_placement,
                    rank=rank,
                    base=base,
                    overload=cfg.overload,
                    frozen=cfg.placement.frozen,
                )
                self.governors.append(self._placement_governor)

    def wire_sender(self, sender) -> CodecGovernor | None:
        """Create (or return) the codec governor for one sender."""
        cfg = self.config
        if not cfg.codec.enabled:
            return None
        gov = self._codec_governors.get(id(sender))
        if gov is None:
            from repro.transport.wire import available_codecs

            gov = CodecGovernor(
                actuator=sender.set_codec,
                codecs=available_codecs(),
                initial=sender.codec.name,
                margin=cfg.codec_margin,
                seed=cfg.seed,
                frozen=cfg.codec.frozen,
            )
            self._codec_governors[id(sender)] = gov
            self.governors.append(gov)
        return gov

    def wire_flow(self, sender) -> FlowGovernor | None:
        """Create (or return) the flow governor for one sender.

        Requires the sender to expose the ``set_window`` /
        ``set_chunk_bytes`` actuation hooks; anything else (a test
        double, a non-reliable sender) is silently not governed.
        """
        cfg = self.config
        if not cfg.flow.enabled:
            return None
        if not hasattr(sender, "set_window") or not hasattr(
            sender, "set_chunk_bytes"
        ):
            return None
        gov = self._flow_governors.get(id(sender))
        if gov is None:
            gov = FlowGovernor(
                window_actuator=sender.set_window,
                chunk_actuator=sender.set_chunk_bytes,
                credits=sender.window.credits,
                chunk_bytes=sender.chunk_bytes,
                bounds=cfg.flow_bounds,
                frozen=cfg.flow.frozen,
            )
            self._flow_governors[id(sender)] = gov
            self.governors.append(gov)
            if self._cluster_governor is not None:
                self._cluster_governor.attach_flow(gov)
        return gov

    def wire_pool(self, pool, watermark_bytes: int | None = None) -> PoolTrimGovernor | None:
        """Create (or return) the trim governor for one memory pool."""
        cfg = self.config
        if not cfg.pool.enabled:
            return None
        if watermark_bytes is None:
            if cfg.pool_watermark_kib is None:
                return None  # no watermark configured: nothing to govern
            watermark_bytes = int(cfg.pool_watermark_kib * KiB)
        gov = self._pool_governors.get(id(pool))
        if gov is None:
            gov = PoolTrimGovernor(
                pool, watermark_bytes, frozen=cfg.pool.frozen,
                adaptive=cfg.pool_growth,
            )
            self._pool_governors[id(pool)] = gov
            self.governors.append(gov)
        return gov

    # -- taps --------------------------------------------------------------------
    def observe_bridge_step(self, bridge, data, t_start: float, apparent: float) -> None:
        """Per-step tap from an in situ bridge's ``execute``.

        ``t_start``/``apparent`` bound the bridge's work on the caller's
        clock; the solver time is the gap since the previous step's
        bridge exit.
        """
        if not self.enabled:
            return
        self.wire_bridge(bridge)
        clock = current_clock()
        step = data.time_step
        sim_time = (
            t_start - self._bridge_prev_end
            if self._bridge_prev_end is not None
            else 0.0
        )
        self._bridge_prev_end = clock.now
        insitu_total = sum(a.insitu_busy_time for a in bridge.analyses)
        insitu = max(0.0, insitu_total - self._bridge_insitu_total)
        self._bridge_insitu_total = insitu_total
        payload = payload_nbytes(data)
        self._push(
            StepObservation(
                step=step,
                t=clock.now,
                sim_time=sim_time,
                insitu_time=insitu,
                apparent_time=apparent,
                payload_bytes=payload,
            ),
            origin="bridge",
        )
        gov = self._mode_governor
        if gov is not None and sim_time > 0:
            copy_est = (
                estimate_deep_copy_time(data) if payload > 0 else None
            )
            gov.observe(
                step, sim_time, insitu, apparent, copy_estimate=copy_est
            )
            if self._due(step):
                self._log(gov.decide(step, t=clock.now))
        if self._placement_governor is not None and self._due(step):
            self._log(self._placement_governor.decide(step, t=clock.now))
        self._decide_pools(step, clock.now)

    def observe_transport_step(self, sender, step: int, apparent: float, table=None) -> None:
        """Per-step tap from an in transit bridge, after ``send_step``.

        Extracts this step's deltas from the sender's cumulative
        :class:`~repro.transport.metrics.TransportMetrics`, backs the
        encode and backoff charges out of the apparent time to estimate
        the pure wire time, and feeds the endpoint's codec governor.
        """
        if not self.enabled:
            return
        gov = self.wire_sender(sender)
        fgov = self.wire_flow(sender)
        clock = current_clock()
        m = sender.metrics
        prev = self._sender_marks.get(
            id(sender), (0, 0, 0, 0.0, 0, 0)
        )
        d_raw = m.raw_bytes - prev[0]
        d_wire = m.wire_bytes - prev[1]
        d_out = m.bytes_out - prev[2]
        d_backoff = m.backoff_time - prev[3]
        d_retries = m.retries - prev[4]
        d_chunks = m.chunks_sent - prev[5]
        self._sender_marks[id(sender)] = (
            m.raw_bytes, m.wire_bytes, m.bytes_out, m.backoff_time,
            m.retries, m.chunks_sent,
        )
        codec = sender.codec
        encode = d_raw / SERIALIZE_BANDWIDTH
        if codec.name != "none":
            encode += codec.compress_time(d_raw)
        transfer_time = max(0.0, apparent - encode - d_backoff)
        ratio = (d_raw / d_wire) if d_raw > 0 and d_wire > 0 else 1.0
        self._push(
            StepObservation(
                step=step,
                t=clock.now,
                apparent_time=apparent,
                payload_bytes=d_raw,
                wire_bytes=d_out,
                transfer_time=transfer_time,
                compression_ratio=ratio,
                retries=d_retries,
                ack_latency=m.ack_latency,
                inflight_peak=m.inflight_peak,
                extras=(("codec", codec.name),),
            ),
            origin="transport",
        )
        if fgov is not None:
            fgov.observe(
                step, m.ack_latency, d_retries, d_chunks, m.inflight_peak
            )
            # Under node coordination, hold actuation until the first
            # allreduce round has delivered node-mean signals: acting
            # on per-rank measurements first would let windows diverge
            # before coordination can make them node-consistent.
            pending_round = (
                self._cluster_governor is not None and not fgov.coordinated
            )
            if self._due(step) and not pending_round:
                self._log(fgov.decide(step, t=clock.now))
        if gov is None:
            return
        sample = None
        if codec.name == "none" and table is not None:
            sample = self._payload_sample(table, gov.probe_bytes)
        gov.observe(
            step, d_raw, d_out, transfer_time,
            apparent_time=apparent, sample=sample,
        )
        if self._due(step):
            self._log(gov.decide(step, t=clock.now))
        self._decide_pools(step, clock.now)

    def observe_device_loads(
        self,
        step: int,
        loads: Mapping[int, float],
        parties: Mapping[int, int] | None = None,
        self_load: float = 0.0,
        resident_bytes: Mapping[int, int] | None = None,
    ) -> None:
        """Feed per-device busy fractions to the placement governor.

        Harness code (or a benchmark) computes the loads from device
        timeline utilization over its window of interest; the plane
        does not guess at them.  Under ``coordination="node"`` this tap
        is **collective**: every coordinating rank must call it each
        step (``self_load`` is this rank's own contribution to its
        current device; ``resident_bytes`` the per-device pool
        footprint), and on coordination-due steps the cluster
        governor's allreduce round runs here.
        """
        if not self.enabled:
            return
        t = current_clock().now
        if self._cluster_governor is not None:
            self._cluster_governor.observe(
                step,
                loads,
                parties=parties,
                self_load=self_load,
                resident_bytes=resident_bytes,
            )
            if self._coordination_due(step):
                for d in self._cluster_governor.coordinate(step, t=t):
                    self._log(d)
            return
        if self._placement_governor is None:
            return
        self._placement_governor.observe(step, loads, parties=parties)
        if self._due(step):
            self._log(self._placement_governor.decide(step, t=t))

    def _coordination_due(self, step: int) -> bool:
        period = self.config.interval * self.config.coordination_interval
        return step % period == 0

    def _decide_pools(self, step: int, t: float) -> None:
        for gov in self._pool_governors.values():
            if self._due(step):
                self._log(gov.decide(step, t=t))

    @staticmethod
    def _payload_sample(table: TableData, nbytes: int) -> bytes | None:
        """Up to ``nbytes`` of raw column data for the ratio probe."""
        if not isinstance(table, TableData):
            return None
        for name in table.column_names:
            arr = np.asarray(table.column(name).as_numpy_host())
            if arr.size == 0:
                continue
            count = max(1, min(arr.size, nbytes // max(arr.dtype.itemsize, 1)))
            return np.ascontiguousarray(arr[:count]).tobytes()
        return None

    # -- reporting ---------------------------------------------------------------
    def chrome_instant_events(self, time_scale: float = 1e6, pid: int = 0, tid: int = 0) -> list[dict]:
        """Decision log as Chrome-trace instant events.

        Pass as ``extra_events`` to
        :func:`repro.hw.trace.chrome_trace` so every governor decision
        is visible on the same timeline as the work it re-routed.
        """
        from repro.hw.trace import instant_event

        return [
            instant_event(
                f"{d.governor}: {d.action}",
                d.time,
                time_scale=time_scale,
                pid=pid,
                tid=tid,
                category="control",
                args={
                    "step": d.step,
                    "reason": d.reason,
                    "applied": d.applied,
                    **d.args_dict,
                },
            )
            for d in self.decisions
        ]

    def summary(self) -> dict:
        """Decision counts and governor states (reporting aid)."""
        by_governor: dict[str, int] = {}
        for d in self.decisions:
            by_governor[d.governor] = by_governor.get(d.governor, 0) + 1
        return {
            "enabled": self.enabled,
            "observations": self.signals.pushed,
            "decisions": len(self.decisions),
            "by_governor": by_governor,
            "governors": [g.name for g in self.governors],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ControlPlane(governors={[g.name for g in self.governors]}, "
            f"decisions={len(self.decisions)})"
        )
