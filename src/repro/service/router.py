"""Producer-side service plane: routing, fan-in, admission actuation.

:class:`Router` owns one producer rank's senders across every pipeline
it feeds.  Each (pipeline, destination endpoint) pair gets its own
:class:`~repro.transport.channel.ReliableSender` on the pipeline's tag
pair, stamping chunks with the pipeline id so a misrouted frame is a
hard error rather than silent cross-tenant corruption.  Destinations
are recomputed from the replicated :class:`~repro.service.plan.ShardMap`
on every step, so a shard migration takes effect at the next step
boundary with no sender-side handshake.

:class:`ServiceBridge` composes a Router with the control plane: it
keeps the ``initialize`` / ``execute(data_adaptor)`` / ``finalize``
surface of :class:`repro.sensei.bridge.Bridge`, ships every pipeline
whose mesh the adaptor publishes, and — when admission control is on
(``<control quota="on">``) — runs the coordination round at step
boundaries: demand vectors are allreduced over the producer group,
the shard and quota governors decide identically on every rank, and
rank 0 notifies endpoints of membership changes over the control tag.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.hamr.runtime import current_clock
from repro.mpi.comm import Communicator
from repro.sensei.data_adaptor import DataAdaptor
from repro.service.plan import ServiceConfig, ShardMap, route_producers
from repro.svtk.table import TableData
from repro.transport.channel import ReliableSender
from repro.transport.metrics import new_transport_timeline

__all__ = ["CTRL_TAG", "Router", "ServiceBridge"]

#: Service-plane control messages (membership updates, shutdown) flow
#: from producer world rank 0 to every endpoint on this tag, outside
#: the data/ack tag space and uncharged (control plane is free).
CTRL_TAG = 91


def table_nbytes(table: TableData) -> int:
    """Deterministic raw payload size of one table (demand signal)."""
    total = 0
    for name in table.column_names:
        col = table.column(name)
        total += int(col.n_values) * np.dtype(col.dtype).itemsize
    return total


class Router:
    """One producer rank's sender fan-out across its pipelines.

    Senders are cached per (pipeline, endpoint world rank) and created
    lazily as routing directs traffic there — except the initial
    destinations, which :meth:`open_initial` creates eagerly so even a
    zero-step run drains every flow with a proper ``fin`` handshake.
    """

    def __init__(
        self,
        config: ServiceConfig,
        world: Communicator,
        m: int,
        n: int,
        shard_map: ShardMap,
        load_board=None,
    ):
        self.config = config
        self.world = world
        self.m = int(m)
        self.n = int(n)
        self.shard_map = shard_map
        self.load_board = load_board
        self.senders: dict[tuple[str, int], ReliableSender] = {}
        self._timelines: dict[str, object] = {}
        #: Quota decisions keyed (pipeline, endpoint index): total
        #: credits granted to the tenant on that endpoint.  Applied to
        #: live senders immediately and replayed onto senders created
        #: later (e.g. after a migration).
        self._grants: dict[tuple[str, int], int] = {}

    def members(self, name: str, endpoint_index: int) -> tuple[int, ...]:
        """Producer world ranks currently routed to ``endpoint_index``."""
        spec = self.config.spec(name)
        routed = route_producers(
            spec, self.shard_map.shard(name), spec.producers(self.m)
        )
        return routed.get(endpoint_index, ())

    def endpoint_of(self, name: str, producer: int) -> int:
        """Endpoint *index* currently serving ``producer`` on a pipeline."""
        spec = self.config.spec(name)
        routed = route_producers(
            spec, self.shard_map.shard(name), spec.producers(self.m)
        )
        for e in sorted(routed):
            if producer in routed[e]:
                return e
        raise ExecutionError(
            f"rank {producer} does not feed pipeline {name!r}"
        )

    def _timeline(self, name: str):
        tl = self._timelines.get(name)
        if tl is None:
            tl = new_transport_timeline(
                f"service.{name}.rank{self.world.rank}"
            )
            self._timelines[name] = tl
        return tl

    def sender_for(self, name: str, endpoint_index: int) -> ReliableSender:
        dest = self.m + int(endpoint_index)
        key = (name, dest)
        sender = self.senders.get(key)
        if sender is None:
            spec = self.config.spec(name)
            data_tag, ack_tag = self.config.tags(name)
            sender = ReliableSender(
                self.world,
                dest,
                spec.transport,
                timeline=self._timeline(name),
                data_tag=data_tag,
                ack_tag=ack_tag,
                pipeline=name,
                load_board=self.load_board,
            )
            self.senders[key] = sender
            grant = self._grants.get((name, endpoint_index))
            if grant is not None:
                self._set_window(sender, name, endpoint_index, grant)
        return sender

    def open_initial(self) -> None:
        """Eagerly open every pipeline's current flow from this rank."""
        rank = self.world.rank
        for spec in self.config.pipelines:
            if rank in spec.producers(self.m):
                self.sender_for(spec.name, self.endpoint_of(spec.name, rank))

    def _set_window(
        self, sender: ReliableSender, name: str, endpoint_index: int,
        credits: int,
    ) -> None:
        # The tenant's endpoint budget is split evenly across the
        # producers currently routed there; each flow gets the slice.
        count = max(1, len(self.members(name, endpoint_index)))
        sender.set_window(max(1, int(credits) // count))

    def grant(self, name: str, endpoint_index: int, credits: int) -> None:
        """Record a quota grant and apply it to the live sender, if any."""
        self._grants[(name, int(endpoint_index))] = int(credits)
        sender = self.senders.get((name, self.m + int(endpoint_index)))
        if sender is not None:
            self._set_window(sender, name, int(endpoint_index), int(credits))

    def close_pipeline(self, name: str) -> None:
        for key in sorted(k for k in self.senders if k[0] == name):
            sender = self.senders[key]
            if not sender._closed:
                sender.close()

    def close_all(self) -> None:
        for key in sorted(self.senders):
            sender = self.senders[key]
            if not sender._closed:
                sender.close()

    def pipeline_metrics(self, name: str) -> dict:
        """Summed counters over this rank's senders for one pipeline."""
        out = {
            "steps": 0, "raw_bytes": 0, "wire_bytes": 0, "bytes_out": 0,
            "retries": 0, "drops_recovered": 0, "chunks_sent": 0,
            "backoff_time": 0.0, "senders": 0,
        }
        for key in sorted(k for k in self.senders if k[0] == name):
            metrics = self.senders[key].metrics
            out["senders"] += 1
            for field in (
                "steps", "raw_bytes", "wire_bytes", "bytes_out", "retries",
                "drops_recovered", "chunks_sent", "backoff_time",
            ):
                out[field] += getattr(metrics, field)
        return out


class ServiceBridge:
    """The simulation-side bridge of the multi-pipeline service.

    Drop-in for :class:`repro.sensei.intransit.InTransitBridge` when
    the service carries one pipeline, and the multi-tenant superset
    otherwise.  Every producer must call :meth:`execute` for the same
    sequence of time steps (ship nothing for a pipeline by simply not
    publishing its mesh) — the coordination round is a collective over
    the producer group, so cadences must align.
    """

    def __init__(
        self,
        config: ServiceConfig,
        m: int,
        n: int,
        load_board=None,
    ):
        self.config = config
        self.m = int(m)
        self.n = int(n)
        self.load_board = load_board
        self.shard_map = ShardMap.initial(config, n)
        self._world: Communicator | None = None
        self._sim: Communicator | None = None
        self.router: Router | None = None
        self._control = None
        self._quota_governor = None
        self._shard_governor = None
        self._initialized = False
        self._finalized = False
        self._finished: set[str] = set()
        self.step_costs: list[float] = []
        self.pipeline_step_costs: dict[str, list[float]] = {
            name: [] for name in config.names
        }
        # Demand accumulators for the next coordination round.
        self._demand: dict[str, int] = {name: 0 for name in config.names}
        self._shipped: dict[str, int] = {name: 0 for name in config.names}

    # -- control plane ---------------------------------------------------------
    def attach_control(self, plane) -> None:
        """Attach a :class:`repro.control.ControlPlane`.

        Per-sender taps (codec, flow) wire lazily exactly as on the
        single-pipeline bridge; additionally, ``<control quota="on">``
        arms the service's own coordination round (quota + shard
        governors) at the plane's decision interval.
        """
        self._control = plane

    @property
    def control_plane(self):
        return self._control

    def _admission_on(self) -> bool:
        plane = self._control
        return (
            plane is not None
            and plane.enabled
            and plane.config.quota.enabled
        )

    def _wire_admission(self) -> None:
        from repro.control.quota import QuotaGovernor, ShardGovernor

        cfg = self.config
        plane = self._control
        self._quota_governor = QuotaGovernor(
            weights={p.name: p.weight for p in cfg.pipelines},
            budget=cfg.budget,
            actuator=self.router.grant,
            min_credits=cfg.min_credits,
            frozen=plane.config.quota.frozen,
        )
        self._shard_governor = ShardGovernor(
            endpoints=self.n,
            actuator=self.shard_map.set_shard,
            skew=cfg.skew,
            cooldown=cfg.cooldown,
            frozen=plane.config.quota.frozen,
        )
        plane.governors.append(self._quota_governor)
        plane.governors.append(self._shard_governor)

    # -- lifecycle -------------------------------------------------------------
    def initialize(self, world_comm: Communicator, sim_comm: Communicator) -> None:
        if self._initialized:
            raise ExecutionError("service bridge already initialized")
        if not (0 <= world_comm.rank < self.m):
            raise ExecutionError(
                f"rank {world_comm.rank} is not a producer in this service"
            )
        self._world = world_comm
        self._sim = sim_comm
        self.router = Router(
            self.config, world_comm, self.m, self.n, self.shard_map,
            load_board=self.load_board,
        )
        if self._admission_on():
            self._wire_admission()
        # Open every flow up front so a zero-step run still drains
        # each receiver with a proper fin handshake.
        self.router.open_initial()
        self._initialized = True

    def execute(self, data: DataAdaptor) -> bool:
        if not self._initialized:
            raise ExecutionError("initialize the service bridge first")
        if self._finalized:
            raise ExecutionError("service bridge already finalized")
        clock = current_clock()
        t0 = clock.now
        rank = self._world.rank
        published = set(data.get_mesh_names())
        for spec in self.config.pipelines:
            if spec.name in self._finished or spec.mesh not in published:
                continue
            if rank not in spec.producers(self.m):
                continue
            table = data.get_mesh(spec.mesh)
            if not isinstance(table, TableData):
                raise ExecutionError(
                    f"the service plane ships tables; mesh {spec.mesh!r} "
                    f"of pipeline {spec.name!r} is {type(table).__name__}"
                )
            sender = self.router.sender_for(
                spec.name, self.router.endpoint_of(spec.name, rank)
            )
            ship0 = clock.now
            sender.send_step(data.time_step, data.time, table)
            self.pipeline_step_costs[spec.name].append(clock.now - ship0)
            self._demand[spec.name] += table_nbytes(table)
            self._shipped[spec.name] += 1
            if self._control is not None:
                self._control.observe_transport_step(
                    sender, data.time_step, clock.now - ship0, table=table
                )
        self.step_costs.append(clock.now - t0)
        self._maybe_coordinate(data.time_step)
        return True

    def finish_pipeline(self, name: str) -> None:
        """Drain one pipeline early (fin handshake on its flows).

        The endpoint marks the producer finned and keeps serving the
        remaining tenants — an early-exiting pipeline never stalls
        siblings sharing its endpoints.  The rank keeps participating
        in coordination rounds; the tenant just goes idle there.
        """
        if not self._initialized:
            raise ExecutionError("initialize the service bridge first")
        self.config.spec(name)  # validate
        if name in self._finished:
            return
        self.router.close_pipeline(name)
        self._finished.add(name)

    def finalize(self) -> None:
        if self._finalized or not self._initialized:
            self._finalized = True
            return
        try:
            self.router.close_all()
        finally:
            self._finalized = True
            # Every producer drains before any endpoint is told to
            # stop, else the shutdown could outrun a sibling's data.
            self._sim.barrier()
            if self._sim.rank == 0:
                for e in range(self.n):
                    self._world.send(
                        ("svc_shutdown",), self.m + e, CTRL_TAG,
                        charge=False,
                    )

    # -- coordination ----------------------------------------------------------
    def _maybe_coordinate(self, step: int) -> None:
        """Run the admission round at the plane's decision cadence.

        A collective over the producer group: every rank folds its
        per-pipeline demand into one epoch-checked allreduce, then
        runs the shard and quota governors on the identical node-wide
        vectors — so the replicated shard map and the credit grants
        never diverge across ranks.
        """
        if not self._admission_on() or self._quota_governor is None:
            return
        plane = self._control
        if step % plane.config.interval != 0:
            return
        names = self.config.names
        local = np.array(
            [float(self._demand[n]) for n in names]
            + [float(self._shipped[n]) for n in names],
            dtype=np.float64,
        )
        if self._sim.size > 1:
            folded = self._sim.coordinated_allreduce(local, op="sum")
        else:
            folded = local
        count = len(names)
        demand = {n: int(folded[i]) for i, n in enumerate(names)}
        active = {
            n: bool(folded[count + i] > 0) for i, n in enumerate(names)
        }
        decision, migration = self._shard_governor.rebalance(
            step, demand, self.shard_map.as_dict()
        )
        plane.record(decision)
        if migration is not None:
            self._announce_migration(step, migration[0])
        for quota_decision in self._quota_governor.rebalance(
            step, demand, active, self.shard_map.as_dict()
        ):
            plane.record(quota_decision)
        for n in names:
            self._demand[n] = 0
            self._shipped[n] = 0

    def _announce_migration(self, step: int, name: str) -> None:
        """Tell every endpoint the pipeline's new membership.

        Producers reroute at the next step boundary, so the update
        takes effect at ``step + 1``.  Rank 0 speaks for the group —
        the decision is replicated, the notification need not be.
        """
        if self._sim.rank != 0:
            return
        spec = self.config.spec(name)
        routed = route_producers(
            spec, self.shard_map.shard(name), spec.producers(self.m)
        )
        for e in range(self.n):
            self._world.send(
                ("svc_migrate", step + 1, name, routed.get(e, ())),
                self.m + e, CTRL_TAG, charge=False,
            )

    # -- reporting -------------------------------------------------------------
    @property
    def metrics(self):
        """Single-flow counters when the service has exactly one flow
        (the legacy bridge surface); per-flow dict otherwise."""
        if self.router is None:
            return None
        senders = [self.router.senders[k] for k in sorted(self.router.senders)]
        if len(senders) == 1:
            return senders[0].metrics
        return {k: s.metrics for k, s in
                zip(sorted(self.router.senders), senders)}

    def pipeline_metrics(self, name: str) -> dict:
        if self.router is None:
            raise ExecutionError("initialize the service bridge first")
        return self.router.pipeline_metrics(name)

    @property
    def total_apparent_time(self) -> float:
        return sum(self.step_costs)
