"""Service-plane configuration: pipelines, shards, and routing.

A *pipeline* is one tenant of the in-transit service: a named stream
of tables with its own analysis factory, partitioner, and transport
configuration.  A :class:`ServiceConfig` declares the pipeline set
plus the admission-control knobs; :class:`PipelineRegistry` binds each
pipeline name to the analysis factory its endpoints instantiate; a
:class:`ShardMap` holds the live (mutable, replicated) assignment of
pipelines to endpoint shards that the
:class:`~repro.control.quota.ShardGovernor` rebalances at step
boundaries.

Configuration is the ``<service>`` element, parsed through the same
:mod:`repro.sensei.xml_config` machinery as ``<transport>`` and
``<control>``::

    <sensei>
      <service budget="32" min_credits="1" skew="1.5"
               cooldown="2" interval="4">
        <pipeline name="hot" mesh="bodies" weight="8" shard_size="2"
                  compression="zlib" chunk_kib="8" max_inflight="8"/>
        <pipeline name="bulk" weight="1" collective="false"
                  partitioner="cyclic"/>
      </service>
      ...
    </sensei>

Unknown ``<pipeline>`` attributes are handed to
:meth:`repro.transport.config.TransportConfig.from_xml_attrs`, so each
tenant tunes its wire (codec, chunking, retry, faults) exactly like a
standalone ``<transport>`` element.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import ConfigError
from repro.transport.channel import ACK_TAG, DATA_TAG
from repro.transport.config import TransportConfig
from repro.transport.partition import get_partitioner

__all__ = [
    "PipelineSpec",
    "ServiceConfig",
    "PipelineRegistry",
    "ShardMap",
    "pipeline_tags",
    "route_producers",
]

#: Tag stride per pipeline: data/ack pairs with room to grow.  Index 0
#: lands on the legacy ``DATA_TAG``/``ACK_TAG`` pair, so a one-pipeline
#: service is wire-identical to the classic in-transit path.
_TAG_STRIDE = 4


def pipeline_tags(index: int) -> tuple[int, int]:
    """The (data, ack) tag pair for the ``index``-th pipeline."""
    if index < 0:
        raise ConfigError(f"pipeline index must be >= 0: {index}")
    return DATA_TAG + _TAG_STRIDE * index, ACK_TAG + _TAG_STRIDE * index


@dataclass(frozen=True)
class PipelineSpec:
    """One tenant: a named stream with its own transport and analyses.

    ``mesh`` is the data-adaptor mesh the pipeline ships (defaults to
    the pipeline name); ``weight`` its share in the quota governor's
    weighted-fair split; ``shard_size`` how many endpoints its traffic
    spreads over; ``ranks`` an optional subset of producer ranks that
    feed it (None: every producer).  ``partitioner`` maps the
    pipeline's producers over its current shard;
    ``producer_weights`` feeds the ``weighted`` partitioner.

    ``collective=True`` initializes the pipeline's analyses with the
    full endpoint sub-communicator so reductions span every endpoint —
    this pins the shard to *all* endpoints (no migration) because a
    collective analysis must run on every rank of its communicator in
    lockstep.  The default gives each endpoint an isolated singleton
    communicator, the posture that lets tenants shard and migrate
    freely.
    """

    name: str
    mesh: str = ""
    weight: float = 1.0
    shard_size: int = 1
    partitioner: str = "block"
    producer_weights: tuple[float, ...] | None = None
    ranks: tuple[int, ...] | None = None
    collective: bool = False
    transport: TransportConfig = field(default_factory=TransportConfig)

    def __post_init__(self):
        if not self.name or ":" in self.name:
            raise ConfigError(
                f"pipeline name must be non-empty and colon-free: "
                f"{self.name!r}"
            )
        if not self.mesh:
            object.__setattr__(self, "mesh", self.name)
        if self.weight <= 0:
            raise ConfigError(
                f"pipeline {self.name!r}: weight must be > 0: {self.weight}"
            )
        if self.shard_size < 1:
            raise ConfigError(
                f"pipeline {self.name!r}: shard_size must be >= 1: "
                f"{self.shard_size}"
            )
        if self.ranks is not None:
            if not self.ranks:
                raise ConfigError(
                    f"pipeline {self.name!r}: ranks must be non-empty"
                )
            if any(r < 0 for r in self.ranks):
                raise ConfigError(
                    f"pipeline {self.name!r}: negative producer rank"
                )
            object.__setattr__(self, "ranks", tuple(sorted(set(self.ranks))))

    def producers(self, m: int) -> tuple[int, ...]:
        """The producer ranks feeding this pipeline in an M-producer run."""
        if self.ranks is None:
            return tuple(range(m))
        bad = [r for r in self.ranks if r >= m]
        if bad:
            raise ConfigError(
                f"pipeline {self.name!r}: producer ranks {bad} outside "
                f"[0, {m})"
            )
        return self.ranks


@dataclass(frozen=True)
class ServiceConfig:
    """The parsed ``<service>`` element: tenants plus admission knobs.

    ``budget`` is each endpoint's credit budget the quota governor
    partitions across its tenants; ``min_credits`` the floor parked on
    an idle tenant; ``skew``/``cooldown`` drive shard rebalancing
    (``skew <= 1`` would disable it, so it must be > 1; set the shard
    governor off via ``<control quota="off">`` instead); ``interval``
    is the coordination cadence in steps.
    """

    pipelines: tuple[PipelineSpec, ...]
    budget: int = 32
    min_credits: int = 1
    skew: float = 1.5
    cooldown: int = 2
    interval: int = 4

    def __post_init__(self):
        if not self.pipelines:
            raise ConfigError("<service> declares no pipelines")
        names = [p.name for p in self.pipelines]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ConfigError(f"duplicate pipeline name(s): {dupes}")
        collective = [p.name for p in self.pipelines if p.collective]
        if len(collective) > 1:
            raise ConfigError(
                f"at most one collective pipeline is supported (their "
                f"analyses run lockstep over the shared endpoint "
                f"communicator): {collective}"
            )
        if self.budget < 1:
            raise ConfigError(f"budget must be >= 1 credit: {self.budget}")
        if self.min_credits < 1 or self.min_credits > self.budget:
            raise ConfigError(
                f"min_credits must be in [1, budget]: {self.min_credits}"
            )
        if self.skew <= 1.0:
            raise ConfigError(f"skew threshold must be > 1: {self.skew}")
        if self.cooldown < 0:
            raise ConfigError(f"cooldown must be >= 0: {self.cooldown}")
        if self.interval < 1:
            raise ConfigError(f"interval must be >= 1: {self.interval}")
        # Pipeline order is part of the wire protocol (tag allocation),
        # so pin a canonical order regardless of declaration order.
        object.__setattr__(
            self, "pipelines",
            tuple(sorted(self.pipelines, key=lambda p: p.name)),
        )

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.pipelines)

    def spec(self, name: str) -> PipelineSpec:
        for p in self.pipelines:
            if p.name == name:
                return p
        raise ConfigError(f"unknown pipeline {name!r}; have {self.names}")

    def index(self, name: str) -> int:
        """Position in canonical order — the tag-allocation index."""
        for i, p in enumerate(self.pipelines):
            if p.name == name:
                return i
        raise ConfigError(f"unknown pipeline {name!r}; have {self.names}")

    def tags(self, name: str) -> tuple[int, int]:
        return pipeline_tags(self.index(name))

    @classmethod
    def from_xml_element(cls, elem: ET.Element) -> "ServiceConfig":
        """Parse a ``<service>`` element (nested ``<pipeline>`` children)."""
        attrs = dict(elem.attrib)

        def _num(key: str, default, conv):
            raw = attrs.pop(key, None)
            if raw is None:
                return default
            try:
                return conv(raw)
            except ValueError:
                raise ConfigError(
                    f"<service>: attribute {key!r} must be a "
                    f"{conv.__name__}, got {raw!r}"
                ) from None

        budget = _num("budget", 32, int)
        min_credits = _num("min_credits", 1, int)
        skew = _num("skew", 1.5, float)
        cooldown = _num("cooldown", 2, int)
        interval = _num("interval", 4, int)
        if attrs:
            raise ConfigError(
                f"<service>: unknown attribute(s) {sorted(attrs)}"
            )
        pipelines = []
        for child in elem:
            if child.tag != "pipeline":
                raise ConfigError(
                    f"unexpected element <{child.tag}> inside <service>; "
                    "only <pipeline> is allowed"
                )
            pipelines.append(cls._parse_pipeline(child.attrib))
        return cls(
            pipelines=tuple(pipelines),
            budget=budget,
            min_credits=min_credits,
            skew=skew,
            cooldown=cooldown,
            interval=interval,
        )

    @staticmethod
    def _parse_pipeline(raw_attrs: Mapping[str, str]) -> PipelineSpec:
        attrs = dict(raw_attrs)
        name = attrs.pop("name", None)
        if not name:
            raise ConfigError("<pipeline> element missing the 'name' attribute")
        mesh = attrs.pop("mesh", "")

        def _num(key: str, default, conv):
            raw = attrs.pop(key, None)
            if raw is None:
                return default
            try:
                return conv(raw)
            except ValueError:
                raise ConfigError(
                    f"<pipeline name={name!r}>: attribute {key!r} must be "
                    f"a {conv.__name__}, got {raw!r}"
                ) from None

        weight = _num("weight", 1.0, float)
        shard_size = _num("shard_size", 1, int)
        raw_collective = attrs.pop("collective", "false").strip().lower()
        if raw_collective not in ("true", "false", "1", "0"):
            raise ConfigError(
                f"<pipeline name={name!r}>: 'collective' must be a "
                f"boolean, got {raw_collective!r}"
            )
        collective = raw_collective in ("true", "1")
        ranks_raw = attrs.pop("ranks", None)
        ranks = None
        if ranks_raw is not None:
            try:
                ranks = tuple(
                    int(r) for r in ranks_raw.split(",") if r.strip()
                )
            except ValueError:
                raise ConfigError(
                    f"<pipeline name={name!r}>: 'ranks' must be a "
                    f"comma-separated rank list, got {ranks_raw!r}"
                ) from None
        # Everything left is transport configuration for this tenant
        # (including 'partitioner', which TransportConfig validates).
        transport = TransportConfig.from_xml_attrs(attrs)
        return PipelineSpec(
            name=name,
            mesh=mesh,
            weight=weight,
            shard_size=shard_size,
            partitioner=transport.partitioner,
            ranks=ranks,
            collective=collective,
            transport=transport,
        )


class PipelineRegistry:
    """Binds pipeline names to analysis factories.

    The XML declares *what* flows; the registry supplies the *code*
    each endpoint instantiates for it.  A factory is any zero-argument
    callable returning a sequence of analysis adaptors; pipelines
    without a factory get an empty analysis set (pure transport).
    """

    def __init__(self, factories: Mapping[str, Callable] | None = None):
        self._factories: dict[str, Callable] = {}
        for name in sorted(factories or {}):
            self.register(name, factories[name])

    def register(self, name: str, factory: Callable) -> Callable:
        if not callable(factory):
            raise ConfigError(
                f"analysis factory for {name!r} is not callable"
            )
        self._factories[str(name)] = factory
        return factory

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._factories))

    def factory_for(self, name: str) -> Callable:
        return self._factories.get(name, tuple)

    def build(self, name: str) -> list:
        return list(self.factory_for(name)())


def route_producers(
    spec: PipelineSpec,
    shard: Sequence[int],
    producers: Sequence[int],
) -> dict[int, tuple[int, ...]]:
    """Assign a pipeline's producers over its shard's endpoints.

    Pure function of ``(spec, shard, producers)`` so every rank —
    producer or endpoint — derives the identical mapping from the
    replicated shard state.  Returns ``{endpoint_index: (producer
    ranks...)}`` covering exactly the shard.  A pipeline with fewer
    producers than endpoints routes over the shard's lowest-indexed
    endpoints; the rest receive an empty member tuple.
    """
    routed: dict[int, list[int]] = {e: [] for e in shard}
    if producers:
        active = tuple(shard)[:min(len(shard), len(producers))]
        assignment = get_partitioner(spec.partitioner).assign(
            len(producers), len(active), spec.producer_weights
        )
        for p, slot in zip(producers, assignment):
            routed[active[slot]].append(p)
    return {e: tuple(sorted(ps)) for e, ps in sorted(routed.items())}


class ShardMap:
    """The live pipeline -> endpoint-shard assignment (replicated).

    Every rank holds its own copy and mutates it only through
    governor decisions that are pure functions of allreduced inputs,
    so the copies never diverge.  Endpoints are tracked by *index*
    (0-based within the endpoint group), not world rank.
    """

    def __init__(self, shards: Mapping[str, Sequence[int]]):
        self._shards: dict[str, tuple[int, ...]] = {
            name: tuple(shards[name]) for name in sorted(shards)
        }

    @classmethod
    def initial(cls, config: ServiceConfig, endpoints: int) -> "ShardMap":
        """Deterministic first assignment: heaviest pipelines first,
        each taking its ``shard_size`` least-loaded endpoints."""
        if endpoints < 1:
            raise ConfigError(f"need >= 1 endpoint: {endpoints}")
        load = [0.0] * endpoints
        shards: dict[str, tuple[int, ...]] = {}
        order = sorted(
            config.pipelines, key=lambda p: (-p.weight, p.name)
        )
        for spec in order:
            if spec.collective:
                # Collective analyses span every endpoint; see
                # PipelineSpec.  Weight still lands on all of them.
                shard = tuple(range(endpoints))
            else:
                size = min(spec.shard_size, endpoints)
                ranked = sorted(range(endpoints), key=lambda e: (load[e], e))
                shard = tuple(sorted(ranked[:size]))
            for e in shard:
                load[e] += spec.weight / len(shard)
            shards[spec.name] = shard
        return cls(shards)

    def shard(self, name: str) -> tuple[int, ...]:
        try:
            return self._shards[name]
        except KeyError:
            raise ConfigError(
                f"unknown pipeline {name!r}; have {sorted(self._shards)}"
            ) from None

    def set_shard(self, name: str, shard: Sequence[int]) -> None:
        if name not in self._shards:
            raise ConfigError(f"unknown pipeline {name!r}")
        if not shard:
            raise ConfigError(f"pipeline {name!r}: empty shard")
        self._shards[name] = tuple(sorted(set(int(e) for e in shard)))

    def as_dict(self) -> dict[str, tuple[int, ...]]:
        return dict(self._shards)

    def tenants_of(self, endpoint_index: int) -> tuple[str, ...]:
        return tuple(
            sorted(n for n, s in self._shards.items() if endpoint_index in s)
        )
