"""Shared offered-load accounting across sender threads.

In a multi-pipeline service many :class:`ReliableSender` instances on
*different* simulated ranks (threads) target the same endpoint.  The
congestion model in :class:`~repro.transport.channel.FaultyChannel`
keys its drop probability off the offered load stamped on each frame,
so senders sharing an endpoint need a common ledger of in-flight bytes
— otherwise each sender sees only its own traffic and the endpoint
never looks congested no matter how many tenants pile on.

:class:`LoadBoard` is that ledger: a lock-protected byte counter per
endpoint world rank.  Senders constructed with ``load_board=`` update
it as chunks enter/leave flight and stamp frames with the *aggregate*
load.  It is observability/fault-model plumbing only — nothing on a
decision path reads it (HL010: its values depend on thread timing), so
determinism tests must keep congestion faults off.
"""

from __future__ import annotations

import threading

__all__ = ["LoadBoard"]


class LoadBoard:
    """Thread-safe in-flight byte counts keyed by destination rank."""

    def __init__(self):
        self._lock = threading.Lock()
        self._bytes: dict[int, int] = {}

    def add(self, key: int, delta: int) -> None:
        with self._lock:
            self._bytes[key] = max(0, self._bytes.get(key, 0) + delta)

    def load(self, key: int) -> int:
        with self._lock:
            return self._bytes.get(key, 0)

    def snapshot(self) -> dict[int, int]:
        with self._lock:
            return {k: self._bytes[k] for k in sorted(self._bytes)}
