"""repro.service — the sharded multi-pipeline in-transit service plane.

The classic in-transit mode (:mod:`repro.sensei.intransit`) couples one
simulation to one analysis pipeline over dedicated endpoints.  At
facility scale the endpoints are a *service*: M producer ranks feed
many named pipelines — each with its own analyses, partitioner, and
transport tuning — multiplexed over N shared endpoint ranks.  This
package provides that plane on the simulated substrate:

- :class:`~repro.service.plan.PipelineSpec` /
  :class:`~repro.service.plan.ServiceConfig` — the declarative tenant
  set, parsed from the ``<service>`` XML element alongside
  ``<transport>`` and ``<control>``;
- :class:`~repro.service.plan.PipelineRegistry` — pipeline name to
  analysis-factory binding;
- :class:`~repro.service.router.Router` /
  :class:`~repro.service.router.ServiceBridge` — producer-side fan-out
  with per-pipeline tagged flows, chunk stamping, and per-tenant
  metrics/timelines;
- :class:`~repro.service.runtime.StepMerger` /
  :class:`~repro.service.runtime.ServiceEndpoint` — endpoint-side
  fan-in with elastic, step-indexed membership;
- :class:`~repro.service.plan.ShardMap` plus the quota/shard governors
  in :mod:`repro.control.quota` — per-tenant admission control and
  skew-triggered endpoint rebalancing, coordinated over the producer
  group at step boundaries;
- :func:`~repro.service.runtime.run_service` — the entry point;
  :func:`repro.sensei.intransit.run_in_transit` is now a thin
  one-pipeline wrapper over it.
"""

from repro.service.load import LoadBoard
from repro.service.plan import (
    PipelineRegistry,
    PipelineSpec,
    ServiceConfig,
    ShardMap,
    pipeline_tags,
    route_producers,
)
from repro.service.router import CTRL_TAG, Router, ServiceBridge
from repro.service.runtime import ServiceEndpoint, StepMerger, run_service

__all__ = [
    "CTRL_TAG",
    "LoadBoard",
    "PipelineRegistry",
    "PipelineSpec",
    "Router",
    "ServiceBridge",
    "ServiceConfig",
    "ServiceEndpoint",
    "ShardMap",
    "StepMerger",
    "pipeline_tags",
    "route_producers",
    "run_service",
]
