"""Endpoint-side service runtime and the ``run_service`` entry point.

An endpoint serves *every* pipeline whose shard includes it — and,
because shard migrations can route any pipeline its way later, it
pre-opens a receiver for every (pipeline, producer) flow and lets the
merger's membership ledger decide whose data each step actually waits
on.  One single-threaded sweep loop multiplexes all flows: drain
control messages, poll receivers, process whatever steps completed.

:class:`StepMerger` is the heart of elastic membership: per-step
contributor sets follow the membership updates producers announce at
migration time, finned producers stop being waited on (early-exiting
pipelines never stall siblings), and data racing ahead of its
membership update simply parks until the update arrives.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ExecutionError, MPIError, TransportError
from repro.mpi.comm import CommCostModel, Communicator, run_spmd
from repro.sensei.data_adaptor import TableDataAdaptor
from repro.service.plan import PipelineRegistry, ServiceConfig, ShardMap, route_producers
from repro.service.router import CTRL_TAG, ServiceBridge
from repro.svtk.table import TableData
from repro.transport.channel import ReliableReceiver
from repro.transport.metrics import new_transport_timeline

__all__ = ["StepMerger", "ServiceEndpoint", "run_service"]

#: Idle backoff of the endpoint sweep loop (wall seconds).
_IDLE_SLEEP = 0.0005


class StepMerger:
    """Orders one pipeline's per-producer step streams on one endpoint.

    Membership is step-indexed: ``set_membership(from_step, members)``
    records that from ``from_step`` on, a step is complete once every
    producer in ``members`` contributed (finned producers excepted).
    Data from a producer outside the current membership is held — it
    belongs to a membership update still in flight, never dropped.
    """

    def __init__(self, producers: Sequence[int], members: Sequence[int]):
        self.queues: dict[int, deque] = {int(p): deque() for p in producers}
        self.finned: set[int] = set()
        #: (from_step, members) history, ascending.  Initial entry
        #: covers every step until the first migration.
        self._membership: list[tuple[int, frozenset[int]]] = [
            (-1, frozenset(int(p) for p in members))
        ]

    def members_at(self, step: int) -> frozenset[int]:
        current = self._membership[0][1]
        for from_step, members in self._membership:
            if from_step > step:
                break
            current = members
        return current

    def set_membership(self, from_step: int, members: Sequence[int]) -> None:
        entry = (int(from_step), frozenset(int(p) for p in members))
        self._membership.append(entry)
        self._membership.sort(key=lambda e: e[0])

    def push(self, producer: int, step: int, sim_time: float, columns) -> None:
        if producer not in self.queues:
            raise TransportError(
                f"unknown producer {producer} pushed step {step}"
            )
        self.queues[producer].append((int(step), float(sim_time), columns))

    def mark_finned(self, producer: int) -> None:
        self.finned.add(int(producer))

    @property
    def pending(self) -> int:
        """Queued step payloads not yet merged."""
        return sum(len(q) for q in self.queues.values())

    def ready(self):
        """Pop the next complete step, or None if one is still filling.

        Returns ``(step, sim_time, payloads)`` with payloads in
        producer-rank order.
        """
        heads = {
            p: q[0][0] for p, q in self.queues.items() if q
        }
        if not heads:
            return None
        step = min(heads.values())
        members = self.members_at(step)
        # Data from a non-member at this step means its membership
        # update is still in flight — wait for the control message.
        if any(heads[p] == step for p in heads if p not in members):
            return None
        contributors = []
        for p in sorted(members):
            queue = self.queues[p]
            if queue and queue[0][0] == step:
                contributors.append(p)
            elif queue and queue[0][0] > step:
                continue  # this producer skipped the step
            elif p in self.finned:
                continue  # drained early; don't wait on it
            else:
                return None  # still in flight
        if not contributors:
            return None
        sim_time = self.queues[contributors[0]][0][1]
        payloads = [self.queues[p].popleft()[2] for p in contributors]
        return step, sim_time, payloads


class ServiceEndpoint:
    """One endpoint rank: receives, merges, and analyzes every tenant.

    Keeps the reporting surface of
    :class:`repro.sensei.intransit.EndpointRunner` when the service
    carries a single pipeline (``receivers``, ``analyses``,
    ``producers``, ``steps_processed``), so the legacy in-transit path
    is a strict subset.
    """

    def __init__(
        self,
        config: ServiceConfig,
        registry: PipelineRegistry,
        world_comm: Communicator,
        endpoint_comm: Communicator,
        m: int,
        n: int,
    ):
        if not (m <= world_comm.rank < m + n):
            raise ExecutionError(
                f"rank {world_comm.rank} is not an endpoint in this service"
            )
        self.config = config
        self.world = world_comm
        self.endpoint_comm = endpoint_comm
        self.m = int(m)
        self.n = int(n)
        self.endpoint_index = world_comm.rank - self.m
        self.shard_map = ShardMap.initial(config, n)
        # One solo communicator shared by every non-collective tenant;
        # a single uniform split keeps the collective call pattern
        # identical across endpoint ranks.
        self._solo = endpoint_comm.split(color=endpoint_comm.rank)
        self._receivers: dict[tuple[str, int], ReliableReceiver] = {}
        self.mergers: dict[str, StepMerger] = {}
        self._analyses: dict[str, list] = {}
        self._adaptors: dict[str, TableDataAdaptor] = {}
        self.pipeline_steps: dict[str, int] = {}
        self._initial_members: dict[str, tuple[int, ...]] = {}
        self._timelines = {
            spec.name: new_transport_timeline(
                f"service.{spec.name}.endpoint{self.endpoint_index}"
            )
            for spec in config.pipelines
        }
        for spec in config.pipelines:
            producers = spec.producers(self.m)
            routed = route_producers(
                spec, self.shard_map.shard(spec.name), producers
            )
            members = routed.get(self.endpoint_index, ())
            # Flows are instantiated only for producers actually routed
            # here (plus any that migrate in later): at scale an
            # endpoint hosts a few tenants' members, not the full
            # (pipeline x producer) cross product.
            for p in members:
                self._ensure_flow(spec.name, p)
            self._initial_members[spec.name] = members
            self.mergers[spec.name] = StepMerger(producers, members)
            self._analyses[spec.name] = list(registry.build(spec.name))
            comm = endpoint_comm if spec.collective else self._solo
            self._adaptors[spec.name] = TableDataAdaptor(comm=comm)
            self.pipeline_steps[spec.name] = 0
        self._analysis_comms = {
            spec.name: (endpoint_comm if spec.collective else self._solo)
            for spec in config.pipelines
        }
        self._single = config.pipelines[0].name if len(
            config.pipelines
        ) == 1 else None

    # -- legacy-compatible reporting -------------------------------------------
    @property
    def steps_processed(self) -> int:
        return sum(self.pipeline_steps.values())

    @property
    def producers(self) -> list[int]:
        """Producer world ranks initially routed to this endpoint."""
        out: set[int] = set()
        for members in self._initial_members.values():
            out.update(members)
        return sorted(out)

    @property
    def receiver_metrics(self) -> dict:
        return {key: r.metrics for key, r in sorted(self.receivers.items())}

    @property
    def receivers(self) -> dict:
        """Per-flow receivers.  With a single pipeline, keyed by
        producer rank over the initial members — the legacy
        EndpointRunner surface; keyed ``(pipeline, producer)`` over
        every flow otherwise."""
        if self._single is not None:
            return {
                p: self._receivers[(self._single, p)]
                for p in self._initial_members[self._single]
            }
        return dict(self._receivers)

    @property
    def analyses(self):
        """The single pipeline's analysis list (legacy surface), or
        the per-pipeline dict for a multi-tenant service."""
        if self._single is not None:
            return self._analyses[self._single]
        return dict(self._analyses)

    # -- serving ---------------------------------------------------------------
    def _ensure_flow(self, name: str, producer: int) -> None:
        """Instantiate the reliable flow for one routed producer.

        Called for initial members at construction and for migrated-in
        members when the ``svc_migrate`` control message lands; chunks
        that raced ahead of the control message simply wait in the
        producer's mailbox until the receiver exists.
        """
        key = (name, producer)
        if key in self._receivers:
            return
        spec = self.config.spec(name)
        data_tag, ack_tag = self.config.tags(name)
        self._receivers[key] = ReliableReceiver(
            self.world, producer, spec.transport,
            timeline=self._timelines[name],
            data_tag=data_tag, ack_tag=ack_tag,
            pipeline=name,
        )

    def _assemble(self, name: str, payloads: list[dict]) -> TableData:
        spec = self.config.spec(name)
        table = TableData(spec.mesh)
        if not payloads:
            return table
        columns = list(payloads[0])
        for payload in payloads[1:]:
            if list(payload) != columns:
                raise MPIError("producers shipped inconsistent column sets")
        for column in columns:
            table.add_host_column(
                column, np.concatenate([p[column] for p in payloads])
            )
        return table

    def _drain_control(self) -> tuple[bool, bool]:
        """Returns (made_progress, saw_shutdown)."""
        progress, shutdown = False, False
        while True:
            try:
                msg = self.world.recv(0, CTRL_TAG, timeout=0, charge=False)
            except TimeoutError:
                return progress, shutdown
            progress = True
            if msg[0] == "svc_shutdown":
                shutdown = True
            elif msg[0] == "svc_migrate":
                _kind, from_step, name, members = msg
                for p in members:
                    self._ensure_flow(name, p)
                self.mergers[name].set_membership(from_step, members)
            else:
                raise TransportError(
                    f"unknown service control message {msg[0]!r}"
                )

    def _poll_flows(self) -> bool:
        progress = False
        for key in sorted(self._receivers):
            receiver = self._receivers[key]
            if receiver.finished:
                continue
            while True:
                out = receiver.poll()
                if out is None:
                    break
                progress = True
                kind, value = out
                name, producer = key
                if kind == "fin":
                    self.mergers[name].mark_finned(producer)
                    break
                step, sim_time, columns = value
                self.mergers[name].push(producer, step, sim_time, columns)
        return progress

    def _process_ready(self) -> bool:
        progress = False
        for name in sorted(self.mergers):
            merger = self.mergers[name]
            while True:
                complete = merger.ready()
                if complete is None:
                    break
                progress = True
                step, sim_time, payloads = complete
                table = self._assemble(name, payloads)
                adaptor = self._adaptors[name]
                adaptor.set_table(self.config.spec(name).mesh, table)
                adaptor.set_step(step, sim_time)
                for analysis in self._analyses[name]:
                    analysis.execute(adaptor)
                self.pipeline_steps[name] += 1
        return progress

    def serve(self) -> int:
        """Multiplex every tenant until the producers shut us down."""
        for name in sorted(self._analyses):
            for analysis in self._analyses[name]:
                analysis.initialize(self._analysis_comms[name])
        patience = max(
            spec.transport.recv_timeout for spec in self.config.pipelines
        )
        deadline = time.monotonic() + patience
        shutdown = False
        while True:
            ctrl_progress, saw_shutdown = self._drain_control()
            shutdown = shutdown or saw_shutdown
            progress = ctrl_progress
            progress |= self._poll_flows()
            progress |= self._process_ready()
            if progress:
                deadline = time.monotonic() + patience
                continue
            if shutdown:
                stuck = {
                    name: merger.pending
                    for name, merger in sorted(self.mergers.items())
                    if merger.pending
                }
                if stuck:
                    raise TransportError(
                        "service endpoint shut down with unmerged steps",
                        details={
                            "rank": self.world.rank,
                            "pending": stuck,
                        },
                    )
                break
            if time.monotonic() > deadline:
                raise TransportError(
                    f"service endpoint starved for {patience:.1f}s wall "
                    "time with no traffic and no shutdown",
                    details={"rank": self.world.rank},
                )
            time.sleep(_IDLE_SLEEP)
        for name in sorted(self._analyses):
            for analysis in self._analyses[name]:
                analysis.finalize()
        return self.steps_processed


def run_service(
    config: ServiceConfig,
    producer_main: Callable[[Communicator, ServiceBridge], object],
    registry: PipelineRegistry | Mapping[str, Callable] | None = None,
    m: int = 1,
    n: int = 1,
    cost: CommCostModel | None = None,
    control=None,
    load_board=None,
    recorder=None,
) -> tuple[list[object], list[ServiceEndpoint]]:
    """Launch the sharded multi-pipeline in-transit service.

    ``m`` producer ranks run ``producer_main(sim_comm, bridge)`` and
    ship through a :class:`~repro.service.router.ServiceBridge`;
    ``n`` endpoint ranks serve every pipeline the shard map routes to
    them, with analyses built from ``registry`` (a
    :class:`~repro.service.plan.PipelineRegistry` or plain mapping of
    pipeline name to factory).  ``control`` (a
    :class:`repro.control.ControlConfig`) attaches a control plane per
    producer; ``<control quota="on">`` arms per-tenant admission
    control and shard rebalancing.  ``load_board`` (a
    :class:`~repro.service.load.LoadBoard`) makes concurrent tenants
    share each endpoint's congestion budget.  ``recorder`` (duck-typed;
    see :class:`repro.trace.TraceRecorder`) wraps each producer's
    bridge via ``recorder.bind(rank, bridge)`` to capture a
    deterministic trace of the run.

    Returns ``(producer_results, endpoints)``.
    """
    if m < 1 or n < 1:
        raise ExecutionError(f"need m >= 1 and n >= 1, got {m}/{n}")
    if not isinstance(registry, PipelineRegistry):
        registry = PipelineRegistry(registry)

    def world_main(comm: Communicator):
        if comm.rank < m:
            sim_comm = comm.split(color=0, key=comm.rank)
            bridge = ServiceBridge(config, m, n, load_board=load_board)
            if control is not None:
                from repro.control.plan import ControlPlane

                bridge.attach_control(ControlPlane(control, comm=sim_comm))
            bridge.initialize(comm, sim_comm)
            if recorder is not None:
                bridge = recorder.bind(sim_comm.rank, bridge)
            try:
                result = producer_main(sim_comm, bridge)
            finally:
                bridge.finalize()
            return ("producer", result, bridge)
        endpoint_comm = comm.split(color=1, key=comm.rank)
        endpoint = ServiceEndpoint(
            config, registry, comm, endpoint_comm, m, n
        )
        endpoint.serve()
        return ("endpoint", endpoint, None)

    out = run_spmd(m + n, world_main, cost=cost)
    producers = [r for kind, r, _b in out if kind == "producer"]
    endpoints = [r for kind, r, _b in out if kind == "endpoint"]
    return producers, endpoints
