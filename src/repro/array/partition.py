"""Global-index partitions: blocks of rows mapped onto ranks.

An :class:`ArrayPartition` splits a 1-D global index space into
fixed-size *blocks* (the unit of ownership, migration, and cost
accounting) and assigns blocks to ranks through the transport plane's
pluggable partitioners (``block`` / ``cyclic`` / ``weighted`` /
``chain``).  The partition is a pure value, computed identically on
every rank from the same inputs — ownership questions never need
communication.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ArrayError
from repro.transport.partition import get_partitioner

__all__ = ["ArrayPartition"]


class ArrayPartition:
    """Which rank owns which block of global rows.

    ``block_rows`` is the ownership granularity: repartitioning moves
    whole blocks, so more blocks per rank means finer load balancing
    at the price of more halo edges.  The default gives each rank
    about four blocks.
    """

    def __init__(
        self,
        length: int,
        ranks: int,
        partitioner: str = "block",
        block_rows: int | None = None,
        weights: Sequence[float] | None = None,
        owners: Sequence[int] | None = None,
    ):
        if length < 1:
            raise ArrayError(f"array length must be >= 1: {length}")
        if ranks < 1:
            raise ArrayError(f"ranks must be >= 1: {ranks}")
        if block_rows is None:
            block_rows = max(1, -(-length // (4 * ranks)))
        if block_rows < 1:
            raise ArrayError(f"block_rows must be >= 1: {block_rows}")
        nblocks = -(-length // block_rows)  # ceil division
        if nblocks < ranks:
            raise ArrayError(
                f"partition needs at least one block per rank: "
                f"{nblocks} blocks of {block_rows} rows over {ranks} ranks",
                details={
                    "length": length, "ranks": ranks,
                    "block_rows": block_rows, "nblocks": nblocks,
                },
            )
        self.length = int(length)
        self.ranks = int(ranks)
        self.block_rows = int(block_rows)
        self.nblocks = int(nblocks)
        self.partitioner = str(partitioner)
        if owners is None:
            owners = get_partitioner(partitioner).assign(
                nblocks, ranks,
                list(weights) if weights is not None else None,
            )
        owners = tuple(int(o) for o in owners)
        if len(owners) != nblocks:
            raise ArrayError(
                f"need one owner per block: got {len(owners)} "
                f"for {nblocks} blocks"
            )
        bad = sorted({o for o in owners if not 0 <= o < ranks})
        if bad:
            raise ArrayError(
                f"block owners {bad} outside rank range [0, {ranks})"
            )
        self.owners = owners

    # -- ownership --------------------------------------------------------------
    def block_span(self, block: int) -> tuple[int, int]:
        """Global ``[start, stop)`` row range of ``block``."""
        if not 0 <= block < self.nblocks:
            raise ArrayError(
                f"block {block} outside [0, {self.nblocks})"
            )
        start = block * self.block_rows
        return start, min(self.length, start + self.block_rows)

    def block_of(self, index: int) -> int:
        """The block holding global row ``index``."""
        if not 0 <= index < self.length:
            raise ArrayError(
                f"global index {index} outside [0, {self.length})"
            )
        return index // self.block_rows

    def owner_of(self, index: int) -> int:
        """The rank owning global row ``index``."""
        return self.owners[self.block_of(index)]

    def blocks_of(self, rank: int) -> tuple[int, ...]:
        """The blocks owned by ``rank``, in global order."""
        if not 0 <= rank < self.ranks:
            raise ArrayError(f"rank {rank} outside [0, {self.ranks})")
        return tuple(
            b for b in range(self.nblocks) if self.owners[b] == rank
        )

    def rows_of(self, rank: int) -> int:
        """Total global rows owned by ``rank``."""
        return sum(
            self.block_span(b)[1] - self.block_span(b)[0]
            for b in self.blocks_of(rank)
        )

    # -- derivation -------------------------------------------------------------
    def with_owners(self, owners: Sequence[int]) -> "ArrayPartition":
        """The same geometry under a new block-to-rank assignment."""
        return ArrayPartition(
            self.length, self.ranks,
            partitioner=self.partitioner,
            block_rows=self.block_rows,
            owners=owners,
        )

    def rebalanced(
        self, costs: Sequence[float], partitioner: str = "chain"
    ) -> "ArrayPartition":
        """Re-cut with one measured cost per block as the weight."""
        if len(costs) != self.nblocks:
            raise ArrayError(
                f"need one cost per block: got {len(costs)} "
                f"for {self.nblocks} blocks"
            )
        owners = get_partitioner(partitioner).assign(
            self.nblocks, self.ranks, [float(c) for c in costs]
        )
        return self.with_owners(owners)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ArrayPartition)
            and self.length == other.length
            and self.ranks == other.ranks
            and self.block_rows == other.block_rows
            and self.owners == other.owners
        )

    def __hash__(self) -> int:
        return hash((self.length, self.ranks, self.block_rows, self.owners))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayPartition(length={self.length}, ranks={self.ranks}, "
            f"block_rows={self.block_rows}, owners={self.owners})"
        )
