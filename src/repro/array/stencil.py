"""A bandwidth-bound 1-D Jacobi heat stencil over a DistributedArray.

The first end-to-end consumer of the array plane: every rank advances
``u_i += alpha * (u_{i-1} - 2 u_i + u_{i+1})`` over its shards each
step, with ghost rows refreshed by the
:class:`~repro.array.halo.HaloExchanger` at the step boundary and
zero Dirichlet boundaries at the global edges (the never-written edge
ghosts stay at their allocation fill).

Compute cost is charged to the simulated clock at ``compute_rate``
rows per second.  An optional *hotspot* — a global index range whose
rows charge ``hotspot_cost`` extra seconds-per-row multiples from step
``hotspot_from`` on — injects load skew **into the cost model only**:
the numerics are untouched, so adaptive repartitioning must produce
bit-identical physics while beating the static layouts on charged
time.  Per-block charges feed the
:class:`~repro.array.coordinate.ArrayCoordinator`, closing the
repartition loop when ``adaptive`` is set.

The workload runs standalone (:meth:`StencilWorkload.run`) or as an
in-transit producer (:func:`stencil_producer` plugs into
``run_in_transit`` / ``run_service``, publishing the owned rows as a
table each step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.array.array import DistributedArray
from repro.array.coordinate import ArrayCoordinator
from repro.array.halo import HaloExchanger
from repro.array.partition import ArrayPartition
from repro.errors import ArrayError
from repro.hamr.runtime import current_clock
from repro.hw.node import num_devices
from repro.svtk.table import TableData

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.control.plan import ControlPlane
    from repro.mpi.comm import Communicator
    from repro.transport.config import TransportConfig

__all__ = ["StencilConfig", "StencilWorkload", "stencil_producer"]


@dataclass(frozen=True)
class StencilConfig:
    """Everything one stencil run needs (identical on every rank)."""

    length: int = 4096             # global rows
    steps: int = 32
    alpha: float = 0.25            # diffusion number (stable <= 0.5)
    dt: float = 1.0                # simulation seconds per step
    partitioner: str = "block"     # initial layout
    block_rows: int | None = None  # ownership granularity
    device_id: int | None = 0      # base device; rank r lands on
    #: ``(device_id + r) mod n_devices`` (None = host).  Spreading the
    #: ranks keeps per-device pools/streams single-writer, so shard
    #: alloc/free churn costs do not depend on thread arrival order.
    compute_rate: float = 2.0e8    # charged rows per simulated second
    #: Hotspot: global index fraction range [lo, hi) whose rows charge
    #: ``hotspot_cost`` additional row-costs each, from step
    #: ``hotspot_from`` on.  ``hotspot_cost=0`` disables it.
    hotspot: tuple[float, float] = (0.0, 0.25)
    hotspot_cost: float = 0.0
    hotspot_from: int = 1

    def __post_init__(self):
        if not 0.0 < self.alpha <= 0.5:
            raise ArrayError(f"alpha must be in (0, 0.5]: {self.alpha}")
        if self.steps < 1:
            raise ArrayError(f"steps must be >= 1: {self.steps}")
        if self.compute_rate <= 0:
            raise ArrayError(
                f"compute_rate must be > 0: {self.compute_rate}"
            )
        lo, hi = self.hotspot
        if not 0.0 <= lo <= hi <= 1.0:
            raise ArrayError(
                f"hotspot must satisfy 0 <= lo <= hi <= 1: ({lo}, {hi})"
            )
        if self.hotspot_cost < 0:
            raise ArrayError(
                f"hotspot_cost must be >= 0: {self.hotspot_cost}"
            )

    @property
    def hotspot_rows(self) -> tuple[int, int]:
        """The hotspot's global row range ``[lo, hi)``."""
        lo, hi = self.hotspot
        return int(lo * self.length), int(hi * self.length)


class StencilWorkload:
    """One rank's view of the stencil run (construct SPMD-identically).

    ``adaptive`` arms the repartition loop: an
    :class:`~repro.array.coordinate.ArrayCoordinator` allreduces the
    per-block charges every ``interval`` steps and re-cuts the
    partition when the governor fires.  ``plane`` routes the decisions
    into a shared control-plane log (and supplies skew/cooldown/cadence
    configuration when given).
    """

    def __init__(
        self,
        comm: "Communicator",
        config: StencilConfig,
        transport: "TransportConfig | None" = None,
        plane: "ControlPlane | None" = None,
        adaptive: bool = False,
        interval: int = 4,
        name: str = "stencil",
    ):
        self.comm = comm
        self.config = config
        self.name = str(name)
        partition = ArrayPartition(
            config.length, comm.size,
            partitioner=config.partitioner,
            block_rows=config.block_rows,
        )
        device_id = config.device_id
        if device_id is not None:
            device_id = (int(device_id) + comm.rank) % max(1, num_devices())
        self.u = DistributedArray(
            comm, partition, dtype=np.float64, halo=1,
            device_id=device_id, name=name,
        )
        self.exchanger = HaloExchanger(comm, transport, name=name)
        self.coordinator: ArrayCoordinator | None = None
        if adaptive:
            self.coordinator = ArrayCoordinator(
                self.u, self.exchanger, plane=plane, interval=interval,
            )
        # Deterministic initial condition: one full sine period, zero
        # at both Dirichlet edges.
        x = np.arange(config.length, dtype=np.float64)
        self.u[:] = np.sin(2.0 * np.pi * x / config.length)
        self.busy_time = 0.0
        self.steps_run = 0
        self._closed = False

    def _block_cost(self, start: int, stop: int, step: int) -> float:
        """Charged seconds for one block's update at ``step``."""
        cfg = self.config
        rows = stop - start
        cost = rows / cfg.compute_rate
        if cfg.hotspot_cost > 0.0 and step >= cfg.hotspot_from:
            hlo, hhi = cfg.hotspot_rows
            hot = max(0, min(stop, hhi) - max(start, hlo))
            cost += hot * cfg.hotspot_cost / cfg.compute_rate
        return cost

    def step(self, step: int) -> dict[int, float]:
        """One Jacobi sweep; returns the per-block charged seconds."""
        if self._closed:
            raise ArrayError("stencil workload already closed")
        cfg = self.config
        self.exchanger.exchange(self.u, step)
        clock = current_clock()
        block_busy: dict[int, float] = {}
        for b in sorted(self.u.shards):
            shard = self.u.shards[b]
            padded = shard.padded
            n = shard.rows
            left, mid, right = padded[:n], padded[1:n + 1], padded[2:n + 2]
            shard.interior[:] = mid + cfg.alpha * (left - 2.0 * mid + right)
            cost = self._block_cost(shard.start, shard.stop, step)
            clock.advance(cost)
            block_busy[b] = cost
            self.busy_time += cost
        if self.coordinator is not None:
            self.coordinator.observe(step, block_busy, t=step * cfg.dt)
        self.steps_run += 1
        return block_busy

    def table(self) -> TableData:
        """The owned rows as a table (``index`` + ``u`` columns)."""
        indices, values = [], []
        for _b, start, stop, interior in self.u.local_spans():
            indices.append(np.arange(start, stop, dtype=np.int64))
            values.append(np.asarray(interior, dtype=np.float64).copy())
        table = TableData(self.name)
        table.add_host_column(
            "index",
            np.concatenate(indices) if indices
            else np.zeros(0, dtype=np.int64),
        )
        table.add_host_column(
            "u",
            np.concatenate(values) if values
            else np.zeros(0, dtype=np.float64),
        )
        return table

    def run(self, bridge=None, adaptor=None, mesh: str | None = None) -> dict:
        """Run every configured step; optionally publish through a bridge.

        With ``bridge`` set, each step's owned rows are published as a
        table under ``mesh`` (default: the workload name) through
        ``bridge.execute`` — the in-transit / service producer path.
        Returns this rank's summary (checksum, busy time, traffic).
        """
        cfg = self.config
        if bridge is not None and adaptor is None:
            from repro.sensei.data_adaptor import TableDataAdaptor

            adaptor = TableDataAdaptor(comm=self.comm)
        for k in range(1, cfg.steps + 1):
            self.step(k)
            if bridge is not None:
                adaptor.set_table(mesh or self.name, self.table())
                adaptor.set_step(k, k * cfg.dt)
                bridge.execute(adaptor)
        return self.summary()

    def summary(self) -> dict:
        """Collective: checksum plus this rank's cost/traffic counters."""
        c = self.coordinator
        return {
            "steps": self.steps_run,
            "checksum": self.u.reduce("sum"),
            "peak": self.u.reduce("max"),
            "busy_time": self.busy_time,
            "halo_bytes": self.exchanger.halo_bytes_moved,
            "handoff_bytes": self.exchanger.handoff_bytes_moved,
            "repartitions": c.repartitions if c is not None else 0,
            "blocks_moved": c.blocks_moved if c is not None else 0,
            "owners": tuple(self.u.partition.owners),
        }

    def close(self) -> None:
        """Collective: drain the exchanger's flows, free the shards."""
        if self._closed:
            return
        self.exchanger.close()
        self.u.close()
        self._closed = True


def stencil_producer(
    config: StencilConfig,
    transport: "TransportConfig | None" = None,
    adaptive: bool = False,
    interval: int = 4,
    mesh: str = "stencil",
):
    """A ``producer_main`` for ``run_in_transit`` / ``run_service``.

    Each producer rank advances the shared stencil and ships its owned
    rows through the bridge every step; the returned callable closes
    the workload (draining halo flows) before the bridge finalizes.
    When the bridge carries a control plane, repartition decisions are
    routed into the shared plane log (and onto any attached trace
    recorder) rather than a workload-local list.
    """

    def producer_main(sim_comm, bridge):
        workload = StencilWorkload(
            sim_comm, config, transport=transport,
            plane=getattr(bridge, "control_plane", None),
            adaptive=adaptive, interval=interval, name=mesh,
        )
        try:
            result = workload.run(bridge=bridge, mesh=mesh)
        finally:
            workload.close()
        return result

    return producer_main
