"""repro.array — the data plane: distributed global arrays.

A :class:`DistributedArray` gives SPMD ranks a single global-index
view (HDArray-style) over per-rank shards held in pooled
:mod:`repro.hamr` buffers, partitioned by the transport plane's
block/cyclic/weighted/chain partitioners.  Ghost regions move through
the reliable transport channel (:class:`HaloExchanger`), and the
control plane's :class:`~repro.control.repartition.RepartitionGovernor`
— driven by :class:`ArrayCoordinator` — re-cuts the partition when
per-rank busy time or halo traffic skews.
"""

from repro.array.array import DistributedArray, Shard
from repro.array.coordinate import ArrayCoordinator
from repro.array.halo import HALO_ACK_TAG, HALO_DATA_TAG, HaloExchanger
from repro.array.partition import ArrayPartition
from repro.array.stencil import (
    StencilConfig,
    StencilWorkload,
    stencil_producer,
)

__all__ = [
    "ArrayPartition",
    "DistributedArray",
    "Shard",
    "HaloExchanger",
    "HALO_DATA_TAG",
    "HALO_ACK_TAG",
    "ArrayCoordinator",
    "StencilConfig",
    "StencilWorkload",
    "stencil_producer",
]
