"""The :class:`DistributedArray` facade: one global index space, SPMD.

Every rank holds the shards (blocks) the partition assigns it, each
backed by a :class:`repro.hamr.buffer.Buffer` with declared device
placement — device shards come from the stream-ordered pool, so a
repartition's free/alloc churn recycles blocks instead of claiming
fresh device memory.  Global reads are collectives (every rank calls,
every rank gets the dense result); global writes resolve ownership
locally and touch only the caller's shards, so SPMD-identical calls
leave the array consistent without any traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.array.partition import ArrayPartition
from repro.errors import ArrayError
from repro.hamr.allocator import Allocator
from repro.hamr.buffer import Buffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.array.halo import HaloExchanger
    from repro.mpi.comm import Communicator

__all__ = ["Shard", "DistributedArray"]


class Shard:
    """One owned block's storage: interior rows framed by ghost rows.

    The buffer holds ``halo`` ghost rows on each side of the interior;
    :attr:`interior` is the live view of the owned global rows,
    :attr:`left_ghost` / :attr:`right_ghost` the neighbor copies the
    halo exchange refreshes.
    """

    def __init__(
        self,
        block: int,
        start: int,
        stop: int,
        halo: int,
        dtype: np.dtype,
        device_id: int | None,
        name: str,
    ):
        self.block = int(block)
        self.start = int(start)
        self.stop = int(stop)
        self.halo = int(halo)
        self.device_id = device_id
        n = self.stop - self.start
        if device_id is None:
            allocator, dev = Allocator.MALLOC, None
        else:
            # Stream-ordered device allocation: served from (and
            # returned to) the device's memory pool, so repartition
            # churn recycles blocks instead of claiming fresh memory.
            allocator, dev = Allocator.CUDA_ASYNC, int(device_id)
        self.buffer = Buffer.allocate(
            n + 2 * self.halo,
            dtype=dtype,
            allocator=allocator,
            device_id=dev,
            name=f"{name}.b{block}",
        )
        self.buffer.fill(0.0)
        self.buffer.synchronize()

    @property
    def rows(self) -> int:
        return self.stop - self.start

    # These three properties ARE the array plane's sanctioned view
    # layer: every read/write of shard storage routes through them.
    @property
    def interior(self) -> np.ndarray:
        """View of the owned global rows ``[start, stop)``."""
        return self.buffer.data[self.halo:self.halo + self.rows]  # lint: disable=HL001

    @property
    def left_ghost(self) -> np.ndarray:
        """View of global rows ``[start - halo, start)`` (neighbor copy)."""
        return self.buffer.data[:self.halo]  # lint: disable=HL001

    @property
    def right_ghost(self) -> np.ndarray:
        """View of global rows ``[stop, stop + halo)`` (neighbor copy)."""
        return self.buffer.data[self.halo + self.rows:]  # lint: disable=HL001

    @property
    def padded(self) -> np.ndarray:
        """The whole storage: left ghosts, interior, right ghosts —
        contiguous, for windowed stencil sweeps."""
        return self.buffer.data  # lint: disable=HL001

    def free(self) -> None:
        self.buffer.free()


class DistributedArray:
    """A 1-D global-index array distributed over an SPMD communicator.

    All ranks construct it with identical arguments (SPMD style).
    ``arr[i:j]`` is a **collective** dense read — every rank calls,
    every rank receives the assembled slice, charged through the
    communicator's collective cost model.  ``arr[i:j] = values`` is
    owner-local: each rank writes the rows it owns and nothing moves.
    ``reduce`` folds the interiors through an allreduce.
    """

    def __init__(
        self,
        comm: "Communicator",
        partition: ArrayPartition,
        dtype=np.float64,
        halo: int = 0,
        device_id: int | None = None,
        name: str = "array",
    ):
        if partition.ranks != comm.size:
            raise ArrayError(
                f"partition spans {partition.ranks} ranks but the "
                f"communicator has {comm.size}",
                details={"ranks": partition.ranks, "size": comm.size},
            )
        if halo < 0:
            raise ArrayError(f"halo width must be >= 0: {halo}")
        self.comm = comm
        self.partition = partition
        self.dtype = np.dtype(dtype)
        self.halo = int(halo)
        self.device_id = device_id
        self.name = str(name)
        self.shards: dict[int, Shard] = {}
        for b in partition.blocks_of(comm.rank):
            start, stop = partition.block_span(b)
            self.shards[b] = Shard(
                b, start, stop, self.halo, self.dtype, device_id, self.name
            )
        self._closed = False

    @classmethod
    def create(
        cls,
        comm: "Communicator",
        length: int,
        dtype=np.float64,
        partitioner: str = "block",
        block_rows: int | None = None,
        weights: Sequence[float] | None = None,
        halo: int = 0,
        device_id: int | None = None,
        name: str = "array",
    ) -> "DistributedArray":
        """Build the partition and the array in one SPMD call."""
        partition = ArrayPartition(
            length, comm.size,
            partitioner=partitioner,
            block_rows=block_rows,
            weights=weights,
        )
        return cls(
            comm, partition, dtype=dtype, halo=halo,
            device_id=device_id, name=name,
        )

    # -- geometry ---------------------------------------------------------------
    @property
    def length(self) -> int:
        return self.partition.length

    @property
    def rank(self) -> int:
        return self.comm.rank

    def local_spans(self) -> Iterator[tuple[int, int, int, np.ndarray]]:
        """Owned ``(block, start, stop, interior_view)`` in global order."""
        for b in sorted(self.shards):
            s = self.shards[b]
            yield b, s.start, s.stop, s.interior

    def owned_rows(self) -> int:
        return sum(s.rows for s in self.shards.values())

    # -- global indexing --------------------------------------------------------
    def _span(self, key) -> tuple[int, int, bool]:
        length = self.length
        if isinstance(key, (int, np.integer)):
            i = int(key)
            if i < 0:
                i += length
            if not 0 <= i < length:
                raise ArrayError(
                    f"global index {key} outside array of length {length}"
                )
            return i, i + 1, True
        if isinstance(key, slice):
            if key.step not in (None, 1):
                raise ArrayError(
                    f"global slices must be unit-stride, got step {key.step}"
                )
            start, stop, _ = key.indices(length)
            return start, max(start, stop), False
        raise ArrayError(
            f"global index must be an int or a slice, got {type(key).__name__}"
        )

    def _local_overlaps(
        self, start: int, stop: int
    ) -> Iterator[tuple[int, int, np.ndarray]]:
        """Owned ``(global_lo, global_hi, view)`` intersecting the span."""
        for b in sorted(self.shards):
            s = self.shards[b]
            lo = max(start, s.start)
            hi = min(stop, s.stop)
            if lo < hi:
                yield lo, hi, s.interior[lo - s.start:hi - s.start]

    def gather(self, start: int, stop: int) -> np.ndarray:
        """Collective dense read of global rows ``[start, stop)``."""
        parts = [
            (lo, view.copy()) for lo, _hi, view in
            self._local_overlaps(start, stop)
        ]
        out = np.zeros(stop - start, dtype=self.dtype)
        for contribution in self.comm.allgather(parts):
            for lo, values in contribution:
                out[lo - start:lo - start + len(values)] = values
        return out

    def __getitem__(self, key):
        start, stop, scalar = self._span(key)
        values = self.gather(start, stop)
        return self.dtype.type(values[0]) if scalar else values

    def __setitem__(self, key, value) -> None:
        start, stop, _ = self._span(key)
        span = stop - start
        if np.isscalar(value) or getattr(value, "ndim", None) == 0:
            for _lo, _hi, view in self._local_overlaps(start, stop):
                view[:] = value
            return
        values = np.asarray(value, dtype=self.dtype)
        if values.shape != (span,):
            raise ArrayError(
                f"assigning {values.shape} values into a span of {span} rows"
            )
        for lo, hi, view in self._local_overlaps(start, stop):
            view[:] = values[lo - start:hi - start]

    def reduce(self, op: str = "sum") -> float:
        """Collective reduction over every interior row."""
        fold = {"sum": np.sum, "min": np.min, "max": np.max}.get(op)
        if fold is None:
            raise ArrayError(
                f"unknown reduction {op!r}; available: max, min, sum"
            )
        identity = {"sum": 0.0, "min": np.inf, "max": -np.inf}[op]
        parts = [
            float(fold(s.interior)) if s.rows else identity
            for _b, s in sorted(self.shards.items())
        ]
        local = float(fold(parts)) if parts else identity
        return float(self.comm.allreduce(local, op=op))

    # -- repartitioning ---------------------------------------------------------
    def repartition(
        self,
        new_owners: Sequence[int],
        exchanger: "HaloExchanger",
        event: int,
    ) -> int:
        """Collective: adopt a new block assignment, shipping shards.

        Every rank calls with the identical ``new_owners`` (the
        governor's decisions are pure functions of allreduced inputs).
        Moved blocks travel through the exchanger's reliable handoff
        flows — codec-, cost-, and fault-charged like any other
        transport traffic.  Returns this rank's shipped payload bytes.
        """
        target = self.partition.with_owners(new_owners)
        moves = [
            (b, self.partition.owners[b], target.owners[b])
            for b in range(self.partition.nblocks)
            if self.partition.owners[b] != target.owners[b]
        ]
        arrived = exchanger.handoff(self, moves, event)
        shipped = 0
        for b, src, dst in moves:
            if src == self.rank:
                shard = self.shards.pop(b)
                shipped += shard.rows * self.dtype.itemsize
                shard.free()
        for b, values in sorted(arrived.items()):
            start, stop = target.block_span(b)
            shard = Shard(
                b, start, stop, self.halo, self.dtype,
                self.device_id, self.name,
            )
            shard.interior[:] = values
            self.shards[b] = shard
        self.partition = target
        return shipped

    def close(self) -> None:
        """Free every shard buffer (device shards return to the pool)."""
        if self._closed:
            return
        for _b, shard in sorted(self.shards.items()):
            shard.free()
        self._closed = True
