"""Ghost-region exchange and shard handoff over the reliable channel.

The :class:`HaloExchanger` moves a :class:`DistributedArray`'s ghost
rows between owner ranks at step boundaries — and, on a repartition,
ships whole shards to their new owners.  Both travel through
:class:`~repro.transport.channel.ReliableSender` /
:class:`~repro.transport.channel.ReliableReceiver` flows, so halo and
handoff traffic is codec-compressed, cost-charged, credit-windowed,
and fault-tolerant exactly like the in-transit data path.

Deadlock freedom comes from scheduling, not threading: every rank
walks the *globally sorted* list of directed edges and plays its role
(send or receive) when an edge names it.  At any moment the smallest
unfinished edge has both endpoints ready for it — its sender sends and
its receiver serves — so by induction the whole schedule drains.  The
exchange plan itself is a pure function of the partition, computed
identically on every rank: no negotiation traffic, and the planned
byte counts double as the deterministic halo-skew signal the
repartition governor consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ArrayError
from repro.svtk.table import TableData
from repro.transport.channel import ReliableReceiver, ReliableSender

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.array.array import DistributedArray
    from repro.array.partition import ArrayPartition
    from repro.mpi.comm import Communicator
    from repro.transport.config import TransportConfig

__all__ = [
    "HALO_DATA_TAG",
    "HALO_ACK_TAG",
    "HANDOFF_DATA_TAG",
    "HANDOFF_ACK_TAG",
    "halo_plan",
    "halo_bytes_by_rank",
    "HaloExchanger",
]

#: Tag space reserved by the array plane, clear of the transport
#: plane's DATA/ACK tags (100/101) and the service plane's per-pipeline
#: stride (100+4k/101+4k).
HALO_DATA_TAG = 70000
HALO_ACK_TAG = 70001
HANDOFF_DATA_TAG = 70002
HANDOFF_ACK_TAG = 70003


def halo_plan(
    partition: "ArrayPartition", halo: int
) -> dict[tuple[int, int], list[tuple[int, str, int, int]]]:
    """The exchange plan: ``(src, dst) -> [(block, side, lo, hi), ...]``.

    For every block's left ("L") and right ("R") ghost region, the
    covered global rows are split into maximal spans with a single
    owner; each span becomes one entry under its ``(owner, dst)`` edge.
    Entries whose owner *is* the destination (rank-local ghost fills)
    appear under the diagonal ``(r, r)`` edge and never touch the wire.
    A pure function of ``(partition, halo)``, so every rank computes
    the identical plan — and the identical payload layout — with no
    negotiation.
    """
    plan: dict[tuple[int, int], list[tuple[int, str, int, int]]] = {}
    if halo <= 0:
        return plan
    for b in range(partition.nblocks):
        dst = partition.owners[b]
        start, stop = partition.block_span(b)
        regions = (
            ("L", max(0, start - halo), start),
            ("R", stop, min(partition.length, stop + halo)),
        )
        for side, glo, ghi in regions:
            g = glo
            while g < ghi:
                src = partition.owner_of(g)
                h = g + 1
                while h < ghi and partition.owner_of(h) == src:
                    h += 1
                plan.setdefault((src, dst), []).append((b, side, g, h))
                g = h
    return plan


def halo_bytes_by_rank(
    partition: "ArrayPartition", halo: int, itemsize: int
) -> list[int]:
    """Per-rank wire-crossing halo bytes (sent + received) per exchange.

    The deterministic traffic signal the repartition governor watches:
    derived from the plan, not from measurements, so every rank (and
    every rerun) sees identical numbers.
    """
    out = [0] * partition.ranks
    for (src, dst), entries in halo_plan(partition, halo).items():
        if src == dst:
            continue
        nbytes = sum((hi - lo) * itemsize for _b, _s, lo, hi in entries)
        out[src] += nbytes
        out[dst] += nbytes
    return out


class HaloExchanger:
    """Step-boundary collective moving ghost rows (and migrating shards).

    One exchanger per array per run.  Reliable flows to each peer are
    created lazily on first use and reused across steps — halo traffic
    and handoff traffic ride separate tag pairs so a repartition in
    flight can never be confused with a ghost update.  Close with
    :meth:`close` (a collective) to drain every flow's fin handshake.
    """

    def __init__(
        self,
        comm: "Communicator",
        config: "TransportConfig | None" = None,
        name: str = "halo",
    ):
        if config is None:
            from repro.transport.config import TransportConfig

            config = TransportConfig()
        self.comm = comm
        self.config = config
        self.name = str(name)
        self._senders: dict[tuple[int, str], ReliableSender] = {}
        self._receivers: dict[tuple[int, str], ReliableReceiver] = {}
        self._rounds: dict[tuple[int, str], int] = {}
        self._edges: set[tuple[int, int, str]] = set()
        self._plan_cache: tuple["ArrayPartition", int, dict] | None = None
        self.exchanges = 0
        self.handoffs = 0
        self.halo_bytes_moved = 0
        self.handoff_bytes_moved = 0
        self._closed = False

    _TAGS = {
        "halo": (HALO_DATA_TAG, HALO_ACK_TAG),
        "move": (HANDOFF_DATA_TAG, HANDOFF_ACK_TAG),
    }

    # -- flow management --------------------------------------------------------
    def _sender(self, dst: int, kind: str) -> ReliableSender:
        key = (dst, kind)
        if key not in self._senders:
            data_tag, ack_tag = self._TAGS[kind]
            self._senders[key] = ReliableSender(
                self.comm, dst, self.config,
                data_tag=data_tag, ack_tag=ack_tag,
                pipeline=f"{self.name}.{kind}",
            )
        return self._senders[key]

    def _receiver(self, src: int, kind: str) -> ReliableReceiver:
        key = (src, kind)
        if key not in self._receivers:
            data_tag, ack_tag = self._TAGS[kind]
            self._receivers[key] = ReliableReceiver(
                self.comm, src, self.config,
                data_tag=data_tag, ack_tag=ack_tag,
                pipeline=f"{self.name}.{kind}",
            )
        return self._receivers[key]

    @property
    def drops_recovered(self) -> int:
        """Chunk losses recovered across this exchanger's send flows."""
        return sum(
            s.metrics.drops_recovered for s in self._senders.values()
        )

    def _next_round(self, peer: int, kind: str) -> int:
        key = (peer, kind)
        self._rounds[key] = self._rounds.get(key, 0) + 1
        return self._rounds[key]

    # -- plan -------------------------------------------------------------------
    def _plan(self, array: "DistributedArray") -> dict:
        cached = self._plan_cache
        if (
            cached is not None
            and cached[0] == array.partition
            and cached[1] == array.halo
        ):
            return cached[2]
        plan = halo_plan(array.partition, array.halo)
        self._plan_cache = (array.partition, array.halo, plan)
        return plan

    @staticmethod
    def _read_rows(array: "DistributedArray", lo: int, hi: int) -> np.ndarray:
        """Owned global rows ``[lo, hi)`` (may span several shards)."""
        out = np.empty(hi - lo, dtype=array.dtype)
        filled = 0
        for glo, ghi, view in array._local_overlaps(lo, hi):
            out[glo - lo:ghi - lo] = view
            filled += ghi - glo
        if filled != hi - lo:
            raise ArrayError(
                f"rank {array.rank} asked to source rows [{lo}, {hi}) "
                f"but owns only {filled} of them",
                details={"rank": array.rank, "lo": lo, "hi": hi},
            )
        return out

    @staticmethod
    def _ghost_view(
        array: "DistributedArray", block: int, side: str, lo: int, hi: int
    ) -> np.ndarray:
        shard = array.shards[block]
        ghost = shard.left_ghost if side == "L" else shard.right_ghost
        base = shard.start - shard.halo if side == "L" else shard.stop
        return ghost[lo - base:hi - base]

    # -- halo exchange ----------------------------------------------------------
    def exchange(self, array: "DistributedArray", step: int) -> int:
        """Collective: refresh every ghost row from its owner.

        Every rank calls with the same ``step``; rank-local ghost fills
        are plain copies, remote ones ride the reliable flows in the
        globally sorted edge order.  Returns the wire bytes this rank
        sent for the exchange (raw payload, pre-codec).
        """
        if self._closed:
            raise ArrayError("halo exchanger already closed")
        plan = self._plan(array)
        rank = self.comm.rank
        itemsize = array.dtype.itemsize
        sent = 0
        for src, dst in sorted(plan):
            entries = plan[(src, dst)]
            if src == dst:
                if src == rank:
                    for b, side, lo, hi in entries:
                        view = self._ghost_view(array, b, side, lo, hi)
                        view[:] = self._read_rows(array, lo, hi)
                continue
            if rank == src:
                payload = np.concatenate([
                    self._read_rows(array, lo, hi)
                    for _b, _s, lo, hi in entries
                ])
                table = TableData(f"{self.name}.halo")
                table.add_host_column("halo", payload)
                self._sender(dst, "halo").send_step(
                    self._next_round(dst, "halo"), float(step), table
                )
                self._edges.add((src, dst, "halo"))
                sent += payload.nbytes
            elif rank == dst:
                result = self._receiver(src, "halo").receive_step()
                if result is None:
                    raise ArrayError(
                        f"halo flow from rank {src} drained mid-run",
                        details={"rank": rank, "source": src, "step": step},
                    )
                _round, _t, columns = result
                values = np.asarray(columns["halo"], dtype=array.dtype)
                offset = 0
                for b, side, lo, hi in entries:
                    n = hi - lo
                    view = self._ghost_view(array, b, side, lo, hi)
                    view[:] = values[offset:offset + n]
                    offset += n
                self._edges.add((src, dst, "halo"))
        self.exchanges += 1
        self.halo_bytes_moved += sent
        return sent

    # -- shard handoff ----------------------------------------------------------
    def handoff(
        self,
        array: "DistributedArray",
        moves: list[tuple[int, int, int]],
        event: int,
    ) -> dict[int, np.ndarray]:
        """Collective: ship moved blocks ``(block, src, dst)`` to new owners.

        All blocks moving between one ``(src, dst)`` pair travel as one
        step payload (one ``b{block}`` column each) on the handoff tag
        pair.  Returns ``{block: interior_values}`` for the blocks this
        rank receives.
        """
        if self._closed:
            raise ArrayError("halo exchanger already closed")
        rank = self.comm.rank
        pairs: dict[tuple[int, int], list[int]] = {}
        for b, src, dst in moves:
            pairs.setdefault((src, dst), []).append(b)
        arrived: dict[int, np.ndarray] = {}
        for src, dst in sorted(pairs):
            blocks = sorted(pairs[(src, dst)])
            if rank == src:
                table = TableData(f"{self.name}.move")
                nbytes = 0
                for b in blocks:
                    values = array.shards[b].interior.copy()
                    table.add_host_column(f"b{b}", values)
                    nbytes += values.nbytes
                self._sender(dst, "move").send_step(
                    self._next_round(dst, "move"), float(event), table
                )
                self._edges.add((src, dst, "move"))
                self.handoff_bytes_moved += nbytes
            elif rank == dst:
                result = self._receiver(src, "move").receive_step()
                if result is None:
                    raise ArrayError(
                        f"handoff flow from rank {src} drained mid-run",
                        details={"rank": rank, "source": src, "event": event},
                    )
                _round, _t, columns = result
                for b in blocks:
                    arrived[b] = np.asarray(
                        columns[f"b{b}"], dtype=array.dtype
                    )
                self._edges.add((src, dst, "move"))
        self.handoffs += 1
        return arrived

    # -- drain ------------------------------------------------------------------
    def close(self) -> None:
        """Collective: drain every flow's fin handshake, in edge order.

        Every rank walks its recorded edges (a subsequence of the same
        global order) closing senders and serving receivers, so the
        smallest undrained edge always has both endpoints ready — the
        same induction that makes :meth:`exchange` deadlock-free.
        """
        if self._closed:
            return
        for src, dst, kind in sorted(self._edges):
            rank = self.comm.rank
            if rank == src:
                self._senders[(dst, kind)].close()
            elif rank == dst:
                receiver = self._receivers[(src, kind)]
                while receiver.receive_step() is not None:
                    pass
        self._closed = True
