"""Coordination rounds driving the array repartition governor.

The :class:`ArrayCoordinator` is the measurement-and-collective half of
the load-balance loop: workloads charge per-block busy seconds into it
each step, and on coordination-due steps it allreduces one vector —
``[nblocks block costs | ranks busy | ranks halo bytes]`` — over the
array's communicator using the epoch-checked collective, then feeds
every rank's :class:`~repro.control.repartition.RepartitionGovernor`
the identical numbers.  Because the governor is deterministic, every
rank derives the same decision and the same new owner map, and the
actuator — the array's collective :meth:`repartition` — runs as a
coordinated step-boundary collective with the shard handoff charged
through the transport cost model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.array.halo import halo_bytes_by_rank
from repro.control.repartition import RepartitionGovernor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.array.array import DistributedArray
    from repro.array.halo import HaloExchanger
    from repro.control.plan import ControlPlane

__all__ = ["ArrayCoordinator"]


class ArrayCoordinator:
    """Runs the repartition loop for one array over one communicator.

    ``plane`` supplies the configuration (the ``repartition`` governor
    setting plus ``repartition_skew`` / ``repartition_cooldown`` and
    the coordination cadence) and receives every decision for the
    shared log; without a plane the coordinator runs standalone with
    the governor enabled and the given ``interval``.

    ``warmup`` schedules one cold-start round after that many steps —
    ahead of the regular cadence — so a badly skewed *initial* layout
    is corrected without waiting a full interval.
    """

    def __init__(
        self,
        array: "DistributedArray",
        exchanger: "HaloExchanger",
        plane: "ControlPlane | None" = None,
        interval: int = 4,
        warmup: int = 1,
        skew: float | None = None,
        cooldown: int | None = None,
    ):
        self.array = array
        self.exchanger = exchanger
        self.plane = plane
        cfg = plane.config if plane is not None else None
        if cfg is not None:
            enabled = cfg.enabled and cfg.repartition.enabled
            frozen = cfg.repartition.frozen
            interval = cfg.interval * cfg.coordination_interval
            if skew is None:
                skew = cfg.repartition_skew
            if cooldown is None:
                cooldown = cfg.repartition_cooldown
        else:
            enabled, frozen = True, False
        if interval < 1:
            raise ValueError(f"interval must be >= 1: {interval}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1: {warmup}")
        self.interval = int(interval)
        self.warmup = int(warmup)
        self.governor = RepartitionGovernor(
            actuator=self._apply,
            skew=1.25 if skew is None else float(skew),
            cooldown=2 if cooldown is None else int(cooldown),
            enabled=enabled,
            frozen=frozen,
        )
        self._block_busy: dict[int, float] = {}
        self._pending_step = 0
        self.rounds = 0
        self.repartitions = 0
        self.blocks_moved = 0
        self.bytes_moved = 0

    # -- measurement ------------------------------------------------------------
    def charge(self, block: int, busy: float) -> None:
        """Account ``busy`` simulated seconds of work to one owned block."""
        self._block_busy[block] = self._block_busy.get(block, 0.0) + float(
            busy
        )

    def observe(
        self, step: int, block_busy: Mapping[int, float], t: float
    ) -> None:
        """Per-step tap: charge this step's per-block busy seconds and
        run the coordination round when one is due.

        ``t`` is the *simulation* time of the step — deterministic by
        construction — and becomes the decision timestamp, so decision
        logs are bit-identical across reruns even when wall-clock
        scheduling perturbs the simulated clocks.
        """
        for b in sorted(block_busy):
            self.charge(b, block_busy[b])
        if self.due(step):
            self.coordinate(step, t)

    def due(self, step: int) -> bool:
        return step == self.warmup or step % self.interval == 0

    # -- the round --------------------------------------------------------------
    def coordinate(self, step: int, t: float):
        """One coordination round (collective over the array's comm).

        Returns the logged :class:`~repro.control.governors.Decision`,
        or None when the loop is idle (single rank, disabled governor,
        balanced load, or cooldown).
        """
        array = self.array
        comm = array.comm
        ranks = comm.size
        if ranks < 2 or not self.governor.enabled:
            self._block_busy.clear()
            return None
        partition = array.partition
        nblocks = partition.nblocks
        rank = comm.rank
        local = np.zeros(nblocks + 2 * ranks, dtype=np.float64)
        for b in sorted(self._block_busy):
            if partition.owners[b] == rank:
                local[b] = self._block_busy[b]
        local[nblocks + rank] = float(
            sum(local[b] for b in partition.blocks_of(rank))
        )
        halo = halo_bytes_by_rank(
            partition, array.halo, array.dtype.itemsize
        )
        local[nblocks + ranks + rank] = float(halo[rank])
        board = comm.coordinated_allreduce(local, op="sum")
        self.rounds += 1
        block_costs = [float(v) for v in board[:nblocks]]
        rank_busy = [float(v) for v in board[nblocks:nblocks + ranks]]
        halo_bytes = [float(v) for v in board[nblocks + ranks:]]
        self._pending_step = step
        decision, _new_owners = self.governor.rebalance(
            step,
            partition.owners,
            block_costs,
            rank_busy,
            halo_bytes,
            t=t,
        )
        self._block_busy.clear()
        if self.plane is not None:
            self.plane.record(decision)
        return decision

    def _apply(self, owners: tuple[int, ...]) -> None:
        """Governor actuator: the collective repartition itself.

        Every rank's governor computed the identical ``owners`` from
        the identical allreduced vectors, so every rank reaches this
        call on the same step — the handoff collective lines up by
        construction.
        """
        before = self.array.partition.owners
        self.bytes_moved += self.array.repartition(
            list(owners), self.exchanger, self._pending_step
        )
        self.repartitions += 1
        self.blocks_moved += sum(
            1 for a, b in zip(before, owners) if a != b
        )
