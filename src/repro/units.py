"""Unit helpers used throughout the simulated substrate.

Internally the simulator keeps time in **seconds** (float), sizes in
**bytes** (int), rates in **bytes/second** and **flop/second** (float).
These helpers keep conversion factors in one place and make cost-model
code read like the spec sheets it is calibrated from.
"""

from __future__ import annotations

__all__ = [
    "KiB", "MiB", "GiB",
    "KB", "MB", "GB", "TB",
    "US", "MS",
    "gbs", "tflops", "gflops", "us", "ms",
    "fmt_bytes", "fmt_time",
]

# Binary sizes.
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# Decimal sizes (vendor spec sheets use decimal units).
KB = 1000
MB = 1000 * KB
GB = 1000 * MB
TB = 1000 * GB

# Time.
US = 1e-6
MS = 1e-3


def gbs(x: float) -> float:
    """Convert GB/s (decimal) to bytes/second."""
    return float(x) * GB


def tflops(x: float) -> float:
    """Convert TFLOP/s to FLOP/s."""
    return float(x) * 1e12


def gflops(x: float) -> float:
    """Convert GFLOP/s to FLOP/s."""
    return float(x) * 1e9


def us(x: float) -> float:
    """Convert microseconds to seconds."""
    return float(x) * US


def ms(x: float) -> float:
    """Convert milliseconds to seconds."""
    return float(x) * MS


def fmt_bytes(n: int) -> str:
    """Human-readable byte count, e.g. ``fmt_bytes(3 * GiB) == '3.00 GiB'``."""
    n = int(n)
    for unit, name in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n} B"


def fmt_time(t: float) -> str:
    """Human-readable duration, e.g. ``fmt_time(0.0035) == '3.500 ms'``."""
    t = float(t)
    if abs(t) >= 1.0:
        return f"{t:.3f} s"
    if abs(t) >= MS:
        return f"{t / MS:.3f} ms"
    return f"{t / US:.3f} us"
