"""Newton++ output: VTK-compatible snapshots and binary checkpoints.

"[Newton++] has a VTK compatible output format for post processing and
visualization." (paper Section 4.1)
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import SolverError
from repro.newton.bodies import Bodies
from repro.svtk.data_array import HostDataArray
from repro.svtk.writer import write_vtk_particles

__all__ = ["write_snapshot", "write_checkpoint", "read_checkpoint"]


def write_snapshot(bodies: Bodies, path: str | os.PathLike) -> Path:
    """Write bodies as a VTK POLYDATA point cloud with attributes."""
    path = Path(path)
    pos = [
        HostDataArray("x", bodies.x),
        HostDataArray("y", bodies.y),
        HostDataArray("z", bodies.z),
    ]
    attrs = [
        HostDataArray("vx", bodies.vx),
        HostDataArray("vy", bodies.vy),
        HostDataArray("vz", bodies.vz),
        HostDataArray("mass", bodies.mass),
    ]
    write_vtk_particles(pos, path, attributes=attrs)
    return path


def write_checkpoint(
    bodies: Bodies, path: str | os.PathLike, step: int = 0, time: float = 0.0
) -> Path:
    """Write a restartable binary checkpoint (.npz)."""
    path = Path(path)
    np.savez_compressed(
        path,
        x=bodies.x, y=bodies.y, z=bodies.z,
        vx=bodies.vx, vy=bodies.vy, vz=bodies.vz,
        mass=bodies.mass, ids=bodies.ids,
        step=np.int64(step), time=np.float64(time),
    )
    # np.savez appends .npz when missing; report the real file.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def read_checkpoint(path: str | os.PathLike) -> tuple[Bodies, int, float]:
    """Load a checkpoint; returns ``(bodies, step, time)``."""
    path = Path(path)
    if not path.exists():
        raise SolverError(f"checkpoint not found: {path}")
    with np.load(path) as data:
        bodies = Bodies(
            data["x"], data["y"], data["z"],
            data["vx"], data["vy"], data["vz"],
            data["mass"], data["ids"],
        )
        return bodies, int(data["step"]), float(data["time"])
