"""Structure-of-arrays body container.

Positions, velocities, and masses live in separate contiguous arrays —
the layout device offload wants, and the layout the SENSEI data adaptor
publishes column-by-column with zero copies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError

__all__ = ["Bodies"]

_FIELDS = ("x", "y", "z", "vx", "vy", "vz", "mass")


class Bodies:
    """``n`` point masses: positions, velocities, masses, and ids."""

    __slots__ = ("x", "y", "z", "vx", "vy", "vz", "mass", "ids")

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        z: np.ndarray,
        vx: np.ndarray,
        vy: np.ndarray,
        vz: np.ndarray,
        mass: np.ndarray,
        ids: np.ndarray | None = None,
    ):
        arrays = [np.ascontiguousarray(a, dtype=np.float64) for a in (x, y, z, vx, vy, vz, mass)]
        n = arrays[0].size
        if any(a.size != n for a in arrays):
            raise SolverError("all body arrays must be equally long")
        self.x, self.y, self.z, self.vx, self.vy, self.vz, self.mass = arrays
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        self.ids = np.ascontiguousarray(ids, dtype=np.int64)
        if self.ids.size != n:
            raise SolverError("ids must match body count")

    @classmethod
    def empty(cls, n: int = 0) -> "Bodies":
        z = np.zeros(int(n))
        return cls(z, z.copy(), z.copy(), z.copy(), z.copy(), z.copy(), z.copy())

    @property
    def n(self) -> int:
        return self.x.size

    def __len__(self) -> int:
        return self.n

    @property
    def positions(self) -> np.ndarray:
        """``(n, 3)`` position matrix (copy)."""
        return np.column_stack((self.x, self.y, self.z))

    @property
    def velocities(self) -> np.ndarray:
        """``(n, 3)`` velocity matrix (copy)."""
        return np.column_stack((self.vx, self.vy, self.vz))

    @property
    def total_mass(self) -> float:
        return float(self.mass.sum())

    def select(self, mask_or_index: np.ndarray) -> "Bodies":
        """A new container holding the selected bodies (copies)."""
        return Bodies(
            self.x[mask_or_index],
            self.y[mask_or_index],
            self.z[mask_or_index],
            self.vx[mask_or_index],
            self.vy[mask_or_index],
            self.vz[mask_or_index],
            self.mass[mask_or_index],
            self.ids[mask_or_index],
        )

    @staticmethod
    def concatenate(parts: list["Bodies"]) -> "Bodies":
        """Merge containers (repartitioning receive side)."""
        parts = [p for p in parts if p is not None and p.n]
        if not parts:
            return Bodies.empty(0)
        return Bodies(
            np.concatenate([p.x for p in parts]),
            np.concatenate([p.y for p in parts]),
            np.concatenate([p.z for p in parts]),
            np.concatenate([p.vx for p in parts]),
            np.concatenate([p.vy for p in parts]),
            np.concatenate([p.vz for p in parts]),
            np.concatenate([p.mass for p in parts]),
            np.concatenate([p.ids for p in parts]),
        )

    def copy(self) -> "Bodies":
        return Bodies(
            self.x.copy(), self.y.copy(), self.z.copy(),
            self.vx.copy(), self.vy.copy(), self.vz.copy(),
            self.mass.copy(), self.ids.copy(),
        )

    @property
    def nbytes(self) -> int:
        """Total storage, as the zero-copy transfer sees it."""
        return sum(
            getattr(self, f).nbytes for f in _FIELDS
        ) + self.ids.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bodies(n={self.n}, total_mass={self.total_mass:.4g})"
