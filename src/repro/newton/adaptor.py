"""The SENSEI data adaptor for Newton++.

Publishes the solver's per-body state as a tabular mesh named
``"bodies"``.  Every column is wrapped **zero-copy** in an
``svtkHAMRDataArray`` tagged with the solver's device and the OpenMP
offload allocator — exactly the hand-off of the paper's Listing 1: the
in situ side receives the simulation's pointers plus the allocator /
device / stream information it needs to access or move them safely.
"""

from __future__ import annotations

from repro.hamr.allocator import Allocator
from repro.hamr.stream import StreamMode, default_stream
from repro.newton.solver import NewtonSolver
from repro.sensei.data_adaptor import DataAdaptor
from repro.svtk.hamr_array import HAMRDataArray
from repro.svtk.table import TableData

__all__ = ["NewtonDataAdaptor"]

#: Columns the adaptor publishes (per body).
COLUMNS = ("x", "y", "z", "vx", "vy", "vz", "mass")


class NewtonDataAdaptor(DataAdaptor):
    """Presents a :class:`NewtonSolver`'s bodies to SENSEI back-ends."""

    MESH_NAME = "bodies"

    def __init__(self, solver: NewtonSolver | None = None):
        comm = solver.comm if solver is not None else None
        super().__init__(comm)
        self._solver = solver
        self._table: TableData | None = None
        if solver is not None:
            self.update(solver)

    def update(self, solver: NewtonSolver) -> None:
        """Refresh the published state after a solver step."""
        self._solver = solver
        self._comm = solver.comm
        self.set_step(solver.step_count, solver.time)
        self._table = None  # rebuilt lazily; columns wrap current arrays

    def _build_table(self) -> TableData:
        solver = self._solver
        if solver is None:
            raise RuntimeError("adaptor has no solver bound")
        table = TableData(self.MESH_NAME)
        stream = default_stream(solver.device_id)
        for name in COLUMNS:
            values = getattr(solver.bodies, name)
            # Zero-copy: the HDA shares the solver's storage and records
            # where it lives (the solver's device, OpenMP-managed) and
            # which stream orders operations on it.
            table.add_column(
                HAMRDataArray.zero_copy(
                    name,
                    values,
                    allocator=Allocator.OPENMP,
                    device_id=solver.device_id,
                    stream=stream,
                    stream_mode=StreamMode.SYNC,
                    owner=solver.bodies,
                )
            )
        return table

    # -- DataAdaptor interface ---------------------------------------------------
    def get_mesh_names(self) -> tuple[str, ...]:
        return (self.MESH_NAME,)

    def get_mesh(self, name: str) -> TableData:
        if name != self.MESH_NAME:
            raise KeyError(
                f"Newton++ publishes only {self.MESH_NAME!r}, not {name!r}"
            )
        if self._table is None:
            self._table = self._build_table()
        return self._table

    def release_data(self) -> None:
        self._table = None
