"""The Newton++ solver: MPI + device offload, SENSEI instrumented.

Per step (KDK leapfrog):

1. allgather the global body positions/masses (direct n-body needs all
   sources; the communicator charges the exchange),
2. evaluate accelerations on this rank's assigned device — the kernel
   runs through :func:`repro.pm.kernels.launch` under the OpenMP
   offload PM, so the roofline cost lands on the device timeline,
3. integrate the local bodies,
4. every ``repartition_every`` steps, migrate escaped bodies
   (the paper's runs disabled repartitioning; so does the harness).

Each rank drives one device: by default device ``rank mod n_devices``
(one simulation rank per GPU, as in all of the paper's placements).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SolverError
from repro.hamr.allocator import HOST_DEVICE_ID
from repro.hamr.runtime import current_clock
from repro.hamr.stream import default_stream
from repro.hamr.stream import StreamMode
from repro.hw.node import num_devices
from repro.mpi.comm import Communicator, SelfCommunicator
from repro.newton.bodies import Bodies
from repro.newton.domain import SlabDomain
from repro.newton.forces import accelerations, pair_flops, total_energy
from repro.newton.ic import plummer_galaxy, uniform_random
from repro.newton.integrator import leapfrog_step
from repro.pm.kernels import launch

__all__ = ["SolverConfig", "NewtonSolver"]


@dataclass(frozen=True)
class SolverConfig:
    """Newton++ run parameters."""

    n_bodies: int = 1000          # global body count
    dt: float = 1e-3
    softening: float = 1e-2
    box: float = 1.0              # global domain is [-box, box) in x
    seed: int = 0
    ic: str = "uniform"           # "uniform" or "plummer"
    central_mass: float = 0.0
    vel_scale: float = 0.1
    mass_range: tuple[float, float] = (0.5, 1.5)
    repartition_every: int = 0    # 0 = disabled (as in the paper's runs)
    tile: int = 2048
    device_id: int | None = None  # None = rank mod n_devices

    def __post_init__(self):
        if self.n_bodies < 1:
            raise SolverError(f"n_bodies must be >= 1: {self.n_bodies}")
        if self.dt <= 0:
            raise SolverError(f"dt must be positive: {self.dt}")
        if self.ic not in ("uniform", "plummer"):
            raise SolverError(f"unknown ic {self.ic!r}; use 'uniform' or 'plummer'")
        if self.repartition_every < 0:
            raise SolverError("repartition_every must be >= 0")


class NewtonSolver:
    """One rank's solver instance."""

    def __init__(self, config: SolverConfig, comm: Communicator | None = None):
        self.config = config
        self.comm = comm if comm is not None else SelfCommunicator()
        if config.device_id is not None:
            self.device_id = int(config.device_id)
        else:
            self.device_id = self.comm.rank % max(1, num_devices())
        self.domain = SlabDomain.create(-config.box, config.box, self.comm)

        # Every rank generates the identical global IC (same seed), then
        # keeps its slab — no root-then-scatter traffic needed.
        if config.ic == "uniform":
            global_bodies = uniform_random(
                config.n_bodies,
                seed=config.seed,
                box=config.box,
                mass_range=config.mass_range,
                vel_scale=config.vel_scale,
                central_mass=config.central_mass,
            )
        else:
            global_bodies = plummer_galaxy(n=config.n_bodies, seed=config.seed)
        self.bodies = self.domain.select_initial(global_bodies)

        self.step_count = 0
        self.time = 0.0
        self._acc: np.ndarray | None = None
        #: Simulated seconds spent in the solver, per step.
        self.step_times: list[float] = []
        self.repartition_times: list[float] = []

    # -- force evaluation ----------------------------------------------------------
    def _gather_sources(self) -> tuple[np.ndarray, np.ndarray]:
        """Global source positions/masses via allgather."""
        if self.comm.size == 1:
            return self.bodies.positions, self.bodies.mass
        # Snapshot before posting: the threaded world passes references,
        # and a peer's in-place integration must not be visible mid-read
        # (real MPI copies at send time).
        parts = self.comm.allgather(
            (
                self.bodies.x.copy(), self.bodies.y.copy(),
                self.bodies.z.copy(), self.bodies.mass.copy(),
            )
        )
        xs = np.concatenate([p[0] for p in parts])
        ys = np.concatenate([p[1] for p in parts])
        zs = np.concatenate([p[2] for p in parts])
        ms = np.concatenate([p[3] for p in parts])
        return np.column_stack((xs, ys, zs)), ms

    def _accel_fn(self, positions: np.ndarray) -> np.ndarray:
        """Acceleration evaluation as a device kernel."""
        src_pos, src_mass = self._gather_sources()
        out = np.empty((positions.shape[0], 3))

        def kernel() -> None:
            out[...] = accelerations(
                positions,
                src_pos,
                src_mass,
                softening=self.config.softening,
                tile=self.config.tile,
            )

        n_t, n_s = positions.shape[0], src_mass.size
        launch(
            kernel,
            device_id=self.device_id,
            flops=pair_flops(n_t, n_s),
            bytes_moved=8.0 * (3 * n_t + 4 * n_s + 3 * n_t),
            stream=default_stream(self.device_id),
            mode=StreamMode.SYNC,
            name="nbody-accel",
        )
        return out

    # -- stepping ---------------------------------------------------------------------
    def step(self) -> None:
        """Advance one time step (collective across ranks)."""
        clock = current_clock()
        t0 = clock.now
        self._acc = leapfrog_step(
            self.bodies, self.config.dt, self._accel_fn, acc=self._acc
        )
        self.step_count += 1
        self.time += self.config.dt
        self.step_times.append(clock.now - t0)

        every = self.config.repartition_every
        if every and self.step_count % every == 0:
            r0 = clock.now
            self.bodies = self.domain.repartition(self.bodies, self.comm)
            self._acc = None  # local set changed; cached forces invalid
            self.repartition_times.append(clock.now - r0)

    def run(self, n_steps: int, bridge=None, adaptor=None) -> None:
        """Run ``n_steps``, invoking SENSEI after every step if given.

        This is the instrumentation pattern from the paper's evaluation:
        "In situ processing via SENSEI was performed at every iteration."
        """
        if (bridge is None) != (adaptor is None):
            raise SolverError("pass both bridge and adaptor, or neither")
        for _ in range(int(n_steps)):
            self.step()
            if bridge is not None:
                adaptor.update(self)
                bridge.execute(adaptor)

    # -- checkpoint / restart ---------------------------------------------------------------
    def save_checkpoint(self, path) -> None:
        """Write this rank's state to ``path`` (one file per rank).

        Callers embed the rank in the path (e.g. ``ck_r{rank}.npz``);
        the file records the step count and physical time so a restart
        resumes exactly where the run stopped.
        """
        from repro.newton.io import write_checkpoint

        write_checkpoint(self.bodies, path, step=self.step_count, time=self.time)

    def load_checkpoint(self, path) -> None:
        """Restore this rank's state from ``path``.

        The cached accelerations are discarded (they will be
        re-evaluated on the first step), so a restarted trajectory is
        identical to an uninterrupted one.
        """
        from repro.newton.io import read_checkpoint

        self.bodies, self.step_count, self.time = read_checkpoint(path)
        self._acc = None

    # -- diagnostics ----------------------------------------------------------------------
    @property
    def n_local(self) -> int:
        return self.bodies.n

    def n_global(self) -> int:
        """Global body count (collective)."""
        return int(self.comm.allreduce(self.bodies.n, op="sum"))

    def global_energy(self) -> float:
        """Total system energy (collective; every rank gets the value)."""
        parts = self.comm.allgather(
            (
                self.bodies.positions.copy(),
                self.bodies.velocities.copy(),
                self.bodies.mass.copy(),
            )
        )
        pos = np.concatenate([p[0] for p in parts])
        vel = np.concatenate([p[1] for p in parts])
        mass = np.concatenate([p[2] for p in parts])
        return total_energy(pos, vel, mass, softening=self.config.softening)

    @property
    def mean_step_time(self) -> float:
        """Average simulated solver seconds per iteration."""
        if not self.step_times:
            return 0.0
        return float(np.mean(self.step_times))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NewtonSolver(rank={self.comm.rank}/{self.comm.size}, "
            f"n_local={self.n_local}, device={self.device_id}, "
            f"step={self.step_count})"
        )
