"""Newton++ — the n-body simulation used in the paper's evaluation.

"Newton++ is an open source direct n-body simulation with a second
order, time reversible, symplectic integration scheme.  Newton++ is
written in C++ and parallelized with MPI and OpenMP device offload.
Each MPI rank owns a unique spatial subdomain of the simulated volume
and is responsible for integrating bodies within its subdomain.  As
bodies evolve in time, a repartitioning phase migrates bodies that have
moved outside of a given subdomain to the correct MPI rank.  Newton++
is instrumented with SENSEI, and it has a VTK compatible output format
for post processing and visualization." (Section 4.1)

This package reproduces all of that on the simulated substrate:

- :mod:`~repro.newton.bodies` — SoA body container;
- :mod:`~repro.newton.ic` — uniform-random initial conditions (with the
  massive central body of Figure 1) and a Plummer-sphere galaxy
  initializer standing in for MAGI;
- :mod:`~repro.newton.forces` — tiled all-pairs softened gravity;
- :mod:`~repro.newton.integrator` — kick-drift-kick leapfrog (second
  order, time reversible, symplectic);
- :mod:`~repro.newton.domain` — slab subdomains and repartitioning;
- :mod:`~repro.newton.solver` — the MPI+offload solver, SENSEI
  instrumented;
- :mod:`~repro.newton.adaptor` — the SENSEI data adaptor publishing the
  body table zero-copy;
- :mod:`~repro.newton.io` — VTK-compatible output and checkpoints.
"""

from repro.newton.bodies import Bodies
from repro.newton.ic import plummer_galaxy, uniform_random
from repro.newton.forces import accelerations, potential_energy, kinetic_energy
from repro.newton.integrator import leapfrog_step
from repro.newton.domain import SlabDomain
from repro.newton.solver import NewtonSolver, SolverConfig
from repro.newton.adaptor import NewtonDataAdaptor

__all__ = [
    "Bodies",
    "uniform_random",
    "plummer_galaxy",
    "accelerations",
    "potential_energy",
    "kinetic_energy",
    "leapfrog_step",
    "SlabDomain",
    "NewtonSolver",
    "SolverConfig",
    "NewtonDataAdaptor",
]
