"""The second-order, time-reversible, symplectic integrator.

Kick-drift-kick leapfrog: half-step velocity kick, full-step position
drift, half-step kick with re-evaluated accelerations.  Symplectic and
time reversible — integrating forward then backward with ``-dt``
returns to the initial state to round-off, which the tests assert.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SolverError
from repro.newton.bodies import Bodies

__all__ = ["leapfrog_step"]

AccelFn = Callable[[np.ndarray], np.ndarray]


def leapfrog_step(
    bodies: Bodies,
    dt: float,
    accel_fn: AccelFn,
    acc: np.ndarray | None = None,
) -> np.ndarray:
    """Advance ``bodies`` in place by one KDK step; returns end-of-step
    accelerations (pass back in as ``acc`` to avoid re-evaluating).

    ``accel_fn(positions)`` evaluates accelerations at given positions
    (``(n, 3) -> (n, 3)``).  ``dt`` may be negative (time reversal).
    """
    if dt == 0.0:
        raise SolverError("dt must be nonzero")
    n = bodies.n
    if acc is None:
        acc = accel_fn(bodies.positions)
    acc = np.asarray(acc, dtype=np.float64)
    if acc.shape != (n, 3):
        raise SolverError(f"acc must be ({n}, 3), got {acc.shape}")

    half = 0.5 * dt
    # Kick (half).
    bodies.vx += half * acc[:, 0]
    bodies.vy += half * acc[:, 1]
    bodies.vz += half * acc[:, 2]
    # Drift (full).
    bodies.x += dt * bodies.vx
    bodies.y += dt * bodies.vy
    bodies.z += dt * bodies.vz
    # Kick (half) with updated forces.
    acc2 = np.asarray(accel_fn(bodies.positions), dtype=np.float64)
    bodies.vx += half * acc2[:, 0]
    bodies.vy += half * acc2[:, 1]
    bodies.vz += half * acc2[:, 2]
    return acc2
