"""All-pairs softened gravity (direct summation).

Newton++ is a *direct* n-body code: every local body interacts with
every body in the system.  The kernel is tiled over the source bodies
so memory stays bounded at large n (the guides' vectorize-and-broadcast
idiom without materializing the full n x n matrix at once).

G = 1 units.  ~20 FLOPs per pairwise interaction is the figure used
for simulated-cost accounting (:func:`pair_flops`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SolverError

__all__ = [
    "accelerations",
    "potential_energy",
    "kinetic_energy",
    "total_energy",
    "pair_flops",
]

#: FLOPs per pairwise gravitational interaction (dx,dy,dz, r2, rinv3, 3 acc).
FLOPS_PER_PAIR = 20.0


def pair_flops(n_targets: int, n_sources: int) -> float:
    """Simulated-cost FLOP count of one acceleration evaluation."""
    return FLOPS_PER_PAIR * float(n_targets) * float(n_sources)


def accelerations(
    targets_pos: np.ndarray,
    sources_pos: np.ndarray,
    sources_mass: np.ndarray,
    softening: float = 1e-3,
    tile: int = 2048,
) -> np.ndarray:
    """Gravitational acceleration on each target from all sources.

    Parameters
    ----------
    targets_pos:
        ``(n_t, 3)`` positions receiving force.
    sources_pos, sources_mass:
        ``(n_s, 3)`` positions and ``(n_s,)`` masses exerting force.
        Self-interaction (distance 0) contributes nothing thanks to the
        softened kernel's zeroed diagonal handling.
    softening:
        Plummer softening length; must be positive (it is also what
        silences the self-interaction singularity).
    tile:
        Source-tile width bounding the temporary to ``n_t x tile``.
    """
    if softening <= 0:
        raise SolverError(f"softening must be positive: {softening}")
    if tile < 1:
        raise SolverError(f"tile must be >= 1: {tile}")
    targets_pos = np.asarray(targets_pos, dtype=np.float64)
    sources_pos = np.asarray(sources_pos, dtype=np.float64)
    sources_mass = np.asarray(sources_mass, dtype=np.float64)
    if targets_pos.ndim != 2 or targets_pos.shape[1] != 3:
        raise SolverError(f"targets_pos must be (n, 3), got {targets_pos.shape}")
    if sources_pos.shape != (sources_mass.size, 3):
        raise SolverError("sources_pos/sources_mass shape mismatch")

    n_t = targets_pos.shape[0]
    acc = np.zeros((n_t, 3))
    eps2 = softening * softening
    for start in range(0, sources_mass.size, tile):
        sp = sources_pos[start : start + tile]
        sm = sources_mass[start : start + tile]
        # (n_t, n_tile, 3) displacement target -> source.
        d = sp[None, :, :] - targets_pos[:, None, :]
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        inv_r3 = r2 ** -1.5
        # Bodies at (numerically) zero distance are the body itself:
        # the softened kernel keeps this finite and the contribution of
        # a true self-pair is exactly zero because d == 0.
        w = sm[None, :] * inv_r3
        acc += np.einsum("ij,ijk->ik", w, d)
    return acc


def potential_energy(
    pos: np.ndarray, mass: np.ndarray, softening: float = 1e-3, tile: int = 2048
) -> float:
    """Total softened potential energy (each pair counted once)."""
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = mass.size
    eps2 = softening * softening
    total = 0.0
    for start in range(0, n, tile):
        sp = pos[start : start + tile]
        sm = mass[start : start + tile]
        d = sp[None, :, :] - pos[:, None, :]
        r2 = np.einsum("ijk,ijk->ij", d, d) + eps2
        inv_r = r2 ** -0.5
        # Zero the self-pairs (global row i with tile column i-start).
        rows = np.arange(start, min(start + tile, n))
        inv_r[rows, rows - start] = 0.0
        total += float(np.einsum("i,ij,j->", mass, inv_r, sm))
    return -0.5 * total


def kinetic_energy(vel: np.ndarray, mass: np.ndarray) -> float:
    """Total kinetic energy ``sum(m v^2) / 2``."""
    vel = np.asarray(vel, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    return 0.5 * float(np.einsum("i,ij,ij->", mass, vel, vel))


def total_energy(
    pos: np.ndarray, vel: np.ndarray, mass: np.ndarray, softening: float = 1e-3
) -> float:
    """Kinetic plus potential energy of the system."""
    return kinetic_energy(vel, mass) + potential_energy(pos, mass, softening)
