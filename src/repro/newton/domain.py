"""Spatial subdomains and the repartitioning phase.

"Each MPI rank owns a unique spatial subdomain of the simulated volume
and is responsible for integrating bodies within its subdomain.  As
bodies evolve in time, a repartitioning phase migrates bodies that have
moved outside of a given subdomain to the correct MPI rank."
(paper Section 4.1)

The decomposition is 1-D slabs along x (bodies escaping the global
bounds are owned by the boundary ranks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.mpi.comm import Communicator
from repro.mpi.partition import owner_of, slab_bounds
from repro.newton.bodies import Bodies

__all__ = ["SlabDomain"]


@dataclass(frozen=True)
class SlabDomain:
    """One rank's slab of the global x-interval ``[lo, hi)``."""

    lo: float
    hi: float
    rank: int
    size: int

    def __post_init__(self):
        if not self.hi > self.lo:
            raise SolverError(f"empty global interval: [{self.lo}, {self.hi})")
        if not 0 <= self.rank < self.size:
            raise SolverError(f"invalid rank {self.rank} of {self.size}")

    @classmethod
    def create(cls, lo: float, hi: float, comm: Communicator) -> "SlabDomain":
        return cls(lo=float(lo), hi=float(hi), rank=comm.rank, size=comm.size)

    @property
    def local_bounds(self) -> tuple[float, float]:
        """This rank's slab ``[low, high)``."""
        return slab_bounds(self.lo, self.hi, self.size, self.rank)

    def owners(self, bodies: Bodies) -> np.ndarray:
        """The owning rank of each body (by x coordinate)."""
        return owner_of(bodies.x, self.lo, self.hi, self.size)

    def select_initial(self, bodies: Bodies) -> Bodies:
        """This rank's share of a globally replicated initial condition."""
        return bodies.select(self.owners(bodies) == self.rank)

    def repartition(self, bodies: Bodies, comm: Communicator) -> Bodies:
        """Migrate escaped bodies to their owning ranks (alltoall).

        Returns the new local body set.  Total body count and mass are
        conserved across the exchange (asserted by tests).
        """
        if comm.size == 1:
            return bodies
        owners = self.owners(bodies)
        outgoing: list[Bodies | None] = []
        for dest in range(comm.size):
            if dest == self.rank:
                outgoing.append(None)  # kept locally, not sent
            else:
                mask = owners == dest
                outgoing.append(bodies.select(mask) if mask.any() else None)
        received = comm.alltoall(outgoing)
        kept = bodies.select(owners == self.rank)
        received[self.rank] = kept
        return Bodies.concatenate([p for p in received if p is not None])
