"""The host-only programming model (plain C++ in the paper).

Listing 4's ``libB`` — a writer that consumes data through the
host-accessible view — is the canonical host-PM client: it never knows
which PM produced the data or where it lived.
"""

from __future__ import annotations

from repro.hamr.allocator import Allocator, PMKind
from repro.pm.base import ProgrammingModel

__all__ = ["HostPM"]


class HostPM(ProgrammingModel):
    """Host-only execution with ``malloc``/``new`` allocators."""

    kind = PMKind.HOST
    targets_devices = False
    allocators = frozenset({Allocator.MALLOC, Allocator.NEW})
