"""PM registry and interoperability matrix.

"Our strategy is to manage data using the selected PM and provide
interoperability with all of the supported PMs so that data can be
passed between any two codes, including those written in different PMs,
and those targeting execution on different accelerators or the host."
(paper, Section 2)

On the simulated node (as on Perlmutter), every device PM's pointers
are raw device addresses in a per-device address space, so any device
PM can consume any other device PM's memory *when it is resident where
the consumer executes*; host PMs can consume host-resident (including
page-locked and UVA) memory.  The matrix below records that — the cost
of crossing PMs is therefore purely a *location* question, answered by
the data-movement engine.
"""

from __future__ import annotations

from repro.errors import InteropError
from repro.hamr.allocator import Allocator, PMKind
from repro.pm.base import ProgrammingModel
from repro.pm.cuda import CudaPM
from repro.pm.hip import HipPM
from repro.pm.host import HostPM
from repro.pm.kokkos import KokkosPM
from repro.pm.openmp import OpenMPPM
from repro.pm.sycl import SyclPM

__all__ = ["get_pm", "registered_pms", "can_interoperate", "pm_for_allocator"]

_PMS: dict[PMKind, ProgrammingModel] = {
    PMKind.HOST: HostPM(),
    PMKind.CUDA: CudaPM(),
    PMKind.HIP: HipPM(),
    PMKind.OPENMP: OpenMPPM(),
    PMKind.SYCL: SyclPM(),
    PMKind.KOKKOS: KokkosPM(),
}


def get_pm(kind: PMKind) -> ProgrammingModel:
    """The singleton PM object for ``kind``."""
    try:
        return _PMS[kind]
    except KeyError:  # pragma: no cover - PMKind is closed
        raise InteropError(f"unknown programming model: {kind!r}") from None


def registered_pms() -> tuple[ProgrammingModel, ...]:
    """All supported programming models."""
    return tuple(_PMS.values())


def pm_for_allocator(allocator: Allocator) -> ProgrammingModel:
    """The PM that owns allocations made with ``allocator``."""
    return get_pm(allocator.pm_kind)


def can_interoperate(producer: PMKind, consumer: PMKind) -> bool:
    """True if ``consumer`` code can read memory managed by ``producer``.

    Always true in this model: the data model mediates every pairing,
    staging data into the consumer's space when required.  The function
    exists so back-ends can assert the guarantee and so alternative
    (more restrictive) hardware models can be expressed by swapping the
    registry.
    """
    get_pm(producer)
    get_pm(consumer)
    return True
