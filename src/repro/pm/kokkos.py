"""The Kokkos programming model (simulated).

The paper's Section 5 future work: "... as well as third party PMs such
as Kokkos".  Kokkos is a C++ performance-portability layer whose
device memory space maps to one allocator here; its host (Serial /
OpenMP) backends make host execution legal, like OpenMP offload.
"""

from __future__ import annotations

from repro.hamr.allocator import Allocator, PMKind
from repro.pm.base import ProgrammingModel

__all__ = ["KokkosPM"]


class KokkosPM(ProgrammingModel):
    """Kokkos: one device-space allocator; host backends available."""

    kind = PMKind.KOKKOS
    targets_devices = True
    host_fallback = True
    allocators = frozenset({Allocator.KOKKOS})
