"""Kernel launch on virtual devices.

A kernel here is a Python callable operating on the numpy arrays behind
a set of buffers.  The callable runs eagerly (numerics are real), while
the simulated duration — from the target resource's roofline model — is
scheduled on a stream and recorded against the device timeline.  Output
buffers carry the completion event as a pending dependency, so
downstream synchronization behaves exactly as stream-ordered device
work does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.hamr.allocator import HOST_DEVICE_ID
from repro.hamr.buffer import Buffer
from repro.hamr.runtime import current_clock
from repro.hamr.stream import Stream, StreamMode, default_stream
from repro.hw.clock import EventCategory, SimClock, TimedEvent
from repro.hw.node import get_node

__all__ = ["KernelCost", "launch"]


@dataclass(frozen=True)
class KernelCost:
    """Work descriptor used to derive a kernel's simulated duration."""

    flops: float = 0.0
    bytes_moved: float = 0.0
    atomic_fraction: float = 0.0

    def __add__(self, other: "KernelCost") -> "KernelCost":
        total_bytes = self.bytes_moved + other.bytes_moved
        if total_bytes > 0:
            atomic = (
                self.bytes_moved * self.atomic_fraction
                + other.bytes_moved * other.atomic_fraction
            ) / total_bytes
        else:
            atomic = 0.0
        return KernelCost(self.flops + other.flops, total_bytes, atomic)


def launch(
    fn: Callable[..., object],
    reads: Sequence[Buffer] = (),
    writes: Sequence[Buffer] = (),
    device_id: int = HOST_DEVICE_ID,
    flops: float = 0.0,
    bytes_moved: float = 0.0,
    atomic_fraction: float = 0.0,
    stream: Stream | None = None,
    mode: StreamMode = StreamMode.SYNC,
    clock: SimClock | None = None,
    name: str = "kernel",
    cores: int | None = None,
) -> TimedEvent:
    """Execute ``fn(*read_arrays, *write_arrays)`` as a device kernel.

    Parameters
    ----------
    fn:
        Callable receiving the read arrays followed by the write arrays.
        Its return value is ignored; results go into the write arrays.
    reads, writes:
        Buffers the kernel consumes / produces.  All must already be
        accessible on ``device_id`` (use the access APIs to stage them).
    device_id:
        Execution target; ``HOST_DEVICE_ID`` runs on the host CPU.
    flops, bytes_moved, atomic_fraction:
        Roofline work descriptor; see
        :meth:`repro.hw.device.VirtualDevice.kernel_time`.
    mode:
        ``SYNC`` blocks the issuing clock until completion; ``ASYNC``
        returns immediately with the completion pending on the stream
        and the write buffers.
    cores:
        For host execution, how many CPU cores the kernel may use.
    """
    clock = clock if clock is not None else current_clock()
    node = get_node()
    resource = node.resource(device_id)
    if stream is None:
        stream = default_stream(device_id)

    # A kernel may not start before its operands are valid.
    after = 0.0
    for b in (*reads, *writes):
        after = max(after, b.ready_at)

    # Real numerics, simulated time.  The launcher is the execution
    # engine: operands were staged by the access APIs (launch's
    # contract) and the roofline duration is charged below.
    fn(*[b.data for b in reads], *[b.data for b in writes])  # lint: disable=HL001

    if resource.is_host:
        dur = resource.kernel_time(
            flops=flops,
            bytes_moved=bytes_moved,
            atomic_fraction=atomic_fraction,
            cores=cores,
        )
    else:
        dur = resource.kernel_time(
            flops=flops, bytes_moved=bytes_moved, atomic_fraction=atomic_fraction
        )

    ev = stream.enqueue(
        clock, dur, name=name, category=EventCategory.COMPUTE, mode=mode, after=after
    )
    # Mirror onto the device's own timeline for utilization reporting
    # (without serializing: independent streams may overlap on a device).
    resource.timeline.record(ev.start, ev.end, name=name, category=EventCategory.COMPUTE)
    for b in writes:
        b.mark_pending(ev)
    return ev
