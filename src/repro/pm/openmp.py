"""The OpenMP target-offload programming model (simulated).

The Newton++ simulation is parallelized with OpenMP device offload
(paper Section 4.1); Listing 1 shows the ``omp_target_alloc`` +
``target teams distribute parallel for`` pattern this PM stands in for.
OpenMP offload can also execute on the host (no device available, or
``device(omp_get_initial_device())``), which is why
:meth:`validate_target` in the base class permits host execution for
this PM.
"""

from __future__ import annotations

from repro.hamr.allocator import Allocator, PMKind
from repro.pm.base import ProgrammingModel

__all__ = ["OpenMPPM"]


class OpenMPPM(ProgrammingModel):
    """OpenMP target offload: one device allocator (``omp_target_alloc``)."""

    kind = PMKind.OPENMP
    targets_devices = True
    host_fallback = True
    allocators = frozenset({Allocator.OPENMP})
