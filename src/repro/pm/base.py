"""Programming-model base class."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Sequence

from repro.errors import InteropError, LocationError
from repro.hamr.allocator import HOST_DEVICE_ID, Allocator, PMKind
from repro.hamr.buffer import Buffer
from repro.hamr.stream import Stream, StreamMode
from repro.hw.clock import SimClock, TimedEvent
from repro.hw.node import get_node

__all__ = ["ProgrammingModel"]


class ProgrammingModel(ABC):
    """One execution environment (CUDA, HIP, OpenMP offload, or host).

    Subclasses declare their allocator set and execution targets; kernel
    launches delegate to :func:`repro.pm.kernels.launch` with this PM's
    identity attached for reporting and interop checks.
    """

    #: The PMKind this model implements.
    kind: PMKind

    #: Allocators this PM provides.
    allocators: frozenset[Allocator]

    #: Whether this PM executes on accelerators (False: host only).
    targets_devices: bool

    #: Whether kernels can also execute on the host.  CUDA and HIP
    #: cannot; OpenMP offload, SYCL, and Kokkos all have host backends.
    host_fallback: bool = False

    def owns_allocator(self, allocator: Allocator) -> bool:
        return allocator in self.allocators

    def validate_target(self, device_id: int) -> None:
        """Raise unless this PM can execute on ``device_id``."""
        if device_id == HOST_DEVICE_ID:
            if self.targets_devices and not self.host_fallback:
                raise LocationError(
                    f"{self.kind.value} kernels cannot execute on the host"
                )
            return
        if not self.targets_devices:
            raise LocationError(
                f"{self.kind.value} PM cannot execute on device {device_id}"
            )
        get_node().device(device_id)  # existence check

    def launch(
        self,
        fn: Callable[..., object],
        reads: Sequence[Buffer] = (),
        writes: Sequence[Buffer] = (),
        device_id: int = HOST_DEVICE_ID,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        atomic_fraction: float = 0.0,
        stream: Stream | None = None,
        mode: StreamMode = StreamMode.SYNC,
        clock: SimClock | None = None,
        name: str = "",
        cores: int | None = None,
    ) -> TimedEvent:
        """Launch a kernel in this PM.  See :func:`repro.pm.kernels.launch`."""
        from repro.pm.kernels import launch as _launch

        self.validate_target(device_id)
        for b in (*reads, *writes):
            if not b.device_accessible(device_id):
                raise InteropError(
                    f"{self.kind.value} kernel on device {device_id} cannot "
                    f"access buffer {b.name!r} resident on "
                    f"{'host' if b.on_host else f'device {b.device_id}'}; "
                    "obtain an accessible view first"
                )
        return _launch(
            fn,
            reads=reads,
            writes=writes,
            device_id=device_id,
            flops=flops,
            bytes_moved=bytes_moved,
            atomic_fraction=atomic_fraction,
            stream=stream,
            mode=mode,
            clock=clock,
            name=name or f"{self.kind.value}-kernel",
            cores=cores,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
