"""The CUDA programming model (simulated).

The paper's in situ data-binning analysis is written in CUDA
(Section 4.2); Listing 3 shows the access-API usage pattern this PM
supports: ``cudaSetDevice`` → ``GetCUDAAccessible`` → direct kernel
launch on a stream.
"""

from __future__ import annotations

from repro.hamr.allocator import Allocator, PMKind
from repro.pm.base import ProgrammingModel

__all__ = ["CudaPM"]


class CudaPM(ProgrammingModel):
    """NVIDIA CUDA: device allocators in sync/async/UVA/pinned variants."""

    kind = PMKind.CUDA
    targets_devices = True
    allocators = frozenset(
        {
            Allocator.CUDA,
            Allocator.CUDA_ASYNC,
            Allocator.CUDA_UVA,
            Allocator.CUDA_HOST,
        }
    )
