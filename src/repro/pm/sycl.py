"""The SYCL programming model (simulated).

The paper's Section 5 future work: "We will also add support for
SYCL...".  SYCL's unified-shared-memory model maps directly onto the
allocator taxonomy the data model already has: ``malloc_device`` is a
plain device allocation, ``malloc_shared`` is universally addressable
(migratable, like CUDA managed memory), and ``malloc_host`` is
device-visible host memory.  SYCL also always exposes a host device,
so host execution is legal.
"""

from __future__ import annotations

from repro.hamr.allocator import Allocator, PMKind
from repro.pm.base import ProgrammingModel

__all__ = ["SyclPM"]


class SyclPM(ProgrammingModel):
    """SYCL: device / shared / host USM allocators; host device available."""

    kind = PMKind.SYCL
    targets_devices = True
    host_fallback = True
    allocators = frozenset(
        {
            Allocator.SYCL,
            Allocator.SYCL_SHARED,
            Allocator.SYCL_HOST,
        }
    )
