"""Programming-model (PM) layer.

The paper couples codes written in different PMs — the Newton++
simulation uses OpenMP target offload, the data-binning analysis uses
CUDA, and file writers use host-only C++.  This package models each PM
as an object that knows:

- which allocators it provides and on which devices it can execute;
- how to launch kernels on the virtual hardware
  (:func:`repro.pm.kernels.launch` runs a numpy callable on the tagged
  storage while charging roofline time to the device's timeline);
- how its native streams map onto :class:`repro.hamr.stream.Stream`.

PM *interoperability* — the ability of code written in one PM to
consume data managed by another — is resolved by the registry's
interop matrix together with the HDA access API.
"""

from repro.pm.base import ProgrammingModel
from repro.pm.registry import get_pm, registered_pms, can_interoperate
from repro.pm.kernels import launch, KernelCost
from repro.hamr.allocator import PMKind

__all__ = [
    "ProgrammingModel",
    "PMKind",
    "get_pm",
    "registered_pms",
    "can_interoperate",
    "launch",
    "KernelCost",
]
