"""The HIP programming model (simulated).

SENSEI's data model supports HIP allocators alongside CUDA and OpenMP
(paper Section 2); on single-vendor nodes HIP device pointers are
interchangeable with the other device PMs' pointers, which is what the
interop matrix in :mod:`repro.pm.registry` encodes.
"""

from __future__ import annotations

from repro.hamr.allocator import Allocator, PMKind
from repro.pm.base import ProgrammingModel

__all__ = ["HipPM"]


class HipPM(ProgrammingModel):
    """AMD HIP: device allocators in sync/async/UVA/pinned variants."""

    kind = PMKind.HIP
    targets_devices = True
    allocators = frozenset(
        {
            Allocator.HIP,
            Allocator.HIP_ASYNC,
            Allocator.HIP_UVA,
            Allocator.HIP_HOST,
        }
    )
