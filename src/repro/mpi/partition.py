"""Domain-decomposition helpers.

Newton++ assigns "a unique spatial subdomain of the simulated volume"
to each MPI rank (paper Section 4.1).  These helpers implement the two
decompositions the solver uses: block ranges over item indices, and
slab subdomains over a coordinate interval.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MPIError

__all__ = ["block_range", "slab_bounds", "owner_of"]


def block_range(n: int, size: int, rank: int) -> tuple[int, int]:
    """Contiguous ``[start, stop)`` share of ``n`` items for ``rank``.

    Remainder items go to the lowest ranks, so shares differ by at most
    one — the standard balanced block distribution.
    """
    if size < 1 or not 0 <= rank < size:
        raise MPIError(f"invalid rank/size: {rank}/{size}")
    if n < 0:
        raise MPIError(f"negative item count: {n}")
    base, extra = divmod(n, size)
    start = rank * base + min(rank, extra)
    stop = start + base + (1 if rank < extra else 0)
    return start, stop


def slab_bounds(
    lo: float, hi: float, size: int, rank: int
) -> tuple[float, float]:
    """Rank's slab ``[low, high)`` of the interval ``[lo, hi)``."""
    if size < 1 or not 0 <= rank < size:
        raise MPIError(f"invalid rank/size: {rank}/{size}")
    if not hi > lo:
        raise MPIError(f"empty interval: [{lo}, {hi})")
    width = (hi - lo) / size
    low = lo + rank * width
    high = hi if rank == size - 1 else lo + (rank + 1) * width
    return low, high


def owner_of(x: np.ndarray, lo: float, hi: float, size: int) -> np.ndarray:
    """Owning rank of each coordinate in a slab decomposition.

    Coordinates outside ``[lo, hi)`` are clamped to the boundary ranks,
    matching the solver's treatment of escaping bodies.
    """
    if size < 1:
        raise MPIError(f"size must be >= 1: {size}")
    x = np.asarray(x, dtype=np.float64)
    width = (hi - lo) / size
    idx = np.floor((x - lo) / width).astype(np.int64)
    return np.clip(idx, 0, size - 1)
