"""Communicators and the SPMD runner.

Design notes
------------
Ranks are threads sharing one process.  A :class:`_World` holds the
shared state: per-destination mailboxes for point-to-point traffic, a
scratch board plus reusable barrier for collectives, and the
communication cost model.

Simulated time: every operation charges an alpha-beta cost
(``latency + nbytes / bandwidth``) to the calling rank's thread-local
clock.  Blocking collectives additionally *align* participants' clocks
to the latest arrival plus the collective's cost — the same
synchronization a real blocking collective imposes — using a
``threading.Barrier`` rendezvous.

Reductions on numpy arrays avoid pickling; object-mode methods accept
anything.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import MPIError, RankMismatchError
from repro.hamr.runtime import current_clock, use_clock
from repro.hw.clock import SimClock
from repro.mpi.request import Request
from repro.units import gbs, us

__all__ = [
    "CommCostModel",
    "Communicator",
    "SelfCommunicator",
    "ThreadCommunicator",
    "run_spmd",
]

_REDUCTIONS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "prod": lambda a, b: a * b,
}


@dataclass(frozen=True)
class CommCostModel:
    """Alpha-beta message cost (Slingshot-class interconnect defaults)."""

    latency: float = us(2.0)
    bandwidth: float = gbs(25.0)
    barrier_cost: float = us(5.0)

    def message(self, nbytes: int) -> float:
        return self.latency + int(nbytes) / self.bandwidth

    def collective(self, nbytes: int, size: int) -> float:
        """Tree-algorithm collective over ``size`` ranks."""
        rounds = max(1, int(np.ceil(np.log2(max(size, 2)))))
        return rounds * self.message(nbytes)


#: Wall-clock fallback applied when ``recv`` is called without a timeout;
#: hitting it means a peer died or the program deadlocked, reported as a
#: structured :class:`MPIError` (tests shrink this to keep failures fast).
DEFAULT_RECV_TIMEOUT = 60.0


def _payload_bytes(obj: Any) -> int:
    wire = getattr(obj, "wire_nbytes", None)
    if wire is not None:
        # Transport-plane frames know their own wire footprint (payload
        # plus header), which differs from the python object's size.
        return int(wire)
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (int, float, complex, bool)) or obj is None:
        return 8
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(_payload_bytes(x) for x in obj) or 8
    if isinstance(obj, dict):
        return sum(_payload_bytes(v) for v in obj.values()) or 8
    return 64  # generic pickled object estimate


class Communicator:
    """Abstract MPI-like communicator."""

    rank: int
    size: int

    # -- point to point ---------------------------------------------------------
    def send(
        self, obj: Any, dest: int, tag: int = 0, charge: bool = True
    ) -> None:
        """Send ``obj`` to ``dest``.

        ``charge=False`` marks control-plane traffic (transport ACKs,
        drain handshakes): the message still travels but costs no
        simulated time, modeling the asynchronous progress engine a
        real transport runs beside the application.
        """
        raise NotImplementedError

    def recv(
        self,
        source: int,
        tag: int = 0,
        timeout: float | None = None,
        charge: bool = True,
    ) -> Any:
        raise NotImplementedError

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request.completed()

    def irecv(self, source: int, tag: int = 0) -> Request:
        return Request(lambda timeout: self.recv(source, tag, timeout))

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        req = self.isend(obj, dest, tag)
        out = self.recv(source, tag)
        req.wait()
        return out

    # -- numpy buffer variants ---------------------------------------------------
    def Send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        self.send(np.ascontiguousarray(array), dest, tag)

    def Recv(self, out: np.ndarray, source: int, tag: int = 0) -> None:
        data = self.recv(source, tag)
        out[...] = np.asarray(data).reshape(out.shape)

    # -- collectives ----------------------------------------------------------------
    def barrier(self) -> None:
        raise NotImplementedError

    def bcast(self, obj: Any, root: int = 0) -> Any:
        raise NotImplementedError

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        raise NotImplementedError

    def allgather(self, obj: Any) -> list[Any]:
        raise NotImplementedError

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        raise NotImplementedError

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        raise NotImplementedError

    def reduce(self, obj: Any, op: str = "sum", root: int = 0) -> Any | None:
        raise NotImplementedError

    def allreduce(self, obj: Any, op: str = "sum") -> Any:
        raise NotImplementedError

    def Allreduce(self, array: np.ndarray, op: str = "sum") -> np.ndarray:
        """Buffer allreduce: returns the reduced array."""
        out = self.allreduce(np.ascontiguousarray(array), op=op)
        return np.asarray(out)

    # -- control-plane coordination ----------------------------------------------
    #: Coordination rounds completed on this endpoint (see below).
    _coordination_epoch: int = 0

    @property
    def coordination_epoch(self) -> int:
        """Number of :meth:`coordinated_allreduce` rounds completed."""
        return self._coordination_epoch

    def coordinated_allreduce(
        self, array: np.ndarray, op: str = "sum"
    ) -> np.ndarray:
        """Epoch-checked buffer allreduce for control-plane rounds.

        Coordination rounds (cross-rank governor decisions) interleave
        with transport point-to-point traffic and application
        collectives.  A rank that enters round ``k`` while a peer is
        still on round ``k - 1`` must fail fast instead of silently
        folding vectors from different rounds — or, worse, parking in
        a blocking collective that deadlocks against a peer waiting on
        transport progress.  Every call therefore increments a
        per-endpoint epoch counter and ships it alongside the payload
        in a *single* exchange (nonblocking-friendly: one rendezvous,
        no extra barrier for the check); any disagreement raises a
        structured :class:`~repro.errors.MPIError` naming the epochs
        seen, which is the caller's signal that governor cadences have
        skewed across ranks.
        """
        self._coordination_epoch += 1
        epoch = self._coordination_epoch
        payload = np.ascontiguousarray(array)
        board = self.allgather((epoch, payload))
        epochs = [e for e, _v in board]
        if len(set(epochs)) > 1:
            raise MPIError(
                f"rank {self.rank}: coordination round skew — peers "
                f"disagree on the allreduce epoch ({sorted(set(epochs))})",
                details={
                    "rank": self.rank,
                    "epoch": epoch,
                    "epochs": epochs,
                },
            )
        fn = self._reducer(op)
        acc = np.array(board[0][1], copy=True)
        for _e, contribution in board[1:]:
            acc = fn(acc, np.asarray(contribution))
        return np.asarray(acc)

    def dup(self) -> "Communicator":
        """Duplicate the communicator (``MPI_Comm_dup``).

        The duplicate has its own collective context, so traffic on it
        cannot interleave with the parent's — which is exactly what an
        asynchronous in situ thread needs to reduce results while the
        simulation keeps using the parent communicator.
        """
        raise NotImplementedError

    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition into sub-communicators (``MPI_Comm_split``).

        Ranks passing the same ``color`` form one new communicator,
        ordered by ``(key, old rank)`` (``key`` defaults to the old
        rank).  Collective over the parent.  Used by the in transit
        layer to separate simulation ranks from analysis endpoints.
        """
        raise NotImplementedError

    # -- helpers ------------------------------------------------------------------
    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise RankMismatchError(
                f"root {root} out of range for communicator of size {self.size}"
            )

    @staticmethod
    def _reducer(op: str) -> Callable[[Any, Any], Any]:
        try:
            return _REDUCTIONS[op]
        except KeyError:
            raise MPIError(
                f"unknown reduction {op!r}; supported: {sorted(_REDUCTIONS)}"
            ) from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rank={self.rank}, size={self.size})"


class SelfCommunicator(Communicator):
    """MPI_COMM_SELF: a single-rank world with trivial semantics."""

    rank = 0
    size = 1

    def __init__(self, cost: CommCostModel | None = None):
        self.cost = cost if cost is not None else CommCostModel()

    def send(self, obj, dest, tag=0, charge=True):
        raise MPIError("cannot send on a size-1 communicator")

    def recv(self, source, tag=0, timeout=None, charge=True):
        raise MPIError("cannot recv on a size-1 communicator")

    def barrier(self):
        return None

    def bcast(self, obj, root=0):
        self._check_root(root)
        return obj

    def gather(self, obj, root=0):
        self._check_root(root)
        return [obj]

    def allgather(self, obj):
        return [obj]

    def scatter(self, objs, root=0):
        self._check_root(root)
        if objs is None or len(objs) != 1:
            raise RankMismatchError("scatter on size-1 needs exactly one item")
        return objs[0]

    def alltoall(self, objs):
        if len(objs) != 1:
            raise RankMismatchError("alltoall on size-1 needs exactly one item")
        return list(objs)

    def reduce(self, obj, op="sum", root=0):
        self._check_root(root)
        self._reducer(op)
        return obj

    def allreduce(self, obj, op="sum"):
        self._reducer(op)
        return obj

    def dup(self) -> "SelfCommunicator":
        return SelfCommunicator(self.cost)

    def split(self, color: int, key: int | None = None) -> "SelfCommunicator":
        return SelfCommunicator(self.cost)


class _World:
    """Shared state behind all rank endpoints of one SPMD region."""

    def __init__(self, size: int, cost: CommCostModel):
        self.size = size
        self.cost = cost
        self.barrier = threading.Barrier(size)
        # Mailboxes: (dest, source, tag) -> queue of payloads.
        self._boxes: dict[tuple[int, int, int], queue.Queue] = {}
        self._boxes_lock = threading.Lock()
        # Scratch board for collectives: rank -> contribution.
        self.scratch: list[Any] = [None] * size
        self.clock_marks: list[float] = [0.0] * size
        self.failed = threading.Event()

    def box(self, dest: int, source: int, tag: int) -> queue.Queue:
        key = (dest, source, tag)
        with self._boxes_lock:
            q = self._boxes.get(key)
            if q is None:
                q = queue.Queue()
                self._boxes[key] = q
            return q


class ThreadCommunicator(Communicator):
    """One rank's endpoint in a threaded SPMD world."""

    def __init__(self, world: _World, rank: int):
        self._world = world
        self.rank = rank
        self.size = world.size
        self.cost = world.cost

    # -- internal rendezvous -----------------------------------------------------
    def _rendezvous(self) -> None:
        """Wait on the world barrier, aborting if a peer failed."""
        if self._world.failed.is_set():
            raise MPIError("a peer rank failed; aborting collective")
        try:
            self._world.barrier.wait(timeout=60.0)
        except threading.BrokenBarrierError:
            raise MPIError(
                "collective barrier broken (peer failure or deadlock)"
            ) from None

    def _align_clocks(self, extra: float) -> None:
        """Align all ranks' simulated clocks to the latest arrival + extra."""
        clk = current_clock()
        self._world.clock_marks[self.rank] = clk.now
        self._rendezvous()
        latest = max(self._world.clock_marks)
        clk.wait_for(latest + extra)
        self._rendezvous()

    # -- point to point ------------------------------------------------------------
    def _check_peer(self, peer: int) -> None:
        if not 0 <= peer < self.size:
            raise RankMismatchError(
                f"peer {peer} out of range for communicator of size {self.size}"
            )
        if peer == self.rank:
            raise MPIError("self-messaging is not supported; use local data")

    def send(
        self, obj: Any, dest: int, tag: int = 0, charge: bool = True
    ) -> None:
        self._check_peer(dest)
        if charge:
            current_clock().advance(self.cost.message(_payload_bytes(obj)))
        self._world.box(dest, self.rank, tag).put((obj, current_clock().now))

    def recv(
        self,
        source: int,
        tag: int = 0,
        timeout: float | None = None,
        charge: bool = True,
    ) -> Any:
        self._check_peer(source)
        q = self._world.box(self.rank, source, tag)
        try:
            obj, sent_at = q.get(
                timeout=timeout if timeout is not None else DEFAULT_RECV_TIMEOUT
            )
        except queue.Empty:
            if timeout is not None:
                # The caller opted into polling; TimeoutError is the
                # contract it loops on.
                raise TimeoutError(
                    f"rank {self.rank}: no message from {source} (tag {tag})"
                ) from None
            # Blocking recv hit the wall-clock fallback: a peer died or
            # the exchange pattern deadlocked.  Structured, like every
            # other substrate failure (PR-1 convention).
            raise MPIError(
                f"rank {self.rank}: blocking recv from {source} (tag {tag}) "
                f"gave up after the {DEFAULT_RECV_TIMEOUT:.0f}s wall-clock "
                "fallback",
                details={
                    "rank": self.rank,
                    "source": source,
                    "tag": tag,
                    "timeout": DEFAULT_RECV_TIMEOUT,
                },
            ) from None
        clk = current_clock()
        if charge:
            # The message cannot be received before it was sent
            # (simulated time).
            clk.wait_for(sent_at)
            clk.advance(self.cost.message(_payload_bytes(obj)))
        return obj

    # -- collectives -----------------------------------------------------------------
    def barrier(self) -> None:
        self._align_clocks(self.cost.barrier_cost)

    def _exchange(self, contribution: Any, nbytes: int) -> list[Any]:
        """All ranks post a contribution; everyone sees the full board."""
        self._world.scratch[self.rank] = contribution
        self._align_clocks(self.cost.collective(nbytes, self.size))
        board = list(self._world.scratch)
        self._rendezvous()  # all copied the board; scratch reusable
        return board

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_root(root)
        board = self._exchange(
            obj if self.rank == root else None,
            _payload_bytes(obj) if self.rank == root else 0,
        )
        return board[root]

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check_root(root)
        board = self._exchange(obj, _payload_bytes(obj))
        return board if self.rank == root else None

    def allgather(self, obj: Any) -> list[Any]:
        return self._exchange(obj, _payload_bytes(obj))

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_root(root)
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                self._world.failed.set()
                self._world.barrier.abort()
                raise RankMismatchError(
                    f"scatter needs exactly {self.size} items at root"
                )
        board = self._exchange(
            list(objs) if self.rank == root else None,
            _payload_bytes(objs) if self.rank == root else 0,
        )
        return board[root][self.rank]

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            self._world.failed.set()
            self._world.barrier.abort()
            raise RankMismatchError(
                f"alltoall needs exactly {self.size} items, got {len(objs)}"
            )
        board = self._exchange(list(objs), _payload_bytes(objs))
        return [board[src][self.rank] for src in range(self.size)]

    def reduce(self, obj: Any, op: str = "sum", root: int = 0) -> Any | None:
        self._check_root(root)
        fn = self._reducer(op)
        board = self._exchange(obj, _payload_bytes(obj))
        if self.rank != root:
            return None
        return self._fold(board, fn)

    def allreduce(self, obj: Any, op: str = "sum") -> Any:
        fn = self._reducer(op)
        board = self._exchange(obj, _payload_bytes(obj))
        return self._fold(board, fn)

    def dup(self) -> "ThreadCommunicator":
        """Collective duplication: all ranks must call ``dup`` together."""
        child = _World(self.size, self.cost) if self.rank == 0 else None
        board = self._exchange(child, 0)
        return ThreadCommunicator(board[0], self.rank)

    def split(self, color: int, key: int | None = None) -> "ThreadCommunicator":
        """Collective partition (``MPI_Comm_split``); see the base class."""
        color = int(color)
        key = self.rank if key is None else int(key)
        board = self._exchange((color, key, self.rank), 8)
        members = sorted(
            (k, r) for c, k, r in board if c == color
        )
        ranks = [r for _k, r in members]
        new_rank = ranks.index(self.rank)
        # The lowest old rank of each color creates its group's world;
        # a second exchange distributes the worlds.
        leader = min(ranks)
        child = _World(len(ranks), self.cost) if self.rank == leader else None
        board2 = self._exchange(child, 0)
        if len(ranks) == 1:
            return SelfCommunicator(self.cost)  # type: ignore[return-value]
        return ThreadCommunicator(board2[leader], new_rank)

    @staticmethod
    def _fold(board: list[Any], fn: Callable[[Any, Any], Any]) -> Any:
        acc = board[0]
        if isinstance(acc, np.ndarray):
            acc = acc.copy()
        for item in board[1:]:
            acc = fn(acc, item)
        return acc


def run_spmd(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    cost: CommCostModel | None = None,
    start_time: float = 0.0,
) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``size`` rank threads; gather returns.

    Each rank gets a fresh simulated clock starting at ``start_time``.
    The first exception raised by any rank is re-raised in the caller
    (wrapped with the failing rank's id); surviving ranks are unblocked
    by aborting the world barrier.
    """
    if size < 1:
        raise MPIError(f"size must be >= 1: {size}")
    cost = cost if cost is not None else CommCostModel()
    if size == 1:
        comm = SelfCommunicator(cost)
        with use_clock(SimClock(start_time, name="rank0")):
            return [fn(comm, *args)]

    world = _World(size, cost)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    errors_lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = ThreadCommunicator(world, rank)
        with use_clock(SimClock(start_time, name=f"rank{rank}")):
            try:
                results[rank] = fn(comm, *args)
            except BaseException as exc:  # noqa: BLE001 - propagated below
                with errors_lock:
                    errors.append((rank, exc))
                world.failed.set()
                world.barrier.abort()

    threads = [
        # SPMD ranks are peers, not analysis tasks: each gets its own
        # clock via use_clock above, so AsyncRunner's single-lane
        # drain semantics do not apply here.
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}")  # lint: disable=HL005
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        # Peers of a failing rank die on the aborted barrier with a
        # secondary MPIError; report the original failure instead.
        errors.sort(key=lambda e: (isinstance(e[1], MPIError), e[0]))
        rank, exc = errors[0]
        raise MPIError(f"rank {rank} failed: {exc!r}") from exc
    return results
