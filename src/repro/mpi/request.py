"""Nonblocking communication requests."""

from __future__ import annotations

import threading
from typing import Any, Callable

__all__ = ["Request"]


class Request:
    """Handle for a nonblocking send or receive.

    ``wait`` blocks until the operation completes and returns the
    received object (receives) or ``None`` (sends).  ``test`` polls.
    """

    def __init__(self, resolve: Callable[[float | None], Any]):
        # ``resolve(timeout)`` performs/completes the operation; it must
        # raise queue.Empty-style TimeoutError when not ready in time.
        self._resolve = resolve
        self._done = False
        self._value: Any = None
        self._lock = threading.Lock()

    def wait(self, timeout: float | None = None) -> Any:
        """Block until complete; returns the payload (or None for sends)."""
        with self._lock:
            if not self._done:
                self._value = self._resolve(timeout)
                self._done = True
            return self._value

    def test(self) -> tuple[bool, Any]:
        """Nonblocking completion check: ``(done, payload_or_None)``."""
        with self._lock:
            if self._done:
                return True, self._value
            try:
                self._value = self._resolve(0.0)
            except TimeoutError:
                return False, None
            self._done = True
            return True, self._value

    @property
    def done(self) -> bool:
        with self._lock:
            return self._done

    @staticmethod
    def completed(value: Any = None) -> "Request":
        """An already-finished request (used by eager sends)."""
        r = Request(lambda timeout: value)
        r.wait()
        return r
