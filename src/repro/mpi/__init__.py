"""Simulated MPI.

The paper's evaluation runs 512 MPI ranks across 128 nodes; in this
reproduction ranks are Python threads inside one process, communicating
through an in-memory world.  The API follows mpi4py conventions:
lowercase methods (``send``/``recv``/``bcast``/``allreduce``/...) move
arbitrary Python objects; uppercase methods (``Send``/``Recv``/
``Allreduce``) move numpy buffers without pickling.

Every operation charges simulated communication time (a classical
alpha-beta cost model) to the calling rank's clock, and collectives
align participants' clocks the way real blocking collectives align
wall-clock time.  This is what lets the harness reason about paper-scale
timing while the numerics run at laptop scale.

Entry point: :func:`~repro.mpi.comm.run_spmd` launches an SPMD region::

    def main(comm):
        part = comm.allreduce(comm.rank, op="sum")
        return part

    results = run_spmd(4, main)
"""

from repro.mpi.comm import (
    Communicator,
    SelfCommunicator,
    ThreadCommunicator,
    CommCostModel,
    run_spmd,
)
from repro.mpi.partition import block_range, slab_bounds, owner_of
from repro.mpi.request import Request

__all__ = [
    "Communicator",
    "SelfCommunicator",
    "ThreadCommunicator",
    "CommCostModel",
    "run_spmd",
    "block_range",
    "slab_bounds",
    "owner_of",
    "Request",
]
