"""Cost-model parameter bundles for the virtual hardware.

The default values are calibrated from public spec sheets for the
machine used in the paper's evaluation (NERSC Perlmutter GPU nodes):

- GPU: NVIDIA A100-SXM4-40GB — 9.7 TFLOP/s FP64 (19.5 with FMA pairing,
  we use the conservative vector rate), 1555 GB/s HBM2e bandwidth,
  40 GB capacity, ~5 us kernel-launch latency.
- Host: AMD EPYC 7763 — 64 cores, ~39.2 GFLOP/s FP64 per core peak
  (we use a 20 GFLOP/s effective rate), 204.8 GB/s DRAM bandwidth.
- Host link: PCIe 4.0 x16 — 25 GB/s effective per direction.
- Device-device: NVLink3 pairs — 200 GB/s effective.

The *atomic_update_penalty* captures the observation from the paper's
Section 4.4 that data binning "is not an ideal algorithm for GPUs since
it requires the use of atomic memory updates to deal with races between
GPU threads accessing the same bin": atomic-heavy kernels run at a
fraction of streaming memory bandwidth.  The default is calibrated so
that GPU binning lands close to CPU binning throughput, matching the
paper's "negligible difference between the host only and same device
placements" finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.units import GiB, gbs, gflops, tflops, us

__all__ = [
    "DeviceSpec",
    "HostSpec",
    "LinkSpec",
    "NodeSpec",
    "PERLMUTTER_GPU_NODE",
    "perlmutter_node_spec",
    "small_node_spec",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Parameters describing one virtual accelerator.

    Attributes
    ----------
    name:
        Human-readable device model name.
    fp64_flops:
        Peak double-precision rate in FLOP/s.
    mem_bandwidth:
        Device memory bandwidth in bytes/s.
    mem_capacity:
        Device memory capacity in bytes.  Allocations beyond this raise
        :class:`repro.errors.DeviceOutOfMemoryError`.
    launch_latency:
        Fixed per-kernel launch cost in seconds.
    alloc_latency:
        Fixed cost of a synchronous device allocation in seconds
        (``cudaMalloc``-like).  Asynchronous (stream-ordered) allocations
        cost :attr:`alloc_async_latency`.
    alloc_async_latency:
        Cost of a stream-ordered allocation (``cudaMallocAsync``-like).
    atomic_update_penalty:
        Effective slowdown factor applied to the memory-bound portion of
        kernels dominated by atomic read-modify-write updates.
    compute_efficiency:
        Fraction of peak FLOP/s that well-written real kernels achieve;
        applied to the compute-bound portion of kernel durations.
    """

    name: str = "A100-SXM4-40GB"
    fp64_flops: float = tflops(9.7)
    mem_bandwidth: float = gbs(1555.0)
    mem_capacity: int = 40 * GiB
    launch_latency: float = us(5.0)
    alloc_latency: float = us(100.0)
    alloc_async_latency: float = us(10.0)
    atomic_update_penalty: float = 24.0
    compute_efficiency: float = 0.70


@dataclass(frozen=True)
class HostSpec:
    """Parameters describing the virtual host CPU.

    ``fp64_flops_per_core`` is an *effective* (not peak) per-core rate:
    numpy-style vectorized double-precision code on one EPYC core.
    """

    name: str = "EPYC-7763"
    cores: int = 64
    fp64_flops_per_core: float = gflops(20.0)
    mem_bandwidth: float = gbs(204.8)
    mem_capacity: int = 256 * GiB
    alloc_latency: float = us(1.0)
    dispatch_latency: float = us(1.0)

    @property
    def fp64_flops(self) -> float:
        """Aggregate FLOP/s across all cores."""
        return self.cores * self.fp64_flops_per_core


@dataclass(frozen=True)
class LinkSpec:
    """Data-movement rates between memory spaces on one node."""

    h2d_bandwidth: float = gbs(25.0)
    d2h_bandwidth: float = gbs(25.0)
    d2d_bandwidth: float = gbs(200.0)
    latency: float = us(10.0)
    pinned_speedup: float = 1.6  # page-locked host buffers transfer faster


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: a host CPU plus ``num_devices`` accelerators."""

    host: HostSpec = field(default_factory=HostSpec)
    device: DeviceSpec = field(default_factory=DeviceSpec)
    link: LinkSpec = field(default_factory=LinkSpec)
    num_devices: int = 4

    def with_devices(self, n: int) -> "NodeSpec":
        """Return a copy of this spec with ``n`` devices per node."""
        if n < 0:
            raise ValueError(f"num_devices must be >= 0, got {n}")
        return replace(self, num_devices=n)


#: The node architecture used in the paper's evaluation runs.
PERLMUTTER_GPU_NODE = NodeSpec()


def perlmutter_node_spec() -> NodeSpec:
    """Return a fresh Perlmutter-GPU-node spec (4x A100 + EPYC 7763)."""
    return NodeSpec()


def small_node_spec(num_devices: int = 4, mem_capacity: int = GiB) -> NodeSpec:
    """A small-capacity node spec for tests that exercise OOM paths."""
    dev = replace(DeviceSpec(), mem_capacity=int(mem_capacity))
    return NodeSpec(device=dev, num_devices=num_devices)
