"""Virtual compute devices.

A :class:`VirtualDevice` stands in for one accelerator (an A100 in the
paper's testbed); :class:`HostCPU` stands in for the node's CPU.  Both
expose:

- *duration formulas* — analytic estimates of how long a kernel, an
  allocation, or a free would take on the real part, driven by the specs
  in :mod:`repro.hw.spec`;
- *memory accounting* — simulated capacity tracking so that the
  out-of-memory behaviour of resource-hungry simulations (a central
  concern motivating zero-copy transfer in the paper) is reproducible;
- an execution :class:`~repro.hw.clock.Timeline` that orders the work
  scheduled on the part.

Kernel durations use the roofline form::

    t = launch_latency + max(flops / F, bytes / B) / efficiency

with the memory term dilated by ``atomic_update_penalty`` for the
atomic fraction of traffic — the effect that makes data binning a poor
fit for GPUs (Section 4.4 of the paper).
"""

from __future__ import annotations

import threading

from repro.errors import DeviceOutOfMemoryError
from repro.hw.clock import EventCategory, Timeline
from repro.hw.spec import DeviceSpec, HostSpec

__all__ = ["VirtualDevice", "HostCPU", "ComputeResource"]


class ComputeResource:
    """Shared behaviour of host and device compute resources."""

    def __init__(self, name: str, mem_capacity: int):
        self.name = str(name)
        self.timeline = Timeline(name)
        # Dedicated timeline for DMA traffic so copies can overlap compute,
        # as they do on real parts with copy engines.
        self.copy_timeline = Timeline(f"{name}.copy")
        self._mem_capacity = int(mem_capacity)
        self._mem_used = 0
        self._mem_lock = threading.Lock()
        self._peak_mem = 0

    # -- memory accounting -------------------------------------------------
    @property
    def mem_capacity(self) -> int:
        return self._mem_capacity

    @property
    def mem_used(self) -> int:
        with self._mem_lock:
            return self._mem_used

    @property
    def mem_available(self) -> int:
        with self._mem_lock:
            return self._mem_capacity - self._mem_used

    @property
    def peak_mem_used(self) -> int:
        with self._mem_lock:
            return self._peak_mem

    def claim_memory(self, nbytes: int) -> None:
        """Reserve ``nbytes`` of simulated memory or raise OOM."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        with self._mem_lock:
            if self._mem_used + nbytes > self._mem_capacity:
                raise DeviceOutOfMemoryError(
                    self.name, nbytes, self._mem_capacity - self._mem_used
                )
            self._mem_used += nbytes
            self._peak_mem = max(self._peak_mem, self._mem_used)

    def release_memory(self, nbytes: int) -> None:
        """Return ``nbytes`` to the simulated pool."""
        nbytes = int(nbytes)
        with self._mem_lock:
            self._mem_used = max(0, self._mem_used - nbytes)

    def reset(self) -> None:
        """Rewind timelines and memory accounting (test helper)."""
        self.timeline.reset()
        self.copy_timeline.reset()
        with self._mem_lock:
            self._mem_used = 0
            self._peak_mem = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class VirtualDevice(ComputeResource):
    """One simulated accelerator.

    Parameters
    ----------
    device_id:
        On-node ordinal of the device, matching what a runtime device
        query (``cudaGetDevice``-style) would report.
    spec:
        Cost-model parameters.
    node_id:
        Ordinal of the owning node, used only for naming/reporting.
    """

    is_host = False

    def __init__(self, device_id: int, spec: DeviceSpec | None = None, node_id: int = 0):
        self.device_id = int(device_id)
        self.node_id = int(node_id)
        self.spec = spec if spec is not None else DeviceSpec()
        super().__init__(f"node{node_id}.gpu{device_id}", self.spec.mem_capacity)

    # -- duration formulas -------------------------------------------------
    def kernel_time(
        self,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        atomic_fraction: float = 0.0,
    ) -> float:
        """Roofline duration of one kernel on this device.

        ``atomic_fraction`` is the fraction of the memory traffic made of
        atomic read-modify-write updates; it dilates the memory-bound
        term by the spec's atomic penalty.
        """
        if not 0.0 <= atomic_fraction <= 1.0:
            raise ValueError(f"atomic_fraction must be in [0,1]: {atomic_fraction}")
        s = self.spec
        t_compute = flops / s.fp64_flops
        streaming = bytes_moved * (1.0 - atomic_fraction)
        atomic = bytes_moved * atomic_fraction * s.atomic_update_penalty
        t_memory = (streaming + atomic) / s.mem_bandwidth
        return s.launch_latency + max(t_compute, t_memory) / s.compute_efficiency

    def alloc_time(self, nbytes: int, asynchronous: bool = False) -> float:
        """Duration of a device allocation of ``nbytes``."""
        base = (
            self.spec.alloc_async_latency if asynchronous else self.spec.alloc_latency
        )
        # Large synchronous allocations also pay a zero-fill style cost.
        return base + (0.0 if asynchronous else nbytes / self.spec.mem_bandwidth)

    def free_time(self, asynchronous: bool = False) -> float:
        """Duration of releasing a device allocation."""
        return self.spec.alloc_async_latency if asynchronous else self.spec.alloc_latency

    def memset_time(self, nbytes: int) -> float:
        """Duration of a device memset of ``nbytes``."""
        return self.spec.launch_latency + nbytes / self.spec.mem_bandwidth


class HostCPU(ComputeResource):
    """The node's simulated CPU.

    ``kernel_time`` accepts a core count so callers can model running an
    analysis on a subset of cores while the simulation holds the rest —
    the situation the paper's *host* placement creates.
    """

    is_host = True
    device_id = -1

    def __init__(self, spec: HostSpec | None = None, node_id: int = 0):
        self.node_id = int(node_id)
        self.spec = spec if spec is not None else HostSpec()
        super().__init__(f"node{node_id}.cpu", self.spec.mem_capacity)

    def kernel_time(
        self,
        flops: float = 0.0,
        bytes_moved: float = 0.0,
        atomic_fraction: float = 0.0,
        cores: int | None = None,
    ) -> float:
        """Roofline duration on ``cores`` CPU cores (all, by default).

        CPU threads do not pay a GPU-style atomic penalty: per-bin
        contention is far milder on tens of threads than on tens of
        thousands, so ``atomic_fraction`` is accepted for interface
        parity but applied with a factor of 1.
        """
        if not 0.0 <= atomic_fraction <= 1.0:
            raise ValueError(f"atomic_fraction must be in [0,1]: {atomic_fraction}")
        s = self.spec
        n = s.cores if cores is None else max(1, min(int(cores), s.cores))
        t_compute = flops / (n * s.fp64_flops_per_core)
        t_memory = bytes_moved / s.mem_bandwidth
        return s.dispatch_latency + max(t_compute, t_memory)

    def alloc_time(self, nbytes: int, asynchronous: bool = False) -> float:
        """Duration of a host allocation (cheap; first-touch ignored)."""
        return self.spec.alloc_latency

    def free_time(self, asynchronous: bool = False) -> float:
        return self.spec.alloc_latency

    def memset_time(self, nbytes: int) -> float:
        return self.spec.dispatch_latency + nbytes / self.spec.mem_bandwidth
