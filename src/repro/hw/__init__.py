"""Virtual hardware substrate.

This package simulates the heterogeneous node architecture the paper's
experiments ran on (NERSC Perlmutter GPU nodes: one AMD EPYC host CPU
plus four NVIDIA A100 accelerators per node).  Real accelerators are not
available in this environment, so devices are modelled as *virtual
devices*: numpy arrays tagged with a location stand in for device
allocations, and a calibrated analytic cost model attached to
discrete-event timelines stands in for execution time.

The substitution preserves the behaviour the paper studies — placement,
data movement, synchronous/asynchronous overlap, and contention — while
keeping all numerics real (kernels execute numpy code on the tagged
storage).

Public surface
--------------
- :class:`~repro.hw.spec.DeviceSpec`, :class:`~repro.hw.spec.HostSpec`,
  :class:`~repro.hw.spec.LinkSpec`, :class:`~repro.hw.spec.NodeSpec` —
  cost-model parameter bundles.
- :class:`~repro.hw.clock.SimClock`, :class:`~repro.hw.clock.Timeline`,
  :class:`~repro.hw.clock.TimedEvent` — discrete-event time.
- :class:`~repro.hw.device.VirtualDevice`, :class:`~repro.hw.device.HostCPU`.
- :class:`~repro.hw.node.VirtualNode` plus the module-level topology
  queries (:func:`~repro.hw.node.get_node`,
  :func:`~repro.hw.node.num_devices`, ...).
- :class:`~repro.hw.contention.ContentionModel`.
"""

from repro.hw.spec import (
    DeviceSpec,
    HostSpec,
    LinkSpec,
    NodeSpec,
    PERLMUTTER_GPU_NODE,
    perlmutter_node_spec,
)
from repro.hw.clock import SimClock, Timeline, TimedEvent, EventCategory
from repro.hw.device import VirtualDevice, HostCPU
from repro.hw.node import (
    VirtualNode,
    get_node,
    set_node,
    reset_node,
    num_devices,
    get_device,
    host_cpu,
)
from repro.hw.contention import ContentionModel, SharedResource

__all__ = [
    "DeviceSpec",
    "HostSpec",
    "LinkSpec",
    "NodeSpec",
    "PERLMUTTER_GPU_NODE",
    "perlmutter_node_spec",
    "SimClock",
    "Timeline",
    "TimedEvent",
    "EventCategory",
    "VirtualDevice",
    "HostCPU",
    "VirtualNode",
    "get_node",
    "set_node",
    "reset_node",
    "num_devices",
    "get_device",
    "host_cpu",
    "ContentionModel",
    "SharedResource",
]
