"""Shared-resource contention model.

The paper's key asynchronous-execution observation (Section 4.4) is
that running in situ analysis concurrently with the solver *slows the
solver down in every placement*, even though total run time still
improves.  That slowdown comes from contention on resources the two
sides share:

- *same device* placement: solver kernels and in situ kernels share one
  GPU's SMs and memory bandwidth;
- *host* placement: the in situ thread occupies CPU cores the MPI
  runtime and solver bookkeeping also use, and the device-to-host deep
  copy competes for the host link;
- *dedicated device* placements: the solver's rank thread still issues
  the deep copy over the shared host link/NVLink, and the analysis
  thread shares the host cores used to drive it.

We model contention multiplicatively: while two parties overlap on a
shared resource, both parties' event durations on that resource are
dilated by a factor.  The default factors below are calibrated so the
reproduction preserves the paper's orderings (async total < lockstep
total; async solver > lockstep solver; host ~= same-device).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping

__all__ = ["SharedResource", "ContentionModel"]


class SharedResource(enum.Enum):
    """Resources the simulation and in situ analysis can contend for."""

    GPU_COMPUTE = "gpu_compute"
    GPU_MEMORY = "gpu_memory"
    HOST_CORES = "host_cores"
    HOST_LINK = "host_link"
    HOST_MEMORY = "host_memory"


#: Default per-resource dilation when exactly two parties share it.
_DEFAULT_FACTORS: Mapping[SharedResource, float] = {
    SharedResource.GPU_COMPUTE: 1.30,
    SharedResource.GPU_MEMORY: 1.20,
    SharedResource.HOST_CORES: 1.10,
    SharedResource.HOST_LINK: 1.15,
    SharedResource.HOST_MEMORY: 1.05,
}


@dataclass(frozen=True)
class ContentionModel:
    """Multiplicative dilation of work durations under sharing.

    ``factors[r]`` is the dilation applied to a party's work on resource
    ``r`` while exactly one other party is active on it.  With ``k``
    other parties the dilation is ``1 + k * (factors[r] - 1)``: each
    additional sharer adds the same marginal interference.  This simple
    linear model is sufficient for the paper's two-party (solver +
    analysis) scenarios while remaining well defined for more.
    """

    factors: Mapping[SharedResource, float] = field(
        default_factory=lambda: dict(_DEFAULT_FACTORS)
    )

    def dilation(self, resource: SharedResource, other_parties: int = 1) -> float:
        """Dilation factor on ``resource`` with ``other_parties`` sharers."""
        if other_parties < 0:
            raise ValueError(f"other_parties must be >= 0: {other_parties}")
        if other_parties == 0:
            return 1.0
        f = float(self.factors.get(resource, 1.0))
        return 1.0 + other_parties * (f - 1.0)

    def combined(self, resources: Iterable[SharedResource], other_parties: int = 1) -> float:
        """Product of dilations over several simultaneously shared resources."""
        out = 1.0
        for r in resources:
            out *= self.dilation(r, other_parties)
        return out
