"""Virtual node topology and system queries.

A :class:`VirtualNode` bundles one :class:`~repro.hw.device.HostCPU`
and ``num_devices`` :class:`~repro.hw.device.VirtualDevice` instances,
plus the link cost model for data movement between them.

A process-global *current node* plays the role the local machine plays
for a real process: ``num_devices()`` is the equivalent of
``cudaGetDeviceCount`` / ``omp_get_num_devices`` and is what SENSEI's
automatic device selection (Eq. 1 in the paper) queries at run time.
Tests and the harness install their own nodes via :func:`set_node` /
:func:`use_node`.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

from repro.errors import LocationError
from repro.hw.device import HostCPU, VirtualDevice
from repro.hw.spec import NodeSpec

__all__ = [
    "VirtualNode",
    "get_node",
    "set_node",
    "reset_node",
    "use_node",
    "num_devices",
    "get_device",
    "host_cpu",
]


class VirtualNode:
    """One simulated compute node."""

    def __init__(self, spec: NodeSpec | None = None, node_id: int = 0):
        self.spec = spec if spec is not None else NodeSpec()
        self.node_id = int(node_id)
        self.host = HostCPU(self.spec.host, node_id=self.node_id)
        self.devices = [
            VirtualDevice(i, self.spec.device, node_id=self.node_id)
            for i in range(self.spec.num_devices)
        ]

    # -- lookup -------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    def device(self, device_id: int) -> VirtualDevice:
        """Return device ``device_id`` or raise :class:`LocationError`."""
        if not 0 <= device_id < len(self.devices):
            raise LocationError(
                f"node {self.node_id} has {len(self.devices)} devices; "
                f"device {device_id} does not exist"
            )
        return self.devices[device_id]

    def resource(self, device_id: int) -> VirtualDevice | HostCPU:
        """Return the compute resource for ``device_id`` (-1 = host)."""
        if device_id < 0:
            return self.host
        return self.device(device_id)

    # -- data movement cost --------------------------------------------------
    def transfer_time(
        self, nbytes: int, src_device: int, dst_device: int, pinned: bool = False
    ) -> float:
        """Duration of moving ``nbytes`` between two memory spaces.

        ``src_device``/``dst_device`` use -1 for host memory.  Same-space
        "transfers" cost zero: that is exactly the zero-copy case.
        """
        if src_device == dst_device:
            return 0.0
        link = self.spec.link
        if src_device < 0:  # host -> device
            bw = link.h2d_bandwidth
            if pinned:
                bw *= link.pinned_speedup
        elif dst_device < 0:  # device -> host
            bw = link.d2h_bandwidth
            if pinned:
                bw *= link.pinned_speedup
        else:  # device -> device
            bw = link.d2d_bandwidth
        return link.latency + int(nbytes) / bw

    def reset(self) -> None:
        """Rewind all timelines and memory accounting (test helper)."""
        self.host.reset()
        for d in self.devices:
            d.reset()

    def iter_resources(self) -> Iterator[VirtualDevice | HostCPU]:
        yield self.host
        yield from self.devices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualNode(id={self.node_id}, devices={self.num_devices})"


# -- process-global current node ---------------------------------------------

_lock = threading.Lock()
_current_node: VirtualNode | None = None


def get_node() -> VirtualNode:
    """Return the current node, creating a default one on first use."""
    global _current_node
    with _lock:
        if _current_node is None:
            _current_node = VirtualNode()
        return _current_node


def set_node(node: VirtualNode) -> VirtualNode:
    """Install ``node`` as the current node; returns the previous one."""
    global _current_node
    with _lock:
        prev, _current_node = _current_node, node
        return prev


def reset_node() -> None:
    """Discard the current node; the next query creates a fresh default."""
    global _current_node
    with _lock:
        _current_node = None


@contextlib.contextmanager
def use_node(node: VirtualNode):
    """Context manager installing ``node`` for the duration of a block."""
    prev = set_node(node)
    try:
        yield node
    finally:
        global _current_node
        with _lock:
            _current_node = prev


def num_devices() -> int:
    """Number of accelerators on the current node (``n_a`` in Eq. 1)."""
    return get_node().num_devices


def get_device(device_id: int) -> VirtualDevice:
    """Device ``device_id`` on the current node."""
    return get_node().device(device_id)


def host_cpu() -> HostCPU:
    """The current node's host CPU."""
    return get_node().host
