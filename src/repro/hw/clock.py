"""Discrete-event simulated time.

The simulator uses the classical *resource timeline* model:

- A :class:`SimClock` tracks the current simulated time of an execution
  context (one MPI rank's CPU thread, typically).
- A :class:`Timeline` represents one serially ordered resource (a
  device's execution queue, a stream, a DMA engine).  Scheduling an
  operation of duration ``d`` issued at time ``t`` completes at
  ``max(t, timeline.available_at) + d`` and pushes ``available_at``
  forward.
- Synchronous operations advance the issuing clock to the completion
  time; asynchronous operations leave the clock alone and let the caller
  join later via ``clock.wait_for(event.end)`` — this is exactly the
  semantics of stream-ordered device work.

Every scheduled operation is recorded as a :class:`TimedEvent` so that
harness code can reconstruct per-phase breakdowns (solver vs in situ vs
data movement), mirroring the instrumentation used for the paper's
Figures 2 and 3.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = ["EventCategory", "TimedEvent", "Timeline", "SimClock"]


class EventCategory(enum.Enum):
    """Coarse classification of simulated operations, for reporting."""

    COMPUTE = "compute"
    COPY = "copy"
    ALLOC = "alloc"
    FREE = "free"
    SYNC = "sync"
    COMM = "comm"
    IO = "io"
    OTHER = "other"


_event_ids = itertools.count()


@dataclass(frozen=True, order=True)
class TimedEvent:
    """One scheduled operation on a timeline.

    Ordering is by ``(start, end, seq)`` so sorted event lists read as a
    trace.
    """

    start: float
    end: float
    seq: int = field(compare=True)
    name: str = field(compare=False, default="")
    category: EventCategory = field(compare=False, default=EventCategory.OTHER)
    resource: str = field(compare=False, default="")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TimedEvent") -> bool:
        """True if the two half-open intervals ``[start, end)`` intersect."""
        return self.start < other.end and other.start < self.end


class Timeline:
    """A serially ordered simulated resource.

    Thread safe: async in situ execution genuinely uses Python threads,
    and both the simulation thread and the analysis thread may schedule
    onto the same device timeline.
    """

    def __init__(self, name: str):
        self.name = str(name)
        self._available_at = 0.0
        self._events: list[TimedEvent] = []
        self._lock = threading.Lock()

    @property
    def available_at(self) -> float:
        """Simulated time at which this resource next becomes free."""
        with self._lock:
            return self._available_at

    def schedule(
        self,
        issue_time: float,
        duration: float,
        name: str = "",
        category: EventCategory = EventCategory.OTHER,
    ) -> TimedEvent:
        """Append an operation; returns the recorded event.

        ``duration`` must be non-negative.  The operation starts when
        both the issuer (``issue_time``) and the resource are ready.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        with self._lock:
            start = max(float(issue_time), self._available_at)
            end = start + float(duration)
            ev = TimedEvent(
                start=start,
                end=end,
                seq=next(_event_ids),
                name=name,
                category=category,
                resource=self.name,
            )
            self._available_at = end
            self._events.append(ev)
            return ev

    def record(
        self,
        start: float,
        end: float,
        name: str = "",
        category: EventCategory = EventCategory.OTHER,
    ) -> TimedEvent:
        """Append an event *without* serializing against existing work.

        Used to mirror work scheduled on a stream onto the owning
        device's timeline for utilization reporting: streams on one
        device may overlap, so mirrored events must not queue behind
        each other.  ``available_at`` still advances to ``end`` so
        cross-resource dependencies observe the activity.
        """
        if end < start:
            raise ValueError(f"event ends before it starts: {start}..{end}")
        with self._lock:
            ev = TimedEvent(
                start=float(start),
                end=float(end),
                seq=next(_event_ids),
                name=name,
                category=category,
                resource=self.name,
            )
            self._events.append(ev)
            if end > self._available_at:
                self._available_at = float(end)
            return ev

    def delay_until(self, t: float) -> None:
        """Prevent the resource from starting new work before time ``t``.

        Used to express cross-resource dependencies (e.g. a kernel that
        must wait for a copy landing on another timeline).
        """
        with self._lock:
            if t > self._available_at:
                self._available_at = float(t)

    @property
    def events(self) -> list[TimedEvent]:
        with self._lock:
            return list(self._events)

    def events_in(self, t0: float, t1: float) -> list[TimedEvent]:
        """Events whose interval intersects ``[t0, t1)``."""
        with self._lock:
            return [e for e in self._events if e.start < t1 and t0 < e.end]

    def busy_time(self, category: EventCategory | None = None) -> float:
        """Total busy duration, optionally restricted to one category."""
        with self._lock:
            return sum(
                e.duration
                for e in self._events
                if category is None or e.category is category
            )

    def reset(self) -> None:
        """Clear history and rewind to t=0 (test helper)."""
        with self._lock:
            self._available_at = 0.0
            self._events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Timeline({self.name!r}, available_at={self.available_at:.6f}, "
            f"events={len(self._events)})"
        )


class SimClock:
    """Simulated time of one execution context.

    The clock only moves forward.  ``advance`` models local work;
    ``wait_for`` models blocking on an event completing elsewhere.
    """

    def __init__(self, start: float = 0.0, name: str = "clock"):
        self._now = float(start)
        self.name = str(name)
        self._lock = threading.Lock()

    @property
    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` seconds of local work; returns new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt: {dt}")
        with self._lock:
            self._now += float(dt)
            return self._now

    def wait_for(self, t: float) -> float:
        """Block (in simulated time) until at least time ``t``."""
        with self._lock:
            if t > self._now:
                self._now = float(t)
            return self._now

    def wait_event(self, event: TimedEvent) -> float:
        """Block until ``event`` has completed."""
        return self.wait_for(event.end)

    def reset(self, t: float = 0.0) -> None:
        with self._lock:
            self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock({self.name!r}, now={self.now:.6f})"


def merge_events(timelines: Iterable[Timeline]) -> Iterator[TimedEvent]:
    """Yield the union of all events across ``timelines`` in trace order."""
    all_events: list[TimedEvent] = []
    for tl in timelines:
        all_events.extend(tl.events)
    return iter(sorted(all_events))
