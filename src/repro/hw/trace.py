"""Deeper profiling: utilization analysis and trace export.

The paper's Section 5: "In future work we plan to do deeper profiling
to understand this better as well as more profiling to better
understand the opportunities for improving performance when assigning
one or two dedicated devices for in situ processing."

Every simulated operation is already recorded as a
:class:`~repro.hw.clock.TimedEvent` on its resource's timeline; this
module turns those records into the analyses that profiling work needs:

- per-resource **utilization** over a window (busy fraction, split by
  event category);
- **gap analysis** — the idle intervals on a resource, which is where
  placement/overlap opportunities hide;
- **concurrency profile** — how many resources are busy at once;
- export to the **Chrome trace-event format** (``chrome://tracing`` /
  Perfetto compatible), so a run of the reproduction can be inspected
  with the same tooling real profiles use.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.hw.clock import EventCategory, TimedEvent, Timeline

__all__ = [
    "ResourceUtilization",
    "utilization",
    "idle_gaps",
    "concurrency_profile",
    "instant_event",
    "trace_instants",
    "chrome_trace",
    "write_chrome_trace",
]


def instant_event(
    name: str,
    t: float,
    time_scale: float = 1e6,
    pid: int = 0,
    tid: int = 0,
    category: str = "control",
    args: Mapping | None = None,
) -> dict:
    """One Chrome-trace *instant* event (the vertical marker glyph).

    Instant events mark a point in time rather than a duration —
    governor decisions, faults, phase boundaries.  Pass the result in
    ``extra_events`` to :func:`chrome_trace`; scope ``"g"`` (global)
    draws the marker across the whole track so it is visible at any
    zoom.
    """
    return {
        "name": str(name),
        "cat": str(category),
        "ph": "i",
        "s": "g",
        "pid": pid,
        "tid": tid,
        "ts": float(t) * time_scale,
        "args": dict(args) if args else {},
    }


def trace_instants(
    records: Iterable[Mapping],
    time_scale: float = 1e6,
    pid: int = 0,
) -> list[dict]:
    """Canonical trace records as Chrome-trace instant events.

    Bridges the deterministic trace plane (:mod:`repro.trace`) into
    the profiling toolchain: each ``publish``/``fin``/``decision``/
    ``obs`` record from a recorded trace becomes an instant marker on
    a per-rank track (``tid`` = rank), placed at the record's
    simulated time where it carries one (``entry``) and at the track
    cursor's last known time otherwise.  Feed the result to
    :func:`chrome_trace` via ``extra_events`` to overlay a recorded
    run's control activity on the resource timelines.
    """
    out: list[dict] = []
    cursors: dict[int, float] = {}
    for record in records:
        kind = record.get("kind")
        if kind not in ("publish", "fin", "obs", "decision"):
            continue
        rank = int(record.get("rank", 0))
        t = record.get("entry")
        if t is None:
            t = cursors.get(rank, 0.0)
        else:
            cursors[rank] = float(t)
        if kind == "publish":
            name = f"publish step {record.get('step')}"
            args = {"meshes": sorted(record.get("meshes", ()))}
        elif kind == "fin":
            name = f"fin {record.get('pipeline')}"
            args = {}
        elif kind == "decision":
            name = f"{record.get('governor')}: {record.get('action')}"
            args = dict(record.get("args", {}))
        else:
            name = f"obs step {record.get('step')}"
            args = {
                "payload_bytes": record.get("payload_bytes", 0),
                "wire_bytes": record.get("wire_bytes", 0),
                "retries": record.get("retries", 0),
            }
        out.append(
            instant_event(
                name, float(t), time_scale=time_scale,
                pid=pid, tid=rank, category=f"trace.{kind}", args=args,
            )
        )
    return out


@dataclass(frozen=True)
class ResourceUtilization:
    """Busy-time summary of one resource over a window."""

    resource: str
    window: tuple[float, float]
    busy: float
    by_category: Mapping[str, float] = field(default_factory=dict)

    @property
    def span(self) -> float:
        return self.window[1] - self.window[0]

    @property
    def fraction(self) -> float:
        """Busy fraction of the window (0 if the window is empty)."""
        return self.busy / self.span if self.span > 0 else 0.0


def _clip(ev: TimedEvent, t0: float, t1: float) -> float:
    """Busy duration of ``ev`` inside ``[t0, t1)``."""
    return max(0.0, min(ev.end, t1) - max(ev.start, t0))


def utilization(
    timeline: Timeline, t0: float = 0.0, t1: float | None = None
) -> ResourceUtilization:
    """Utilization of one resource over ``[t0, t1)``.

    ``t1`` defaults to the resource's last activity.  Zero-duration
    bookkeeping events (synchronize markers) contribute nothing.
    """
    events = timeline.events
    if t1 is None:
        t1 = max((e.end for e in events), default=t0)
    busy = 0.0
    by_cat: dict[str, float] = {}
    for ev in events:
        d = _clip(ev, t0, t1)
        if d <= 0:
            continue
        busy += d
        by_cat[ev.category.value] = by_cat.get(ev.category.value, 0.0) + d
    return ResourceUtilization(
        resource=timeline.name, window=(t0, t1), busy=busy, by_category=by_cat
    )


def idle_gaps(
    timeline: Timeline, t0: float = 0.0, t1: float | None = None,
    min_gap: float = 0.0,
) -> list[tuple[float, float]]:
    """Idle intervals of a resource within ``[t0, t1)``.

    These are the windows an in situ placement could exploit — the
    "opportunities" the paper's future profiling work targets.
    """
    events = sorted(e for e in timeline.events if e.duration > 0)
    if t1 is None:
        t1 = max((e.end for e in events), default=t0)
    gaps: list[tuple[float, float]] = []
    cursor = t0
    for ev in events:
        if ev.start > cursor:
            lo, hi = cursor, min(ev.start, t1)
            if hi - lo > min_gap:
                gaps.append((lo, hi))
        cursor = max(cursor, ev.end)
        if cursor >= t1:
            break
    if cursor < t1 and t1 - cursor > min_gap:
        gaps.append((cursor, t1))
    return gaps


def concurrency_profile(
    timelines: Iterable[Timeline],
) -> list[tuple[float, int]]:
    """Step function of how many resources are busy over time.

    Returns ``(time, active_count)`` breakpoints sorted by time; each
    entry gives the count from that time until the next breakpoint.
    """
    deltas: list[tuple[float, int]] = []
    for tl in timelines:
        for ev in tl.events:
            if ev.duration <= 0:
                continue
            deltas.append((ev.start, +1))
            deltas.append((ev.end, -1))
    deltas.sort()
    profile: list[tuple[float, int]] = []
    active = 0
    for t, d in deltas:
        active += d
        if profile and profile[-1][0] == t:
            profile[-1] = (t, active)
        else:
            profile.append((t, active))
    return profile


def chrome_trace(
    timelines: Iterable[Timeline],
    time_scale: float = 1e6,
    extra_events: Iterable[Mapping] = (),
) -> list[dict]:
    """Events in the Chrome trace-event (JSON array) format.

    ``time_scale`` converts simulated seconds to trace microseconds.
    Each timeline becomes one "thread"; categories map to trace
    categories so Perfetto can color/filter them.  ``extra_events``
    are appended verbatim — the hook the transport plane uses to emit
    its counter events (retries, bytes, compression ratio) next to the
    timelines they explain.
    """
    out: list[dict] = []
    for tid, tl in enumerate(timelines):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": tl.name},
            }
        )
        for ev in tl.events:
            if ev.duration <= 0:
                continue
            out.append(
                {
                    "name": ev.name or ev.category.value,
                    "cat": ev.category.value,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": ev.start * time_scale,
                    "dur": ev.duration * time_scale,
                }
            )
    out.extend(dict(e) for e in extra_events)
    return out


def write_chrome_trace(
    path,
    timelines: Iterable[Timeline],
    extra_events: Iterable[Mapping] = (),
) -> None:
    """Write a ``chrome://tracing`` / Perfetto loadable JSON file."""
    with open(path, "w", encoding="ascii") as f:
        json.dump(chrome_trace(timelines, extra_events=extra_events), f)
