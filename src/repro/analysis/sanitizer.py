"""Opt-in runtime sanitizer for the heterogeneous substrate.

While active, a :class:`Sanitizer` instruments
:class:`~repro.hamr.buffer.Buffer` and
:class:`~repro.sensei.execution.AsyncRunner` (class-level wrappers,
restored on exit) to detect the hazards the substrate otherwise permits
mechanically:

- **cross-location reads** — dereferencing a buffer's raw storage from
  a thread that can access neither host memory nor the data's device
  ("the wrong side of the bus").  The engine modules that implement
  the sanctioned access path (view / copier / kernel launch) are
  exempt, mirroring rule HL001's allowlist;
- **use-after-free** — reading wrapped or owned storage after
  :meth:`Buffer.free` ran (and, for zero-copy wraps, its ``deleter``),
  or freeing storage an in-flight asynchronous analysis still reads;
- **write-while-analyzing races** — the simulation mutating a buffer
  (``fill`` or an explicit :func:`note_write`) that an in-flight
  :class:`AsyncRunner` task has read and not yet drained.  Detection
  uses per-buffer generation counters plus an access log keyed by the
  simulated clock.

``mode="raise"`` raises a structured
:class:`~repro.errors.SanitizerError` at the violating call;
``mode="record"`` keeps the program running and accumulates
:class:`Violation` reports.  Violations, lint findings, and the
``details`` dicts on :class:`~repro.errors.StreamError` /
:class:`~repro.errors.AllocationError` share one format (keys
``buffer``, ``device_id``, ``stream_mode``).

Usage::

    from repro.analysis.sanitizer import Sanitizer

    with Sanitizer(mode="record") as san:
        run_workload()
    print(san.format_report())
"""

from __future__ import annotations

import dataclasses
import sys
import threading
from typing import Callable

from repro.errors import SanitizerError
from repro.hamr.buffer import Buffer
from repro.hamr.runtime import current_clock, get_active_device
from repro.sensei.execution import AsyncRunner

__all__ = ["Sanitizer", "Violation", "AccessRecord", "note_write"]

#: Engine modules allowed to touch raw storage (the HL001 allowlist
#: plus the movement/launch engines that sit below the view layer).
_EXEMPT_SUFFIXES = (
    "repro/hamr/view.py",
    "repro/hamr/buffer.py",
    "repro/hamr/copier.py",
    "repro/pm/kernels.py",
    "repro/analysis/sanitizer.py",
)

#: Access-log bound; beyond it, records are dropped (counted).
_MAX_ACCESS_RECORDS = 50_000


@dataclasses.dataclass(frozen=True)
class AccessRecord:
    """One observed raw-storage access, keyed by the simulated clock."""

    op: str               # "read" | "write" | "free"
    buffer: str
    sim_time: float
    thread: str
    device_id: int
    generation: int
    in_async_task: bool

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One detected illegal access pattern."""

    kind: str             # "cross-location-read" | "use-after-free" | ...
    message: str
    sim_time: float
    details: tuple        # sorted (key, value) pairs, like Finding.details

    @property
    def details_dict(self) -> dict:
        return dict(self.details)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "sim_time": self.sim_time,
            "details": self.details_dict,
        }

    def __str__(self) -> str:
        return f"[{self.kind}] t={self.sim_time:.6g}s: {self.message}"


def _buffer_details(buf: Buffer) -> dict:
    return {
        "buffer": buf.name,
        "device_id": buf.device_id,
        "stream_mode": buf.stream_mode.value,
    }


class Sanitizer:
    """Instrument Buffer + AsyncRunner while active.  One at a time."""

    _active: "Sanitizer | None" = None
    _install_lock = threading.Lock()

    def __init__(self, mode: str = "raise"):
        if mode not in ("raise", "record"):
            raise ValueError(f"mode must be 'raise' or 'record', got {mode!r}")
        self.mode = mode
        self.violations: list[Violation] = []
        self.accesses: list[AccessRecord] = []
        self.dropped_accesses = 0
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._gen: dict[int, int] = {}           # id(buffer) -> generation
        self._task_reads: dict[int, tuple[Buffer, int]] = {}
        self._task_inflight = 0
        self._orig: dict[str, object] = {}

    # -- activation -----------------------------------------------------------
    def start(self) -> "Sanitizer":
        with Sanitizer._install_lock:
            if Sanitizer._active is not None:
                raise SanitizerError("a sanitizer is already active")
            Sanitizer._active = self
            self._orig = {
                # The property object itself, not storage access.
                "data": Buffer.data,  # lint: disable=HL001
                "fill": Buffer.fill,
                "free": Buffer.free,
                "launch": AsyncRunner.launch,
                "drain": AsyncRunner.drain,
            }
            self._install()
        return self

    def stop(self) -> None:
        with Sanitizer._install_lock:
            if Sanitizer._active is not self:
                return
            Buffer.data = self._orig["data"]  # lint: disable=HL001
            Buffer.fill = self._orig["fill"]          # type: ignore[assignment]
            Buffer.free = self._orig["free"]          # type: ignore[assignment]
            AsyncRunner.launch = self._orig["launch"]  # type: ignore[assignment]
            AsyncRunner.drain = self._orig["drain"]    # type: ignore[assignment]
            Sanitizer._active = None

    def __enter__(self) -> "Sanitizer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- instrumentation ------------------------------------------------------
    def _install(self) -> None:
        san = self
        orig_data = self._orig["data"].fget  # type: ignore[union-attr]
        orig_fill = self._orig["fill"]
        orig_free = self._orig["free"]
        orig_launch = self._orig["launch"]
        orig_drain = self._orig["drain"]

        def data_fget(buf: Buffer):
            caller = sys._getframe(1).f_code.co_filename.replace("\\", "/")
            san._on_read(buf, caller)
            return orig_data(buf)

        def fill(buf: Buffer, value, clock=None):
            san._on_write(buf, "write")
            return orig_fill(buf, value, clock)

        def free(buf: Buffer, clock=None):
            san._on_free(buf)
            return orig_free(buf, clock)

        def launch(runner: AsyncRunner, fn: Callable[[], None],
                   start_time: float | None = None) -> float:
            def instrumented():
                san._tls.in_task = True
                with san._lock:
                    san._task_inflight += 1
                try:
                    fn()
                finally:
                    with san._lock:
                        san._task_inflight -= 1
                    san._tls.in_task = False

            return orig_launch(runner, instrumented, start_time)

        def drain(runner: AsyncRunner) -> None:
            try:
                orig_drain(runner)
            finally:
                with san._lock:
                    san._task_reads.clear()

        Buffer.data = property(data_fget, doc=orig_data.__doc__)  # lint: disable=HL001
        Buffer.fill = fill                                        # type: ignore[assignment]
        Buffer.free = free                                        # type: ignore[assignment]
        AsyncRunner.launch = launch                               # type: ignore[assignment]
        AsyncRunner.drain = drain                                 # type: ignore[assignment]

    # -- event handling -------------------------------------------------------
    def _in_task(self) -> bool:
        return bool(getattr(self._tls, "in_task", False))

    def _record(self, op: str, buf: Buffer, in_task: bool) -> None:
        # caller holds self._lock
        if len(self.accesses) >= _MAX_ACCESS_RECORDS:
            self.dropped_accesses += 1
            return
        self.accesses.append(
            AccessRecord(
                op=op,
                buffer=buf.name,
                sim_time=current_clock().now,
                thread=threading.current_thread().name,
                device_id=buf.device_id,
                generation=self._gen.get(id(buf), 0),
                in_async_task=in_task,
            )
        )

    def _violation(self, kind: str, message: str, details: dict) -> None:
        v = Violation(
            kind=kind,
            message=message,
            sim_time=current_clock().now,
            details=tuple(sorted(details.items())),
        )
        with self._lock:
            self.violations.append(v)
        if self.mode == "raise":
            raise SanitizerError(message, details={**details, "kind": kind})

    def _on_read(self, buf: Buffer, caller_file: str) -> None:
        in_task = self._in_task()
        if buf.freed:
            self._violation(
                "use-after-free",
                f"read of freed buffer {buf.name!r}",
                _buffer_details(buf),
            )
            return  # record mode: fall through to the original error
        with self._lock:
            self._record("read", buf, in_task)
            if in_task and self._task_inflight > 0:
                self._task_reads[id(buf)] = (buf, self._gen.get(id(buf), 0))
        if caller_file.endswith(_EXEMPT_SUFFIXES):
            return
        active = get_active_device()
        if not (buf.host_accessible() or buf.device_accessible(active)):
            self._violation(
                "cross-location-read",
                f"buffer {buf.name!r} lives on device {buf.device_id} but "
                f"was dereferenced from a thread on device {active}",
                {**_buffer_details(buf), "active_device": active},
            )

    def _on_write(self, buf: Buffer, op: str) -> None:
        in_task = self._in_task()
        with self._lock:
            self._gen[id(buf)] = self._gen.get(id(buf), 0) + 1
            self._record(op, buf, in_task)
            racing = (
                not in_task
                and self._task_inflight > 0
                and id(buf) in self._task_reads
            )
        if racing:
            self._violation(
                "write-while-analyzing",
                f"buffer {buf.name!r} written while an asynchronous "
                "analysis that read it is still in flight (drain first)",
                {**_buffer_details(buf),
                 "generation": self._gen.get(id(buf), 0)},
            )

    def _on_free(self, buf: Buffer) -> None:
        in_task = self._in_task()
        with self._lock:
            self._record("free", buf, in_task)
            racing = (
                not in_task
                and self._task_inflight > 0
                and id(buf) in self._task_reads
            )
        if racing:
            self._violation(
                "use-after-free",
                f"buffer {buf.name!r} freed while an asynchronous "
                "analysis that read it is still in flight",
                _buffer_details(buf),
            )

    # -- reporting ------------------------------------------------------------
    def report(self) -> dict:
        """JSON-ready report (shared format with lint findings)."""
        with self._lock:
            return {
                "violations": [v.to_dict() for v in self.violations],
                "accesses": len(self.accesses),
                "dropped_accesses": self.dropped_accesses,
            }

    def format_report(self) -> str:
        with self._lock:
            violations = list(self.violations)
            n_access = len(self.accesses)
        lines = [
            f"sanitizer: {n_access} raw-storage access(es) observed, "
            f"{len(violations)} violation(s)"
        ]
        for v in violations:
            lines.append(f"  {v}")
            for k, val in v.details:
                lines.append(f"      {k}: {val}")
        return "\n".join(lines)


def note_write(buffer: Buffer) -> None:
    """Report a raw in-place mutation to the active sanitizer (if any).

    Instrumentation hook for code that writes through a numpy view the
    property wrapper cannot see (e.g. ``buf.data[:] = x`` mutates via
    the *returned* array; only the read is observable).
    """
    san = Sanitizer._active
    if san is not None:
        san._on_write(buffer, "write")
