"""Interprocedural data-flow summaries over the project index.

This is the second layer under the cross-function rules: a small
abstract-interpretation framework that propagates symbolic facts —
stream handles and their sync state, resolved-vs-literal device
placements, pool-handle ownership, decision-path membership — along
the call edges of :class:`~repro.analysis.project.ProjectIndex`.

Design constraints (deterministic, fast, no false-positive bias):

- **Bounded call depth.** Summaries recurse through callees at most
  :data:`MAX_CALL_DEPTH` levels deep.
- **Explicit widening.** On recursion cycles or at the depth bound an
  analysis returns its class-level *widened* summary — an explicit
  ⊤ that rules must treat as "assume safe", so imprecision can only
  silence a finding, never invent one.  Unresolvable callees are the
  opposite of widened: they contribute nothing at all (neither hazard
  nor discharge), which preserves the single-file rules' behavior.
- **Deterministic memoization.** Each function's summary is computed
  once, at the depth of its first demand; the engine's fixed traversal
  order (sorted files, fixed rule order) makes the cache contents —
  and therefore the findings — bit-identical across runs.

Rules access everything through one :class:`ProjectContext`, which the
engine builds per run and hands to rules that set ``uses_project``.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Mapping, Sequence

from repro.analysis.engine import FileContext
from repro.analysis.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    ResolvedCall,
)

__all__ = [
    "MAX_CALL_DEPTH",
    "Scope",
    "Analysis",
    "StreamSummary",
    "StreamFacts",
    "StreamAnalysis",
    "ChargeSummary",
    "ChargeFacts",
    "ChargeAnalysis",
    "PoolSummary",
    "PoolFacts",
    "PoolAnalysis",
    "DecisionPaths",
    "ProjectContext",
]

#: How deep summary computation follows call edges before widening.
MAX_CALL_DEPTH = 4

#: Methods that discharge a stream's completion obligation.
SYNC_METHODS = ("synchronize", "drain", "wait_event")

#: Calls whose assigned result counts as a resolved device placement.
RESOLVER_NAMES = ("resolve", "resolve_device", "select_device")

#: Decision types whose construction anchors the determinism lint.
#: Trace events join governor decisions here: everything that feeds a
#: recorded trace must be reproducible, so the recorder/replayer code
#: paths fall under the same nondeterminism rule (HL010).
DECISION_TYPES = (
    "repro.control.governors.Decision",
    "repro.trace.format.TraceEvent",
)


def _tail_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _keywords(call: ast.Call) -> dict[str, ast.expr]:
    return {kw.arg: kw.value for kw in call.keywords if kw.arg is not None}


@dataclasses.dataclass(frozen=True)
class Scope:
    """Resolution context for one function body."""

    index: ProjectIndex
    module: ModuleInfo | None
    owner: ClassInfo | None
    local_types: Mapping[str, ClassInfo]

    def resolve(self, call: ast.Call) -> ResolvedCall | None:
        if self.module is None:
            return None
        return self.index.resolve_call(
            self.module, call, self.local_types, self.owner
        )

    def map_args(
        self, call: ast.Call, resolved: ResolvedCall
    ) -> list[tuple[str, ast.expr]]:
        return self.index.map_args(call, resolved)

    def canonical(self, node: ast.AST) -> str | None:
        if self.module is None:
            return None
        return self.index.canonical_name(self.module, node, self.local_types)


_EMPTY_SCOPE = Scope(index=None, module=None, owner=None, local_types={})  # type: ignore[arg-type]


def empty_scope() -> Scope:
    """A scope that resolves nothing: pure intra-procedural analysis."""
    return _EMPTY_SCOPE


class Analysis:
    """Base for memoized, cycle-widened per-function summaries."""

    #: The explicit ⊤ returned on cycles or past the depth bound.
    widened: object = None

    def __init__(self, index: ProjectIndex):
        self.index = index
        self._memo: dict[str, object] = {}
        self._active: set[str] = set()

    def scope_for(self, fi: FunctionInfo) -> Scope:
        mod = self.index.modules.get(fi.module)
        if mod is None:
            return empty_scope()
        owner = mod.classes.get(fi.owner) if fi.owner else None
        return Scope(self.index, mod, owner, self.index.local_class_types(fi))

    def summary(self, fi: FunctionInfo, depth: int = 0):
        cached = self._memo.get(fi.key)
        if cached is not None:
            return cached
        if depth >= MAX_CALL_DEPTH or fi.key in self._active:
            return self.widened
        self._active.add(fi.key)
        try:
            result = self._compute(fi, depth)
        finally:
            self._active.discard(fi.key)
        self._memo[fi.key] = result
        return result

    def summary_of_call(self, scope: Scope, call: ast.Call, depth: int):
        """(resolved, summary) for a call, or (None, None)."""
        resolved = scope.resolve(call)
        if resolved is None:
            return None, None
        return resolved, self.summary(resolved.func, depth + 1)

    def _compute(self, fi: FunctionInfo, depth: int):
        raise NotImplementedError


# -- streams (HL003) ----------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class StreamSummary:
    """How one function treats stream handles it is given or creates."""

    syncs: frozenset = frozenset()           # param names it synchronizes
    async_unsynced: frozenset = frozenset()  # params used async, never synced
    returns_fresh: bool = False              # returns a stream it created
    syncs_all: bool = False                  # widened: assume discharged


@dataclasses.dataclass
class StreamFacts:
    """Flow-insensitive stream facts for one function body."""

    created: dict = dataclasses.field(default_factory=dict)  # name -> node
    async_used: set = dataclasses.field(default_factory=set)
    synced: set = dataclasses.field(default_factory=set)
    any_sync: bool = False
    returned: set = dataclasses.field(default_factory=set)
    escaped: set = dataclasses.field(default_factory=set)  # returned or stored
    returns_fresh: bool = False


def collect_stream_facts(
    fn: ast.AST,
    scope: Scope,
    analysis: "StreamAnalysis | None" = None,
    depth: int = 0,
) -> StreamFacts:
    """Gather stream facts; with ``analysis`` the effects of resolved
    callees (sync-on-behalf, async-use-on-behalf, fresh-stream return)
    are folded in."""
    facts = StreamFacts()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            fresh = _tail_name(call.func) == "Stream"
            if not fresh and analysis is not None:
                _, cs = analysis.summary_of_call(scope, call, depth)
                fresh = cs is not None and cs.returns_fresh
            if fresh:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        facts.created[tgt.id] = call
        if isinstance(node, ast.Call):
            fname = _tail_name(node.func)
            if fname in SYNC_METHODS:
                facts.any_sync = True
                if isinstance(node.func, ast.Attribute) and isinstance(
                    node.func.value, ast.Name
                ):
                    facts.synced.add(node.func.value.id)
            kws = _keywords(node)
            stream_kw = kws.get("stream")
            mode_kw = kws.get("mode") or kws.get("stream_mode")
            if (
                isinstance(stream_kw, ast.Name)
                and _tail_name(mode_kw) == "ASYNC"
            ):
                facts.async_used.add(stream_kw.id)
            if analysis is not None:
                resolved, cs = analysis.summary_of_call(scope, node, depth)
                if cs is not None:
                    for param, arg in scope.map_args(node, resolved):
                        if not isinstance(arg, ast.Name):
                            continue
                        if cs.syncs_all or param in cs.syncs:
                            facts.synced.add(arg.id)
                        elif param in cs.async_unsynced:
                            facts.async_used.add(arg.id)
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Call) and analysis is not None:
                _, cs = analysis.summary_of_call(scope, node.value, depth)
                if cs is not None and cs.returns_fresh:
                    facts.returns_fresh = True
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name):
                    facts.returned.add(sub.id)
                    facts.escaped.add(sub.id)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
            for tgt in node.targets:
                if isinstance(tgt, ast.Attribute):
                    facts.escaped.add(node.value.id)
    if facts.returned & set(facts.created):
        facts.returns_fresh = True
    return facts


class StreamAnalysis(Analysis):
    widened = StreamSummary(syncs_all=True)

    def facts(self, fn: ast.AST, scope: Scope) -> StreamFacts:
        return collect_stream_facts(fn, scope, self, depth=0)

    def _compute(self, fi: FunctionInfo, depth: int) -> StreamSummary:
        scope = self.scope_for(fi)
        facts = collect_stream_facts(fi.node, scope, self, depth)
        params = set(fi.params)
        syncs = frozenset(facts.synced & params)
        if facts.any_sync:
            async_unsynced: frozenset = frozenset()
        else:
            async_unsynced = frozenset(
                (facts.async_used & params) - facts.synced
            )
        return StreamSummary(
            syncs=syncs,
            async_unsynced=async_unsynced,
            returns_fresh=facts.returns_fresh,
        )


# -- device charges (HL008) ---------------------------------------------------

@dataclasses.dataclass(frozen=True)
class ChargeSummary:
    """How one function routes device ordinals into charged work."""

    charging: frozenset = frozenset()  # params reaching a device_id= kwarg
    resolves: bool = False             # binds a resolved placement


def literal_device_id(node: ast.AST) -> int | None:
    """Literal device ordinals: ints, ``-1``, or ``HOST_DEVICE_ID``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return int(node.value)
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -int(node.operand.value)
    if _tail_name(node) == "HOST_DEVICE_ID":
        return -1
    return None


@dataclasses.dataclass
class ChargeFacts:
    """Charge-flow facts for one function body."""

    resolved_names: set = dataclasses.field(default_factory=set)
    resolves: bool = False  # locally or via a resolved callee
    #: (call, device) for calls with a literal device_id= kwarg
    literal_kw: list = dataclasses.field(default_factory=list)
    #: (call, device, callee display name, callee resolves) for literal
    #: ordinals handed to a callee parameter that charges them
    literal_via_helper: list = dataclasses.field(default_factory=list)
    charging_params: set = dataclasses.field(default_factory=set)


def collect_charge_facts(
    fn: ast.AST,
    scope: Scope,
    params: Sequence[str] = (),
    analysis: "ChargeAnalysis | None" = None,
    depth: int = 0,
) -> ChargeFacts:
    facts = ChargeFacts()
    params = set(params)
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _tail_name(node.value.func) in RESOLVER_NAMES:
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        facts.resolved_names.add(tgt.id)
        if not isinstance(node, ast.Call):
            continue
        if _tail_name(node.func) in RESOLVER_NAMES:
            continue  # the resolving call itself never "charges"
        kws = _keywords(node)
        dev_kw = kws.get("device_id")
        if dev_kw is not None:
            dev = literal_device_id(dev_kw)
            if dev is not None:
                facts.literal_kw.append((node, dev))
            elif isinstance(dev_kw, ast.Name) and dev_kw.id in params:
                facts.charging_params.add(dev_kw.id)
        if analysis is not None:
            resolved, cs = analysis.summary_of_call(scope, node, depth)
            if cs is None:
                continue
            if cs.resolves:
                facts.resolves = True
            for param, arg in scope.map_args(node, resolved):
                if param not in cs.charging:
                    continue
                dev = literal_device_id(arg)
                if dev is not None:
                    facts.literal_via_helper.append(
                        (node, dev, resolved.func.qualname, cs.resolves)
                    )
                elif isinstance(arg, ast.Name) and arg.id in params:
                    facts.charging_params.add(arg.id)
    facts.resolves = facts.resolves or bool(facts.resolved_names)
    return facts


class ChargeAnalysis(Analysis):
    widened = ChargeSummary()

    def facts(self, fn: ast.AST, scope: Scope) -> ChargeFacts:
        return collect_charge_facts(fn, scope, (), self, depth=0)

    def _compute(self, fi: FunctionInfo, depth: int) -> ChargeSummary:
        scope = self.scope_for(fi)
        facts = collect_charge_facts(fi.node, scope, fi.params, self, depth)
        return ChargeSummary(
            charging=frozenset(facts.charging_params),
            resolves=facts.resolves,
        )


# -- pool handles (HL009) -----------------------------------------------------

@dataclasses.dataclass(frozen=True)
class PoolSummary:
    """How one function treats pool handles it is given or creates."""

    releases: frozenset = frozenset()   # param names it releases/trims
    returns_unreleased: bool = False    # returns an acquired, unreleased pool
    releases_all: bool = False          # widened: assume discharged


@dataclasses.dataclass
class PoolFacts:
    """Pool-ownership facts for one function body."""

    local_pools: dict = dataclasses.field(default_factory=dict)   # name -> node
    #: name -> (binding call, origin display name) for pools handed
    #: back by a callee that acquired and never released
    callee_pools: dict = dataclasses.field(default_factory=dict)
    acquired: set = dataclasses.field(default_factory=set)
    released: set = dataclasses.field(default_factory=set)
    any_release: bool = False
    returned: set = dataclasses.field(default_factory=set)
    attr_stored: set = dataclasses.field(default_factory=set)
    #: name -> list of (call, resolved|None, mapped param or None)
    passes: dict = dataclasses.field(default_factory=dict)
    #: (call, origin display name) for discarded unreleased-pool results
    discarded: list = dataclasses.field(default_factory=list)
    returns_unreleased_inline: bool = False


def collect_pool_facts(
    fn: ast.AST,
    scope: Scope,
    analysis: "PoolAnalysis | None" = None,
    depth: int = 0,
) -> PoolFacts:
    facts = PoolFacts()

    def callee_pool_origin(call: ast.Call) -> str | None:
        if analysis is None:
            return None
        resolved, ps = analysis.summary_of_call(scope, call, depth)
        if ps is not None and ps.returns_unreleased:
            return resolved.func.qualname
        return None

    returned_calls: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Call):
                returned_calls.add(id(node.value))
                if callee_pool_origin(node.value) is not None:
                    facts.returns_unreleased_inline = True
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name):
                    facts.returned.add(sub.id)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
            for tgt in node.targets:
                if isinstance(tgt, ast.Attribute):
                    facts.attr_stored.add(node.value.id)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            call = node.value
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if _tail_name(call.func) == "pool_for":
                for name in names:
                    facts.local_pools[name] = call
            else:
                origin = callee_pool_origin(call)
                if origin is not None:
                    for name in names:
                        facts.callee_pools[name] = (call, origin)
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            origin = callee_pool_origin(node.value)
            if origin is not None:
                facts.discarded.append((node.value, origin))
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            recv = node.func.value
            recv_name = recv.id if isinstance(recv, ast.Name) else None
            if attr == "acquire":
                if recv_name is not None:
                    facts.acquired.add(recv_name)
            elif attr in ("release", "trim"):
                facts.any_release = True
                if recv_name is not None:
                    facts.released.add(recv_name)
        if id(node) in returned_calls:
            continue
        resolved = scope.resolve(node) if analysis is not None else None
        mapped = (
            dict(scope.map_args(node, resolved)) if resolved is not None else {}
        )
        arg_names = {a.id for a in node.args if isinstance(a, ast.Name)}
        arg_names |= {
            kw.value.id
            for kw in node.keywords
            if isinstance(kw.value, ast.Name)
        }
        for name in arg_names:
            param = next(
                (p for p, a in mapped.items()
                 if isinstance(a, ast.Name) and a.id == name),
                None,
            )
            facts.passes.setdefault(name, []).append((node, resolved, param))
    return facts


class PoolAnalysis(Analysis):
    widened = PoolSummary(releases_all=True)

    def facts(self, fn: ast.AST, scope: Scope) -> PoolFacts:
        return collect_pool_facts(fn, scope, self, depth=0)

    def param_released_by(
        self, resolved: ResolvedCall | None, param: str | None, depth: int = 0
    ) -> bool:
        """True when passing a pool as ``param`` discharges it."""
        if resolved is None:
            return True  # unresolvable callee: give it the benefit
        ps = self.summary(resolved.func, depth + 1)
        if ps.releases_all:
            return True
        return param is not None and param in ps.releases

    def _compute(self, fi: FunctionInfo, depth: int) -> PoolSummary:
        scope = self.scope_for(fi)
        facts = collect_pool_facts(fi.node, scope, self, depth)
        params = set(fi.params)
        releases = set(facts.released & params)
        for name, passes in facts.passes.items():
            if name not in params:
                continue
            for _call, resolved, param in passes:
                if resolved is not None:
                    ps = self.summary(resolved.func, depth + 1)
                    if ps.releases_all or (param and param in ps.releases):
                        releases.add(name)
        owned = set(facts.callee_pools) | {
            n for n in facts.local_pools if n in facts.acquired
        }
        leaked_return = bool(
            (facts.returned & owned) - facts.released - releases
        )
        return PoolSummary(
            releases=frozenset(releases),
            returns_unreleased=leaked_return or facts.returns_unreleased_inline,
        )


# -- decision paths (HL010) ---------------------------------------------------

class DecisionPaths:
    """Which functions can feed a governor :class:`Decision`.

    The *path set* is: every function that constructs a Decision, every
    direct caller of one (the ``decide()`` implementations feeding its
    arguments), and — bounded by ``depth`` — the transitive callees of
    those, whose return values flow upward into the decision.  The
    expansion is a deterministic BFS over the sorted call graph.
    """

    def __init__(self, index: ProjectIndex, depth: int = 3,
                 decision_types: Sequence[str] = DECISION_TYPES):
        self.index = index
        self.depth = depth
        self.decision_types = tuple(decision_types)
        self._members: dict[str, str] | None = None

    def _build(self) -> dict[str, str]:
        makers: list[str] = []
        for fi in self.index.iter_functions():
            mod = self.index.modules.get(fi.module)
            if mod is None:
                continue
            owner = mod.classes.get(fi.owner) if fi.owner else None
            local = self.index.local_class_types(fi)
            for node in ast.walk(fi.node):
                if not isinstance(node, ast.Call):
                    continue
                canon = self.index.canonical_name(mod, node.func, local)
                if canon in self.decision_types:
                    makers.append(fi.key)
                    break
        seeds: dict[str, str] = {}
        for key in makers:
            seeds.setdefault(key, key)
        for key in list(makers):
            for caller in self.index.callers_of(key):
                seeds.setdefault(caller, caller)
        members = dict(seeds)
        edges = self.index.call_edges()
        frontier = sorted(seeds)
        for _hop in range(self.depth):
            nxt: list[str] = []
            for key in frontier:
                for callee in edges.get(key, ()):
                    if callee not in members:
                        members[callee] = members[key]
                        nxt.append(callee)
            frontier = sorted(nxt)
            if not frontier:
                break
        return members

    def anchor(self, fi: FunctionInfo) -> str | None:
        """The seed function through which ``fi`` reaches a Decision,
        or None when ``fi`` is not on any decision path."""
        if self._members is None:
            self._members = self._build()
        return self._members.get(fi.key)


# -- the bundle handed to rules ----------------------------------------------

class ProjectContext:
    """Shared interprocedural state for one lint run."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.streams = StreamAnalysis(index)
        self.charges = ChargeAnalysis(index)
        self.pools = PoolAnalysis(index)
        self.decisions = DecisionPaths(index)

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "ProjectContext":
        return cls(ProjectIndex.build(contexts))

    def scope(self, ctx: FileContext, fn: ast.AST) -> Scope:
        """Resolution scope for a function node in a linted file."""
        mod = self.index.module_for(ctx)
        if mod is None:
            return empty_scope()
        fi = self.index.function_at(fn)
        if fi is None:
            return Scope(self.index, mod, None, {})
        owner = mod.classes.get(fi.owner) if fi.owner else None
        return Scope(self.index, mod, owner, self.index.local_class_types(fi))

    def iter_file_functions(
        self, ctx: FileContext
    ) -> Iterator[tuple[ast.AST, FunctionInfo | None]]:
        """Every function node in the file, with its index entry."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, self.index.function_at(node)
