"""Project-wide module index and call graph for interprocedural rules.

This is the first of the two layers the interprocedural rules stand
on.  Given the :class:`~repro.analysis.engine.FileContext`\\ s of every
linted file, :class:`ProjectIndex` derives a dotted module name for
each file (by walking ``__init__.py`` chains, so ``src/repro/hamr/
pool.py`` indexes as ``repro.hamr.pool``), records every module-level
function, class, and method, and resolves *calls* back to their
definitions across files:

- ``from repro.x import f`` / ``import repro.x as m`` aliases
  (including relative imports),
- ``self.method()`` / ``cls.method()`` inside a known class, walking
  in-project base classes,
- ``obj.method()`` where ``obj`` was locally bound from a known class
  constructor or annotated with a known class,
- dotted module access ``repro.x.f(...)``.

Resolution is best-effort and *sound for the rules built on it*: an
unresolvable call returns ``None`` and the data-flow layer treats the
callee as a no-op (no false positives from guessing).

Everything is deterministic: modules index in sorted-path order, name
collisions keep the first claimant, and the lazily built call-graph
edges are sorted.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from repro.analysis.engine import FileContext

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ResolvedCall",
    "ProjectIndex",
    "module_name_for",
    "dotted_name",
]


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, via its ``__init__.py`` chain.

    A file outside any package indexes under its bare stem.
    """
    path = Path(path)
    parts = [] if path.stem == "__init__" else [path.stem]
    d = path.parent
    while d.name and (d / "__init__.py").exists():
        parts.insert(0, d.name)
        d = d.parent
    return ".".join(parts) if parts else path.stem


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclasses.dataclass(frozen=True)
class FunctionInfo:
    """One indexed function or method."""

    key: str                 # "repro.x.f" or "repro.x.Class.meth"
    module: str
    qualname: str            # "f" or "Class.meth"
    name: str
    node: ast.AST            # FunctionDef | AsyncFunctionDef
    params: tuple[str, ...]  # positional + kw-only names, in order
    is_method: bool
    owner: str | None        # owning class name within the module
    path: str


@dataclasses.dataclass(frozen=True)
class ClassInfo:
    """One indexed class with its directly defined methods."""

    key: str                 # "repro.x.Class"
    module: str
    name: str
    methods: Mapping[str, FunctionInfo]
    bases: tuple[str, ...]   # dotted base expressions, unresolved


@dataclasses.dataclass(frozen=True)
class ResolvedCall:
    """A call resolved to its in-project definition.

    ``bound`` is True when the call went through an instance (or
    ``self``/``cls``), i.e. the leading ``self`` parameter is already
    taken.
    """

    func: FunctionInfo
    bound: bool = False


def _param_names(node: ast.AST) -> tuple[str, ...]:
    a = node.args
    names = [p.arg for p in a.posonlyargs] + [p.arg for p in a.args]
    names += [p.arg for p in a.kwonlyargs]
    return tuple(names)


class ModuleInfo:
    """Index entry for one source file."""

    def __init__(self, name: str, ctx: FileContext):
        self.name = name
        self.ctx = ctx
        self.path = ctx.posix
        self.tree = ctx.tree
        #: local alias -> dotted target ("pkg.mod" or "pkg.mod.sym")
        self.imports: dict[str, str] = {}
        self.functions: dict[str, FunctionInfo] = {}  # qualname -> info
        self.classes: dict[str, ClassInfo] = {}
        self._index()

    def _index(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports.setdefault(bound, target)
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    self.imports.setdefault(bound, target)
        for stmt in getattr(self.tree, "body", []):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, owner=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(stmt)

    def _from_base(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module or ""
        # Relative import: peel `level` components off this module's
        # package (the module itself counts as the first component).
        parts = self.name.split(".")
        if node.level > len(parts):
            return None
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    def _add_function(self, node, owner: str | None) -> None:
        qual = f"{owner}.{node.name}" if owner else node.name
        info = FunctionInfo(
            key=f"{self.name}.{qual}",
            module=self.name,
            qualname=qual,
            name=node.name,
            node=node,
            params=_param_names(node),
            is_method=owner is not None,
            owner=owner,
            path=self.path,
        )
        self.functions.setdefault(qual, info)

    def _add_class(self, node: ast.ClassDef) -> None:
        methods: dict[str, FunctionInfo] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, owner=node.name)
                methods[stmt.name] = self.functions[f"{node.name}.{stmt.name}"]
        bases = tuple(
            b for b in (dotted_name(base) for base in node.bases) if b
        )
        self.classes.setdefault(
            node.name,
            ClassInfo(
                key=f"{self.name}.{node.name}",
                module=self.name,
                name=node.name,
                methods=methods,
                bases=bases,
            ),
        )


class ProjectIndex:
    """All indexed modules plus cross-module resolution."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, ModuleInfo] = {}
        for mod in modules:
            self.modules.setdefault(mod.name, mod)
            self.by_path.setdefault(mod.path, mod)
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._by_node: dict[int, FunctionInfo] = {}
        for name in sorted(self.modules):
            mod = self.modules[name]
            for qual in sorted(mod.functions):
                fi = mod.functions[qual]
                self.functions.setdefault(fi.key, fi)
                self._by_node.setdefault(id(fi.node), fi)
            for cname in sorted(mod.classes):
                ci = mod.classes[cname]
                self.classes.setdefault(ci.key, ci)
        self._edges: dict[str, tuple[str, ...]] | None = None
        self._callers: dict[str, tuple[str, ...]] | None = None
        self._local_types: dict[str, dict[str, ClassInfo]] = {}

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "ProjectIndex":
        ordered = sorted(contexts, key=lambda c: c.posix)
        return cls([ModuleInfo(module_name_for(c.path), c) for c in ordered])

    # -- lookups --------------------------------------------------------------

    def module_for(self, ctx: FileContext) -> ModuleInfo | None:
        return self.by_path.get(ctx.posix)

    def function_at(self, node: ast.AST) -> FunctionInfo | None:
        """The indexed FunctionInfo for this exact AST node, if any."""
        return self._by_node.get(id(node))

    def canonical_name(
        self,
        module: ModuleInfo,
        node: ast.AST,
        local_types: Mapping[str, ClassInfo] | None = None,
    ) -> str | None:
        """Fully qualified dotted name of a Name/Attribute reference.

        Resolves import aliases and module-local definitions:
        ``Decision`` under ``from repro.control.governors import
        Decision`` canonicalizes to ``repro.control.governors.Decision``
        whether or not that module is indexed; ``time.time`` under
        ``import time`` canonicalizes to ``time.time``.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if local_types and head in local_types:
            base = local_types[head].key
        elif head in module.imports:
            base = module.imports[head]
        elif head in module.functions or head in module.classes:
            base = f"{module.name}.{head}"
        else:
            return dotted
        return f"{base}.{rest}" if rest else base

    def _class_by_key(self, key: str) -> ClassInfo | None:
        return self.classes.get(key)

    def _function_by_key(self, key: str) -> FunctionInfo | None:
        fi = self.functions.get(key)
        if fi is not None:
            return fi
        # "pkg.mod.Class.meth" where meth lives on a base class.
        head, _, meth = key.rpartition(".")
        ci = self.classes.get(head)
        if ci is not None:
            return self._method_on(ci, meth)
        return None

    def _method_on(
        self, ci: ClassInfo, name: str, _depth: int = 0
    ) -> FunctionInfo | None:
        """Method lookup walking in-project base classes."""
        if _depth > 8:
            return None
        if name in ci.methods:
            return ci.methods[name]
        mod = self.modules.get(ci.module)
        if mod is None:
            return None
        for base in ci.bases:
            base_key = self.canonical_name_str(mod, base)
            if base_key is None:
                continue
            base_ci = self.classes.get(base_key)
            if base_ci is not None and base_ci.key != ci.key:
                found = self._method_on(base_ci, name, _depth + 1)
                if found is not None:
                    return found
        return None

    def canonical_name_str(self, module: ModuleInfo, dotted: str) -> str | None:
        """:meth:`canonical_name` for an already-dotted string."""
        head, _, rest = dotted.partition(".")
        if head in module.imports:
            base = module.imports[head]
        elif head in module.functions or head in module.classes:
            base = f"{module.name}.{head}"
        else:
            return dotted
        return f"{base}.{rest}" if rest else base

    # -- call resolution ------------------------------------------------------

    def resolve_call(
        self,
        module: ModuleInfo,
        call: ast.Call,
        local_types: Mapping[str, ClassInfo] | None = None,
        owner: ClassInfo | None = None,
    ) -> ResolvedCall | None:
        """Resolve a call to its in-project definition, or None."""
        func = call.func
        # self.method() / cls.method() inside a known class.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and owner is not None
        ):
            fi = self._method_on(owner, func.attr)
            return ResolvedCall(fi, bound=True) if fi else None
        # obj.method() where obj's class is locally known.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and local_types
            and func.value.id in local_types
        ):
            fi = self._method_on(local_types[func.value.id], func.attr)
            return ResolvedCall(fi, bound=True) if fi else None
        canon = self.canonical_name(module, func, local_types)
        if canon is None:
            return None
        fi = self._function_by_key(canon)
        if fi is not None:
            return ResolvedCall(fi, bound=False)
        ci = self._class_by_key(canon)
        if ci is not None:
            init = self._method_on(ci, "__init__")
            return ResolvedCall(init, bound=True) if init else None
        return None

    def resolve_class(
        self, module: ModuleInfo, node: ast.AST
    ) -> ClassInfo | None:
        canon = self.canonical_name(module, node)
        return self.classes.get(canon) if canon else None

    def local_class_types(self, fi: FunctionInfo) -> dict[str, ClassInfo]:
        """name -> class for locals bound from known constructors or
        annotated parameters, within one function.  Cached per key."""
        cached = self._local_types.get(fi.key)
        if cached is not None:
            return cached
        mod = self.modules.get(fi.module)
        out: dict[str, ClassInfo] = {}
        if mod is not None:
            args = fi.node.args
            for p in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                if p.annotation is not None:
                    ci = self.resolve_class(mod, p.annotation)
                    if ci is not None:
                        out.setdefault(p.arg, ci)
            for node in ast.walk(fi.node):
                if not (isinstance(node, ast.Assign)
                        and isinstance(node.value, ast.Call)):
                    continue
                ci = self.resolve_class(mod, node.value.func)
                if ci is None:
                    continue
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        out.setdefault(tgt.id, ci)
        self._local_types[fi.key] = out
        return out

    def map_args(
        self, call: ast.Call, resolved: ResolvedCall
    ) -> list[tuple[str, ast.expr]]:
        """(param name, argument expr) pairs for a resolved call.

        Starred/``**`` arguments stop the positional mapping; unknown
        keywords are dropped.
        """
        fi = resolved.func
        params = list(fi.params)
        if fi.is_method and resolved.bound and params:
            params = params[1:]  # self/cls already bound
        out: list[tuple[str, ast.expr]] = []
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred) or i >= len(params):
                break
            out.append((params[i], arg))
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in fi.params:
                out.append((kw.arg, kw.value))
        return out

    # -- call graph -----------------------------------------------------------

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for key in sorted(self.functions):
            yield self.functions[key]

    def call_edges(self) -> dict[str, tuple[str, ...]]:
        """caller key -> sorted unique callee keys (lazily built)."""
        if self._edges is None:
            edges: dict[str, tuple[str, ...]] = {}
            for fi in self.iter_functions():
                mod = self.modules.get(fi.module)
                if mod is None:
                    edges[fi.key] = ()
                    continue
                owner = mod.classes.get(fi.owner) if fi.owner else None
                local = self.local_class_types(fi)
                callees: set[str] = set()
                for node in ast.walk(fi.node):
                    if isinstance(node, ast.Call):
                        r = self.resolve_call(mod, node, local, owner)
                        if r is not None:
                            callees.add(r.func.key)
                edges[fi.key] = tuple(sorted(callees))
            self._edges = edges
        return self._edges

    def callers_of(self, key: str) -> tuple[str, ...]:
        """Sorted caller keys for one function (lazily built)."""
        if self._callers is None:
            rev: dict[str, set[str]] = {}
            for caller, callees in self.call_edges().items():
                for callee in callees:
                    rev.setdefault(callee, set()).add(caller)
            self._callers = {k: tuple(sorted(v)) for k, v in rev.items()}
        return self._callers.get(key, ())
